//! The device bus: port-range routing, per-device tick batching, and —
//! above all — prioritised interrupt arbitration edge cases, both at the
//! bus level and through real guest code.

use std::any::Any;

use rabbit::{assemble, Bus, Cpu, Device, Interrupt, IoSpace, Memory, PortRange};

/// A scriptable test peripheral: one internal register bank, an optional
/// external window, a controllable interrupt line.
#[derive(Debug, Default)]
struct TestDev {
    name: &'static str,
    base: u16,
    window: Option<(u16, u16)>,
    quantum: u64,
    /// Value served on reads; reading clears the interrupt line when
    /// `clear_on_read` is set (level-triggered device).
    value: u8,
    clear_on_read: bool,
    irq: Option<Interrupt>,
    acks: Vec<u16>,
    ticked: u64,
    tick_calls: u64,
    writes: Vec<(u16, u8)>,
}

impl Device for TestDev {
    fn name(&self) -> &'static str {
        self.name
    }

    fn claims(&self) -> Vec<PortRange> {
        let mut c = vec![PortRange::internal(self.base, self.base + 3)];
        if let Some((start, end)) = self.window {
            c.push(PortRange::external(start, end));
        }
        c
    }

    fn read(&mut self, _port: u16, _external: bool) -> u8 {
        if self.clear_on_read {
            self.irq = None;
        }
        self.value
    }

    fn write(&mut self, port: u16, value: u8, _external: bool) {
        self.writes.push((port, value));
    }

    fn tick(&mut self, cycles: u64) {
        self.ticked += cycles;
        self.tick_calls += 1;
    }

    fn tick_quantum(&self) -> u64 {
        self.quantum
    }

    fn pending(&self) -> Option<Interrupt> {
        self.irq
    }

    fn acknowledge(&mut self, vector: u16) {
        self.acks.push(vector);
        // Acknowledge alone does not drop a level request; reading the
        // device register does (see `clear_on_read`).
        if !self.clear_on_read {
            self.irq = None;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn dev(name: &'static str, base: u16) -> TestDev {
    TestDev {
        name,
        base,
        quantum: 1,
        value: 0xAB,
        ..TestDev::default()
    }
}

#[test]
fn routing_by_claim_and_space() {
    let mut bus = Bus::new();
    let a = bus.attach(Box::new(dev("a", 0x40)));
    let mut b = dev("b", 0x50);
    b.window = Some((0x1000, 0x10FF));
    b.value = 0xCD;
    let b = bus.attach(Box::new(b));

    assert_eq!(bus.io_read(0x40, false), 0xAB);
    assert_eq!(bus.io_read(0x50, false), 0xCD);
    // The same number in the *external* space belongs to nobody...
    assert_eq!(bus.io_read(0x40, true), 0xFF);
    // ...while b's memory-mapped window answers there.
    assert_eq!(bus.io_read(0x1080, true), 0xCD);

    bus.io_write(0x41, 7, false);
    bus.io_write(0x1000, 9, true);
    assert_eq!(bus.device::<TestDev>(a).writes, vec![(0x41, 7)]);
    assert_eq!(bus.device::<TestDev>(b).writes, vec![(0x1000, 9)]);

    // Unclaimed ports float high / are logged.
    assert_eq!(bus.io_read(0x9999, false), 0xFF);
    bus.io_write(0x60, 0x77, false);
    assert_eq!(bus.unclaimed_writes(), &[(0x60, 0x77)]);
}

#[test]
#[should_panic(expected = "overlaps")]
fn overlapping_claims_are_rejected() {
    let mut bus = Bus::new();
    bus.attach(Box::new(dev("a", 0x40)));
    bus.attach(Box::new(dev("b", 0x42)));
}

#[test]
fn arbitration_picks_the_highest_priority() {
    let mut bus = Bus::new();
    let mut lo = dev("lo", 0x40);
    lo.irq = Some(Interrupt {
        priority: 1,
        vector: 0x0100,
    });
    let mut hi = dev("hi", 0x50);
    hi.irq = Some(Interrupt {
        priority: 3,
        vector: 0x0200,
    });
    bus.attach(Box::new(lo));
    bus.attach(Box::new(hi));

    // Two devices pending at different priorities: the higher one wins
    // even though it was attached later.
    assert_eq!(
        bus.pending_interrupt(),
        Some(Interrupt {
            priority: 3,
            vector: 0x0200
        })
    );
}

#[test]
fn arbitration_ties_go_to_the_earliest_attached() {
    let mut bus = Bus::new();
    for (name, base, vector) in [("first", 0x40u16, 0x0100u16), ("second", 0x50, 0x0200)] {
        let mut d = dev(name, base);
        d.irq = Some(Interrupt {
            priority: 2,
            vector,
        });
        bus.attach(Box::new(d));
    }
    assert_eq!(bus.pending_interrupt().unwrap().vector, 0x0100);
}

#[test]
fn acknowledge_clears_exactly_one_source() {
    let mut bus = Bus::new();
    let mut a = dev("a", 0x40);
    a.irq = Some(Interrupt {
        priority: 2,
        vector: 0x0100,
    });
    let mut b = dev("b", 0x50);
    b.irq = Some(Interrupt {
        priority: 2,
        vector: 0x0200,
    });
    let a = bus.attach(Box::new(a));
    let b = bus.attach(Box::new(b));

    bus.acknowledge_interrupt(0x0200);
    assert_eq!(bus.device::<TestDev>(a).acks, Vec::<u16>::new());
    assert_eq!(bus.device::<TestDev>(b).acks, vec![0x0200]);
    // The other request is still pending and now wins arbitration.
    assert_eq!(bus.pending_interrupt().unwrap().vector, 0x0100);
}

#[test]
fn tick_quantum_batches_but_totals_stay_exact() {
    let mut bus = Bus::new();
    let mut d = dev("slow", 0x40);
    d.quantum = 100;
    let fast = bus.attach(Box::new(dev("fast", 0x50)));
    let slow = bus.attach(Box::new(d));

    for _ in 0..3 {
        bus.tick(30);
    }
    // Below the quantum: nothing delivered to the slow device yet, while
    // the quantum-1 device saw every tick as it happened.
    assert_eq!(bus.device::<TestDev>(slow).ticked, 0);
    assert_eq!(bus.device::<TestDev>(fast).ticked, 90);
    bus.tick(30);
    // Crossing the quantum delivers the whole accumulation at once.
    assert_eq!(bus.device::<TestDev>(slow).ticked, 120);
    assert_eq!(bus.device::<TestDev>(slow).tick_calls, 1);

    // A port access (anywhere on the bus) flushes the remainder first.
    bus.tick(50);
    assert_eq!(bus.device::<TestDev>(slow).ticked, 120);
    bus.io_read(0x50, false);
    assert_eq!(bus.device::<TestDev>(slow).ticked, 170);
}

// ---- CPU-level arbitration edge cases ------------------------------------

fn machine(src: &str) -> (Cpu, Memory) {
    let image = assemble(src).expect("assembles");
    let mut mem = Memory::new();
    image.load_into(&mut mem);
    let mut cpu = Cpu::new();
    cpu.mmu.segsize = rabbit::fwmap::SEGSIZE_RESET;
    cpu.mmu.dataseg = rabbit::fwmap::DATASEG_PAGE;
    cpu.mmu.stackseg = rabbit::fwmap::STACKSEG_PAGE;
    cpu.regs.sp = rabbit::fwmap::SP_RESET;
    cpu.regs.pc = 0x4000;
    (cpu, mem)
}

/// A request raised while the CPU masks it (`ipset 3`) must persist
/// across the IP changes and be taken as soon as `ipres` restores a
/// lower priority.
#[test]
fn request_persists_across_ip_changes() {
    let (mut cpu, mut mem) = machine(
        "        org 0x0100\n\
         isr:    ioi ld a, (0x40)       ; read device -> clears level req\n\
                 ld (0x8000), a\n\
                 reti\n\
                 \n\
                 org 0x4000\n\
         start:  ipset 3                ; mask everything\n\
                 ld b, 10\n\
         wait:   djnz wait              ; request arrives while masked\n\
                 ld a, 1\n\
                 ld (0x8001), a         ; checkpoint: still uninterrupted\n\
                 ipres                  ; unmask -> dispatch happens here\n\
                 nop\n\
                 halt\n",
    );
    let mut bus = Bus::new();
    let mut d = dev("level", 0x40);
    d.value = 0x5A;
    d.clear_on_read = true;
    d.irq = Some(Interrupt {
        priority: 1,
        vector: 0x0100,
    });
    let id = bus.attach(Box::new(d));

    cpu.run(&mut mem, &mut bus, 100_000).expect("runs");
    assert!(cpu.halted);
    // The ISR ran exactly once, after the checkpoint store — i.e. the
    // request was *not* taken while masked but survived until `ipres`.
    assert_eq!(mem.read_phys(rabbit::fwmap::load_phys(0x8001)), 1);
    assert_eq!(mem.read_phys(rabbit::fwmap::load_phys(0x8000)), 0x5A);
    assert_eq!(bus.device::<TestDev>(id).acks, vec![0x0100]);
}

/// With two devices pending, the CPU services them highest-priority
/// first, and the lower one is delivered after the first ISR returns.
#[test]
fn nested_delivery_orders_by_priority() {
    let (mut cpu, mut mem) = machine(
        "        org 0x0100\n\
         isr1:   ioi ld a, (0x40)\n\
                 ld (0x8000), a         ; low-priority ISR ran\n\
                 reti\n\
                 \n\
                 org 0x0200\n\
         isr3:   ioi ld a, (0x50)\n\
                 ld (0x8001), a         ; high-priority ISR ran\n\
                 ld a, (0x8000)\n\
                 ld (0x8002), a         ; snapshot: had isr1 run yet?\n\
                 reti\n\
                 \n\
                 org 0x4000\n\
         start:  nop\n\
                 nop\n\
                 halt\n",
    );
    let mut bus = Bus::new();
    let mut lo = dev("lo", 0x40);
    lo.value = 0x11;
    lo.clear_on_read = true;
    lo.irq = Some(Interrupt {
        priority: 1,
        vector: 0x0100,
    });
    let mut hi = dev("hi", 0x50);
    hi.value = 0x33;
    hi.clear_on_read = true;
    hi.irq = Some(Interrupt {
        priority: 3,
        vector: 0x0200,
    });
    bus.attach(Box::new(lo));
    bus.attach(Box::new(hi));

    cpu.run(&mut mem, &mut bus, 100_000).expect("runs");
    assert!(cpu.halted);
    assert_eq!(mem.read_phys(rabbit::fwmap::load_phys(0x8000)), 0x11);
    assert_eq!(mem.read_phys(rabbit::fwmap::load_phys(0x8001)), 0x33);
    // The high-priority ISR observed 0 at 0x8000: it ran first even
    // though the low-priority device attached first.
    assert_eq!(mem.read_phys(rabbit::fwmap::load_phys(0x8002)), 0);
}
