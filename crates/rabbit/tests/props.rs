//! Property-based tests: the interpreter's ALU against a Rust reference,
//! and assembler/disassembler agreement on instruction lengths.

use proptest::prelude::*;
use rabbit::{assemble, disassemble, Cpu, Flags, Memory, NullIo};

fn run_alu(a: u8, b: u8, op: &str) -> (u8, bool, bool) {
    let src = format!("        org 0x4000\n ld a, {a}\n {op} {b}\n halt\n");
    let image = assemble(&src).expect("assembles");
    let mut mem = Memory::new();
    image.load_into(&mut mem);
    let mut cpu = Cpu::new();
    cpu.mmu.stackseg = 0x78;
    cpu.regs.pc = 0x4000;
    cpu.run(&mut mem, &mut NullIo, 10_000).expect("runs");
    (cpu.regs.a, cpu.regs.flag(Flags::C), cpu.regs.flag(Flags::Z))
}

proptest! {
    #[test]
    fn add_matches_reference(a: u8, b: u8) {
        let (res, carry, zero) = run_alu(a, b, "add a,");
        let (expect, overflow) = a.overflowing_add(b);
        prop_assert_eq!(res, expect);
        prop_assert_eq!(carry, overflow);
        prop_assert_eq!(zero, expect == 0);
    }

    #[test]
    fn sub_matches_reference(a: u8, b: u8) {
        let (res, carry, zero) = run_alu(a, b, "sub");
        let (expect, borrow) = a.overflowing_sub(b);
        prop_assert_eq!(res, expect);
        prop_assert_eq!(carry, borrow);
        prop_assert_eq!(zero, expect == 0);
    }

    #[test]
    fn xor_and_or_match_reference(a: u8, b: u8) {
        let (res, carry, _) = run_alu(a, b, "xor");
        prop_assert_eq!(res, a ^ b);
        prop_assert!(!carry);
        let (res, _, _) = run_alu(a, b, "and");
        prop_assert_eq!(res, a & b);
        let (res, _, _) = run_alu(a, b, "or");
        prop_assert_eq!(res, a | b);
    }

    #[test]
    fn mul_matches_reference(bc: i16, de: i16) {
        let src = format!(
            "        org 0x4000\n ld bc, {}\n ld de, {}\n mul\n halt\n",
            bc as u16, de as u16
        );
        let image = assemble(&src).expect("assembles");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        cpu.regs.pc = 0x4000;
        cpu.run(&mut mem, &mut NullIo, 10_000).expect("runs");
        let prod = (i32::from(cpu.regs.hl() as i16) << 16)
            | i32::from(cpu.regs.bc());
        prop_assert_eq!(prod, i32::from(bc) * i32::from(de));
    }

    #[test]
    fn shifts_match_reference(v: u8) {
        let src = format!("        org 0x4000\n ld b, {v}\n srl b\n halt\n");
        let image = assemble(&src).expect("assembles");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        cpu.regs.pc = 0x4000;
        cpu.run(&mut mem, &mut NullIo, 10_000).expect("runs");
        prop_assert_eq!(cpu.regs.b, v >> 1);
        prop_assert_eq!(cpu.regs.flag(Flags::C), v & 1 != 0);
    }

    #[test]
    fn disassembler_length_matches_assembler(
        // pick among a grab-bag of instruction templates
        which in 0usize..12,
        n: u8,
        nn: u16,
    ) {
        let text = match which {
            0 => format!("ld a, {n}"),
            1 => format!("ld hl, {nn}"),
            2 => format!("ld b, (ix+{})", n & 0x7F),
            3 => "add hl, de".to_string(),
            4 => format!("and {n}"),
            5 => format!("call {}", 0x4000 + u32::from(nn) % 0x1000),
            6 => "ldir".to_string(),
            7 => "mul".to_string(),
            8 => format!("bit {}, c", n & 7),
            9 => format!("ld ({}), a", 0x8000 + u32::from(nn) % 0x1000),
            10 => "push bc".to_string(),
            _ => "bool hl".to_string(),
        };
        let image = assemble(&format!("        org 0x4000\n        {text}\n"))
            .expect("assembles");
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let d = disassemble(&mem, 0x4000);
        prop_assert_eq!(usize::from(d.len), image.size(), "{}", text);
    }
}
