//! Differential fuzzing: the block-caching engine (`Cpu::run_fast`) must
//! be cycle- and state-exact against the step interpreter (`Cpu::run`).
//!
//! Each seed builds a random but *terminating* program (forward jumps,
//! bounded `djnz` loops, a halt-filled SRAM so wild control flow lands on
//! `halt` or an invalid opcode deterministically), runs it on both
//! engines from identical initial state, and compares the complete
//! outcome: result (including faults), cycle count, registers, MMU and
//! XPC state, flash write faults, and the full SRAM image.
//!
//! Even-numbered seeds run from flash with randomized MMU mappings and
//! runtime MMU/XPC reprogramming (`ioi ld (SEGSIZE..),a`, `ld xpc,a`);
//! odd-numbered seeds run from SRAM and include self-modifying stores
//! into their own code pages, exercising block invalidation and
//! mid-block aborts.

use rabbit::cpu::{Cpu, Fault};
use rabbit::io::NullIo;
use rabbit::mem::{Memory, SRAM_BASE, SRAM_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BUDGET: u64 = 500_000;
const SEEDS: u64 = 1200;

/// One-byte instructions that neither touch memory nor transfer control;
/// safe filler and loop bodies.
const POOL: &[u8] = &[
    // inc/dec r
    0x04, 0x0C, 0x14, 0x1C, 0x24, 0x2C, 0x3C, 0x05, 0x0D, 0x15, 0x1D, 0x25, 0x2D, 0x3D,
    // accumulator rotates, cpl/scf/ccf, exchanges
    0x07, 0x0F, 0x17, 0x1F, 0x2F, 0x37, 0x3F, 0x08, 0xD9, 0xEB,
    // 16-bit inc/dec/add
    0x03, 0x13, 0x23, 0x33, 0x0B, 0x1B, 0x2B, 0x3B, 0x09, 0x19, 0x29, 0x39,
    // Rabbit 16-bit ops
    0xCC, 0xDC, 0xEC, 0xFC, 0xF3, 0xFB, 0xF7,
    // alu a,r (no (hl) forms)
    0x80, 0x81, 0x82, 0x83, 0x84, 0x85, 0x87, 0x90, 0x97, 0xA0, 0xA7, 0xA8, 0xAF, 0xB0, 0xB7,
    0xB8, 0xBF, 0x88, 0x8F, 0x98, 0x9F,
    // ld r,r' (no (hl) forms)
    0x40, 0x41, 0x47, 0x48, 0x4F, 0x50, 0x57, 0x58, 0x5F, 0x60, 0x67, 0x68, 0x6F, 0x78, 0x79,
    0x7A, 0x7B, 0x7C, 0x7D, 0x7F,
];

/// Subset of [`POOL`] that leaves register B (and BC) untouched — safe
/// inside a `djnz` loop body, which must count down to zero.
const LOOP_POOL: &[u8] = &[
    0x0C, 0x14, 0x1C, 0x24, 0x2C, 0x3C, 0x0D, 0x15, 0x1D, 0x25, 0x2D, 0x3D, 0x07, 0x0F, 0x17,
    0x1F, 0x2F, 0x37, 0x3F, 0x13, 0x23, 0x33, 0x1B, 0x2B, 0x3B, 0x09, 0x19, 0x29, 0x39, 0x80,
    0x87, 0x90, 0xA8, 0xAF, 0xB7, 0x57, 0x5F, 0x67, 0x6F, 0x7C, 0x7D,
];

/// Bytes a self-modifying store may write into code: all one-byte,
/// non-control-transfer (or `halt`), so patched code still terminates.
const SAFE_PATCH: &[u8] = &[0x00, 0x3C, 0x04, 0x0C, 0x2F, 0x76];

fn pool_op(rng: &mut StdRng) -> u8 {
    POOL[rng.gen_range(0..POOL.len())]
}

struct Setup {
    segsize: u8,
    dataseg: u8,
    stackseg: u8,
    xpc: u8,
    pc: u16,
    sp: u16,
    code_phys: u32,
    program: Vec<u8>,
    regs_seed: u64,
}

/// Emits one random instruction (or template of a few instructions).
#[allow(clippy::too_many_lines)]
fn emit(rng: &mut StdRng, out: &mut Vec<u8>, base: u16, sram_mode: bool, data_lo: u16) {
    // A logical address whose writes cannot land on code: the data or
    // stack segment window chosen by the setup.
    let data_addr = |rng: &mut StdRng| -> u16 {
        if rng.gen_bool(0.5) {
            data_lo + rng.gen_range(0u16..0x400)
        } else {
            0xD000 + rng.gen_range(0u16..0x400)
        }
    };
    match rng.gen_range(0u32..100) {
        // plain register work
        0..=29 => out.push(pool_op(rng)),
        30..=36 => {
            // ld r,n (r != (hl))
            let r = [0u8, 1, 2, 3, 4, 5, 7][rng.gen_range(0usize..7)];
            out.extend_from_slice(&[0x06 | (r << 3), rng.gen()]);
        }
        37..=42 => {
            // alu a,n
            out.extend_from_slice(&[0xC6 | (rng.gen_range(0u8..8) << 3), rng.gen()]);
        }
        43..=47 => {
            // ld dd,nn
            let nn: u16 = rng.gen();
            let [lo, hi] = nn.to_le_bytes();
            out.extend_from_slice(&[0x01 | (rng.gen_range(0u8..4) << 4), lo, hi]);
        }
        48..=51 => {
            // cb rotate/bit/res/set on a register
            let mut sub: u8 = rng.gen();
            if sub & 7 == 6 {
                sub ^= 1; // avoid the (hl) form with an uncontrolled HL
            }
            out.extend_from_slice(&[0xCB, sub]);
        }
        52..=55 => {
            // ed register ops: sbc/adc hl,ss; neg; ld a,xpc
            let sub = [
                0x42, 0x52, 0x62, 0x72, 0x4A, 0x5A, 0x6A, 0x7A, 0x44, 0x77,
            ][rng.gen_range(0usize..10)];
            out.extend_from_slice(&[0xED, sub]);
        }
        56..=64 => {
            // point HL at data, then a burst of (hl) operations
            let [lo, hi] = data_addr(rng).to_le_bytes();
            out.extend_from_slice(&[0x21, lo, hi]);
            for _ in 0..rng.gen_range(1usize..4) {
                match rng.gen_range(0u32..6) {
                    0 => out.push(0x34),                              // inc (hl)
                    1 => out.push(0x35),                              // dec (hl)
                    2 => out.extend_from_slice(&[0x36, rng.gen()]),   // ld (hl),n
                    3 => out.push(0x70 | [0u8, 1, 2, 3, 7][rng.gen_range(0usize..5)]),
                    4 => out.push(0x86 | (rng.gen_range(0u8..8) << 3)), // alu a,(hl)
                    _ => out.extend_from_slice(&[0xCB, rng.gen::<u8>() & 0x3F | 6]),
                }
            }
        }
        65..=69 => {
            // absolute loads/stores into the data segment
            let [lo, hi] = data_addr(rng).to_le_bytes();
            match rng.gen_range(0u32..5) {
                0 => out.extend_from_slice(&[0x32, lo, hi]), // ld (nn),a
                1 => out.extend_from_slice(&[0x3A, lo, hi]), // ld a,(nn)
                2 => out.extend_from_slice(&[0x22, lo, hi]), // ld (nn),hl
                3 => out.extend_from_slice(&[0x2A, lo, hi]), // ld hl,(nn)
                _ => out.extend_from_slice(&[0xED, 0x43 | (rng.gen_range(0u8..4) << 4), lo, hi]),
            }
        }
        70..=76 => {
            // stack traffic
            match rng.gen_range(0u32..6) {
                0 => out.push([0xC5, 0xD5, 0xE5, 0xF5][rng.gen_range(0usize..4)]), // push
                1 => {
                    out.push([0xC5, 0xD5, 0xE5, 0xF5][rng.gen_range(0usize..4)]);
                    out.push([0xC1, 0xD1, 0xE1, 0xF1][rng.gen_range(0usize..4)]);
                }
                2 => out.extend_from_slice(&[0xC4, rng.gen_range(0u8..16)]), // ld hl,(sp+n)
                3 => out.extend_from_slice(&[0xD4, rng.gen_range(0u8..16)]), // ld (sp+n),hl
                4 => out.extend_from_slice(&[0x27, rng.gen_range(0u8..8)]),  // add sp,d
                _ => out.push(0xE3),                                         // ex (sp),hl
            }
        }
        77..=82 => {
            // ix/iy pointed at data, then indexed operations
            let pfx = if rng.gen_bool(0.5) { 0xDD } else { 0xFD };
            let [lo, hi] = data_addr(rng).to_le_bytes();
            out.extend_from_slice(&[pfx, 0x21, lo, hi]);
            let d: u8 = rng.gen_range(0u8..16);
            match rng.gen_range(0u32..8) {
                0 => out.extend_from_slice(&[pfx, 0x36, d, rng.gen()]),
                1 => out.extend_from_slice(&[pfx, 0x34, d]),
                2 => out.extend_from_slice(&[pfx, 0x35, d]),
                3 => out.extend_from_slice(&[pfx, 0x7E, d]),
                4 => out.extend_from_slice(&[pfx, 0x70 | [0u8, 1, 7][rng.gen_range(0usize..3)], d]),
                5 => out.extend_from_slice(&[pfx, 0x86 | (rng.gen_range(0u8..8) << 3), d]),
                6 => out.extend_from_slice(&[pfx, 0x09 | (rng.gen_range(0u8..4) << 4)]),
                _ => out.extend_from_slice(&[pfx, 0xE5, pfx, 0xE1]), // push/pop idx
            }
        }
        83..=87 => {
            // bounded djnz loop: ld b,k ; <m pool ops> ; djnz back
            let k = rng.gen_range(1u8..6);
            let m = rng.gen_range(1usize..4);
            out.extend_from_slice(&[0x06, k]); // ld b,k
            for _ in 0..m {
                out.push(LOOP_POOL[rng.gen_range(0usize..LOOP_POOL.len())]);
            }
            let disp = -((m as i8) + 2);
            out.extend_from_slice(&[0x10, disp as u8]);
        }
        88..=93 => {
            // forward control flow over a small gap of filler
            let g = rng.gen_range(0u8..5);
            let kind = rng.gen_range(0u32..4);
            match kind {
                0 => out.extend_from_slice(&[0x18, g]), // jr
                1 => out.push(0x20 | (rng.gen_range(0u8..4) << 3)), // jr cc
                _ => {}
            }
            if kind == 1 {
                out.push(g);
            }
            if kind >= 2 {
                // jp cc nn / call nn to an absolute forward target
                let target = base
                    .wrapping_add(out.len() as u16)
                    .wrapping_add(3)
                    .wrapping_add(u16::from(g));
                let [lo, hi] = target.to_le_bytes();
                if kind == 2 {
                    out.extend_from_slice(&[0xC2 | (rng.gen_range(0u8..8) << 3), lo, hi]);
                } else {
                    out.extend_from_slice(&[0xCD, lo, hi]);
                }
            }
            for _ in 0..g {
                out.push(pool_op(rng));
            }
        }
        94..=95 => {
            // conditional return (stack may hold garbage: wild PCs land in
            // halt-filled SRAM or erased flash, deterministically)
            out.push(0xC0 | (rng.gen_range(0u8..8) << 3));
        }
        _ => {
            if sram_mode {
                // self-modifying store into our own code window
                let target = 0xE000 + rng.gen_range(0u16..0x300);
                let [lo, hi] = target.to_le_bytes();
                let patch = SAFE_PATCH[rng.gen_range(0..SAFE_PATCH.len())];
                out.extend_from_slice(&[0x21, lo, hi, 0x36, patch]);
            } else {
                // runtime MMU/XPC reprogramming via ioi-prefixed stores
                match rng.gen_range(0u32..4) {
                    0 => {
                        // SEGSIZE: keep the stack segment at 0xD000
                        let v = 0xD0 | rng.gen_range(2u8..=0xC);
                        out.extend_from_slice(&[0x3E, v, 0xD3, 0x32, 0x13, 0x00]);
                    }
                    1 => {
                        let v: u8 = rng.gen();
                        out.extend_from_slice(&[0x3E, v, 0xD3, 0x32, 0x12, 0x00]);
                    }
                    2 => {
                        // STACKSEG: keep the stack inside SRAM
                        let v = rng.gen_range(0x75u8..0x7D);
                        out.extend_from_slice(&[0x3E, v, 0xD3, 0x32, 0x11, 0x00]);
                    }
                    _ => {
                        // ld xpc,a
                        let v = rng.gen_range(0x72u8..0x80);
                        out.extend_from_slice(&[0x3E, v, 0xED, 0x67]);
                    }
                }
            }
        }
    }
}

fn build_setup(seed: u64) -> Setup {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_0000);
    let sram_mode = seed % 2 == 1;
    let (segsize, dataseg, stackseg, xpc, pc, code_phys) = if sram_mode {
        // Code in the xmem window at the bottom of SRAM; data and stack
        // segments pinned clear of the code pages.
        (0xD6u8, 0x7C, 0x78, 0x72, 0xE000u16, SRAM_BASE)
    } else {
        // Code in root flash; MMU partially randomized, stack kept in SRAM.
        (
            0xD0 | rng.gen_range(2u8..=0xC),
            rng.gen(),
            rng.gen_range(0x75u8..0x7D),
            rng.gen_range(0x72u8..0x80),
            0x0100u16,
            0x0100u32,
        )
    };
    let data_lo = u16::from(segsize & 0x0F) << 12;
    let n = rng.gen_range(20usize..60);
    let mut program = Vec::new();
    for _ in 0..n {
        emit(&mut rng, &mut program, pc, sram_mode, data_lo);
    }
    program.extend_from_slice(&[0x76; 8]);
    Setup {
        segsize,
        dataseg,
        stackseg,
        xpc,
        pc,
        sp: 0xDF00 - 2 * rng.gen_range(0u16..32),
        code_phys,
        program,
        regs_seed: rng.gen(),
    }
}

fn prepare(setup: &Setup) -> (Cpu, Memory) {
    let mut mem = Memory::new();
    // Halt-filled SRAM: wild jumps terminate deterministically.
    mem.load(SRAM_BASE, &vec![0x76u8; SRAM_SIZE]);
    // Halt at every rst vector: erased flash reads 0xFF (= rst 0x38), so
    // without these a wild jump into flash would rst forever.
    for vector in [0x10u32, 0x18, 0x20, 0x28, 0x38] {
        mem.load(vector, &[0x76]);
    }
    mem.load(setup.code_phys, &setup.program);
    let mut cpu = Cpu::new();
    cpu.mmu.segsize = setup.segsize;
    cpu.mmu.dataseg = setup.dataseg;
    cpu.mmu.stackseg = setup.stackseg;
    cpu.regs.xpc = setup.xpc;
    cpu.regs.pc = setup.pc;
    cpu.regs.sp = setup.sp;
    let mut rng = StdRng::seed_from_u64(setup.regs_seed);
    cpu.regs.a = rng.gen();
    cpu.regs.f = rng.gen();
    cpu.regs.b = rng.gen();
    cpu.regs.c = rng.gen();
    cpu.regs.d = rng.gen();
    cpu.regs.e = rng.gen();
    cpu.regs.h = rng.gen();
    cpu.regs.l = rng.gen();
    cpu.regs.ix = rng.gen();
    cpu.regs.iy = rng.gen();
    (cpu, mem)
}

fn run_one(setup: &Setup, fast: bool) -> (Result<u64, Fault>, Cpu, Memory) {
    let (mut cpu, mut mem) = prepare(setup);
    let result = if fast {
        cpu.run_fast(&mut mem, &mut NullIo, BUDGET)
    } else {
        cpu.run(&mut mem, &mut NullIo, BUDGET)
    };
    (result, cpu, mem)
}

#[test]
fn engines_agree_on_random_programs() {
    let mut halted = 0u32;
    let mut faulted = 0u32;
    let mut exhausted = 0u32;
    for seed in 0..SEEDS {
        let setup = build_setup(seed);
        let (ra, cpu_a, mem_a) = run_one(&setup, false);
        let (rb, cpu_b, mem_b) = run_one(&setup, true);
        assert_eq!(ra, rb, "result diverged (seed {seed})");
        assert_eq!(cpu_a.cycles, cpu_b.cycles, "cycles diverged (seed {seed})");
        assert_eq!(cpu_a.halted, cpu_b.halted, "halted diverged (seed {seed})");
        assert!(cpu_a.regs == cpu_b.regs, "registers diverged (seed {seed})");
        assert_eq!(cpu_a.mmu, cpu_b.mmu, "mmu diverged (seed {seed})");
        assert_eq!(
            mem_a.flash_write_faults, mem_b.flash_write_faults,
            "flash faults diverged (seed {seed})"
        );
        assert_eq!(
            mem_a.dump(SRAM_BASE, SRAM_SIZE),
            mem_b.dump(SRAM_BASE, SRAM_SIZE),
            "sram diverged (seed {seed})"
        );
        match ra {
            Err(_) => faulted += 1,
            Ok(_) if cpu_a.halted => halted += 1,
            Ok(_) => exhausted += 1,
        }
    }
    // The generator is meant to terminate almost always; a budget-
    // exhausted run still compares exactly above, but too many would
    // mean the corpus lost its coverage.
    assert!(
        u64::from(exhausted) * 20 < SEEDS,
        "too many non-terminating programs: {exhausted}/{SEEDS} ({halted} halted, {faulted} faulted)"
    );
    assert!(halted > 0 && faulted > 0, "corpus lost outcome diversity");
}

/// The classic stale-block trap: a program whose first block patches the
/// instruction immediately after the store. The engine must abort the
/// block and execute the freshly written byte.
#[test]
fn self_modification_of_next_instruction() {
    // At 0xE000 (phys SRAM_BASE), with XPC=0x72:
    //   ld hl, 0xE007  ; 21 07 E0
    //   ld (hl), 0x3C  ; 36 3C      -- patch "inc a" over "dec a"
    //   ld a, 0x10     ; 3E 10
    //   dec a          ; 3D         <- at 0xE007, patched to inc a
    //   halt           ; 76
    let prog = [0x21, 0x07, 0xE0, 0x36, 0x3C, 0x3E, 0x10, 0x3D, 0x76];
    let mut setups = Vec::new();
    for fast in [false, true] {
        let mut mem = Memory::new();
        mem.load(SRAM_BASE, &prog);
        let mut cpu = Cpu::new();
        cpu.regs.xpc = 0x72;
        cpu.regs.pc = 0xE000;
        cpu.mmu.stackseg = 0x78;
        let r = if fast {
            cpu.run_fast(&mut mem, &mut NullIo, 10_000)
        } else {
            cpu.run(&mut mem, &mut NullIo, 10_000)
        };
        assert_eq!(r.ok(), Some(cpu.cycles));
        assert!(cpu.halted);
        assert_eq!(cpu.regs.a, 0x11, "patched inc must execute (fast={fast})");
        setups.push((cpu.cycles, cpu.regs.clone()));
    }
    assert_eq!(setups[0].0, setups[1].0, "cycle counts diverged");
    assert!(setups[0].1 == setups[1].1, "registers diverged");
}

/// Remapping DATASEG between two executions of the same PC must not
/// replay a block decoded under the old mapping.
#[test]
fn mmu_remap_invalidates_by_key() {
    // Root code at 0x0100 writes DATASEG via ioi, then reads 0x5000
    // twice; the second read must see the new mapping.
    //   ld a, 0x7B     ; dataseg -> phys 0x5000 + 0x7B000 = 0x80000 (SRAM)
    //   ioi ld (0x12),a
    //   ld a,(0x5000)
    //   ld b,a
    //   ld a, 0x7C     ; dataseg -> 0x81000
    //   ioi ld (0x12),a
    //   ld a,(0x5000)
    //   halt
    let prog = [
        0x3E, 0x7B, 0xD3, 0x32, 0x12, 0x00, 0x3A, 0x00, 0x50, 0x47, 0x3E, 0x7C, 0xD3, 0x32,
        0x12, 0x00, 0x3A, 0x00, 0x50, 0x76,
    ];
    let mut results = Vec::new();
    for fast in [false, true] {
        let mut mem = Memory::new();
        mem.load(0x0100, &prog);
        mem.load(SRAM_BASE, &[0x11]); // byte visible through dataseg 0x7B
        mem.load(SRAM_BASE + 0x1000, &[0x22]); // through dataseg 0x7C
        let mut cpu = Cpu::new();
        cpu.mmu.segsize = 0xD5; // data segment starts at 0x5000
        cpu.regs.pc = 0x0100;
        let r = if fast {
            cpu.run_fast(&mut mem, &mut NullIo, 10_000)
        } else {
            cpu.run(&mut mem, &mut NullIo, 10_000)
        };
        assert!(r.is_ok() && cpu.halted);
        assert_eq!((cpu.regs.b, cpu.regs.a), (0x11, 0x22), "fast={fast}");
        results.push(cpu.cycles);
    }
    assert_eq!(results[0], results[1]);
}

/// `io.tick` batching must still deliver the exact total cycle count.
#[test]
fn batched_ticks_sum_to_cycles() {
    use rabbit::io::{Interrupt, IoSpace};

    #[derive(Default)]
    struct TickCounter {
        total: u64,
    }
    impl IoSpace for TickCounter {
        fn io_read(&mut self, _addr: u16, _external: bool) -> u8 {
            0xFF
        }
        fn io_write(&mut self, _addr: u16, _v: u8, _external: bool) {}
        fn pending_interrupt(&mut self) -> Option<Interrupt> {
            None
        }
        fn acknowledge_interrupt(&mut self, _vector: u16) {}
        fn tick(&mut self, cycles: u64) {
            self.total += cycles;
        }
    }

    let setup = build_setup(2); // flash-mode corpus entry
    let (mut cpu, mut mem) = prepare(&setup);
    let mut io = TickCounter::default();
    let _ = cpu.run_fast(&mut mem, &mut io, BUDGET);
    assert_eq!(io.total, cpu.cycles);
}
