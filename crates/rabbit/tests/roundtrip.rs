//! Assembler ↔ disassembler agreement: for every instruction form the
//! toolchain supports, `assemble(disassemble(assemble(x)))` must produce
//! the same bytes as `assemble(x)`.

use rabbit::{assemble, disassemble, Memory};

/// Every supported instruction form, one per line.
fn corpus() -> Vec<&'static str> {
    vec![
        // ---- 8-bit loads ----
        "ld a, 0x12",
        "ld b, 0xFF",
        "ld c, d",
        "ld h, l",
        "ld a, (hl)",
        "ld (hl), e",
        "ld (hl), 0x7F",
        "ld a, (bc)",
        "ld a, (de)",
        "ld (bc), a",
        "ld (de), a",
        "ld a, (0x8123)",
        "ld (0x8123), a",
        "ld b, (ix+4)",
        "ld l, (iy-3)",
        "ld (ix+7), c",
        "ld (iy-8), a",
        "ld (ix+2), 0x55",
        // ---- 16-bit loads ----
        "ld bc, 0x1234",
        "ld de, 0xFFFF",
        "ld hl, 0x8000",
        "ld sp, 0xDFF0",
        "ld ix, 0x4000",
        "ld iy, 0x9000",
        "ld hl, (0x8100)",
        "ld (0x8100), hl",
        "ld bc, (0x8200)",
        "ld (0x8200), de",
        "ld sp, (0x8300)",
        "ld (0x8300), sp",
        "ld ix, (0x8400)",
        "ld (0x8400), iy",
        "ld sp, hl",
        "ld sp, ix",
        "ld hl, (sp+4)",
        "ld (sp+6), hl",
        // ---- exchanges ----
        "ex de, hl",
        "ex af, af'",
        "exx",
        "ex (sp), hl",
        "ex (sp), ix",
        // ---- 8-bit ALU ----
        "add a, b",
        "add a, 0x10",
        "add a, (hl)",
        "add a, (ix+1)",
        "adc a, c",
        "adc a, 0x01",
        "sub d",
        "sub 0x20",
        "sub (hl)",
        "sbc a, e",
        "sbc a, 0x02",
        "and h",
        "and 0x0F",
        "and (hl)",
        "xor l",
        "xor 0xFF",
        "or a",
        "or 0x80",
        "or (iy+3)",
        "cp b",
        "cp 0x99",
        "cp (hl)",
        "inc a",
        "inc (hl)",
        "inc (ix+5)",
        "dec c",
        "dec (hl)",
        "dec (iy-1)",
        "cpl",
        "neg",
        // ---- 16-bit arithmetic ----
        "add hl, bc",
        "add hl, de",
        "add hl, hl",
        "add hl, sp",
        "add ix, bc",
        "add ix, ix",
        "add iy, sp",
        "adc hl, de",
        "sbc hl, bc",
        "inc bc",
        "inc hl",
        "inc ix",
        "dec de",
        "dec sp",
        "dec iy",
        "add sp, 16",
        "add sp, -4",
        // ---- Rabbit specials ----
        "mul",
        "bool hl",
        "and hl, de",
        "or hl, de",
        "rr hl",
        "rl de",
        "rr de",
        "ld xpc, a",
        "ld a, xpc",
        "ipset 0",
        "ipset 1",
        "ipset 2",
        "ipset 3",
        "ipres",
        // ---- rotates / shifts / bits ----
        "rlca",
        "rrca",
        "rla",
        "rra",
        "rlc b",
        "rrc c",
        "rl d",
        "rr e",
        "sla h",
        "sra l",
        "srl a",
        "rlc (hl)",
        "srl (hl)",
        "bit 0, a",
        "bit 7, (hl)",
        "set 3, c",
        "set 5, (hl)",
        "res 1, d",
        "res 6, (hl)",
        // ---- stack ----
        "push bc",
        "push de",
        "push hl",
        "push af",
        "push ix",
        "push iy",
        "pop bc",
        "pop af",
        "pop ix",
        // ---- control flow ----
        "jp 0x4100",
        "jp nz, 0x4100",
        "jp z, 0x4100",
        "jp nc, 0x4100",
        "jp c, 0x4100",
        "jp po, 0x4100",
        "jp pe, 0x4100",
        "jp p, 0x4100",
        "jp m, 0x4100",
        "jp (hl)",
        "jp (ix)",
        "jp (iy)",
        "jr $+10",
        "jr nz, $+10",
        "jr z, $-4",
        "jr nc, $+2",
        "jr c, $+2",
        "djnz $-6",
        "call 0x4200",
        "ret",
        "ret nz",
        "ret z",
        "ret c",
        "ret m",
        "reti",
        "rst 0x10",
        "rst 0x18",
        "rst 0x20",
        "rst 0x28",
        "rst 0x38",
        // ---- block / misc ----
        "ldi",
        "ldir",
        "ldd",
        "lddr",
        "nop",
        "halt",
        // ---- I/O prefixes ----
        "ioi ld a, (0x00C0)",
        "ioi ld (0x00C4), a",
        "ioe ld a, (0x1234)",
        "ioi ld (hl), b",
    ]
}

fn assemble_one(insn: &str) -> Vec<u8> {
    let src = format!("        org 0x4000\n        {insn}\n");
    let image = assemble(&src).unwrap_or_else(|e| panic!("`{insn}` does not assemble: {e}"));
    assert_eq!(image.sections.len(), 1, "`{insn}`");
    image.sections[0].bytes.clone()
}

#[test]
fn every_instruction_round_trips_through_the_disassembler() {
    for insn in corpus() {
        let bytes = assemble_one(insn);
        let mut mem = Memory::new();
        mem.load(0x4000, &bytes);
        let d = disassemble(&mem, 0x4000);
        assert_eq!(
            usize::from(d.len),
            bytes.len(),
            "`{insn}` disassembled length ({}) != assembled length ({}) [text: {}]",
            d.len,
            bytes.len(),
            d.text
        );
        assert!(
            !d.text.contains('?'),
            "`{insn}` disassembles to unknown form `{}`",
            d.text
        );
        // Re-assemble the disassembler's own text: must give the same
        // bytes.
        let round = assemble_one(&d.text);
        assert_eq!(round, bytes, "`{insn}` -> `{}` changed encoding", d.text);
    }
}

#[test]
fn corpus_covers_distinct_encodings() {
    // Guard against accidental duplicates in the corpus silently shrinking
    // coverage.
    let mut seen = std::collections::HashSet::new();
    for insn in corpus() {
        let bytes = assemble_one(insn);
        assert!(
            seen.insert(bytes.clone()),
            "`{insn}` encodes identically to an earlier corpus entry"
        );
    }
}
