//! Executable-behaviour tests: assemble small programs, run them on the
//! CPU, and check architectural state afterwards.

use rabbit::{assemble, Cpu, Flags, Memory, NullIo};

/// Assembles `body` at 0x4000 with SP in SRAM-backed root space, runs to
/// halt, and returns the CPU.
fn run(body: &str) -> (Cpu, Memory) {
    let src = format!("        org 0x4000\n{body}\n        halt\n");
    let image = assemble(&src).unwrap_or_else(|e| panic!("assembly failed: {e}\n{src}"));
    let mut mem = Memory::new();
    image.load_into(&mut mem);
    let mut cpu = Cpu::new();
    // Map the data segment into SRAM so stores work: root code stays in
    // flash, everything from 0x8000 up goes to physical 0x80000+.
    cpu.mmu.segsize = 0xD8; // data segment at 0x8000, stack segment at 0xD000
    cpu.mmu.dataseg = 0x78; // 0x8000 + 0x78000 = 0x80000 (SRAM base)
    cpu.mmu.stackseg = 0x78; // 0xD000 + 0x78000 = 0x85000
    cpu.regs.sp = 0xDFF0;
    cpu.regs.pc = 0x4000;
    cpu.run(&mut mem, &mut NullIo, 10_000_000)
        .expect("no faults");
    assert!(cpu.halted, "program did not halt");
    (cpu, mem)
}

#[test]
fn loads_and_moves() {
    let (cpu, _) = run("ld a, 0x12\n ld b, a\n ld c, 0x34\n ld d, c");
    assert_eq!(cpu.regs.a, 0x12);
    assert_eq!(cpu.regs.b, 0x12);
    assert_eq!(cpu.regs.d, 0x34);
}

#[test]
fn sixteen_bit_loads() {
    let (cpu, _) = run("ld hl, 0xBEEF\n ld sp, hl\n ld de, 0x1234");
    assert_eq!(cpu.regs.sp, 0xBEEF);
    assert_eq!(cpu.regs.de(), 0x1234);
}

#[test]
fn memory_round_trip_through_data_segment() {
    let (cpu, _) = run("ld hl, 0x9000\n ld (hl), 0x5A\n ld a, (hl)\n ld b, a\n \
         ld hl, 0x9001\n ld a, 0x77\n ld (hl), a\n ld c, (hl)");
    assert_eq!(cpu.regs.b, 0x5A);
    assert_eq!(cpu.regs.c, 0x77);
}

#[test]
fn direct_addressing() {
    let (cpu, _) = run("ld a, 0x42\n ld (0x9100), a\n ld a, 0\n ld a, (0x9100)");
    assert_eq!(cpu.regs.a, 0x42);
}

#[test]
fn arithmetic_flags() {
    let (cpu, _) = run("ld a, 0xFF\n add a, 1");
    assert_eq!(cpu.regs.a, 0);
    assert!(cpu.regs.flag(Flags::Z));
    assert!(cpu.regs.flag(Flags::C));

    let (cpu, _) = run("ld a, 0x7F\n add a, 1");
    assert_eq!(cpu.regs.a, 0x80);
    assert!(cpu.regs.flag(Flags::PV), "signed overflow sets V");
    assert!(cpu.regs.flag(Flags::S));
}

#[test]
fn subtraction_and_compare() {
    let (cpu, _) = run("ld a, 5\n sub 7");
    assert_eq!(cpu.regs.a, 0xFE);
    assert!(cpu.regs.flag(Flags::C), "borrow sets carry");

    let (cpu, _) = run("ld a, 9\n cp 9");
    assert_eq!(cpu.regs.a, 9, "cp does not store");
    assert!(cpu.regs.flag(Flags::Z));
}

#[test]
fn adc_and_sbc_chain() {
    // 16-bit add via 8-bit adc: 0x00FF + 0x0101 = 0x0200
    let (cpu, _) = run("ld a, 0xFF\n add a, 0x01\n ld l, a\n ld a, 0x00\n adc a, 0x01\n ld h, a");
    assert_eq!(cpu.regs.hl(), 0x0200);
}

#[test]
fn logic_ops() {
    let (cpu, _) = run("ld a, 0xF0\n and 0x3C");
    assert_eq!(cpu.regs.a, 0x30);
    let (cpu, _) = run("ld a, 0xF0\n xor 0xFF");
    assert_eq!(cpu.regs.a, 0x0F);
    let (cpu, _) = run("ld a, 0xF0\n or 0x0F");
    assert_eq!(cpu.regs.a, 0xFF);
    assert!(cpu.regs.flag(Flags::S));
    assert!(!cpu.regs.flag(Flags::C));
}

#[test]
fn inc_dec_edge_flags() {
    let (cpu, _) = run("ld b, 0xFF\n inc b");
    assert_eq!(cpu.regs.b, 0);
    assert!(cpu.regs.flag(Flags::Z));

    let (cpu, _) = run("ld b, 0x80\n dec b");
    assert_eq!(cpu.regs.b, 0x7F);
    assert!(cpu.regs.flag(Flags::PV), "0x80 -> 0x7F overflows");
}

#[test]
fn djnz_loops_exactly_b_times() {
    let (cpu, _) = run("ld b, 10\n ld a, 0\nloop: inc a\n djnz loop");
    assert_eq!(cpu.regs.a, 10);
    assert_eq!(cpu.regs.b, 0);
}

#[test]
fn conditional_jumps() {
    let (cpu, _) = run("ld a, 1\n cp 1\n jp z, yes\n ld b, 0xBB\n jp done\nyes: ld b, 0xAA\ndone:");
    assert_eq!(cpu.regs.b, 0xAA);
}

#[test]
fn relative_jumps() {
    let (cpu, _) = run("ld a, 0\n jr skip\n ld a, 0xFF\nskip: ld b, 7");
    assert_eq!(cpu.regs.a, 0);
    assert_eq!(cpu.regs.b, 7);
}

#[test]
fn call_and_return() {
    let (cpu, _) = run("call sub\n ld b, 2\n jp end\nsub: ld a, 1\n ret\nend:");
    assert_eq!(cpu.regs.a, 1);
    assert_eq!(cpu.regs.b, 2);
}

#[test]
fn push_pop_round_trip() {
    let (cpu, _) = run("ld hl, 0xCAFE\n push hl\n ld hl, 0\n pop de");
    assert_eq!(cpu.regs.de(), 0xCAFE);
}

#[test]
fn stack_relative_loads() {
    // Rabbit `ld hl,(sp+n)` addresses the stack without popping.
    let (cpu, _) = run("ld hl, 0x1234\n push hl\n ld hl, 0\n ld hl, (sp+0)\n pop bc");
    assert_eq!(cpu.regs.hl(), 0x1234);
    assert_eq!(cpu.regs.bc(), 0x1234);
}

#[test]
fn rotates_and_shifts() {
    let (cpu, _) = run("ld a, 0x81\n rlca");
    assert_eq!(cpu.regs.a, 0x03);
    assert!(cpu.regs.flag(Flags::C));

    let (cpu, _) = run("ld b, 0x01\n srl b");
    assert_eq!(cpu.regs.b, 0);
    assert!(cpu.regs.flag(Flags::C));
    assert!(cpu.regs.flag(Flags::Z));

    let (cpu, _) = run("ld c, 0x80\n sra c");
    assert_eq!(cpu.regs.c, 0xC0, "sra keeps the sign bit");
}

#[test]
fn bit_set_res() {
    let (cpu, _) = run("ld a, 0\n set 3, a\n set 0, a");
    assert_eq!(cpu.regs.a, 0b0000_1001);
    let (cpu, _) = run("ld a, 0xFF\n res 7, a");
    assert_eq!(cpu.regs.a, 0x7F);
    let (cpu, _) =
        run("ld a, 0x08\n bit 3, a\n jp nz, taken\n ld b, 0\n jp over\ntaken: ld b, 1\nover:");
    assert_eq!(cpu.regs.b, 1);
}

#[test]
fn sixteen_bit_arithmetic() {
    let (cpu, _) = run("ld hl, 0x1234\n ld de, 0x0DCB\n add hl, de");
    assert_eq!(cpu.regs.hl(), 0x1FFF);

    let (cpu, _) = run("ld hl, 0xFFFF\n ld bc, 1\n add hl, bc");
    assert_eq!(cpu.regs.hl(), 0);
    assert!(cpu.regs.flag(Flags::C));

    let (cpu, _) = run("scf\n ccf\n ld hl, 0x2000\n ld de, 0x2000\n sbc hl, de");
    assert_eq!(cpu.regs.hl(), 0);
    assert!(cpu.regs.flag(Flags::Z));
}

#[test]
fn rabbit_mul_is_signed_16x16() {
    let (cpu, _) = run("ld bc, 300\n ld de, 700\n mul");
    let prod = (u32::from(cpu.regs.hl()) << 16) | u32::from(cpu.regs.bc());
    assert_eq!(prod, 210_000);

    // -2 * 3 = -6
    let (cpu, _) = run("ld bc, 0xFFFE\n ld de, 3\n mul");
    let prod = (u32::from(cpu.regs.hl()) << 16) | u32::from(cpu.regs.bc());
    assert_eq!(prod as i32, -6);
}

#[test]
fn rabbit_bool_and_16bit_logic() {
    let (cpu, _) = run("ld hl, 0x8000\n bool hl");
    assert_eq!(cpu.regs.hl(), 1);
    let (cpu, _) = run("ld hl, 0\n bool hl");
    assert_eq!(cpu.regs.hl(), 0);
    let (cpu, _) = run("ld hl, 0xF0F0\n ld de, 0x3FF0\n and hl, de");
    assert_eq!(cpu.regs.hl(), 0x30F0);
    let (cpu, _) = run("ld hl, 0xF000\n ld de, 0x000F\n or hl, de");
    assert_eq!(cpu.regs.hl(), 0xF00F);
}

#[test]
fn exchanges() {
    let (cpu, _) = run("ld hl, 0x1111\n ld de, 0x2222\n ex de, hl");
    assert_eq!(cpu.regs.hl(), 0x2222);
    assert_eq!(cpu.regs.de(), 0x1111);

    let (cpu, _) = run("ld hl, 0xAAAA\n exx\n ld hl, 0xBBBB\n exx");
    assert_eq!(cpu.regs.hl(), 0xAAAA);
}

#[test]
fn index_registers() {
    let (cpu, _) = run(
        "ld ix, 0x9000\n ld a, 0x11\n ld (ix+2), a\n ld b, (ix+2)\n \
         ld (ix+3), 0x22\n ld c, (ix+3)\n inc (ix+2)\n ld d, (ix+2)",
    );
    assert_eq!(cpu.regs.b, 0x11);
    assert_eq!(cpu.regs.c, 0x22);
    assert_eq!(cpu.regs.d, 0x12);
}

#[test]
fn block_copy_ldir() {
    let (cpu, mem) = run(
        "ld hl, src\n ld de, 0x9000\n ld bc, 4\n ldir\n ld a, (0x9003)\n jp end\n\
         src: db 0x10, 0x20, 0x30, 0x40\nend:",
    );
    assert_eq!(cpu.regs.a, 0x40);
    assert_eq!(cpu.regs.bc(), 0);
    // destination bytes all copied (data segment maps 0x9000 -> 0x81000)
    assert_eq!(mem.read_phys(0x81000), 0x10);
    assert_eq!(mem.read_phys(0x81002), 0x30);
}

#[test]
fn tables_in_flash_are_readable() {
    let (cpu, _) = run(
        "ld hl, table\n ld b, 0\n ld c, 3\n add hl, bc\n ld a, (hl)\n jp end\n\
         table: db 9, 8, 7, 6, 5\nend:",
    );
    assert_eq!(cpu.regs.a, 6);
}

#[test]
fn add_sp_displacement() {
    let (cpu, _) = run("ld hl, 0\n add sp, -4\n add sp, 4");
    assert_eq!(cpu.regs.sp, 0xDFF0);
}

#[test]
fn xpc_window_reaches_extended_memory() {
    // phys = logical + XPC*0x1000, so XPC = 0x72 puts logical 0xE000 at
    // physical 0x80000, the base of SRAM.
    let (cpu, mem) = run("ld a, 0x72\n ld xpc, a\n ld hl, 0xE010\n ld (hl), 0x99\n ld a, (hl)");
    assert_eq!(cpu.regs.a, 0x99);
    assert_eq!(mem.read_phys(0x80010), 0x99);
    assert_eq!(cpu.regs.xpc, 0x72);
}

#[test]
fn cycles_accumulate_and_asm_is_faster_shape() {
    // A trivial sanity check of the cycle counter: a djnz loop of 100
    // iterations costs 100 * (inc + djnz) + setup.
    let (cpu, _) = run("ld b, 100\nlp: inc a\n djnz lp");
    // 2 (ld b) + 100*(2+5) + 2 (halt) -- allow the halt not yet counted
    assert!(cpu.cycles >= 700, "cycles = {}", cpu.cycles);
    assert!(cpu.cycles <= 720, "cycles = {}", cpu.cycles);
}

#[test]
fn invalid_opcode_faults() {
    let mut mem = Memory::new();
    mem.load(0x4000, &[0xC7]); // rst 0x00 is not a Rabbit restart
    let mut cpu = Cpu::new();
    cpu.regs.pc = 0x4000;
    let err = cpu.step(&mut mem, &mut NullIo).unwrap_err();
    assert_eq!(
        err,
        rabbit::Fault::InvalidOpcode {
            pc: 0x4000,
            opcode: 0xC7
        }
    );
}

#[test]
fn rst_pushes_and_vectors() {
    // Install a tiny handler at 0x28 that sets b and returns.
    let src = "org 0x28\n ld b, 0x99\n ret\n org 0x4000\n rst 0x28\n halt";
    let image = assemble(src).unwrap();
    let mut mem = Memory::new();
    image.load_into(&mut mem);
    let mut cpu = Cpu::new();
    cpu.mmu.segsize = 0xD8;
    cpu.mmu.dataseg = 0x78;
    cpu.mmu.stackseg = 0x78;
    cpu.regs.sp = 0xDFF0;
    cpu.regs.pc = 0x4000;
    cpu.run(&mut mem, &mut NullIo, 10_000).unwrap();
    assert!(cpu.halted);
    assert_eq!(cpu.regs.b, 0x99);
}
