//! The cycle profiler must attribute every retired cycle, agree between
//! the two execution engines, and produce byte-identical reports across
//! runs.

use rabbit::{assemble, Cpu, Engine, Memory, NullIo, SymbolTable};

/// A program with a two-level call tree: main calls `square` in a loop,
/// `square` calls `mul16`.
const PROGRAM: &str = "        org 0x4000\n\
     start:  ld sp, 0xDFF0\n\
             ld hl, 0\n\
             ld b, 12\n\
     again:  push bc\n\
             call square\n\
             pop bc\n\
             djnz again\n\
             halt\n\
     square: ld bc, 7\n\
             ld de, 7\n\
             call mul16\n\
             ret\n\
     mul16:  mul\n\
             ld h, b\n\
             ld l, c\n\
             ret\n";

/// Points the stack window (0xD000..0xE000 under the default SEGSIZE) at
/// the bottom of SRAM; with the reset mapping it would sit in flash,
/// where pushes are silently dropped.
fn map_stack_to_sram(cpu: &mut Cpu) {
    cpu.mmu.stackseg = 0x73; // 0xD000 + 0x73000 = SRAM_BASE (0x80000)
}

fn run_profiled(engine: Engine) -> (u64, String) {
    let image = assemble(PROGRAM).expect("assembles");
    let mut mem = Memory::new();
    image.load_into(&mut mem);
    let mut cpu = Cpu::new();
    map_stack_to_sram(&mut cpu);
    cpu.regs.pc = 0x4000;
    cpu.enable_profiler();
    cpu.run_on(engine, &mut mem, &mut NullIo, 1_000_000)
        .expect("runs clean");
    assert!(cpu.halted, "program halts");
    let profiler = cpu.take_profiler().expect("profiler attached");
    let symbols = SymbolTable::from_pairs(
        image.symbols.iter().map(|(name, &addr)| (name.as_str(), addr)),
    );
    let report = profiler.report(&symbols);
    (cpu.cycles, report.to_json())
}

#[test]
fn both_engines_attribute_identically() {
    let (cycles_interp, json_interp) = run_profiled(Engine::Interpreter);
    let (cycles_block, json_block) = run_profiled(Engine::BlockCache);
    assert_eq!(cycles_interp, cycles_block, "engines are cycle-exact");
    assert_eq!(json_interp, json_block, "profiles agree across engines");
}

#[test]
fn every_cycle_is_attributed_and_stacks_nest() {
    let image = assemble(PROGRAM).expect("assembles");
    let mut mem = Memory::new();
    image.load_into(&mut mem);
    let mut cpu = Cpu::new();
    map_stack_to_sram(&mut cpu);
    cpu.regs.pc = 0x4000;
    cpu.enable_profiler();
    cpu.run_on(Engine::BlockCache, &mut mem, &mut NullIo, 1_000_000)
        .expect("runs clean");
    assert!(cpu.halted, "program halts");
    let halted_at = cpu.cycles;
    let profiler = cpu.take_profiler().expect("profiler attached");
    let symbols = SymbolTable::from_pairs(
        image.symbols.iter().map(|(name, &addr)| (name.as_str(), addr)),
    );
    let report = profiler.report(&symbols);

    // Everything the CPU retired is in the profile, and every PC has a
    // label (the whole program is assembled from labeled source).
    assert_eq!(report.total, halted_at, "no cycles lost");
    assert_eq!(report.attributed, report.total, "fully labeled source");
    assert!((report.attributed_fraction() - 1.0).abs() < f64::EPSILON);

    // The call tree shows up as nested collapsed stacks.
    let collapsed = report.collapsed();
    assert!(
        collapsed.contains("start;square;mul16 "),
        "two-level nesting recorded:\n{collapsed}"
    );
    // mul16 runs 12 times x (mul 12 + ld 2 + ld 2 + ret 8) = 288 cycles.
    let mul_row = report
        .rows
        .iter()
        .find(|r| r.symbol == "mul16")
        .expect("mul16 attributed");
    assert_eq!(mul_row.cycles, 12 * 24);
}

#[test]
fn disabled_profiler_changes_nothing() {
    let image = assemble(PROGRAM).expect("assembles");
    let run = |profile: bool| {
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut cpu = Cpu::new();
        map_stack_to_sram(&mut cpu);
        cpu.regs.pc = 0x4000;
        if profile {
            cpu.enable_profiler();
        }
        cpu.run_on(Engine::BlockCache, &mut mem, &mut NullIo, 1_000_000)
            .expect("runs clean");
        (cpu.cycles, cpu.instructions, cpu.regs.hl())
    };
    assert_eq!(run(false), run(true), "profiling is observation only");
}
