//! Interrupt delivery tests mirroring the paper's §5.1: a serial-style
//! device raises an interrupt; the CPU vectors into an ISR registered in
//! root memory, and `ipset`/`ipres`/`reti` manage priority.

use rabbit::{assemble, Cpu, Interrupt, IoSpace, Memory};

/// A one-shot device: asserts one interrupt after a programmed number of
/// cycles, offers a data register at port 0xC0.
struct OneShot {
    after: u64,
    elapsed: u64,
    pending: bool,
    fired: bool,
    data: u8,
    reads: Vec<u8>,
}

impl OneShot {
    fn new(after: u64, data: u8) -> OneShot {
        OneShot {
            after,
            elapsed: 0,
            pending: false,
            fired: false,
            data,
            reads: Vec::new(),
        }
    }
}

impl IoSpace for OneShot {
    fn io_read(&mut self, port: u16, _external: bool) -> u8 {
        if port == 0xC0 {
            self.reads.push(self.data);
            self.data
        } else {
            0xFF
        }
    }

    fn io_write(&mut self, _port: u16, _value: u8, _external: bool) {}

    fn pending_interrupt(&mut self) -> Option<Interrupt> {
        self.pending.then_some(Interrupt {
            priority: 1,
            vector: 0x0100,
        })
    }

    fn acknowledge_interrupt(&mut self, _vector: u16) {
        self.pending = false;
    }

    fn tick(&mut self, cycles: u64) {
        self.elapsed += cycles;
        if !self.fired && self.elapsed >= self.after {
            self.fired = true;
            self.pending = true;
        }
    }
}

fn machine(src: &str) -> (Cpu, Memory) {
    let image = assemble(src).expect("assembles");
    let mut mem = Memory::new();
    image.load_into(&mut mem);
    let mut cpu = Cpu::new();
    cpu.mmu.segsize = 0xD8;
    cpu.mmu.dataseg = 0x78;
    cpu.mmu.stackseg = 0x78;
    cpu.regs.sp = 0xDFF0;
    cpu.regs.pc = 0x4000;
    (cpu, mem)
}

#[test]
fn isr_runs_and_main_loop_resumes() {
    // Main loop spins incrementing HL; ISR reads the serial data register
    // into B (ioi-prefixed), then reti.
    let src = "\
        org 0x0100\n\
        push af\n\
        ioi ld a, (0xC0)\n\
        ld b, a\n\
        pop af\n\
        reti\n\
        org 0x4000\n\
        ld hl, 0\n\
 spin:  inc hl\n\
        ld a, b\n\
        cp 0x5A\n\
        jr nz, spin\n\
        halt\n";
    let (mut cpu, mut mem) = machine(src);
    let mut dev = OneShot::new(200, 0x5A);
    cpu.run(&mut mem, &mut dev, 1_000_000).expect("no fault");
    assert!(cpu.halted, "main loop saw the ISR's result and halted");
    assert_eq!(cpu.regs.b, 0x5A);
    assert_eq!(dev.reads, vec![0x5A], "ISR read the data register once");
    assert!(cpu.regs.hl() > 0, "main loop actually spun");
    assert_eq!(cpu.priority(), 0, "reti restored the priority");
}

#[test]
fn masked_interrupts_wait_for_ipres() {
    // Main raises its own priority with ipset 3, spins a while, lowers it
    // with ipres; only then may the ISR run.
    let src = "\
        org 0x0100\n\
        ld b, 1\n\
        reti\n\
        org 0x4000\n\
        ipset 3\n\
        ld b, 0\n\
        ld hl, 0\n\
 spin:  inc hl\n\
        ld a, h\n\
        cp 2\n\
        jr nz, spin\n\
        ld c, b\n\
        ipres\n\
 wait:  ld a, b\n\
        or a\n\
        jr z, wait\n\
        halt\n";
    let (mut cpu, mut mem) = machine(src);
    let mut dev = OneShot::new(50, 0);
    cpu.run(&mut mem, &mut dev, 10_000_000).expect("no fault");
    assert!(cpu.halted);
    assert_eq!(cpu.regs.c, 0, "ISR did not run while masked");
    assert_eq!(cpu.regs.b, 1, "ISR ran after ipres");
}

#[test]
fn halt_wakes_on_interrupt() {
    let src = "\
        org 0x0100\n\
        ld b, 0x77\n\
        reti\n\
        org 0x4000\n\
        halt\n\
        ld c, b\n\
        halt\n";
    let (mut cpu, mut mem) = machine(src);
    let mut dev = OneShot::new(100, 0);
    // First run reaches halt; the device then wakes it.
    let mut guard = 0;
    while guard < 100_000 {
        cpu.step(&mut mem, &mut dev).expect("no fault");
        guard += 1;
        if cpu.regs.c == 0x77 && cpu.halted {
            break;
        }
    }
    assert_eq!(cpu.regs.c, 0x77, "execution continued past the first halt");
}
