//! The firmware memory-map convention shared by every loader in the repo.
//!
//! Dynamic C places root code at [`CODE_ORG`], root data at
//! [`ROOT_DATA_ORG`] (reached through the data segment, which the reset
//! configuration points at SRAM), and xmem sections in the `XPC` window
//! at [`XMEM_DATA_ORG`] on the page [`XMEM_XPC`] selects. Both
//! `rmc2000::Board::load` and the `dcc` test harness load images with
//! [`load_phys`]; keeping one definition here is what guarantees that a
//! program the compiler harness runs behaves identically on the board
//! model.

/// Root code origin (flash).
pub const CODE_ORG: u16 = 0x4000;
/// Root data origin; the data segment maps it onto SRAM.
pub const ROOT_DATA_ORG: u16 = 0x8000;
/// Start of the `XPC` window.
pub const XMEM_DATA_ORG: u16 = 0xE000;
/// `XPC` page the firmware convention selects for xmem data.
pub const XMEM_XPC: u8 = 0x76;
/// `DATASEG` reset value: logical `0x8000` → physical `0x80000` (SRAM).
pub const DATASEG_PAGE: u8 = 0x78;
/// `STACKSEG` reset value (stack backed by the same SRAM bank).
pub const STACKSEG_PAGE: u8 = 0x78;
/// `SEGSIZE` reset value: data segment at `0x8000`, stack at `0xD000`.
pub const SEGSIZE_RESET: u8 = 0xD8;
/// Initial stack pointer.
pub const SP_RESET: u16 = 0xDFF0;

/// Maps a logical firmware address to the physical address a loader
/// writes: root code below [`ROOT_DATA_ORG`] sits in flash at its own
/// address, data at `0x8000..0xE000` lands in SRAM through the
/// data-segment mapping, and xmem-window sections land on the page
/// [`XMEM_XPC`] selects.
pub fn load_phys(addr: u16) -> u32 {
    if addr >= XMEM_DATA_ORG {
        u32::from(addr) + u32::from(XMEM_XPC) * 0x1000
    } else if addr >= ROOT_DATA_ORG {
        u32::from(addr) + u32::from(DATASEG_PAGE) * 0x1000
    } else {
        u32::from(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_phys_regions() {
        assert_eq!(load_phys(0x4000), 0x4000, "root code loads in place");
        assert_eq!(load_phys(0x8000), 0x80000, "root data lands in SRAM");
        assert_eq!(
            load_phys(0xDFFF),
            0x8_5FFF,
            "stack region shares the SRAM bank"
        );
        assert_eq!(load_phys(0xE000), 0xE000 + 0x76 * 0x1000, "xmem window");
    }

    #[test]
    fn dataseg_maps_root_data_onto_sram() {
        // The MMU translation with the reset DATASEG must agree with the
        // loader: logical 0x8000 and load_phys(0x8000) are the same byte.
        let mut mmu = crate::mem::Mmu::new();
        mmu.segsize = SEGSIZE_RESET;
        mmu.dataseg = DATASEG_PAGE;
        mmu.stackseg = STACKSEG_PAGE;
        assert_eq!(mmu.translate(0x8000, XMEM_XPC), load_phys(0x8000));
        assert_eq!(mmu.translate(0xE000, XMEM_XPC), load_phys(0xE000));
    }
}
