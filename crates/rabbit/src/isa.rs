//! The instruction set reference: every opcode this toolchain (assembler,
//! interpreter, disassembler) agrees on, with cycle costs.
//!
//! The map is **Rabbit-flavoured Z80**: the Z80 core the Rabbit 2000
//! keeps, plus the Rabbit's replacements in the slots Z80 freed up. Where
//! this model takes a minor encoding liberty versus the factory silicon
//! it is noted; internal consistency across the three tools is what the
//! experiments rely on, and `tests/roundtrip.rs` enforces it
//! instruction by instruction.
//!
//! # Unprefixed opcodes
//!
//! | opcode | instruction | cycles | notes |
//! |---|---|---|---|
//! | `00` | `nop` | 2 | |
//! | `01/11/21/31 nn` | `ld bc/de/hl/sp, nn` | 6 | |
//! | `02/12` | `ld (bc)/(de), a` | 7 | |
//! | `0A/1A` | `ld a, (bc)/(de)` | 6 | |
//! | `03/13/23/33` | `inc ss` | 2 | |
//! | `0B/1B/2B/3B` | `dec ss` | 2 | |
//! | `04..3C` | `inc r` / `inc (hl)` | 2 / 8 | |
//! | `05..3D` | `dec r` / `dec (hl)` | 2 / 8 | |
//! | `06..3E n` | `ld r, n` / `ld (hl), n` | 4 / 7 | |
//! | `07/0F/17/1F` | `rlca/rrca/rla/rra` | 2 | |
//! | `08` | `ex af, af'` | 2 | |
//! | `09/19/29/39` | `add hl, ss` | 2 | |
//! | `10 e` | `djnz e` | 5 | |
//! | `18 e` | `jr e` | 5 | |
//! | `20/28/30/38 e` | `jr nz/z/nc/c, e` | 5 | |
//! | `22/2A nn` | `ld (nn), hl` / `ld hl, (nn)` | 13 / 11 | |
//! | `32/3A nn` | `ld (nn), a` / `ld a, (nn)` | 10 / 9 | |
//! | `27 d` | `add sp, d` | 4 | Rabbit (replaces Z80 `daa`) |
//! | `2F/37/3F` | `cpl/scf/ccf` | 2 | |
//! | `40..7F` | `ld r, r'` (incl. `(hl)` forms) | 2 / 5 / 6 | `76` = `halt` (2) |
//! | `80..BF` | `add/adc/sub/sbc/and/xor/or/cp a, r` | 2 / 5 | `(hl)` form 5 |
//! | `C0..F8` | `ret cc` | 8 taken / 2 not | |
//! | `C1/D1/E1/F1` | `pop qq` | 7 | |
//! | `C5/D5/E5/F5` | `push qq` | 10 | |
//! | `C2..FA nn` | `jp cc, nn` | 7 | |
//! | `C3 nn` | `jp nn` | 7 | |
//! | `C6..FE n` | ALU `a, n` | 4 | |
//! | `C4 n` | `ld hl, (sp+n)` | 9 | Rabbit (replaces `call nz`) |
//! | `D4 n` | `ld (sp+n), hl` | 11 | Rabbit |
//! | `CC` | `bool hl` | 2 | Rabbit |
//! | `DC/EC` | `and/or hl, de` | 2 | Rabbit |
//! | `FC` | `rr hl` | 2 | Rabbit |
//! | `F3/FB` | `rl de` / `rr de` | 2 | Rabbit (replace `di`/`ei`) |
//! | `F7` | `mul` (`hl:bc = bc × de`, signed) | 12 | Rabbit |
//! | `C9` | `ret` | 8 | |
//! | `CD nn` | `call nn` | 12 | conditional calls dropped, as on the Rabbit |
//! | `D7/DF/E7/EF/FF` | `rst 10/18/20/28/38` | 10 | the Rabbit's five restarts |
//! | `D9` | `exx` | 2 | |
//! | `E3` | `ex (sp), hl` | 15 | |
//! | `E9` | `jp (hl)` | 4 | |
//! | `EB` | `ex de, hl` | 2 | |
//! | `F9` | `ld sp, hl` | 2 | |
//! | `D3` | `ioi` prefix | 2 | next memory operand → internal I/O |
//! | `DB` | `ioe` prefix | 2 | next memory operand → external I/O |
//!
//! # `CB` prefix
//!
//! Standard Z80 bit operations: `rlc/rrc/rl/rr/sla/sra/srl r` (4; `(hl)`
//! 10), `bit b, r` (4; `(hl)` 7), `res`/`set b, r` (4; `(hl)` 10).
//! `sll` is not implemented (undocumented on the Z80, absent on the
//! Rabbit).
//!
//! # `ED` prefix
//!
//! | opcode | instruction | cycles |
//! |---|---|---|
//! | `42..72` | `sbc hl, ss` | 4 |
//! | `4A..7A` | `adc hl, ss` | 4 |
//! | `43..73 nn` | `ld (nn), ss` | 13 |
//! | `4B..7B nn` | `ld ss, (nn)` | 11 |
//! | `44` | `neg` | 4 |
//! | `4D` | `reti` (pops IP, then returns) | 12 |
//! | `46/56/4E/5E` | `ipset 0/1/2/3` | 4 |
//! | `5D` | `ipres` | 4 |
//! | `67/77` | `ld xpc, a` / `ld a, xpc` | 4 |
//! | `A0/B0/A8/B8` | `ldi/ldir/ldd/lddr` | 10 (+7 per repeat) |
//!
//! # `DD`/`FD` prefixes (IX / IY)
//!
//! `ld ix, nn` (8); `ld ix, (nn)` / `ld (nn), ix` (13/15); `inc/dec ix`
//! (4); `add ix, ss` (4); `inc/dec (ix+d)` (12); `ld (ix+d), n` (11);
//! `ld r, (ix+d)` (9); `ld (ix+d), r` (10); ALU `a, (ix+d)` (9);
//! `push ix` (12); `pop ix` (9); `ex (sp), ix` (15); `jp (ix)` (6);
//! `ld sp, ix` (4). `DDCB` double-prefixed bit operations are not
//! implemented (unused by this repository's code generators).
//!
//! # Interrupts
//!
//! A device (`crate::IoSpace`) presents `(priority, vector)`. Between
//! instructions, if `priority > IP & 3`, the CPU pushes `PC`, performs
//! `ipset priority`, and jumps to the vector (13 cycles). `reti` restores
//! the priority and returns. `IP` holds four stacked 2-bit priorities, as
//! on the Rabbit.
//!
//! # Fidelity notes
//!
//! * Cycle costs follow the Rabbit 2000 pattern (2-clock register
//!   operations, memory adders); a few values are rounded. Every
//!   experiment in this repository compares *ratios* measured on this one
//!   table, which keeps those comparisons exact.
//! * `mul` is signed 16×16→32, as on the Rabbit.
//! * The paper-relevant Rabbit extras (`ioi`/`ioe`, `ipset`/`ipres`,
//!   `xpc` moves, `bool`, 16-bit logic) are implemented; `ldp` physical
//!   loads and `lcall/lret` long calls are not — code reaches past 64 KiB
//!   through the XPC window instead, which is how the harnesses map
//!   extended data.
