//! The internal/external I/O space and interrupt request interface.
//!
//! The Rabbit 2000 has no Z80-style `in`/`out` instructions; instead the
//! `ioi` and `ioe` prefixes redirect the memory operand of the following
//! instruction into the internal or external I/O space (the paper's
//! `WrPortI(SADR, ...)` calls compile to `ioi ld (mn),a`). Peripherals
//! implement [`IoSpace`]; the CPU consults it for prefixed accesses and
//! polls it for interrupt requests between instructions.

/// Well-known internal I/O port numbers used by this model.
///
/// The numbering follows the Rabbit 2000 register map where we model the
/// corresponding peripheral and is otherwise stable-but-arbitrary.
pub mod ports {
    /// `STACKSEG` MMU register.
    pub const STACKSEG: u16 = 0x11;
    /// `DATASEG` MMU register.
    pub const DATASEG: u16 = 0x12;
    /// `SEGSIZE` MMU register.
    pub const SEGSIZE: u16 = 0x13;
    /// Serial port A data register (`SADR`).
    pub const SADR: u16 = 0xC0;
    /// Serial port A status register (`SASR`).
    pub const SASR: u16 = 0xC3;
    /// Serial port A control register (`SACR`).
    pub const SACR: u16 = 0xC4;
    /// Interrupt-0 control register (`I0CR`).
    pub const I0CR: u16 = 0x98;
    /// Timer A control register.
    pub const TACR: u16 = 0xA0;
    /// Real-time clock, low byte first; reading latches the count.
    pub const RTC0: u16 = 0x02;
}

/// An interrupt request presented to the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupt {
    /// Priority 1..=3; the CPU takes the request only when this exceeds its
    /// current interrupt priority.
    pub priority: u8,
    /// Logical address of the service routine.
    pub vector: u16,
}

/// The bus of I/O peripherals visible to a [`crate::Cpu`].
pub trait IoSpace {
    /// Reads a byte from an I/O port. `external` is true for `ioe`-prefixed
    /// accesses (the external I/O strobe).
    fn io_read(&mut self, port: u16, external: bool) -> u8;

    /// Writes a byte to an I/O port.
    fn io_write(&mut self, port: u16, value: u8, external: bool);

    /// Returns the highest-priority pending interrupt, if any. The request
    /// must stay pending until acknowledged.
    fn pending_interrupt(&mut self) -> Option<Interrupt> {
        None
    }

    /// Notifies the device that `vector`'s request was accepted.
    fn acknowledge_interrupt(&mut self, _vector: u16) {}

    /// Advances device time by `cycles` CPU clocks.
    fn tick(&mut self, _cycles: u64) {}
}

/// An I/O space with no peripherals: reads float high, writes vanish.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullIo;

impl IoSpace for NullIo {
    fn io_read(&mut self, _port: u16, _external: bool) -> u8 {
        0xFF
    }

    fn io_write(&mut self, _port: u16, _value: u8, _external: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_io_floats_high() {
        let mut io = NullIo;
        assert_eq!(io.io_read(0x1234, false), 0xFF);
        io.io_write(0, 0, true);
        assert_eq!(io.pending_interrupt(), None);
    }
}
