//! The internal/external I/O space, the device bus, and the interrupt
//! request interface.
//!
//! The Rabbit 2000 has no Z80-style `in`/`out` instructions; instead the
//! `ioi` and `ioe` prefixes redirect the memory operand of the following
//! instruction into the internal or external I/O space (the paper's
//! `WrPortI(SADR, ...)` calls compile to `ioi ld (mn),a`). Peripherals
//! implement [`IoSpace`]; the CPU consults it for prefixed accesses and
//! polls it for interrupt requests between instructions.
//!
//! [`IoSpace`] is the CPU-facing contract. Real boards are assembled from
//! a [`Bus`] of [`Device`]s: each device claims port ranges in the
//! internal and/or external space (the external space doubles as the
//! memory-mapped peripheral bus — a claim there is a window of
//! `ioe`-addressable bytes), receives batched `tick(cycles)` time, and
//! may raise a prioritised interrupt that the bus arbitrates.

use std::any::Any;

/// Well-known internal I/O port numbers used by this model.
///
/// The numbering follows the Rabbit 2000 register map where we model the
/// corresponding peripheral and is otherwise stable-but-arbitrary.
pub mod ports {
    /// `STACKSEG` MMU register.
    pub const STACKSEG: u16 = 0x11;
    /// `DATASEG` MMU register.
    pub const DATASEG: u16 = 0x12;
    /// `SEGSIZE` MMU register.
    pub const SEGSIZE: u16 = 0x13;
    /// Serial port A data register (`SADR`).
    pub const SADR: u16 = 0xC0;
    /// Serial port A status register (`SASR`).
    pub const SASR: u16 = 0xC3;
    /// Serial port A control register (`SACR`).
    pub const SACR: u16 = 0xC4;
    /// Interrupt-0 control register (`I0CR`).
    pub const I0CR: u16 = 0x98;
    /// Timer A control register.
    pub const TACR: u16 = 0xA0;
    /// Real-time clock, low byte first; reading latches the count.
    pub const RTC0: u16 = 0x02;
}

/// An interrupt request presented to the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupt {
    /// Priority 1..=3; the CPU takes the request only when this exceeds its
    /// current interrupt priority.
    pub priority: u8,
    /// Logical address of the service routine.
    pub vector: u16,
}

/// The bus of I/O peripherals visible to a [`crate::Cpu`].
pub trait IoSpace {
    /// Reads a byte from an I/O port. `external` is true for `ioe`-prefixed
    /// accesses (the external I/O strobe).
    fn io_read(&mut self, port: u16, external: bool) -> u8;

    /// Writes a byte to an I/O port.
    fn io_write(&mut self, port: u16, value: u8, external: bool);

    /// Returns the highest-priority pending interrupt, if any. The request
    /// must stay pending until acknowledged.
    fn pending_interrupt(&mut self) -> Option<Interrupt> {
        None
    }

    /// Notifies the device that `vector`'s request was accepted.
    fn acknowledge_interrupt(&mut self, _vector: u16) {}

    /// Advances device time by `cycles` CPU clocks.
    fn tick(&mut self, _cycles: u64) {}
}

/// An I/O space with no peripherals: reads float high, writes vanish.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullIo;

impl IoSpace for NullIo {
    fn io_read(&mut self, _port: u16, _external: bool) -> u8 {
        0xFF
    }

    fn io_write(&mut self, _port: u16, _value: u8, _external: bool) {}
}

/// An inclusive range of ports claimed by a [`Device`] in one of the two
/// I/O spaces.
///
/// Internal claims are register banks reached with `ioi`; external claims
/// are addresses on the external peripheral bus reached with `ioe`. A
/// multi-byte external claim is a *memory-mapped window*: the guest moves
/// data through it with ordinary load/store loops under the `ioe` prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortRange {
    /// First claimed port.
    pub start: u16,
    /// Last claimed port (inclusive).
    pub end: u16,
    /// True for the external (`ioe`) space.
    pub external: bool,
}

impl PortRange {
    /// A claim in the internal (`ioi`) register space.
    pub fn internal(start: u16, end: u16) -> PortRange {
        PortRange {
            start,
            end,
            external: false,
        }
    }

    /// A claim in the external (`ioe`) space — a memory-mapped window
    /// when it spans more than one byte.
    pub fn external(start: u16, end: u16) -> PortRange {
        PortRange {
            start,
            end,
            external: true,
        }
    }

    /// Whether this claim covers `port` in the given space.
    pub fn contains(&self, port: u16, external: bool) -> bool {
        self.external == external && (self.start..=self.end).contains(&port)
    }
}

/// A peripheral that lives on a [`Bus`].
///
/// Devices declare their port claims once at attach time, receive time in
/// batches through [`Device::tick`], and surface interrupt requests that
/// the bus arbitrates by priority. `as_any`/`as_any_mut` give boards
/// typed access to an attached device (see [`Bus::device`]).
pub trait Device: Any {
    /// Stable, short device name (used in diagnostics).
    fn name(&self) -> &'static str;

    /// The port ranges this device claims; sampled once when attached.
    fn claims(&self) -> Vec<PortRange>;

    /// Reads a claimed port.
    fn read(&mut self, port: u16, external: bool) -> u8;

    /// Writes a claimed port.
    fn write(&mut self, port: u16, value: u8, external: bool);

    /// Advances device time. The bus batches cycles (see
    /// [`Device::tick_quantum`]); totals are exact at every port access
    /// and interrupt poll, so chunking is unobservable to a correct
    /// device (one whose `tick` is additive: `tick(a); tick(b)` ≡
    /// `tick(a + b)`).
    fn tick(&mut self, _cycles: u64) {}

    /// Minimum batch size, in cycles, for [`Device::tick`] delivery. The
    /// bus accumulates cycles per device and delivers them once the
    /// accumulator reaches this quantum — or earlier, when *any* device
    /// port is accessed or interrupts are polled (a full flush keeps
    /// device time exact at every observation point). A quantum of 1
    /// (the default) delivers on every bus tick.
    fn tick_quantum(&self) -> u64 {
        1
    }

    /// Cycles of device time until this device's next *observable event*
    /// — a change it makes on its own (raising or changing an interrupt
    /// request, interacting with the outside world) without any CPU
    /// access, measured from the device's current (fully delivered)
    /// time. `None` (the default) means "no event will happen however
    /// long time advances"; free-running state that is only visible when
    /// the CPU reads a port (an RTC counter, say) does *not* count as an
    /// event, because an additive `tick` makes the intermediate values
    /// unobservable.
    ///
    /// The deadline is a contract with [`Bus::next_deadline`]: it must be
    /// a *lower bound* — the device may report an event earlier than it
    /// happens (the scheduler just wakes up, sees nothing pending, and
    /// asks again), but never later. Returning a conservative bound is
    /// always safe; returning `None` while an autonomous event is coming
    /// is not.
    fn next_deadline(&self) -> Option<u64> {
        None
    }

    /// This device's pending interrupt request, if any. Must stay pending
    /// until acknowledged or the requesting condition clears.
    fn pending(&self) -> Option<Interrupt> {
        None
    }

    /// The CPU accepted this device's request for `vector`.
    fn acknowledge(&mut self, _vector: u16) {}

    /// Upcast for typed access through [`Bus::device`].
    fn as_any(&self) -> &dyn Any;

    /// Upcast for typed access through [`Bus::device_mut`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Handle to a device attached to a [`Bus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceId(usize);

struct Slot {
    dev: Box<dyn Device>,
    claims: Vec<PortRange>,
    /// Cycles ticked into the bus but not yet delivered to the device.
    pending: u64,
    quantum: u64,
}

/// A registry of [`Device`]s behind one [`IoSpace`]: port-range routing,
/// per-device tick batching, and prioritised interrupt arbitration.
///
/// Determinism contract: before any port access, interrupt poll, or
/// acknowledge, every device has received the exact total of cycles
/// ticked so far (`flush`). Because the `ioi`/`ioe` prefixes are barriers
/// in the block-caching engine, device state observed by the guest is
/// byte-identical under both execution engines.
#[derive(Default)]
pub struct Bus {
    slots: Vec<Slot>,
    unclaimed_writes: Vec<(u16, u8)>,
}

impl Bus {
    /// An empty bus: reads float high, writes are logged.
    pub fn new() -> Bus {
        Bus::default()
    }

    /// Attaches a device; its port claims are sampled now and fixed for
    /// the bus's lifetime. Arbitration ties (equal priority) go to the
    /// earliest-attached device.
    ///
    /// # Panics
    ///
    /// If one of the device's claims overlaps a claim of an
    /// already-attached device in the same space.
    pub fn attach(&mut self, dev: Box<dyn Device>) -> DeviceId {
        let claims = dev.claims();
        for slot in &self.slots {
            for a in &claims {
                for b in &slot.claims {
                    assert!(
                        a.external != b.external || a.start > b.end || a.end < b.start,
                        "I/O claim {a:?} of {:?} overlaps {b:?} of {:?}",
                        dev.name(),
                        slot.dev.name(),
                    );
                }
            }
        }
        let quantum = dev.tick_quantum().max(1);
        self.slots.push(Slot {
            dev,
            claims,
            pending: 0,
            quantum,
        });
        DeviceId(self.slots.len() - 1)
    }

    /// Typed shared access to an attached device.
    ///
    /// # Panics
    ///
    /// If `T` is not the concrete type of the device behind `id`.
    pub fn device<T: Device>(&self, id: DeviceId) -> &T {
        self.slots[id.0]
            .dev
            .as_any()
            .downcast_ref::<T>()
            .expect("device type mismatch")
    }

    /// Typed exclusive access to an attached device. Pending ticks are
    /// flushed first so the device is observed at the current time.
    ///
    /// # Panics
    ///
    /// If `T` is not the concrete type of the device behind `id`.
    pub fn device_mut<T: Device>(&mut self, id: DeviceId) -> &mut T {
        self.flush();
        self.slots[id.0]
            .dev
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("device type mismatch")
    }

    /// Names of the attached devices, in attach (= arbitration-tie) order.
    pub fn device_names(&self) -> Vec<&'static str> {
        self.slots.iter().map(|s| s.dev.name()).collect()
    }

    /// Writes to ports no device claims (visible for tests).
    pub fn unclaimed_writes(&self) -> &[(u16, u8)] {
        &self.unclaimed_writes
    }

    /// Delivers all accumulated cycles so every device sits at the exact
    /// current time.
    fn flush(&mut self) {
        for s in &mut self.slots {
            if s.pending > 0 {
                let c = std::mem::take(&mut s.pending);
                s.dev.tick(c);
            }
        }
    }

    /// Advances every device by `cycles` in one batched delivery (any
    /// quantum-deferred cycles are folded in), leaving all devices at the
    /// exact current time — equivalent to `tick(cycles)` followed by a
    /// flush, but with a single `Device::tick` call per device however
    /// large the batch. This is the time-skip path: correct devices have
    /// additive `tick`, so one big delivery is unobservable next to many
    /// small ones.
    pub fn advance(&mut self, cycles: u64) {
        for s in &mut self.slots {
            let c = std::mem::take(&mut s.pending) + cycles;
            if c > 0 {
                s.dev.tick(c);
            }
        }
    }

    /// The event horizon: the soonest [`Device::next_deadline`] over all
    /// attached devices, measured in cycles from now. Pending ticks are
    /// flushed first so every device answers at the exact current time.
    /// `None` means no device will do anything observable on its own.
    pub fn next_deadline(&mut self) -> Option<u64> {
        self.flush();
        self.slots.iter().filter_map(|s| s.dev.next_deadline()).min()
    }

    fn route(&mut self, port: u16, external: bool) -> Option<&mut Slot> {
        self.slots
            .iter_mut()
            .find(|s| s.claims.iter().any(|r| r.contains(port, external)))
    }
}

impl IoSpace for Bus {
    fn io_read(&mut self, port: u16, external: bool) -> u8 {
        self.flush();
        match self.route(port, external) {
            Some(s) => s.dev.read(port, external),
            None => 0xFF,
        }
    }

    fn io_write(&mut self, port: u16, value: u8, external: bool) {
        self.flush();
        match self.route(port, external) {
            Some(s) => s.dev.write(port, value, external),
            None => self.unclaimed_writes.push((port, value)),
        }
    }

    fn pending_interrupt(&mut self) -> Option<Interrupt> {
        self.flush();
        let mut best: Option<Interrupt> = None;
        for s in &self.slots {
            if let Some(req) = s.dev.pending() {
                if best.is_none_or(|b| req.priority & 3 > b.priority & 3) {
                    best = Some(req);
                }
            }
        }
        best
    }

    fn acknowledge_interrupt(&mut self, vector: u16) {
        self.flush();
        // Exactly one source is acknowledged: the first attached device
        // whose pending request carries this vector.
        for s in &mut self.slots {
            if s.dev.pending().is_some_and(|r| r.vector == vector) {
                s.dev.acknowledge(vector);
                return;
            }
        }
    }

    fn tick(&mut self, cycles: u64) {
        for s in &mut self.slots {
            s.pending += cycles;
            if s.pending >= s.quantum {
                let c = std::mem::take(&mut s.pending);
                s.dev.tick(c);
            }
        }
    }
}

impl std::fmt::Debug for Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bus")
            .field("devices", &self.device_names())
            .field("unclaimed_writes", &self.unclaimed_writes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_io_floats_high() {
        let mut io = NullIo;
        assert_eq!(io.io_read(0x1234, false), 0xFF);
        io.io_write(0, 0, true);
        assert_eq!(io.pending_interrupt(), None);
    }

    #[test]
    fn port_range_spaces_are_distinct() {
        let r = PortRange::internal(0x10, 0x1F);
        assert!(r.contains(0x10, false));
        assert!(r.contains(0x1F, false));
        assert!(!r.contains(0x10, true));
        assert!(!r.contains(0x20, false));
    }

    /// A clocked device: raises its interrupt when device time reaches
    /// `fire_at`, and reports the remaining distance as its deadline.
    struct Alarm {
        now: u64,
        fire_at: u64,
        quantum: u64,
    }

    impl Device for Alarm {
        fn name(&self) -> &'static str {
            "alarm"
        }
        fn claims(&self) -> Vec<PortRange> {
            vec![PortRange::internal(0x40, 0x40)]
        }
        fn read(&mut self, _port: u16, _external: bool) -> u8 {
            self.now as u8
        }
        fn write(&mut self, _port: u16, _value: u8, _external: bool) {}
        fn tick(&mut self, cycles: u64) {
            self.now += cycles;
        }
        fn tick_quantum(&self) -> u64 {
            self.quantum
        }
        fn next_deadline(&self) -> Option<u64> {
            self.fire_at.checked_sub(self.now).filter(|d| *d > 0)
        }
        fn pending(&self) -> Option<Interrupt> {
            (self.now >= self.fire_at).then_some(Interrupt {
                priority: 1,
                vector: 0x10,
            })
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn advance_matches_ticks_plus_flush() {
        let mut batched = Bus::new();
        let mut stepped = Bus::new();
        for bus in [&mut batched, &mut stepped] {
            bus.attach(Box::new(Alarm {
                now: 0,
                fire_at: 1000,
                quantum: 64,
            }));
        }
        // Stepwise: 500 ticks of 2 cycles, each followed by an interrupt
        // poll (which flushes). Batched: one advance of the same total.
        for _ in 0..500 {
            stepped.tick(2);
            let _ = stepped.pending_interrupt();
        }
        batched.advance(1000);
        assert_eq!(batched.io_read(0x40, false), stepped.io_read(0x40, false));
        assert_eq!(batched.pending_interrupt(), stepped.pending_interrupt());
        assert!(batched.pending_interrupt().is_some(), "alarm fired");
    }

    #[test]
    fn advance_folds_quantum_deferred_cycles_in() {
        let mut bus = Bus::new();
        bus.attach(Box::new(Alarm {
            now: 0,
            fire_at: 100,
            quantum: 64,
        }));
        bus.tick(10); // below the quantum: deferred, not delivered
        bus.advance(90); // must fold the deferred 10 in: 10 + 90 = 100
        assert!(bus.pending_interrupt().is_some(), "exact total delivered");
    }

    #[test]
    fn next_deadline_takes_the_min_and_flushes_first() {
        let mut bus = Bus::new();
        bus.attach(Box::new(Alarm {
            now: 0,
            fire_at: 300,
            quantum: 64,
        }));
        bus.attach(Box::new(NullDeadline));
        assert_eq!(bus.next_deadline(), Some(300));
        bus.tick(10); // deferred by the quantum...
        assert_eq!(bus.next_deadline(), Some(290), "...but flushed first");
        bus.advance(290);
        assert_eq!(bus.next_deadline(), None, "fired alarms have no deadline");
    }

    /// A device with no autonomous events at all.
    struct NullDeadline;

    impl Device for NullDeadline {
        fn name(&self) -> &'static str {
            "null"
        }
        fn claims(&self) -> Vec<PortRange> {
            vec![]
        }
        fn read(&mut self, _port: u16, _external: bool) -> u8 {
            0xFF
        }
        fn write(&mut self, _port: u16, _value: u8, _external: bool) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
}
