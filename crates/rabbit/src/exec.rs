//! Block-caching execution engine.
//!
//! [`Cpu::run_fast`] is a drop-in replacement for [`Cpu::run`] that decodes
//! straight-line instruction runs into cached [`Block`]s of micro-ops and
//! replays them without re-fetching, re-decoding, or re-translating every
//! byte. It is *cycle-exact and state-exact* with respect to the `step`
//! interpreter — the differential tests in `tests/differential.rs` pin that
//! invariant — with one documented scheduling difference: interrupts are
//! sampled at block boundaries (at most [`BLOCK_CAP`] instructions apart)
//! instead of between every instruction.
//!
//! Design notes:
//!
//! * A block is keyed by `(PC, SEGSIZE, DATASEG, STACKSEG, XPC)` so a
//!   remapped MMU can never replay code decoded under a different mapping.
//! * Blocks end at control transfers, `halt`, `ipset`/`ipres`/`reti`, the
//!   decode cap, or a *barrier*: an instruction the decoder refuses
//!   (`ioi`/`ioe` prefixes, `ld xpc,a`, the `ldir` family, invalid
//!   opcodes). Barriers fall back to one interpreted `step`, so the engine
//!   never changes what executes — only how fast.
//! * Data accesses inside a block translate through a [`SegMap`], the
//!   per-segment translation cache compiled from the MMU registers; the
//!   mapping cannot change mid-block because every instruction that could
//!   change it ends (or falls outside) the block.
//! * Self-modifying code: [`Memory`] records dirty 256-byte pages while
//!   the engine runs. After every store the engine invalidates cached
//!   blocks on dirtied pages, and aborts the current block if its own
//!   pages were hit, resuming interpretation at the next instruction.
//!   Stores to flash are dropped by the memory model and therefore never
//!   invalidate anything.
//! * `io.tick` is batched: one call per block with the summed cycle count.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

use crate::cpu::{Cond, Cpu, Fault};
use crate::io::IoSpace;
use crate::mem::{Memory, SegMap};
use crate::registers::{Flags, Reg16, Reg8, Registers};

/// Maximum number of straight-line instructions decoded into one block.
/// Bounds both interrupt-sampling latency and cycle-budget overshoot.
pub const BLOCK_CAP: usize = 32;

/// Cached blocks are dropped wholesale when the cache grows past this.
const MAX_CACHED_BLOCKS: usize = 1 << 16;

const DD: [Reg16; 4] = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Sp];
const QQ: [Reg16; 4] = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Af];

/// A predecoded micro-op. Operand bytes and branch targets are resolved at
/// decode time; executing a micro-op never touches instruction memory.
#[derive(Debug, Clone, Copy)]
enum Op {
    // -- straight-line (body) ops --
    Nop,
    Ld16(Reg16, u16),
    Ld8Imm(Reg8, u8),
    StIndA(Reg16),
    LdAInd(Reg16),
    Inc16(Reg16),
    Dec16(Reg16),
    Inc8(Reg8),
    Dec8(Reg8),
    IncMhl,
    DecMhl,
    LdMhlImm(u8),
    Rlca,
    Rrca,
    Rla,
    Rra,
    ExAf,
    AddHl(Reg16),
    AddIdx(Reg16, Reg16),
    StAbs16(u16, Reg16),
    LdAbs16(Reg16, u16),
    StAbsA(u16),
    LdAbsA(u16),
    AddSp(i8),
    Cpl,
    Scf,
    Ccf,
    LdRR(Reg8, Reg8),
    LdRMhl(Reg8),
    StMhlR(Reg8),
    Alu(u8, Reg8),
    AluMhl(u8),
    AluImm(u8, u8),
    Pop(Reg16),
    Push(Reg16),
    LdHlSpN(u8),
    StSpNHl(u8),
    BoolHl,
    AndHlDe,
    OrHlDe,
    RrHl,
    RlDe,
    RrDe,
    Mul,
    Exx,
    ExDeHl,
    ExSp(Reg16),
    LdSp(Reg16),
    CbRot(u8, Reg8),
    CbRotMhl(u8),
    CbBit(u8, Reg8),
    CbBitMhl(u8),
    CbRes(u8, Reg8),
    CbResMhl(u8),
    CbSet(u8, Reg8),
    CbSetMhl(u8),
    Sbc16(Reg16),
    Adc16(Reg16),
    Neg,
    LdAXpc,
    IncMidx(Reg16, i8),
    DecMidx(Reg16, i8),
    StMidxImm(Reg16, i8, u8),
    LdRMidx(Reg8, Reg16, i8),
    StMidxR(Reg16, i8, Reg8),
    AluMidx(u8, Reg16, i8),
    // -- block-terminating ops --
    Jp(u16),
    JpCc(Cond, u16),
    Jr(u16),
    JrCc(Cond, u16),
    Djnz(u16),
    Call(u16),
    Rst(u16),
    Ret,
    RetCc(Cond),
    Reti,
    JpHl,
    JpIdx(Reg16),
    Halt,
    Ipset(u8),
    Ipres,
}

/// A body op plus its fixed cycle cost and the logical PC of the *next*
/// instruction (the resume point if the block aborts after this op).
#[derive(Debug, Clone, Copy)]
struct DecOp {
    op: Op,
    cycles: u8,
    next_pc: u16,
}

/// A decoded straight-line run.
#[derive(Debug)]
struct Block {
    body: Vec<DecOp>,
    /// Terminating op and the logical PC following it (the fall-through
    /// target). `None` when the block ended at a barrier or the cap.
    term: Option<(Op, u16)>,
    /// Resume PC when there is no terminator.
    end_pc: u16,
    /// Distinct 256-byte physical pages the decoded bytes came from;
    /// a store to any of them invalidates the block.
    pages: Vec<u16>,
}

enum Dec {
    Body(Op, u8),
    Term(Op),
    Barrier,
}

/// Decode-time instruction-stream reader: translates through the block's
/// [`SegMap`] snapshot and records every physical page it touches.
struct Cursor<'a> {
    pc: u16,
    map: &'a SegMap,
    mem: &'a Memory,
    pages: &'a mut Vec<u16>,
}

impl Cursor<'_> {
    fn take8(&mut self) -> u8 {
        let phys = self.map.translate(self.pc);
        let page = (phys >> 8) as u16;
        if !self.pages.contains(&page) {
            self.pages.push(page);
        }
        self.pc = self.pc.wrapping_add(1);
        self.mem.read_phys(phys)
    }

    fn take16(&mut self) -> u16 {
        let lo = self.take8();
        let hi = self.take8();
        u16::from_le_bytes([lo, hi])
    }
}

fn decode_block(map: &SegMap, mem: &Memory, start_pc: u16) -> Block {
    let mut pages = Vec::new();
    let mut body = Vec::new();
    let mut term = None;
    let mut pc = start_pc;
    while body.len() < BLOCK_CAP {
        let mut cur = Cursor {
            pc,
            map,
            mem,
            pages: &mut pages,
        };
        match decode_one(&mut cur) {
            Dec::Barrier => break,
            Dec::Body(op, cycles) => {
                body.push(DecOp {
                    op,
                    cycles,
                    next_pc: cur.pc,
                });
                pc = cur.pc;
            }
            Dec::Term(op) => {
                term = Some((op, cur.pc));
                break;
            }
        }
    }
    Block {
        body,
        term,
        end_pc: pc,
        pages,
    }
}

#[allow(clippy::too_many_lines)]
fn decode_one(cur: &mut Cursor<'_>) -> Dec {
    let op = cur.take8();
    match op {
        0x00 => Dec::Body(Op::Nop, 2),
        0x01 | 0x11 | 0x21 | 0x31 => {
            let v = cur.take16();
            Dec::Body(Op::Ld16(DD[usize::from(op >> 4)], v), 6)
        }
        0x02 => Dec::Body(Op::StIndA(Reg16::Bc), 7),
        0x12 => Dec::Body(Op::StIndA(Reg16::De), 7),
        0x0A => Dec::Body(Op::LdAInd(Reg16::Bc), 6),
        0x1A => Dec::Body(Op::LdAInd(Reg16::De), 6),
        0x03 | 0x13 | 0x23 | 0x33 => Dec::Body(Op::Inc16(DD[usize::from(op >> 4)]), 2),
        0x0B | 0x1B | 0x2B | 0x3B => Dec::Body(Op::Dec16(DD[usize::from(op >> 4)]), 2),
        0x04 | 0x0C | 0x14 | 0x1C | 0x24 | 0x2C | 0x3C => {
            Dec::Body(Op::Inc8(Reg8::from_code(op >> 3).expect("inc r")), 2)
        }
        0x34 => Dec::Body(Op::IncMhl, 8),
        0x05 | 0x0D | 0x15 | 0x1D | 0x25 | 0x2D | 0x3D => {
            Dec::Body(Op::Dec8(Reg8::from_code(op >> 3).expect("dec r")), 2)
        }
        0x35 => Dec::Body(Op::DecMhl, 8),
        0x06 | 0x0E | 0x16 | 0x1E | 0x26 | 0x2E | 0x3E => {
            let n = cur.take8();
            Dec::Body(Op::Ld8Imm(Reg8::from_code(op >> 3).expect("ld r,n"), n), 4)
        }
        0x36 => {
            let n = cur.take8();
            Dec::Body(Op::LdMhlImm(n), 7)
        }
        0x07 => Dec::Body(Op::Rlca, 2),
        0x0F => Dec::Body(Op::Rrca, 2),
        0x17 => Dec::Body(Op::Rla, 2),
        0x1F => Dec::Body(Op::Rra, 2),
        0x08 => Dec::Body(Op::ExAf, 2),
        0x09 | 0x19 | 0x29 | 0x39 => Dec::Body(Op::AddHl(DD[usize::from(op >> 4)]), 2),
        0x10 => {
            let e = cur.take8() as i8;
            Dec::Term(Op::Djnz(cur.pc.wrapping_add_signed(i16::from(e))))
        }
        0x18 => {
            let e = cur.take8() as i8;
            Dec::Term(Op::Jr(cur.pc.wrapping_add_signed(i16::from(e))))
        }
        0x20 | 0x28 | 0x30 | 0x38 => {
            let e = cur.take8() as i8;
            let cc = Cond::from_code((op >> 3) & 3);
            Dec::Term(Op::JrCc(cc, cur.pc.wrapping_add_signed(i16::from(e))))
        }
        0x22 => {
            let nn = cur.take16();
            Dec::Body(Op::StAbs16(nn, Reg16::Hl), 13)
        }
        0x2A => {
            let nn = cur.take16();
            Dec::Body(Op::LdAbs16(Reg16::Hl, nn), 11)
        }
        0x32 => {
            let nn = cur.take16();
            Dec::Body(Op::StAbsA(nn), 10)
        }
        0x3A => {
            let nn = cur.take16();
            Dec::Body(Op::LdAbsA(nn), 9)
        }
        0x27 => {
            let d = cur.take8() as i8;
            Dec::Body(Op::AddSp(d), 4)
        }
        0x2F => Dec::Body(Op::Cpl, 2),
        0x37 => Dec::Body(Op::Scf, 2),
        0x3F => Dec::Body(Op::Ccf, 2),
        0x76 => Dec::Term(Op::Halt),
        0x40..=0x7F => {
            let dst = (op >> 3) & 7;
            let src = op & 7;
            match (Reg8::from_code(dst), Reg8::from_code(src)) {
                (Some(d), Some(s)) => Dec::Body(Op::LdRR(d, s), 2),
                (Some(d), None) => Dec::Body(Op::LdRMhl(d), 5),
                (None, Some(s)) => Dec::Body(Op::StMhlR(s), 6),
                (None, None) => unreachable!("0x76 handled above"),
            }
        }
        0x80..=0xBF => match Reg8::from_code(op & 7) {
            Some(s) => Dec::Body(Op::Alu(op >> 3 & 7, s), 2),
            None => Dec::Body(Op::AluMhl(op >> 3 & 7), 5),
        },
        0xC0 | 0xC8 | 0xD0 | 0xD8 | 0xE0 | 0xE8 | 0xF0 | 0xF8 => {
            Dec::Term(Op::RetCc(Cond::from_code(op >> 3)))
        }
        0xC1 | 0xD1 | 0xE1 | 0xF1 => Dec::Body(Op::Pop(QQ[usize::from((op >> 4) - 0xC)]), 7),
        0xC5 | 0xD5 | 0xE5 | 0xF5 => Dec::Body(Op::Push(QQ[usize::from((op >> 4) - 0xC)]), 10),
        0xC2 | 0xCA | 0xD2 | 0xDA | 0xE2 | 0xEA | 0xF2 | 0xFA => {
            let nn = cur.take16();
            Dec::Term(Op::JpCc(Cond::from_code(op >> 3), nn))
        }
        0xC3 => {
            let nn = cur.take16();
            Dec::Term(Op::Jp(nn))
        }
        0xC6 | 0xCE | 0xD6 | 0xDE | 0xE6 | 0xEE | 0xF6 | 0xFE => {
            let n = cur.take8();
            Dec::Body(Op::AluImm(op >> 3 & 7, n), 4)
        }
        0xD7 | 0xDF | 0xE7 | 0xEF | 0xFF => Dec::Term(Op::Rst(u16::from(op & 0x38))),
        0xC9 => Dec::Term(Op::Ret),
        0xCD => {
            let nn = cur.take16();
            Dec::Term(Op::Call(nn))
        }
        0xC4 => {
            let n = cur.take8();
            Dec::Body(Op::LdHlSpN(n), 9)
        }
        0xD4 => {
            let n = cur.take8();
            Dec::Body(Op::StSpNHl(n), 11)
        }
        0xCC => Dec::Body(Op::BoolHl, 2),
        0xDC => Dec::Body(Op::AndHlDe, 2),
        0xEC => Dec::Body(Op::OrHlDe, 2),
        0xFC => Dec::Body(Op::RrHl, 2),
        0xF3 => Dec::Body(Op::RlDe, 2),
        0xFB => Dec::Body(Op::RrDe, 2),
        0xF7 => Dec::Body(Op::Mul, 12),
        0xD9 => Dec::Body(Op::Exx, 2),
        0xE3 => Dec::Body(Op::ExSp(Reg16::Hl), 15),
        0xE9 => Dec::Term(Op::JpHl),
        0xEB => Dec::Body(Op::ExDeHl, 2),
        0xF9 => Dec::Body(Op::LdSp(Reg16::Hl), 2),
        0xCB => decode_cb(cur),
        0xED => decode_ed(cur),
        0xDD => decode_idx(cur, Reg16::Ix),
        0xFD => decode_idx(cur, Reg16::Iy),
        // ioi/ioe prefixes and invalid opcodes (incl. the removed
        // rst 0x00/0x08) fall back to the interpreter.
        _ => Dec::Barrier,
    }
}

fn decode_cb(cur: &mut Cursor<'_>) -> Dec {
    let sub = cur.take8();
    let field = (sub >> 3) & 7;
    match (sub >> 6, Reg8::from_code(sub & 7)) {
        (0, Some(r)) => Dec::Body(Op::CbRot(field, r), 4),
        (0, None) => Dec::Body(Op::CbRotMhl(field), 10),
        (1, Some(r)) => Dec::Body(Op::CbBit(field, r), 4),
        (1, None) => Dec::Body(Op::CbBitMhl(field), 7),
        (2, Some(r)) => Dec::Body(Op::CbRes(field, r), 4),
        (2, None) => Dec::Body(Op::CbResMhl(field), 10),
        (_, Some(r)) => Dec::Body(Op::CbSet(field, r), 4),
        (_, None) => Dec::Body(Op::CbSetMhl(field), 10),
    }
}

fn decode_ed(cur: &mut Cursor<'_>) -> Dec {
    let sub = cur.take8();
    match sub {
        0x42 | 0x52 | 0x62 | 0x72 => Dec::Body(Op::Sbc16(DD[usize::from((sub >> 4) - 4)]), 4),
        0x4A | 0x5A | 0x6A | 0x7A => Dec::Body(Op::Adc16(DD[usize::from((sub >> 4) - 4)]), 4),
        0x43 | 0x53 | 0x63 | 0x73 => {
            let nn = cur.take16();
            Dec::Body(Op::StAbs16(nn, DD[usize::from((sub >> 4) - 4)]), 13)
        }
        0x4B | 0x5B | 0x6B | 0x7B => {
            let nn = cur.take16();
            Dec::Body(Op::LdAbs16(DD[usize::from((sub >> 4) - 4)], nn), 11)
        }
        0x44 => Dec::Body(Op::Neg, 4),
        0x4D => Dec::Term(Op::Reti),
        0x46 => Dec::Term(Op::Ipset(0)),
        0x56 => Dec::Term(Op::Ipset(1)),
        0x4E => Dec::Term(Op::Ipset(2)),
        0x5E => Dec::Term(Op::Ipset(3)),
        0x5D => Dec::Term(Op::Ipres),
        0x77 => Dec::Body(Op::LdAXpc, 4),
        // ld xpc,a remaps the fetch window; ldi/ldd/ldir/lddr have
        // data-dependent cycle counts. Both stay interpreted.
        _ => Dec::Barrier,
    }
}

fn decode_idx(cur: &mut Cursor<'_>, idx: Reg16) -> Dec {
    let sub = cur.take8();
    match sub {
        0x21 => {
            let nn = cur.take16();
            Dec::Body(Op::Ld16(idx, nn), 8)
        }
        0x22 => {
            let nn = cur.take16();
            Dec::Body(Op::StAbs16(nn, idx), 15)
        }
        0x2A => {
            let nn = cur.take16();
            Dec::Body(Op::LdAbs16(idx, nn), 13)
        }
        0x23 => Dec::Body(Op::Inc16(idx), 4),
        0x2B => Dec::Body(Op::Dec16(idx), 4),
        0x09 | 0x19 | 0x29 | 0x39 => {
            let ss = match sub >> 4 {
                0 => Reg16::Bc,
                1 => Reg16::De,
                2 => idx,
                _ => Reg16::Sp,
            };
            Dec::Body(Op::AddIdx(idx, ss), 4)
        }
        0x34 => {
            let d = cur.take8() as i8;
            Dec::Body(Op::IncMidx(idx, d), 12)
        }
        0x35 => {
            let d = cur.take8() as i8;
            Dec::Body(Op::DecMidx(idx, d), 12)
        }
        0x36 => {
            let d = cur.take8() as i8;
            let n = cur.take8();
            Dec::Body(Op::StMidxImm(idx, d, n), 11)
        }
        0x46 | 0x4E | 0x56 | 0x5E | 0x66 | 0x6E | 0x7E => {
            let d = cur.take8() as i8;
            Dec::Body(
                Op::LdRMidx(Reg8::from_code(sub >> 3).expect("ld r,(ix+d)"), idx, d),
                9,
            )
        }
        0x70..=0x75 | 0x77 => {
            let d = cur.take8() as i8;
            Dec::Body(
                Op::StMidxR(idx, d, Reg8::from_code(sub).expect("ld (ix+d),r")),
                10,
            )
        }
        0x86 | 0x8E | 0x96 | 0x9E | 0xA6 | 0xAE | 0xB6 | 0xBE => {
            let d = cur.take8() as i8;
            Dec::Body(Op::AluMidx(sub >> 3 & 7, idx, d), 9)
        }
        0xE1 => Dec::Body(Op::Pop(idx), 9),
        0xE5 => Dec::Body(Op::Push(idx), 12),
        0xE3 => Dec::Body(Op::ExSp(idx), 15),
        0xE9 => Dec::Term(Op::JpIdx(idx)),
        0xF9 => Dec::Body(Op::LdSp(idx), 4),
        _ => Dec::Barrier,
    }
}

// ---- data-access helpers over a SegMap snapshot -----------------------

#[inline]
fn rd8(mem: &Memory, map: &SegMap, addr: u16) -> u8 {
    mem.read_phys(map.translate(addr))
}

#[inline]
fn wr8(mem: &mut Memory, map: &SegMap, addr: u16, v: u8) {
    mem.write_phys(map.translate(addr), v);
}

#[inline]
fn rd16(mem: &Memory, map: &SegMap, addr: u16) -> u16 {
    let lo = rd8(mem, map, addr);
    let hi = rd8(mem, map, addr.wrapping_add(1));
    u16::from_le_bytes([lo, hi])
}

#[inline]
fn wr16(mem: &mut Memory, map: &SegMap, addr: u16, v: u16) {
    let [lo, hi] = v.to_le_bytes();
    wr8(mem, map, addr, lo);
    wr8(mem, map, addr.wrapping_add(1), hi);
}

#[inline]
fn pushf(regs: &mut Registers, mem: &mut Memory, map: &SegMap, v: u16) {
    regs.sp = regs.sp.wrapping_sub(2);
    wr16(mem, map, regs.sp, v);
}

#[inline]
fn popf(regs: &mut Registers, mem: &Memory, map: &SegMap) -> u16 {
    let v = rd16(mem, map, regs.sp);
    regs.sp = regs.sp.wrapping_add(2);
    v
}

// ---- the block cache --------------------------------------------------

/// Multiplicative hasher for the `u64` block keys; the keys are already
/// well distributed, so SipHash would be wasted work on the hot path.
#[derive(Default)]
struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 29)
    }
}

fn block_key(pc: u16, cpu: &Cpu) -> u64 {
    u64::from(pc)
        | u64::from(cpu.mmu.segsize) << 16
        | u64::from(cpu.mmu.dataseg) << 24
        | u64::from(cpu.mmu.stackseg) << 32
        | u64::from(cpu.regs.xpc) << 40
}

/// Persistent state of the block-caching engine, owned by the [`Cpu`] and
/// reused across [`Cpu::run_fast`] calls.
pub struct ExecEngine {
    blocks: HashMap<u64, Rc<Block>, BuildHasherDefault<KeyHasher>>,
    /// Physical page -> keys of cached blocks decoded from it. Entries may
    /// linger after a block is evicted via another of its pages; removal
    /// by a dead key is a no-op.
    page_blocks: HashMap<u16, Vec<u64>>,
    /// One bit per 256-byte physical page: set when any cached block was
    /// decoded from bytes on that page.
    page_has_code: [u64; 64],
    seg: SegMap,
    seg_key: Option<(u8, u8, u8, u8)>,
    /// Identity + epoch of the memory these blocks were decoded from; any
    /// mismatch at entry triggers a full flush.
    mem_stamp: Option<(u64, u64)>,
}

impl Default for ExecEngine {
    fn default() -> ExecEngine {
        ExecEngine {
            blocks: HashMap::default(),
            page_blocks: HashMap::new(),
            page_has_code: [0; 64],
            seg: crate::mem::Mmu::new().seg_map(0),
            seg_key: None,
            mem_stamp: None,
        }
    }
}

impl ExecEngine {
    fn sync_seg(&mut self, cpu: &Cpu) {
        let key = (
            cpu.mmu.segsize,
            cpu.mmu.dataseg,
            cpu.mmu.stackseg,
            cpu.regs.xpc,
        );
        if self.seg_key != Some(key) {
            self.seg = cpu.mmu.seg_map(cpu.regs.xpc);
            self.seg_key = Some(key);
        }
    }

    fn flush_all(&mut self, mem: &mut Memory) {
        self.blocks.clear();
        self.page_blocks.clear();
        self.page_has_code = [0; 64];
        // No code pages left: stores stop recording dirty pages entirely
        // until new blocks are inserted.
        mem.code_pages = [0; 64];
    }

    fn insert(&mut self, key: u64, block: &Rc<Block>, mem: &mut Memory) {
        if self.blocks.len() >= MAX_CACHED_BLOCKS {
            self.flush_all(mem);
        }
        for &page in &block.pages {
            self.page_has_code[usize::from(page >> 6)] |= 1 << (page & 63);
            // Mirror into the memory-side filter so only stores that can
            // actually hit cached code pay the dirty-tracking cost.
            mem.code_pages[usize::from(page >> 6)] |= 1 << (page & 63);
            self.page_blocks.entry(page).or_default().push(key);
        }
        self.blocks.insert(key, Rc::clone(block));
    }

    /// Consumes `mem.dirty_pages`, evicting cached blocks decoded from any
    /// dirtied page. Returns true if `current` itself was hit (the caller
    /// must abort replaying it).
    fn drain_dirty(&mut self, mem: &mut Memory, current: Option<&Block>) -> bool {
        let mut conflict = false;
        while let Some(page) = mem.dirty_pages.pop() {
            if let Some(cur) = current {
                if cur.pages.contains(&page) {
                    conflict = true;
                }
            }
            if self.page_has_code[usize::from(page >> 6)] & (1 << (page & 63)) != 0 {
                if let Some(keys) = self.page_blocks.remove(&page) {
                    for k in keys {
                        self.blocks.remove(&k);
                    }
                }
                self.page_has_code[usize::from(page >> 6)] &= !(1 << (page & 63));
            }
        }
        conflict
    }
}

impl Cpu {
    /// Runs until `halt`, a fault, or `max_cycles`, like [`Cpu::run`], but
    /// through the block-caching engine. Cycle counts, registers, memory,
    /// and faults match the interpreter exactly; the only scheduling
    /// difference is that interrupts are sampled at block boundaries (at
    /// most [`BLOCK_CAP`] instructions apart) and `io.tick` receives one
    /// batched call per block.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Fault`], exactly as [`Cpu::run`] does.
    pub fn run_fast<I: IoSpace + ?Sized>(
        &mut self,
        mem: &mut Memory,
        io: &mut I,
        max_cycles: u64,
    ) -> Result<u64, Fault> {
        let mut engine = self.engine.take().unwrap_or_default();
        // Any mutation the engine did not observe (interpreter runs,
        // `Memory::load`, a different Memory instance) invalidates
        // everything.
        if engine.mem_stamp != Some((mem.mem_id, mem.store_epoch)) {
            engine.flush_all(mem);
        }
        mem.track_dirty = true;
        mem.dirty_pages.clear();
        let result = self.run_blocks(&mut engine, mem, io, max_cycles);
        engine.drain_dirty(mem, None);
        mem.track_dirty = false;
        engine.mem_stamp = Some((mem.mem_id, mem.store_epoch));
        self.engine = Some(engine);
        result
    }

    fn run_blocks<I: IoSpace + ?Sized>(
        &mut self,
        engine: &mut ExecEngine,
        mem: &mut Memory,
        io: &mut I,
        max_cycles: u64,
    ) -> Result<u64, Fault> {
        // A block is only dispatched when the remaining budget covers its
        // worst case, so the budget can never be crossed mid-block; the
        // tail of the budget is single-stepped, which makes `run_fast`
        // stop at exactly the same instruction boundary (and therefore
        // the same cycle total) as the interpreter's `run`.
        const MAX_BLOCK_CYCLES: u64 = (BLOCK_CAP as u64 + 1) * 24;
        let start = self.cycles;
        while !self.halted && self.cycles - start < max_cycles {
            if max_cycles - (self.cycles - start) < MAX_BLOCK_CYCLES {
                self.step(mem, io)?;
                engine.drain_dirty(mem, None);
                continue;
            }
            // Interrupt sampling and prefixed instructions go through the
            // interpreter, which replicates `step`'s behaviour exactly.
            if self.io_prefix.is_some() {
                self.step(mem, io)?;
                engine.drain_dirty(mem, None);
                continue;
            }
            if let Some(req) = io.pending_interrupt() {
                if req.priority & 3 > self.priority() {
                    self.step(mem, io)?;
                    engine.drain_dirty(mem, None);
                    continue;
                }
            }

            engine.sync_seg(self);
            let block_pc = self.regs.pc;
            let key = block_key(self.regs.pc, self);
            let block = if let Some(b) = engine.blocks.get(&key) {
                Rc::clone(b)
            } else {
                let b = decode_block(&engine.seg, mem, self.regs.pc);
                if b.body.is_empty() && b.term.is_none() {
                    // Barrier at the block start: interpret one
                    // instruction and try again from the next PC.
                    self.step(mem, io)?;
                    engine.drain_dirty(mem, None);
                    continue;
                }
                let b = Rc::new(b);
                engine.insert(key, &b, mem);
                b
            };

            let map = engine.seg;
            let mut acc: u32 = 0;
            let mut aborted = false;
            let mut retired: u64 = 0;
            let mut body_retired: usize = 0;
            for dop in &block.body {
                self.exec_body(dop.op, mem, &map);
                acc += u32::from(dop.cycles);
                retired += 1;
                body_retired += 1;
                if !mem.dirty_pages.is_empty() && engine.drain_dirty(mem, Some(&block)) {
                    // The block modified its own code: resume at the next
                    // instruction, which will be freshly decoded.
                    self.regs.pc = dop.next_pc;
                    aborted = true;
                    break;
                }
            }
            let mut term_cycles = None;
            if !aborted {
                if let Some((op, next_pc)) = block.term {
                    let c = self.exec_term(op, next_pc, mem, &map);
                    term_cycles = Some(c);
                    acc += c;
                    retired += 1;
                    if !mem.dirty_pages.is_empty() {
                        engine.drain_dirty(mem, None);
                    }
                } else {
                    self.regs.pc = block.end_pc;
                }
            }
            self.cycles += u64::from(acc);
            self.instructions += retired;
            io.tick(u64::from(acc));
            if self.profiler.is_some() {
                self.profile_block(&block, block_pc, body_retired, term_cycles);
            }
        }
        Ok(self.cycles - start)
    }

    /// Replays a just-executed block's PC chain into the profiler. The
    /// body ops carry their own cycle costs; the terminator's actual cost
    /// (`term_cycles`, `None` when the block aborted or had no
    /// terminator) disambiguates taken vs not-taken `ret cc`. Only called
    /// when a profiler is attached — the disabled-path cost is one
    /// `is_some` check per block.
    fn profile_block(
        &mut self,
        block: &Block,
        block_pc: u16,
        body_retired: usize,
        term_cycles: Option<u32>,
    ) {
        let Some(p) = self.profiler.as_mut() else {
            return;
        };
        let mut pc = block_pc;
        for dop in block.body.iter().take(body_retired) {
            p.record(pc, u64::from(dop.cycles));
            pc = dop.next_pc;
        }
        if let (Some(cycles), Some((op, _))) = (term_cycles, block.term) {
            // Record before the frame change, as the interpreter does.
            p.record(pc, u64::from(cycles));
            match op {
                Op::Call(nn) => p.call(nn),
                Op::Rst(target) => p.call(target),
                Op::Ret | Op::Reti => p.ret(),
                Op::RetCc(_) if cycles == 8 => p.ret(),
                _ => {}
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_body(&mut self, op: Op, mem: &mut Memory, map: &SegMap) {
        match op {
            Op::Nop => {}
            Op::Ld16(dd, v) => self.regs.set16(dd, v),
            Op::Ld8Imm(r, n) => self.regs.set8(r, n),
            Op::StIndA(p) => {
                let addr = self.regs.get16(p);
                wr8(mem, map, addr, self.regs.a);
            }
            Op::LdAInd(p) => {
                let addr = self.regs.get16(p);
                self.regs.a = rd8(mem, map, addr);
            }
            Op::Inc16(dd) => {
                let v = self.regs.get16(dd).wrapping_add(1);
                self.regs.set16(dd, v);
            }
            Op::Dec16(dd) => {
                let v = self.regs.get16(dd).wrapping_sub(1);
                self.regs.set16(dd, v);
            }
            Op::Inc8(r) => {
                let v = self.regs.get8(r);
                let res = self.inc8val(v);
                self.regs.set8(r, res);
            }
            Op::Dec8(r) => {
                let v = self.regs.get8(r);
                let res = self.dec8val(v);
                self.regs.set8(r, res);
            }
            Op::IncMhl => {
                let addr = self.regs.hl();
                let v = rd8(mem, map, addr);
                let res = self.inc8val(v);
                wr8(mem, map, addr, res);
            }
            Op::DecMhl => {
                let addr = self.regs.hl();
                let v = rd8(mem, map, addr);
                let res = self.dec8val(v);
                wr8(mem, map, addr, res);
            }
            Op::LdMhlImm(n) => {
                let addr = self.regs.hl();
                wr8(mem, map, addr, n);
            }
            Op::Rlca => {
                let a = self.regs.a;
                self.regs.set_flag(Flags::C, a & 0x80 != 0);
                self.regs.a = a.rotate_left(1);
                self.regs.set_flag(Flags::H, false);
                self.regs.set_flag(Flags::N, false);
            }
            Op::Rrca => {
                let a = self.regs.a;
                self.regs.set_flag(Flags::C, a & 1 != 0);
                self.regs.a = a.rotate_right(1);
                self.regs.set_flag(Flags::H, false);
                self.regs.set_flag(Flags::N, false);
            }
            Op::Rla => {
                let a = self.regs.a;
                let c = u8::from(self.regs.flag(Flags::C));
                self.regs.set_flag(Flags::C, a & 0x80 != 0);
                self.regs.a = (a << 1) | c;
                self.regs.set_flag(Flags::H, false);
                self.regs.set_flag(Flags::N, false);
            }
            Op::Rra => {
                let a = self.regs.a;
                let c = u8::from(self.regs.flag(Flags::C));
                self.regs.set_flag(Flags::C, a & 1 != 0);
                self.regs.a = (a >> 1) | (c << 7);
                self.regs.set_flag(Flags::H, false);
                self.regs.set_flag(Flags::N, false);
            }
            Op::ExAf => self.regs.swap_af(),
            Op::AddHl(ss) => {
                let hl = self.regs.hl();
                let v = self.regs.get16(ss);
                let res = self.add16(hl, v);
                self.regs.set16(Reg16::Hl, res);
            }
            Op::AddIdx(idx, ss) => {
                let a = self.regs.get16(idx);
                let b = self.regs.get16(ss);
                let res = self.add16(a, b);
                self.regs.set16(idx, res);
            }
            Op::StAbs16(nn, dd) => {
                let v = self.regs.get16(dd);
                wr16(mem, map, nn, v);
            }
            Op::LdAbs16(dd, nn) => {
                let v = rd16(mem, map, nn);
                self.regs.set16(dd, v);
            }
            Op::StAbsA(nn) => wr8(mem, map, nn, self.regs.a),
            Op::LdAbsA(nn) => self.regs.a = rd8(mem, map, nn),
            Op::AddSp(d) => self.regs.sp = self.regs.sp.wrapping_add_signed(i16::from(d)),
            Op::Cpl => {
                self.regs.a = !self.regs.a;
                self.regs.set_flag(Flags::H, true);
                self.regs.set_flag(Flags::N, true);
            }
            Op::Scf => {
                self.regs.set_flag(Flags::C, true);
                self.regs.set_flag(Flags::H, false);
                self.regs.set_flag(Flags::N, false);
            }
            Op::Ccf => {
                let c = self.regs.flag(Flags::C);
                self.regs.set_flag(Flags::H, c);
                self.regs.set_flag(Flags::C, !c);
                self.regs.set_flag(Flags::N, false);
            }
            Op::LdRR(d, s) => {
                let v = self.regs.get8(s);
                self.regs.set8(d, v);
            }
            Op::LdRMhl(d) => {
                let addr = self.regs.hl();
                let v = rd8(mem, map, addr);
                self.regs.set8(d, v);
            }
            Op::StMhlR(s) => {
                let addr = self.regs.hl();
                let v = self.regs.get8(s);
                wr8(mem, map, addr, v);
            }
            Op::Alu(code, s) => {
                let v = self.regs.get8(s);
                self.alu(code, v);
            }
            Op::AluMhl(code) => {
                let addr = self.regs.hl();
                let v = rd8(mem, map, addr);
                self.alu(code, v);
            }
            Op::AluImm(code, n) => self.alu(code, n),
            Op::Pop(qq) => {
                let v = popf(&mut self.regs, mem, map);
                self.regs.set16(qq, v);
            }
            Op::Push(qq) => {
                let v = self.regs.get16(qq);
                pushf(&mut self.regs, mem, map, v);
            }
            Op::LdHlSpN(n) => {
                let addr = self.regs.sp.wrapping_add(u16::from(n));
                let v = rd16(mem, map, addr);
                self.regs.set16(Reg16::Hl, v);
            }
            Op::StSpNHl(n) => {
                let addr = self.regs.sp.wrapping_add(u16::from(n));
                let hl = self.regs.hl();
                wr16(mem, map, addr, hl);
            }
            Op::BoolHl => {
                let hl = self.regs.hl();
                let v = u16::from(hl != 0);
                self.regs.set16(Reg16::Hl, v);
                self.regs.set_flag(Flags::C, false);
                self.regs.set_flag(Flags::Z, v == 0);
                self.regs.set_flag(Flags::S, false);
            }
            Op::AndHlDe => {
                let v = self.regs.hl() & self.regs.de();
                self.regs.set16(Reg16::Hl, v);
                self.regs.set_flag(Flags::Z, v == 0);
                self.regs.set_flag(Flags::S, v & 0x8000 != 0);
                self.regs.set_flag(Flags::C, false);
            }
            Op::OrHlDe => {
                let v = self.regs.hl() | self.regs.de();
                self.regs.set16(Reg16::Hl, v);
                self.regs.set_flag(Flags::Z, v == 0);
                self.regs.set_flag(Flags::S, v & 0x8000 != 0);
                self.regs.set_flag(Flags::C, false);
            }
            Op::RrHl => {
                let hl = self.regs.hl();
                let c = u16::from(self.regs.flag(Flags::C));
                self.regs.set_flag(Flags::C, hl & 1 != 0);
                self.regs.set16(Reg16::Hl, (hl >> 1) | (c << 15));
            }
            Op::RlDe => {
                let de = self.regs.de();
                let c = u16::from(self.regs.flag(Flags::C));
                self.regs.set_flag(Flags::C, de & 0x8000 != 0);
                self.regs.set16(Reg16::De, (de << 1) | c);
            }
            Op::RrDe => {
                let de = self.regs.de();
                let c = u16::from(self.regs.flag(Flags::C));
                self.regs.set_flag(Flags::C, de & 1 != 0);
                self.regs.set16(Reg16::De, (de >> 1) | (c << 15));
            }
            Op::Mul => {
                let bc = self.regs.bc() as i16;
                let de = self.regs.de() as i16;
                let prod = i32::from(bc) * i32::from(de);
                self.regs.set16(Reg16::Hl, (prod >> 16) as u16);
                self.regs.set16(Reg16::Bc, prod as u16);
            }
            Op::Exx => self.regs.swap_main(),
            Op::ExDeHl => {
                let de = self.regs.de();
                let hl = self.regs.hl();
                self.regs.set16(Reg16::De, hl);
                self.regs.set16(Reg16::Hl, de);
            }
            Op::ExSp(r) => {
                let sp = self.regs.sp;
                let v = rd16(mem, map, sp);
                let cur = self.regs.get16(r);
                wr16(mem, map, sp, cur);
                self.regs.set16(r, v);
            }
            Op::LdSp(r) => self.regs.sp = self.regs.get16(r),
            Op::CbRot(field, r) => {
                let v = self.regs.get8(r);
                let res = self.rot8(field, v);
                self.regs.set8(r, res);
            }
            Op::CbRotMhl(field) => {
                let addr = self.regs.hl();
                let v = rd8(mem, map, addr);
                let res = self.rot8(field, v);
                wr8(mem, map, addr, res);
            }
            Op::CbBit(field, r) => {
                let v = self.regs.get8(r);
                self.bit_flags(field, v);
            }
            Op::CbBitMhl(field) => {
                let addr = self.regs.hl();
                let v = rd8(mem, map, addr);
                self.bit_flags(field, v);
            }
            Op::CbRes(field, r) => {
                let v = self.regs.get8(r) & !(1 << field);
                self.regs.set8(r, v);
            }
            Op::CbResMhl(field) => {
                let addr = self.regs.hl();
                let v = rd8(mem, map, addr) & !(1 << field);
                wr8(mem, map, addr, v);
            }
            Op::CbSet(field, r) => {
                let v = self.regs.get8(r) | (1 << field);
                self.regs.set8(r, v);
            }
            Op::CbSetMhl(field) => {
                let addr = self.regs.hl();
                let v = rd8(mem, map, addr) | (1 << field);
                wr8(mem, map, addr, v);
            }
            Op::Sbc16(ss) => {
                let hl = self.regs.hl();
                let v = self.regs.get16(ss);
                let res = self.sbc16(hl, v);
                self.regs.set16(Reg16::Hl, res);
            }
            Op::Adc16(ss) => {
                let hl = self.regs.hl();
                let v = self.regs.get16(ss);
                let res = self.adc16(hl, v);
                self.regs.set16(Reg16::Hl, res);
            }
            Op::Neg => {
                let a = self.regs.a;
                self.regs.a = 0;
                self.sub8(a, false, true);
            }
            Op::LdAXpc => self.regs.a = self.regs.xpc,
            Op::IncMidx(idx, d) => {
                let addr = self.regs.get16(idx).wrapping_add_signed(i16::from(d));
                let v = rd8(mem, map, addr);
                let res = self.inc8val(v);
                wr8(mem, map, addr, res);
            }
            Op::DecMidx(idx, d) => {
                let addr = self.regs.get16(idx).wrapping_add_signed(i16::from(d));
                let v = rd8(mem, map, addr);
                let res = self.dec8val(v);
                wr8(mem, map, addr, res);
            }
            Op::StMidxImm(idx, d, n) => {
                let addr = self.regs.get16(idx).wrapping_add_signed(i16::from(d));
                wr8(mem, map, addr, n);
            }
            Op::LdRMidx(r, idx, d) => {
                let addr = self.regs.get16(idx).wrapping_add_signed(i16::from(d));
                let v = rd8(mem, map, addr);
                self.regs.set8(r, v);
            }
            Op::StMidxR(idx, d, r) => {
                let addr = self.regs.get16(idx).wrapping_add_signed(i16::from(d));
                let v = self.regs.get8(r);
                wr8(mem, map, addr, v);
            }
            Op::AluMidx(code, idx, d) => {
                let addr = self.regs.get16(idx).wrapping_add_signed(i16::from(d));
                let v = rd8(mem, map, addr);
                self.alu(code, v);
            }
            _ => unreachable!("terminal op in block body"),
        }
    }

    fn bit_flags(&mut self, field: u8, v: u8) {
        let set = v & (1 << field) != 0;
        self.regs.set_flag(Flags::Z, !set);
        self.regs.set_flag(Flags::H, true);
        self.regs.set_flag(Flags::N, false);
    }

    fn exec_term(&mut self, op: Op, next_pc: u16, mem: &mut Memory, map: &SegMap) -> u32 {
        match op {
            Op::Jp(nn) => {
                self.regs.pc = nn;
                7
            }
            Op::JpCc(cc, nn) => {
                self.regs.pc = if cc.holds(&self.regs) { nn } else { next_pc };
                7
            }
            Op::Jr(target) => {
                self.regs.pc = target;
                5
            }
            Op::JrCc(cc, target) => {
                self.regs.pc = if cc.holds(&self.regs) { target } else { next_pc };
                5
            }
            Op::Djnz(target) => {
                self.regs.b = self.regs.b.wrapping_sub(1);
                self.regs.pc = if self.regs.b != 0 { target } else { next_pc };
                5
            }
            Op::Call(nn) => {
                pushf(&mut self.regs, mem, map, next_pc);
                self.regs.pc = nn;
                12
            }
            Op::Rst(target) => {
                pushf(&mut self.regs, mem, map, next_pc);
                self.regs.pc = target;
                10
            }
            Op::Ret => {
                self.regs.pc = popf(&mut self.regs, mem, map);
                8
            }
            Op::RetCc(cc) => {
                if cc.holds(&self.regs) {
                    self.regs.pc = popf(&mut self.regs, mem, map);
                    8
                } else {
                    self.regs.pc = next_pc;
                    2
                }
            }
            Op::Reti => {
                self.ipres();
                self.regs.pc = popf(&mut self.regs, mem, map);
                12
            }
            Op::JpHl => {
                self.regs.pc = self.regs.hl();
                4
            }
            Op::JpIdx(idx) => {
                self.regs.pc = self.regs.get16(idx);
                6
            }
            Op::Halt => {
                self.halted = true;
                self.regs.pc = next_pc;
                2
            }
            Op::Ipset(n) => {
                self.ipset(n);
                self.regs.pc = next_pc;
                4
            }
            Op::Ipres => {
                self.ipres();
                self.regs.pc = next_pc;
                4
            }
            _ => unreachable!("body op in terminal slot"),
        }
    }
}
