//! A cycle-counting simulator for the Rabbit 2000, the Z80-derived 8-bit
//! microcontroller on the RMC2000 TCP/IP Development Kit, together with a
//! matching two-pass assembler and disassembler.
//!
//! This crate is the hardware substrate for reproducing *Porting a Network
//! Cryptographic Service to the RMC2000* (DATE 2003): the paper's
//! evaluation compares a compiled-C AES implementation against
//! hand-optimized Rabbit assembly by cycle count and code size, both of
//! which this simulator measures exactly.
//!
//! # Architecture modelled
//!
//! * 16-bit logical / 1 MiB physical address space with the Rabbit's
//!   bank-switching MMU (`SEGSIZE`/`DATASEG`/`STACKSEG` registers and the
//!   `XPC` window at `0xE000`) — see [`mem`].
//! * The Rabbit-flavoured Z80 instruction set, including the Rabbit
//!   replacements (`mul`, `bool hl`, `ld hl,(sp+n)`, `add sp,d`,
//!   `ipset`/`ipres`, and the `ioi`/`ioe` I/O prefixes that replace Z80
//!   `in`/`out`) — see [`cpu`].
//! * Prioritised interrupts delivered through [`io::IoSpace`].
//!
//! Cycle counts follow the Rabbit 2000 pattern (2-clock register
//! operations, memory-cycle adders); the reproduced experiments depend
//! only on cycle *ratios*, which the table preserves.
//!
//! # Example
//!
//! ```
//! use rabbit::{assemble, Cpu, Memory, NullIo};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble(
//!     "        org 0x4000\n\
//!      start:  ld hl, 0\n\
//!              ld de, 7\n\
//!              ld b, 10\n\
//!      loop:   add hl, de\n\
//!              djnz loop\n\
//!              halt\n",
//! )?;
//! let mut mem = Memory::new();
//! image.load_into(&mut mem);
//!
//! let mut cpu = Cpu::new();
//! cpu.regs.pc = 0x4000;
//! cpu.run(&mut mem, &mut NullIo, 100_000)?;
//! assert_eq!(cpu.regs.hl(), 70);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod cpu;
pub mod disasm;
pub mod exec;
pub mod fwmap;
pub mod io;
pub mod isa;
pub mod mem;
pub mod nicmap;
pub mod registers;

pub use asm::{assemble, AsmError, Image, Section};
pub use cpu::{Cond, Cpu, Engine, Fault};
pub use disasm::{disassemble, listing, Decoded};
pub use io::{Bus, Device, DeviceId, Interrupt, IoSpace, NullIo, PortRange};
pub use mem::{Memory, Mmu};
pub use registers::{Flags, Reg16, Reg8, Registers};

// The profiler the CPU hooks feed lives in `telemetry`; re-exported so
// ISS users get attribution without naming a second crate.
pub use telemetry::{CycleProfiler, ProfileReport, SymbolTable};
