//! The Rabbit 2000 instruction interpreter.
//!
//! Executes the Rabbit-flavoured Z80 instruction set documented in
//! the module docs of this crate, counting clock cycles per instruction. Where the Rabbit
//! 2000 replaced Z80 opcodes (`mul`, `bool hl`, `ld hl,(sp+n)`,
//! `add sp,d`, the `ioi`/`ioe` prefixes, `ipset`/`ipres`) we follow the
//! Rabbit; cycle counts follow the Rabbit 2000 pattern of 2-clock register
//! operations plus memory-cycle adders. The evaluation in the reproduced
//! paper only depends on *ratios* of cycle counts, which this table
//! preserves.

use crate::io::{ports, IoSpace};
use crate::mem::{Memory, Mmu};
use crate::registers::{Flags, Reg16, Reg8, Registers};

/// A condition code for jumps, calls and returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Not zero.
    Nz,
    /// Zero.
    Z,
    /// No carry.
    Nc,
    /// Carry.
    C,
    /// Parity odd / logical zero (`lz` in Rabbit mnemonics).
    Po,
    /// Parity even / logical one (`lo`).
    Pe,
    /// Sign positive.
    P,
    /// Sign negative.
    M,
}

impl Cond {
    /// Decodes the 3-bit condition field of an opcode.
    pub fn from_code(code: u8) -> Cond {
        match code & 7 {
            0 => Cond::Nz,
            1 => Cond::Z,
            2 => Cond::Nc,
            3 => Cond::C,
            4 => Cond::Po,
            5 => Cond::Pe,
            6 => Cond::P,
            _ => Cond::M,
        }
    }

    pub(crate) fn holds(self, r: &Registers) -> bool {
        match self {
            Cond::Nz => !r.flag(Flags::Z),
            Cond::Z => r.flag(Flags::Z),
            Cond::Nc => !r.flag(Flags::C),
            Cond::C => r.flag(Flags::C),
            Cond::Po => !r.flag(Flags::PV),
            Cond::Pe => r.flag(Flags::PV),
            Cond::P => !r.flag(Flags::S),
            Cond::M => r.flag(Flags::S),
        }
    }
}

/// Which execution engine drives the simulation.
///
/// Both engines are architecturally and cycle-count identical (enforced
/// by the differential test suite); they differ only in host speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Fetch–decode–execute one instruction at a time ([`Cpu::step`]).
    Interpreter,
    /// Predecoded basic blocks with an invalidation-tracked cache
    /// ([`Cpu::run_fast`]).
    #[default]
    BlockCache,
}

/// A fault raised by instruction execution.
///
/// On real hardware these trap through the vector installed with
/// `defineErrorHandler`; the board model (`rmc2000`) routes them the same
/// way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// An opcode this CPU does not implement.
    InvalidOpcode {
        /// Logical address of the opcode byte.
        pc: u16,
        /// The offending byte (first byte of the instruction).
        opcode: u8,
    },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Fault::InvalidOpcode { pc, opcode } => {
                write!(f, "invalid opcode {opcode:#04x} at {pc:#06x}")
            }
        }
    }
}

impl std::error::Error for Fault {}

/// Which I/O space a prefixed access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IoPrefix {
    Internal,
    External,
}

/// The CPU: register file, MMU state, and the instruction interpreter.
pub struct Cpu {
    /// Architectural registers.
    pub regs: Registers,
    /// Memory-management registers (programmed via internal I/O ports).
    pub mmu: Mmu,
    /// True after `halt` until an interrupt is accepted.
    pub halted: bool,
    /// Total clock cycles executed.
    pub cycles: u64,
    /// Total instructions retired (interrupt dispatches and `halt` idle
    /// cycles are not instructions and are not counted).
    pub instructions: u64,
    pub(crate) io_prefix: Option<IoPrefix>,
    /// Block cache for [`Cpu::run_fast`]; created lazily on first use and
    /// boxed so the plain interpreter pays nothing for it.
    pub(crate) engine: Option<Box<crate::exec::ExecEngine>>,
    /// Cycle-attribution profiler; `None` (the default) costs one branch
    /// per retired instruction and nothing else.
    pub(crate) profiler: Option<Box<telemetry::CycleProfiler>>,
}

impl Cpu {
    /// Creates a CPU in the reset state (PC = 0).
    pub fn new() -> Cpu {
        Cpu {
            regs: Registers::new(),
            mmu: Mmu::new(),
            halted: false,
            cycles: 0,
            instructions: 0,
            io_prefix: None,
            engine: None,
            profiler: None,
        }
    }

    /// Attaches a cycle profiler whose root frame is the current PC. From
    /// here on every retired instruction's cycles are attributed to its
    /// PC and to the live call stack, on either execution engine.
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(Box::new(telemetry::CycleProfiler::new(self.regs.pc)));
    }

    /// Detaches the profiler and returns it (for
    /// [`telemetry::CycleProfiler::report`]). `None` when none was
    /// attached.
    pub fn take_profiler(&mut self) -> Option<telemetry::CycleProfiler> {
        self.profiler.take().map(|b| *b)
    }

    /// Translates a logical address using the current MMU and XPC state.
    pub fn translate(&self, addr: u16) -> u32 {
        self.mmu.translate(addr, self.regs.xpc)
    }

    fn fetch8(&mut self, mem: &Memory) -> u8 {
        let b = mem.read_phys(self.translate(self.regs.pc));
        self.regs.pc = self.regs.pc.wrapping_add(1);
        b
    }

    fn fetch16(&mut self, mem: &Memory) -> u16 {
        let lo = self.fetch8(mem);
        let hi = self.fetch8(mem);
        u16::from_le_bytes([lo, hi])
    }

    /// Reads a data byte, honouring a pending `ioi`/`ioe` prefix.
    fn read8<I: IoSpace + ?Sized>(&mut self, mem: &Memory, io: &mut I, addr: u16) -> u8 {
        match self.io_prefix {
            Some(IoPrefix::Internal) => io.io_read(addr, false),
            Some(IoPrefix::External) => io.io_read(addr, true),
            None => mem.read_phys(self.translate(addr)),
        }
    }

    /// Writes a data byte, honouring a pending `ioi`/`ioe` prefix and
    /// intercepting the MMU registers.
    fn write8<I: IoSpace + ?Sized>(&mut self, mem: &mut Memory, io: &mut I, addr: u16, v: u8) {
        match self.io_prefix {
            Some(ext) => {
                let external = ext == IoPrefix::External;
                if !external {
                    match addr {
                        ports::SEGSIZE => self.mmu.segsize = v,
                        ports::DATASEG => self.mmu.dataseg = v,
                        ports::STACKSEG => self.mmu.stackseg = v,
                        _ => {}
                    }
                }
                io.io_write(addr, v, external);
            }
            None => mem.write_phys(self.translate(addr), v),
        }
    }

    fn read16<I: IoSpace + ?Sized>(&mut self, mem: &Memory, io: &mut I, addr: u16) -> u16 {
        let lo = self.read8(mem, io, addr);
        let hi = self.read8(mem, io, addr.wrapping_add(1));
        u16::from_le_bytes([lo, hi])
    }

    fn write16<I: IoSpace + ?Sized>(&mut self, mem: &mut Memory, io: &mut I, addr: u16, v: u16) {
        let [lo, hi] = v.to_le_bytes();
        self.write8(mem, io, addr, lo);
        self.write8(mem, io, addr.wrapping_add(1), hi);
    }

    fn push16<I: IoSpace + ?Sized>(&mut self, mem: &mut Memory, io: &mut I, v: u16) {
        // Pushes never target I/O space regardless of prefixes.
        let saved = self.io_prefix.take();
        self.regs.sp = self.regs.sp.wrapping_sub(2);
        let sp = self.regs.sp;
        self.write16(mem, io, sp, v);
        self.io_prefix = saved;
    }

    fn pop16<I: IoSpace + ?Sized>(&mut self, mem: &Memory, io: &mut I) -> u16 {
        let saved = self.io_prefix.take();
        let v = self.read16(mem, io, self.regs.sp);
        self.regs.sp = self.regs.sp.wrapping_add(2);
        self.io_prefix = saved;
        v
    }

    // ---- flag helpers -------------------------------------------------

    #[inline]
    pub(crate) fn set_sz(&mut self, v: u8) {
        self.regs.set_flag(Flags::S, v & 0x80 != 0);
        self.regs.set_flag(Flags::Z, v == 0);
    }

    #[inline]
    pub(crate) fn set_parity(&mut self, v: u8) {
        self.regs
            .set_flag(Flags::PV, v.count_ones().is_multiple_of(2));
    }

    #[inline]
    pub(crate) fn add8(&mut self, b: u8, carry: bool) {
        let a = self.regs.a;
        let c = u16::from(carry && self.regs.flag(Flags::C));
        let r = u16::from(a) + u16::from(b) + c;
        let res = r as u8;
        self.regs.set_flag(Flags::C, r > 0xFF);
        self.regs
            .set_flag(Flags::H, (a & 0xF) + (b & 0xF) + c as u8 > 0xF);
        self.regs
            .set_flag(Flags::PV, (a ^ res) & (b ^ res) & 0x80 != 0);
        self.regs.set_flag(Flags::N, false);
        self.set_sz(res);
        self.regs.a = res;
    }

    #[inline]
    pub(crate) fn sub8(&mut self, b: u8, carry: bool, store: bool) {
        let a = self.regs.a;
        let c = u16::from(carry && self.regs.flag(Flags::C));
        let r = u16::from(a).wrapping_sub(u16::from(b)).wrapping_sub(c);
        let res = r as u8;
        self.regs.set_flag(Flags::C, r > 0xFF);
        self.regs
            .set_flag(Flags::H, (a & 0xF) < (b & 0xF) + c as u8);
        self.regs
            .set_flag(Flags::PV, (a ^ b) & (a ^ res) & 0x80 != 0);
        self.regs.set_flag(Flags::N, true);
        self.set_sz(res);
        if store {
            self.regs.a = res;
        }
    }

    #[inline]
    pub(crate) fn logic8(&mut self, res: u8, half: bool) {
        self.regs.a = res;
        self.regs.set_flag(Flags::C, false);
        self.regs.set_flag(Flags::H, half);
        self.regs.set_flag(Flags::N, false);
        self.set_parity(res);
        self.set_sz(res);
    }

    #[inline]
    pub(crate) fn inc8val(&mut self, v: u8) -> u8 {
        let res = v.wrapping_add(1);
        self.regs.set_flag(Flags::H, v & 0xF == 0xF);
        self.regs.set_flag(Flags::PV, v == 0x7F);
        self.regs.set_flag(Flags::N, false);
        self.set_sz(res);
        res
    }

    #[inline]
    pub(crate) fn dec8val(&mut self, v: u8) -> u8 {
        let res = v.wrapping_sub(1);
        self.regs.set_flag(Flags::H, v & 0xF == 0);
        self.regs.set_flag(Flags::PV, v == 0x80);
        self.regs.set_flag(Flags::N, true);
        self.set_sz(res);
        res
    }

    #[inline]
    pub(crate) fn add16(&mut self, a: u16, b: u16) -> u16 {
        let r = u32::from(a) + u32::from(b);
        self.regs.set_flag(Flags::C, r > 0xFFFF);
        self.regs
            .set_flag(Flags::H, (a & 0xFFF) + (b & 0xFFF) > 0xFFF);
        self.regs.set_flag(Flags::N, false);
        r as u16
    }

    #[inline]
    pub(crate) fn adc16(&mut self, a: u16, b: u16) -> u16 {
        let c = u32::from(self.regs.flag(Flags::C));
        let r = u32::from(a) + u32::from(b) + c;
        let res = r as u16;
        self.regs.set_flag(Flags::C, r > 0xFFFF);
        self.regs
            .set_flag(Flags::PV, (a ^ res) & (b ^ res) & 0x8000 != 0);
        self.regs.set_flag(Flags::N, false);
        self.regs.set_flag(Flags::S, res & 0x8000 != 0);
        self.regs.set_flag(Flags::Z, res == 0);
        res
    }

    #[inline]
    pub(crate) fn sbc16(&mut self, a: u16, b: u16) -> u16 {
        let c = u32::from(self.regs.flag(Flags::C));
        let r = u32::from(a).wrapping_sub(u32::from(b)).wrapping_sub(c);
        let res = r as u16;
        self.regs.set_flag(Flags::C, r > 0xFFFF);
        self.regs
            .set_flag(Flags::PV, (a ^ b) & (a ^ res) & 0x8000 != 0);
        self.regs.set_flag(Flags::N, true);
        self.regs.set_flag(Flags::S, res & 0x8000 != 0);
        self.regs.set_flag(Flags::Z, res == 0);
        res
    }

    #[inline]
    pub(crate) fn rot8(&mut self, op: u8, v: u8) -> u8 {
        let carry_in = self.regs.flag(Flags::C);
        let (res, carry) = match op {
            0 => (v.rotate_left(1), v & 0x80 != 0),              // rlc
            1 => (v.rotate_right(1), v & 1 != 0),                // rrc
            2 => ((v << 1) | u8::from(carry_in), v & 0x80 != 0), // rl
            3 => ((v >> 1) | (u8::from(carry_in) << 7), v & 1 != 0), // rr
            4 => (v << 1, v & 0x80 != 0),                        // sla
            5 => (((v as i8) >> 1) as u8, v & 1 != 0),           // sra
            7 => (v >> 1, v & 1 != 0),                           // srl
            _ => (v, false),                                     // unused slot
        };
        self.regs.set_flag(Flags::C, carry);
        self.regs.set_flag(Flags::H, false);
        self.regs.set_flag(Flags::N, false);
        self.set_parity(res);
        self.set_sz(res);
        res
    }

    // ---- interrupt handling -------------------------------------------

    pub(crate) fn ipset(&mut self, priority: u8) {
        self.regs.ip = (self.regs.ip << 2) | (priority & 3);
    }

    pub(crate) fn ipres(&mut self) {
        self.regs.ip = self.regs.ip.rotate_right(2);
    }

    /// Current interrupt priority (low two bits of `IP`).
    pub fn priority(&self) -> u8 {
        self.regs.ip & 3
    }

    /// Executes one instruction (taking a pending interrupt first if its
    /// priority allows). Returns the number of clock cycles consumed.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::InvalidOpcode`] when the opcode stream is not part
    /// of the implemented instruction set; the CPU state is left pointing
    /// *after* the offending byte so a board-level error handler can
    /// resume.
    pub fn step<I: IoSpace + ?Sized>(
        &mut self,
        mem: &mut Memory,
        io: &mut I,
    ) -> Result<u32, Fault> {
        // Interrupts are sampled between instructions, never between a
        // prefix and its target instruction.
        if self.io_prefix.is_none() {
            if let Some(req) = io.pending_interrupt() {
                if req.priority & 3 > self.priority() {
                    io.acknowledge_interrupt(req.vector);
                    self.halted = false;
                    self.ipset(req.priority);
                    let pc = self.regs.pc;
                    self.push16(mem, io, pc);
                    self.regs.pc = req.vector;
                    self.cycles += 13;
                    io.tick(13);
                    if let Some(p) = self.profiler.as_mut() {
                        // Dispatch overhead bills to the interrupted PC;
                        // the handler is a new frame at the vector.
                        p.record(pc, 13);
                        p.call(req.vector);
                    }
                    return Ok(13);
                }
            }
        }

        if self.halted {
            self.cycles += 2;
            io.tick(2);
            if let Some(p) = self.profiler.as_mut() {
                p.record(self.regs.pc, 2);
            }
            return Ok(2);
        }

        let pc0 = self.regs.pc;
        let op = self.fetch8(mem);
        // `reti` hides behind the 0xED prefix; peek its sub-byte before
        // `exec` runs, while the PC (and MMU state) still point at it.
        let ed_sub = if self.profiler.is_some() && op == 0xED {
            Some(mem.read_phys(self.translate(self.regs.pc)))
        } else {
            None
        };
        let cycles = self.exec(op, pc0, mem, io)?;
        self.cycles += u64::from(cycles);
        self.instructions += 1;
        io.tick(u64::from(cycles));
        if let Some(p) = self.profiler.as_mut() {
            // Record first so a call's cycles bill to the caller's stack,
            // then move the frame pointer for the next instruction.
            p.record(pc0, u64::from(cycles));
            match op {
                // call nn / rst p: the new PC is the frame entry.
                0xCD | 0xD7 | 0xDF | 0xE7 | 0xEF | 0xFF => p.call(self.regs.pc),
                0xC9 => p.ret(),
                // ret cc: taken costs 8 cycles, not-taken 2.
                0xC0 | 0xC8 | 0xD0 | 0xD8 | 0xE0 | 0xE8 | 0xF0 | 0xF8 if cycles == 8 => {
                    p.ret();
                }
                0xED if ed_sub == Some(0x4D) => p.ret(), // reti
                _ => {}
            }
        }
        Ok(cycles)
    }

    /// Books `cycles` of halted time in one batch: the CPU-side half of a
    /// time-skip. Equivalent to `cycles / 2` halted [`Cpu::step`]s *minus*
    /// their bus work — the caller is responsible for advancing the bus by
    /// the same amount (e.g. `Bus::advance`) and for having checked that
    /// no dispatchable interrupt is pending. `cycles` must be even, since
    /// a halted step always burns 2 cycles.
    ///
    /// Profiler attribution matches the stepwise path exactly:
    /// [`telemetry::CycleProfiler::record`] is additive, so one record of
    /// `cycles` at the halt PC equals `cycles / 2` records of 2.
    pub fn skip_halted(&mut self, cycles: u64) {
        debug_assert!(self.halted, "skip_halted on a running CPU");
        debug_assert!(cycles.is_multiple_of(2), "halted steps burn 2 cycles each");
        self.cycles += cycles;
        if let Some(p) = self.profiler.as_mut() {
            p.record(self.regs.pc, cycles);
        }
    }

    /// Runs until `halt`, a fault, or `max_cycles`, whichever comes first.
    /// Returns the cycles consumed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Fault`]. Exceeding the budget is reported as
    /// `Ok` with `halted` still false; callers that need to distinguish a
    /// runaway program should check [`Cpu::halted`].
    pub fn run<I: IoSpace + ?Sized>(
        &mut self,
        mem: &mut Memory,
        io: &mut I,
        max_cycles: u64,
    ) -> Result<u64, Fault> {
        let start = self.cycles;
        while !self.halted && self.cycles - start < max_cycles {
            self.step(mem, io)?;
        }
        Ok(self.cycles - start)
    }

    /// Runs on the chosen [`Engine`]. Both engines produce identical
    /// architectural state and cycle counts; see `exec` for the
    /// block-caching engine's exactness contract.
    ///
    /// # Errors
    ///
    /// As [`Cpu::run`].
    pub fn run_on<I: IoSpace + ?Sized>(
        &mut self,
        engine: Engine,
        mem: &mut Memory,
        io: &mut I,
        max_cycles: u64,
    ) -> Result<u64, Fault> {
        match engine {
            Engine::Interpreter => self.run(mem, io, max_cycles),
            Engine::BlockCache => self.run_fast(mem, io, max_cycles),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec<I: IoSpace + ?Sized>(
        &mut self,
        op: u8,
        pc0: u16,
        mem: &mut Memory,
        io: &mut I,
    ) -> Result<u32, Fault> {
        let invalid = Err(Fault::InvalidOpcode {
            pc: pc0,
            opcode: op,
        });
        // The prefix applies to exactly one following instruction.
        let clear_prefix_after = self.io_prefix.is_some() && op != 0xD3 && op != 0xDB;

        let cycles: u32 = match op {
            0x00 => 2, // nop
            // ld dd,nn
            0x01 | 0x11 | 0x21 | 0x31 => {
                let v = self.fetch16(mem);
                let dd = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Sp][usize::from(op >> 4)];
                self.regs.set16(dd, v);
                6
            }
            0x02 => {
                let addr = self.regs.bc();
                let a = self.regs.a;
                self.write8(mem, io, addr, a);
                7
            }
            0x12 => {
                let addr = self.regs.de();
                let a = self.regs.a;
                self.write8(mem, io, addr, a);
                7
            }
            0x0A => {
                let addr = self.regs.bc();
                self.regs.a = self.read8(mem, io, addr);
                6
            }
            0x1A => {
                let addr = self.regs.de();
                self.regs.a = self.read8(mem, io, addr);
                6
            }
            // inc/dec ss
            0x03 | 0x13 | 0x23 | 0x33 => {
                let dd = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Sp][usize::from(op >> 4)];
                let v = self.regs.get16(dd).wrapping_add(1);
                self.regs.set16(dd, v);
                2
            }
            0x0B | 0x1B | 0x2B | 0x3B => {
                let dd = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Sp][usize::from(op >> 4)];
                let v = self.regs.get16(dd).wrapping_sub(1);
                self.regs.set16(dd, v);
                2
            }
            // inc r / (hl)
            0x04 | 0x0C | 0x14 | 0x1C | 0x24 | 0x2C | 0x3C => {
                let r = Reg8::from_code(op >> 3).expect("register inc");
                let v = self.regs.get8(r);
                let res = self.inc8val(v);
                self.regs.set8(r, res);
                2
            }
            0x34 => {
                let addr = self.regs.hl();
                let v = self.read8(mem, io, addr);
                let res = self.inc8val(v);
                self.write8(mem, io, addr, res);
                8
            }
            // dec r / (hl)
            0x05 | 0x0D | 0x15 | 0x1D | 0x25 | 0x2D | 0x3D => {
                let r = Reg8::from_code(op >> 3).expect("register dec");
                let v = self.regs.get8(r);
                let res = self.dec8val(v);
                self.regs.set8(r, res);
                2
            }
            0x35 => {
                let addr = self.regs.hl();
                let v = self.read8(mem, io, addr);
                let res = self.dec8val(v);
                self.write8(mem, io, addr, res);
                8
            }
            // ld r,n / ld (hl),n
            0x06 | 0x0E | 0x16 | 0x1E | 0x26 | 0x2E | 0x3E => {
                let n = self.fetch8(mem);
                let r = Reg8::from_code(op >> 3).expect("register ld n");
                self.regs.set8(r, n);
                4
            }
            0x36 => {
                let n = self.fetch8(mem);
                let addr = self.regs.hl();
                self.write8(mem, io, addr, n);
                7
            }
            // accumulator rotates
            0x07 => {
                let a = self.regs.a;
                self.regs.set_flag(Flags::C, a & 0x80 != 0);
                self.regs.a = a.rotate_left(1);
                self.regs.set_flag(Flags::H, false);
                self.regs.set_flag(Flags::N, false);
                2
            }
            0x0F => {
                let a = self.regs.a;
                self.regs.set_flag(Flags::C, a & 1 != 0);
                self.regs.a = a.rotate_right(1);
                self.regs.set_flag(Flags::H, false);
                self.regs.set_flag(Flags::N, false);
                2
            }
            0x17 => {
                let a = self.regs.a;
                let c = u8::from(self.regs.flag(Flags::C));
                self.regs.set_flag(Flags::C, a & 0x80 != 0);
                self.regs.a = (a << 1) | c;
                self.regs.set_flag(Flags::H, false);
                self.regs.set_flag(Flags::N, false);
                2
            }
            0x1F => {
                let a = self.regs.a;
                let c = u8::from(self.regs.flag(Flags::C));
                self.regs.set_flag(Flags::C, a & 1 != 0);
                self.regs.a = (a >> 1) | (c << 7);
                self.regs.set_flag(Flags::H, false);
                self.regs.set_flag(Flags::N, false);
                2
            }
            0x08 => {
                self.regs.swap_af();
                2
            }
            // add hl,ss
            0x09 | 0x19 | 0x29 | 0x39 => {
                let ss = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Sp][usize::from(op >> 4)];
                let hl = self.regs.hl();
                let v = self.regs.get16(ss);
                let res = self.add16(hl, v);
                self.regs.set16(Reg16::Hl, res);
                2
            }
            0x10 => {
                // djnz e
                let e = self.fetch8(mem) as i8;
                self.regs.b = self.regs.b.wrapping_sub(1);
                if self.regs.b != 0 {
                    self.regs.pc = self.regs.pc.wrapping_add_signed(i16::from(e));
                }
                5
            }
            0x18 => {
                let e = self.fetch8(mem) as i8;
                self.regs.pc = self.regs.pc.wrapping_add_signed(i16::from(e));
                5
            }
            0x20 | 0x28 | 0x30 | 0x38 => {
                let e = self.fetch8(mem) as i8;
                let cc = Cond::from_code((op >> 3) & 3);
                if cc.holds(&self.regs) {
                    self.regs.pc = self.regs.pc.wrapping_add_signed(i16::from(e));
                }
                5
            }
            0x22 => {
                let nn = self.fetch16(mem);
                let hl = self.regs.hl();
                self.write16(mem, io, nn, hl);
                13
            }
            0x2A => {
                let nn = self.fetch16(mem);
                let v = self.read16(mem, io, nn);
                self.regs.set16(Reg16::Hl, v);
                11
            }
            0x32 => {
                let nn = self.fetch16(mem);
                let a = self.regs.a;
                self.write8(mem, io, nn, a);
                10
            }
            0x3A => {
                let nn = self.fetch16(mem);
                self.regs.a = self.read8(mem, io, nn);
                9
            }
            0x27 => {
                // add sp,d (Rabbit; replaces Z80 daa)
                let d = self.fetch8(mem) as i8;
                self.regs.sp = self.regs.sp.wrapping_add_signed(i16::from(d));
                4
            }
            0x2F => {
                self.regs.a = !self.regs.a;
                self.regs.set_flag(Flags::H, true);
                self.regs.set_flag(Flags::N, true);
                2
            }
            0x37 => {
                self.regs.set_flag(Flags::C, true);
                self.regs.set_flag(Flags::H, false);
                self.regs.set_flag(Flags::N, false);
                2
            }
            0x3F => {
                let c = self.regs.flag(Flags::C);
                self.regs.set_flag(Flags::H, c);
                self.regs.set_flag(Flags::C, !c);
                self.regs.set_flag(Flags::N, false);
                2
            }
            0x76 => {
                self.halted = true;
                2
            }
            // ld r,r' block
            0x40..=0x7F => {
                let dst = (op >> 3) & 7;
                let src = op & 7;
                match (Reg8::from_code(dst), Reg8::from_code(src)) {
                    (Some(d), Some(s)) => {
                        let v = self.regs.get8(s);
                        self.regs.set8(d, v);
                        2
                    }
                    (Some(d), None) => {
                        let addr = self.regs.hl();
                        let v = self.read8(mem, io, addr);
                        self.regs.set8(d, v);
                        5
                    }
                    (None, Some(s)) => {
                        let addr = self.regs.hl();
                        let v = self.regs.get8(s);
                        self.write8(mem, io, addr, v);
                        6
                    }
                    (None, None) => unreachable!("0x76 handled above"),
                }
            }
            // ALU a,r block
            0x80..=0xBF => {
                let src = op & 7;
                let (v, c) = match Reg8::from_code(src) {
                    Some(s) => (self.regs.get8(s), 2),
                    None => {
                        let addr = self.regs.hl();
                        (self.read8(mem, io, addr), 5)
                    }
                };
                self.alu(op >> 3 & 7, v);
                c
            }
            // ret cc
            0xC0 | 0xC8 | 0xD0 | 0xD8 | 0xE0 | 0xE8 | 0xF0 | 0xF8 => {
                let cc = Cond::from_code(op >> 3);
                if cc.holds(&self.regs) {
                    self.regs.pc = self.pop16(mem, io);
                    8
                } else {
                    2
                }
            }
            0xC1 | 0xD1 | 0xE1 | 0xF1 => {
                let qq = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Af][usize::from((op >> 4) - 0xC)];
                let v = self.pop16(mem, io);
                self.regs.set16(qq, v);
                7
            }
            0xC5 | 0xD5 | 0xE5 | 0xF5 => {
                let qq = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Af][usize::from((op >> 4) - 0xC)];
                let v = self.regs.get16(qq);
                self.push16(mem, io, v);
                10
            }
            0xC2 | 0xCA | 0xD2 | 0xDA | 0xE2 | 0xEA | 0xF2 | 0xFA => {
                let nn = self.fetch16(mem);
                let cc = Cond::from_code(op >> 3);
                if cc.holds(&self.regs) {
                    self.regs.pc = nn;
                }
                7
            }
            0xC3 => {
                let nn = self.fetch16(mem);
                self.regs.pc = nn;
                7
            }
            // ALU a,n
            0xC6 | 0xCE | 0xD6 | 0xDE | 0xE6 | 0xEE | 0xF6 | 0xFE => {
                let n = self.fetch8(mem);
                self.alu(op >> 3 & 7, n);
                4
            }
            // rst p (Rabbit keeps 10,18,20,28,38)
            0xD7 | 0xDF | 0xE7 | 0xEF | 0xFF => {
                let target = u16::from(op & 0x38);
                let pc = self.regs.pc;
                self.push16(mem, io, pc);
                self.regs.pc = target;
                10
            }
            0xC9 => {
                self.regs.pc = self.pop16(mem, io);
                8
            }
            0xCD => {
                let nn = self.fetch16(mem);
                let pc = self.regs.pc;
                self.push16(mem, io, pc);
                self.regs.pc = nn;
                12
            }
            0xC4 => {
                // ld hl,(sp+n)  (Rabbit)
                let n = self.fetch8(mem);
                let addr = self.regs.sp.wrapping_add(u16::from(n));
                let v = self.read16(mem, io, addr);
                self.regs.set16(Reg16::Hl, v);
                9
            }
            0xD4 => {
                // ld (sp+n),hl  (Rabbit)
                let n = self.fetch8(mem);
                let addr = self.regs.sp.wrapping_add(u16::from(n));
                let hl = self.regs.hl();
                self.write16(mem, io, addr, hl);
                11
            }
            0xCC => {
                // bool hl: hl = (hl != 0); clears carry
                let hl = self.regs.hl();
                let v = u16::from(hl != 0);
                self.regs.set16(Reg16::Hl, v);
                self.regs.set_flag(Flags::C, false);
                self.regs.set_flag(Flags::Z, v == 0);
                self.regs.set_flag(Flags::S, false);
                2
            }
            0xDC => {
                // and hl,de
                let v = self.regs.hl() & self.regs.de();
                self.regs.set16(Reg16::Hl, v);
                self.regs.set_flag(Flags::Z, v == 0);
                self.regs.set_flag(Flags::S, v & 0x8000 != 0);
                self.regs.set_flag(Flags::C, false);
                2
            }
            0xEC => {
                // or hl,de
                let v = self.regs.hl() | self.regs.de();
                self.regs.set16(Reg16::Hl, v);
                self.regs.set_flag(Flags::Z, v == 0);
                self.regs.set_flag(Flags::S, v & 0x8000 != 0);
                self.regs.set_flag(Flags::C, false);
                2
            }
            0xFC => {
                // rr hl
                let hl = self.regs.hl();
                let c = u16::from(self.regs.flag(Flags::C));
                self.regs.set_flag(Flags::C, hl & 1 != 0);
                self.regs.set16(Reg16::Hl, (hl >> 1) | (c << 15));
                2
            }
            0xF3 => {
                // rl de
                let de = self.regs.de();
                let c = u16::from(self.regs.flag(Flags::C));
                self.regs.set_flag(Flags::C, de & 0x8000 != 0);
                self.regs.set16(Reg16::De, (de << 1) | c);
                2
            }
            0xFB => {
                // rr de
                let de = self.regs.de();
                let c = u16::from(self.regs.flag(Flags::C));
                self.regs.set_flag(Flags::C, de & 1 != 0);
                self.regs.set16(Reg16::De, (de >> 1) | (c << 15));
                2
            }
            0xF7 => {
                // mul: hl:bc = bc * de (signed 16x16 -> 32)
                let bc = self.regs.bc() as i16;
                let de = self.regs.de() as i16;
                let prod = i32::from(bc) * i32::from(de);
                self.regs.set16(Reg16::Hl, (prod >> 16) as u16);
                self.regs.set16(Reg16::Bc, prod as u16);
                12
            }
            0xD9 => {
                self.regs.swap_main();
                2
            }
            0xE3 => {
                let sp = self.regs.sp;
                let v = self.read16(mem, io, sp);
                let hl = self.regs.hl();
                self.write16(mem, io, sp, hl);
                self.regs.set16(Reg16::Hl, v);
                15
            }
            0xE9 => {
                self.regs.pc = self.regs.hl();
                4
            }
            0xEB => {
                let de = self.regs.de();
                let hl = self.regs.hl();
                self.regs.set16(Reg16::De, hl);
                self.regs.set16(Reg16::Hl, de);
                2
            }
            0xF9 => {
                self.regs.sp = self.regs.hl();
                2
            }
            0xD3 => {
                // ioi prefix
                self.io_prefix = Some(IoPrefix::Internal);
                2
            }
            0xDB => {
                // ioe prefix
                self.io_prefix = Some(IoPrefix::External);
                2
            }
            0xCB => self.exec_cb(mem, io),
            0xED => self.exec_ed(pc0, mem, io)?,
            0xDD => self.exec_index(Reg16::Ix, pc0, mem, io)?,
            0xFD => self.exec_index(Reg16::Iy, pc0, mem, io)?,
            _ => return invalid,
        };

        if clear_prefix_after {
            self.io_prefix = None;
        }
        Ok(cycles)
    }

    #[inline]
    pub(crate) fn alu(&mut self, code: u8, v: u8) {
        match code {
            0 => self.add8(v, false),
            1 => self.add8(v, true),
            2 => self.sub8(v, false, true),
            3 => self.sub8(v, true, true),
            4 => {
                let res = self.regs.a & v;
                self.logic8(res, true);
            }
            5 => {
                let res = self.regs.a ^ v;
                self.logic8(res, false);
            }
            6 => {
                let res = self.regs.a | v;
                self.logic8(res, false);
            }
            _ => self.sub8(v, false, false),
        }
    }

    fn exec_cb<I: IoSpace + ?Sized>(&mut self, mem: &mut Memory, io: &mut I) -> u32 {
        let op = self.fetch8(mem);
        let src = op & 7;
        let kind = op >> 6;
        let field = (op >> 3) & 7;
        match kind {
            0 => {
                // rotates and shifts
                match Reg8::from_code(src) {
                    Some(r) => {
                        let v = self.regs.get8(r);
                        let res = self.rot8(field, v);
                        self.regs.set8(r, res);
                        4
                    }
                    None => {
                        let addr = self.regs.hl();
                        let v = self.read8(mem, io, addr);
                        let res = self.rot8(field, v);
                        self.write8(mem, io, addr, res);
                        10
                    }
                }
            }
            1 => {
                // bit b,r
                let (v, c) = match Reg8::from_code(src) {
                    Some(r) => (self.regs.get8(r), 4),
                    None => {
                        let addr = self.regs.hl();
                        (self.read8(mem, io, addr), 7)
                    }
                };
                let set = v & (1 << field) != 0;
                self.regs.set_flag(Flags::Z, !set);
                self.regs.set_flag(Flags::H, true);
                self.regs.set_flag(Flags::N, false);
                c
            }
            _ => {
                // res/set b,r
                let bit = 1u8 << field;
                let apply = |v: u8| if kind == 2 { v & !bit } else { v | bit };
                match Reg8::from_code(src) {
                    Some(r) => {
                        let v = self.regs.get8(r);
                        self.regs.set8(r, apply(v));
                        4
                    }
                    None => {
                        let addr = self.regs.hl();
                        let v = self.read8(mem, io, addr);
                        let res = apply(v);
                        self.write8(mem, io, addr, res);
                        10
                    }
                }
            }
        }
    }

    fn exec_ed<I: IoSpace + ?Sized>(
        &mut self,
        pc0: u16,
        mem: &mut Memory,
        io: &mut I,
    ) -> Result<u32, Fault> {
        let op = self.fetch8(mem);
        let cycles = match op {
            // sbc hl,ss / adc hl,ss
            0x42 | 0x52 | 0x62 | 0x72 => {
                let ss = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Sp][usize::from((op >> 4) - 4)];
                let hl = self.regs.hl();
                let v = self.regs.get16(ss);
                let res = self.sbc16(hl, v);
                self.regs.set16(Reg16::Hl, res);
                4
            }
            0x4A | 0x5A | 0x6A | 0x7A => {
                let ss = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Sp][usize::from((op >> 4) - 4)];
                let hl = self.regs.hl();
                let v = self.regs.get16(ss);
                let res = self.adc16(hl, v);
                self.regs.set16(Reg16::Hl, res);
                4
            }
            // ld (nn),dd / ld dd,(nn)
            0x43 | 0x53 | 0x63 | 0x73 => {
                let nn = self.fetch16(mem);
                let dd = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Sp][usize::from((op >> 4) - 4)];
                let v = self.regs.get16(dd);
                self.write16(mem, io, nn, v);
                13
            }
            0x4B | 0x5B | 0x6B | 0x7B => {
                let nn = self.fetch16(mem);
                let dd = [Reg16::Bc, Reg16::De, Reg16::Hl, Reg16::Sp][usize::from((op >> 4) - 4)];
                let v = self.read16(mem, io, nn);
                self.regs.set16(dd, v);
                11
            }
            0x44 => {
                let a = self.regs.a;
                self.regs.a = 0;
                self.sub8(a, false, true);
                4
            }
            0x4D => {
                // reti: restore priority, then return
                self.ipres();
                self.regs.pc = self.pop16(mem, io);
                12
            }
            // ipset n / ipres
            0x46 => {
                self.ipset(0);
                4
            }
            0x56 => {
                self.ipset(1);
                4
            }
            0x4E => {
                self.ipset(2);
                4
            }
            0x5E => {
                self.ipset(3);
                4
            }
            0x5D => {
                self.ipres();
                4
            }
            0x67 => {
                // ld xpc,a
                self.regs.xpc = self.regs.a;
                4
            }
            0x77 => {
                // ld a,xpc
                self.regs.a = self.regs.xpc;
                4
            }
            // block moves
            0xA0 | 0xA8 | 0xB0 | 0xB8 => {
                let dec = op & 8 != 0;
                let repeat = op & 0x10 != 0;
                let mut total = 0u32;
                loop {
                    let hl = self.regs.hl();
                    let de = self.regs.de();
                    let v = self.read8(mem, io, hl);
                    self.write8(mem, io, de, v);
                    let delta: i16 = if dec { -1 } else { 1 };
                    self.regs.set16(Reg16::Hl, hl.wrapping_add_signed(delta));
                    self.regs.set16(Reg16::De, de.wrapping_add_signed(delta));
                    let bc = self.regs.bc().wrapping_sub(1);
                    self.regs.set16(Reg16::Bc, bc);
                    total += if repeat { 7 } else { 10 };
                    self.regs.set_flag(Flags::PV, bc != 0);
                    self.regs.set_flag(Flags::H, false);
                    self.regs.set_flag(Flags::N, false);
                    if !repeat || bc == 0 {
                        break;
                    }
                }
                total
            }
            _ => {
                return Err(Fault::InvalidOpcode {
                    pc: pc0,
                    opcode: op,
                })
            }
        };
        Ok(cycles)
    }

    fn exec_index<I: IoSpace + ?Sized>(
        &mut self,
        idx: Reg16,
        pc0: u16,
        mem: &mut Memory,
        io: &mut I,
    ) -> Result<u32, Fault> {
        let op = self.fetch8(mem);
        let cycles = match op {
            0x21 => {
                let v = self.fetch16(mem);
                self.regs.set16(idx, v);
                8
            }
            0x22 => {
                let nn = self.fetch16(mem);
                let v = self.regs.get16(idx);
                self.write16(mem, io, nn, v);
                15
            }
            0x2A => {
                let nn = self.fetch16(mem);
                let v = self.read16(mem, io, nn);
                self.regs.set16(idx, v);
                13
            }
            0x23 => {
                let v = self.regs.get16(idx).wrapping_add(1);
                self.regs.set16(idx, v);
                4
            }
            0x2B => {
                let v = self.regs.get16(idx).wrapping_sub(1);
                self.regs.set16(idx, v);
                4
            }
            0x09 | 0x19 | 0x29 | 0x39 => {
                let ss = match op >> 4 {
                    0 => Reg16::Bc,
                    1 => Reg16::De,
                    2 => idx,
                    _ => Reg16::Sp,
                };
                let a = self.regs.get16(idx);
                let b = self.regs.get16(ss);
                let res = self.add16(a, b);
                self.regs.set16(idx, res);
                4
            }
            0x34 => {
                let addr = self.index_addr(idx, mem);
                let v = self.read8(mem, io, addr);
                let res = self.inc8val(v);
                self.write8(mem, io, addr, res);
                12
            }
            0x35 => {
                let addr = self.index_addr(idx, mem);
                let v = self.read8(mem, io, addr);
                let res = self.dec8val(v);
                self.write8(mem, io, addr, res);
                12
            }
            0x36 => {
                let addr = self.index_addr(idx, mem);
                let n = self.fetch8(mem);
                self.write8(mem, io, addr, n);
                11
            }
            // ld r,(ix+d)
            0x46 | 0x4E | 0x56 | 0x5E | 0x66 | 0x6E | 0x7E => {
                let addr = self.index_addr(idx, mem);
                let r = Reg8::from_code(op >> 3).expect("ld r,(ix+d) register");
                let v = self.read8(mem, io, addr);
                self.regs.set8(r, v);
                9
            }
            // ld (ix+d),r
            0x70..=0x75 | 0x77 => {
                let addr = self.index_addr(idx, mem);
                let r = Reg8::from_code(op).expect("ld (ix+d),r register");
                let v = self.regs.get8(r);
                self.write8(mem, io, addr, v);
                10
            }
            // alu a,(ix+d)
            0x86 | 0x8E | 0x96 | 0x9E | 0xA6 | 0xAE | 0xB6 | 0xBE => {
                let addr = self.index_addr(idx, mem);
                let v = self.read8(mem, io, addr);
                self.alu(op >> 3 & 7, v);
                9
            }
            0xE1 => {
                let v = self.pop16(mem, io);
                self.regs.set16(idx, v);
                9
            }
            0xE5 => {
                let v = self.regs.get16(idx);
                self.push16(mem, io, v);
                12
            }
            0xE3 => {
                let sp = self.regs.sp;
                let v = self.read16(mem, io, sp);
                let cur = self.regs.get16(idx);
                self.write16(mem, io, sp, cur);
                self.regs.set16(idx, v);
                15
            }
            0xE9 => {
                self.regs.pc = self.regs.get16(idx);
                6
            }
            0xF9 => {
                self.regs.sp = self.regs.get16(idx);
                4
            }
            _ => {
                return Err(Fault::InvalidOpcode {
                    pc: pc0,
                    opcode: op,
                })
            }
        };
        Ok(cycles)
    }

    fn index_addr(&mut self, idx: Reg16, mem: &Memory) -> u16 {
        let d = self.fetch8(mem) as i8;
        self.regs.get16(idx).wrapping_add_signed(i16::from(d))
    }
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu::new()
    }
}
