//! A two-pass assembler for the Rabbit 2000 dialect executed by
//! [`crate::Cpu`].
//!
//! The surface syntax follows classic Z80 assemblers and the inline
//! assembly shown in the paper's §4.1:
//!
//! ```text
//!         org  0x4000
//! start:  ld   hl, table       ; comment
//!         ld   a, (hl)
//!         ioi  ld (0xC0), a    ; WrPortI-style I/O store
//!         jp   nz, start
//! table:  db   1, 2, 3, "text"
//!         dw   0x1234, start
//! len     equ  3
//! ```
//!
//! Supported directives: `org`, `db`, `dw`, `ds`, `equ`, `align`.
//! Expressions allow `+ - * / % & | ^ << >>`, unary `-` and `~`, parens,
//! `lo(e)`/`hi(e)`, character literals, and `$` for the current address.

use std::collections::HashMap;
use std::fmt;

use crate::cpu::Cond;
use crate::mem::Memory;
use crate::registers::{Reg16, Reg8};

/// An assembler diagnostic carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// A contiguous span of assembled bytes at a logical load address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Logical start address.
    pub addr: u16,
    /// Assembled contents.
    pub bytes: Vec<u8>,
}

/// The output of a successful assembly.
#[derive(Debug, Clone, Default)]
pub struct Image {
    /// Sections in source order, one per `org` region.
    pub sections: Vec<Section>,
    /// Label and `equ` values.
    pub symbols: HashMap<String, u16>,
}

impl Image {
    /// Loads every section into memory at `phys = logical` (the identity
    /// root mapping the board uses for code).
    pub fn load_into(&self, mem: &mut Memory) {
        for s in &self.sections {
            mem.load(u32::from(s.addr), &s.bytes);
        }
    }

    /// Total size in bytes across all sections — the "code size" metric of
    /// the paper's Section 6.
    pub fn size(&self) -> usize {
        self.sections.iter().map(|s| s.bytes.len()).sum()
    }

    /// Looks up a symbol's value.
    pub fn symbol(&self, name: &str) -> Option<u16> {
        self.symbols.get(name).copied()
    }
}

/// Assembles `source` into an [`Image`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: syntax errors, unknown
/// mnemonics or operand combinations, undefined symbols, or relative jumps
/// out of range.
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    Assembler::new().assemble(source)
}

// ---------------------------------------------------------------------
// expressions
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Num(i64),
    Sym(String),
    Here,
    Unary(char, Box<Expr>),
    Bin(&'static str, Box<Expr>, Box<Expr>),
    Lo(Box<Expr>),
    Hi(Box<Expr>),
}

impl Expr {
    fn eval(
        &self,
        symbols: &HashMap<String, u16>,
        here: u16,
        line: usize,
    ) -> Result<i64, AsmError> {
        Ok(match self {
            Expr::Num(n) => *n,
            Expr::Sym(s) => i64::from(*symbols.get(s).ok_or_else(|| AsmError {
                line,
                message: format!("undefined symbol `{s}`"),
            })?),
            Expr::Here => i64::from(here),
            Expr::Unary('-', e) => -e.eval(symbols, here, line)?,
            Expr::Unary('~', e) => !e.eval(symbols, here, line)?,
            Expr::Unary(op, _) => {
                return Err(AsmError {
                    line,
                    message: format!("unknown unary operator `{op}`"),
                })
            }
            Expr::Bin(op, a, b) => {
                let a = a.eval(symbols, here, line)?;
                let b = b.eval(symbols, here, line)?;
                match *op {
                    "+" => a.wrapping_add(b),
                    "-" => a.wrapping_sub(b),
                    "*" => a.wrapping_mul(b),
                    "/" => {
                        if b == 0 {
                            return Err(AsmError {
                                line,
                                message: "division by zero in expression".into(),
                            });
                        }
                        a / b
                    }
                    "%" => {
                        if b == 0 {
                            return Err(AsmError {
                                line,
                                message: "modulo by zero in expression".into(),
                            });
                        }
                        a % b
                    }
                    "&" => a & b,
                    "|" => a | b,
                    "^" => a ^ b,
                    "<<" => a.wrapping_shl(b as u32),
                    ">>" => a.wrapping_shr(b as u32),
                    _ => unreachable!("parser only produces known operators"),
                }
            }
            Expr::Lo(e) => e.eval(symbols, here, line)? & 0xFF,
            Expr::Hi(e) => (e.eval(symbols, here, line)? >> 8) & 0xFF,
        })
    }
}

struct ExprParser<'a> {
    toks: &'a [String],
    pos: usize,
    line: usize,
}

impl<'a> ExprParser<'a> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError {
            line: self.line,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(String::as_str)
    }

    fn bump(&mut self) -> Option<&str> {
        let t = self.toks.get(self.pos).map(String::as_str);
        self.pos += 1;
        t
    }

    fn parse(&mut self) -> Result<Expr, AsmError> {
        self.parse_bin(0)
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, AsmError> {
        let mut lhs = self.parse_unary()?;
        while let Some(op) = self.peek() {
            let (prec, sop): (u8, &'static str) = match op {
                "|" => (1, "|"),
                "^" => (2, "^"),
                "&" => (3, "&"),
                "<<" => (4, "<<"),
                ">>" => (4, ">>"),
                "+" => (5, "+"),
                "-" => (5, "-"),
                "*" => (6, "*"),
                "/" => (6, "/"),
                "%" => (6, "%"),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::Bin(sop, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, AsmError> {
        match self.peek() {
            Some("-") => {
                self.bump();
                Ok(Expr::Unary('-', Box::new(self.parse_unary()?)))
            }
            Some("~") => {
                self.bump();
                Ok(Expr::Unary('~', Box::new(self.parse_unary()?)))
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, AsmError> {
        let tok = match self.bump() {
            Some(t) => t.to_string(),
            None => return Err(self.err("expected expression")),
        };
        if tok == "(" {
            let e = self.parse()?;
            match self.bump() {
                Some(")") => Ok(e),
                _ => Err(self.err("expected `)`")),
            }
        } else if tok == "$" {
            Ok(Expr::Here)
        } else if let Some(rest) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
            i64::from_str_radix(rest, 16)
                .map(Expr::Num)
                .map_err(|_| self.err(format!("bad hex literal `{tok}`")))
        } else if let Some(rest) = tok.strip_prefix("0b").or_else(|| tok.strip_prefix("0B")) {
            i64::from_str_radix(rest, 2)
                .map(Expr::Num)
                .map_err(|_| self.err(format!("bad binary literal `{tok}`")))
        } else if tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            tok.parse::<i64>()
                .map(Expr::Num)
                .map_err(|_| self.err(format!("bad number `{tok}`")))
        } else if tok.starts_with('\'') {
            let inner: Vec<char> = tok.chars().collect();
            if inner.len() == 3 && inner[2] == '\'' {
                Ok(Expr::Num(i64::from(inner[1] as u32)))
            } else {
                Err(self.err(format!("bad character literal `{tok}`")))
            }
        } else if (tok.eq_ignore_ascii_case("lo") || tok.eq_ignore_ascii_case("hi"))
            && self.peek() == Some("(")
        {
            self.bump();
            let e = self.parse()?;
            match self.bump() {
                Some(")") => {
                    if tok.eq_ignore_ascii_case("lo") {
                        Ok(Expr::Lo(Box::new(e)))
                    } else {
                        Ok(Expr::Hi(Box::new(e)))
                    }
                }
                _ => Err(self.err("expected `)` after lo/hi")),
            }
        } else if is_ident(&tok) {
            Ok(Expr::Sym(tok))
        } else {
            Err(self.err(format!("unexpected token `{tok}` in expression")))
        }
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

// ---------------------------------------------------------------------
// operands
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Operand {
    R8(Reg8),
    R16(Reg16),
    AfAlt,
    Xpc,
    IndHl,
    IndBc,
    IndDe,
    IndSp,
    IndImm(Expr),
    IndIdx(Reg16, Expr),
    IndSpOff(Expr),
    Imm(Expr),
}

fn parse_reg8(s: &str) -> Option<Reg8> {
    match s.to_ascii_lowercase().as_str() {
        "a" => Some(Reg8::A),
        "b" => Some(Reg8::B),
        "c" => Some(Reg8::C),
        "d" => Some(Reg8::D),
        "e" => Some(Reg8::E),
        "h" => Some(Reg8::H),
        "l" => Some(Reg8::L),
        _ => None,
    }
}

fn parse_reg16(s: &str) -> Option<Reg16> {
    match s.to_ascii_lowercase().as_str() {
        "bc" => Some(Reg16::Bc),
        "de" => Some(Reg16::De),
        "hl" => Some(Reg16::Hl),
        "sp" => Some(Reg16::Sp),
        "af" => Some(Reg16::Af),
        "ix" => Some(Reg16::Ix),
        "iy" => Some(Reg16::Iy),
        _ => None,
    }
}

fn parse_cond(s: &str) -> Option<Cond> {
    match s.to_ascii_lowercase().as_str() {
        "nz" => Some(Cond::Nz),
        "z" => Some(Cond::Z),
        "nc" => Some(Cond::Nc),
        "c" => Some(Cond::C),
        "po" | "lz" => Some(Cond::Po),
        "pe" | "lo" => Some(Cond::Pe),
        "p" => Some(Cond::P),
        "m" => Some(Cond::M),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// emission templates
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Emit {
    Lit(u8),
    /// Low byte of a 16-bit expression (followed by [`Emit::Hi`]).
    Lo(Expr),
    Hi(Expr),
    /// An 8-bit immediate (range-checked to -128..=255).
    Byte(Expr),
    /// A signed displacement for `(ix+d)` / `add sp,d`.
    Disp(Expr),
    /// A relative branch target: encodes `target - (addr_after_insn)`.
    Rel(Expr),
}

impl Emit {
    fn size(&self) -> u16 {
        1
    }
}

// ---------------------------------------------------------------------
// the assembler proper
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Item {
    line: usize,
    addr: u16,
    emits: Vec<Emit>,
}

struct Assembler {
    symbols: HashMap<String, u16>,
}

impl Assembler {
    fn new() -> Assembler {
        Assembler {
            symbols: HashMap::new(),
        }
    }

    fn assemble(mut self, source: &str) -> Result<Image, AsmError> {
        // Pass 1: tokenize, size, and place every item; collect symbols.
        let mut items: Vec<Item> = Vec::new();
        let mut sections: Vec<(u16, u16)> = Vec::new(); // (start, len) regions
        let mut pc: u16 = 0;
        let mut section_start: Option<u16> = None;

        for (idx, raw) in source.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw);
            let mut toks = tokenize(line, line_no)?;
            if toks.is_empty() {
                continue;
            }

            // label?
            if toks.len() >= 2 && toks[1] == ":" {
                let label = toks[0].clone();
                if !is_ident(&label) {
                    return Err(AsmError {
                        line: line_no,
                        message: format!("bad label `{label}`"),
                    });
                }
                if self.symbols.insert(label.clone(), pc).is_some() {
                    return Err(AsmError {
                        line: line_no,
                        message: format!("duplicate label `{label}`"),
                    });
                }
                toks.drain(..2);
                if toks.is_empty() {
                    if section_start.is_none() {
                        section_start = Some(pc);
                    }
                    continue;
                }
            }

            // `name equ expr`
            if toks.len() >= 3 && toks[1].eq_ignore_ascii_case("equ") {
                let name = toks[0].clone();
                let mut ep = ExprParser {
                    toks: &toks[2..],
                    pos: 0,
                    line: line_no,
                };
                let e = ep.parse()?;
                let v = e.eval(&self.symbols, pc, line_no)?;
                self.symbols.insert(name, v as u16);
                continue;
            }

            let mnem = toks[0].to_ascii_lowercase();
            let rest = &toks[1..];
            match mnem.as_str() {
                "org" => {
                    if let Some(start) = section_start.take() {
                        sections.push((start, pc.wrapping_sub(start)));
                    }
                    let mut ep = ExprParser {
                        toks: rest,
                        pos: 0,
                        line: line_no,
                    };
                    let e = ep.parse()?;
                    pc = e.eval(&self.symbols, pc, line_no)? as u16;
                    section_start = Some(pc);
                    continue;
                }
                "align" => {
                    let mut ep = ExprParser {
                        toks: rest,
                        pos: 0,
                        line: line_no,
                    };
                    let n = ep.parse()?.eval(&self.symbols, pc, line_no)? as u16;
                    if n == 0 || !n.is_power_of_two() {
                        return Err(AsmError {
                            line: line_no,
                            message: "align requires a power of two".into(),
                        });
                    }
                    let pad = (n - (pc % n)) % n;
                    let emits = vec![Emit::Lit(0); usize::from(pad)];
                    if section_start.is_none() {
                        section_start = Some(pc);
                    }
                    items.push(Item {
                        line: line_no,
                        addr: pc,
                        emits,
                    });
                    pc = pc.wrapping_add(pad);
                    continue;
                }
                _ => {}
            }

            if section_start.is_none() {
                section_start = Some(pc);
            }
            let emits = self.encode_line(&mnem, rest, line_no)?;
            let size: u16 = emits.iter().map(Emit::size).sum();
            items.push(Item {
                line: line_no,
                addr: pc,
                emits,
            });
            pc = pc.wrapping_add(size);
        }
        if let Some(start) = section_start.take() {
            sections.push((start, pc.wrapping_sub(start)));
        }

        // Overlap check: silently clobbering another section is the kind
        // of bug that costs days on real hardware; reject it here.
        let mut spans: Vec<(u16, u16)> = sections.iter().filter(|s| s.1 > 0).copied().collect();
        spans.sort_unstable();
        for pair in spans.windows(2) {
            let (a_start, a_len) = pair[0];
            let (b_start, _) = pair[1];
            if u32::from(a_start) + u32::from(a_len) > u32::from(b_start) {
                return Err(AsmError {
                    line: 0,
                    message: format!(
                        "section at {a_start:#06x} (+{a_len:#x} bytes) overlaps section at {b_start:#06x}"
                    ),
                });
            }
        }

        // Pass 2: evaluate expressions and emit bytes.
        let mut out: Vec<Section> = sections
            .iter()
            .map(|&(addr, len)| Section {
                addr,
                bytes: vec![0; usize::from(len)],
            })
            .collect();

        for item in &items {
            let mut addr = item.addr;
            let end = item
                .addr
                .wrapping_add(item.emits.iter().map(Emit::size).sum::<u16>());
            for e in &item.emits {
                let byte = match e {
                    Emit::Lit(b) => *b,
                    Emit::Lo(x) => (x.eval(&self.symbols, item.addr, item.line)? & 0xFF) as u8,
                    Emit::Hi(x) => {
                        ((x.eval(&self.symbols, item.addr, item.line)? >> 8) & 0xFF) as u8
                    }
                    Emit::Byte(x) => {
                        let v = x.eval(&self.symbols, item.addr, item.line)?;
                        if !(-128..=255).contains(&v) {
                            return Err(AsmError {
                                line: item.line,
                                message: format!("immediate {v} does not fit in a byte"),
                            });
                        }
                        v as u8
                    }
                    Emit::Disp(x) => {
                        let v = x.eval(&self.symbols, item.addr, item.line)?;
                        if !(-128..=127).contains(&v) {
                            return Err(AsmError {
                                line: item.line,
                                message: format!("displacement {v} out of range"),
                            });
                        }
                        v as u8
                    }
                    Emit::Rel(x) => {
                        let target = x.eval(&self.symbols, item.addr, item.line)?;
                        let delta = target - i64::from(end);
                        if !(-128..=127).contains(&delta) {
                            return Err(AsmError {
                                line: item.line,
                                message: format!("relative branch out of range ({delta})"),
                            });
                        }
                        delta as u8
                    }
                };
                // Locate the section containing `addr`.
                let sect = out
                    .iter_mut()
                    .zip(&sections)
                    .find(|(_, &(s, len))| addr.wrapping_sub(s) < len)
                    .map(|(sec, &(s, _))| (sec, s))
                    .expect("pass-1 placement always lands in a section");
                sect.0.bytes[usize::from(addr.wrapping_sub(sect.1))] = byte;
                addr = addr.wrapping_add(1);
            }
        }

        out.retain(|s| !s.bytes.is_empty());
        Ok(Image {
            sections: out,
            symbols: self.symbols,
        })
    }

    #[allow(clippy::too_many_lines)]
    fn encode_line(
        &mut self,
        mnem: &str,
        toks: &[String],
        line: usize,
    ) -> Result<Vec<Emit>, AsmError> {
        let err = |msg: String| AsmError { line, message: msg };

        // data directives
        match mnem {
            "db" | ".db" | "defb" => {
                let mut emits = Vec::new();
                for field in split_commas(toks) {
                    if field.len() == 1 && field[0].starts_with('"') {
                        let s = &field[0][1..field[0].len() - 1];
                        emits.extend(s.bytes().map(Emit::Lit));
                    } else {
                        let mut ep = ExprParser {
                            toks: field,
                            pos: 0,
                            line,
                        };
                        emits.push(Emit::Byte(ep.parse()?));
                    }
                }
                return Ok(emits);
            }
            "dw" | ".dw" | "defw" => {
                let mut emits = Vec::new();
                for field in split_commas(toks) {
                    let mut ep = ExprParser {
                        toks: field,
                        pos: 0,
                        line,
                    };
                    let e = ep.parse()?;
                    emits.push(Emit::Lo(e.clone()));
                    emits.push(Emit::Hi(e));
                }
                return Ok(emits);
            }
            "ds" | ".ds" | "defs" => {
                let mut ep = ExprParser { toks, pos: 0, line };
                let n = ep.parse()?.eval(&self.symbols, 0, line)?;
                if !(0..=0x10000).contains(&n) {
                    return Err(err(format!("bad ds size {n}")));
                }
                return Ok(vec![Emit::Lit(0); n as usize]);
            }
            _ => {}
        }

        // I/O prefixes: `ioi <instruction>` on the same line (or alone).
        if mnem == "ioi" || mnem == "ioe" {
            let prefix = if mnem == "ioi" { 0xD3 } else { 0xDB };
            let mut emits = vec![Emit::Lit(prefix)];
            if !toks.is_empty() {
                let inner = toks[0].to_ascii_lowercase();
                emits.extend(self.encode_line(&inner, &toks[1..], line)?);
            }
            return Ok(emits);
        }

        let ops = parse_operands(toks, line)?;
        self.encode_insn(mnem, &ops, toks, line)
    }

    #[allow(clippy::too_many_lines)]
    fn encode_insn(
        &mut self,
        mnem: &str,
        ops: &[Operand],
        raw_toks: &[String],
        line: usize,
    ) -> Result<Vec<Emit>, AsmError> {
        use Operand::*;
        let err = |msg: String| AsmError { line, message: msg };
        let bad = || {
            Err(AsmError {
                line,
                message: format!("unsupported operands for `{mnem}`"),
            })
        };

        fn r8code(r: Reg8) -> u8 {
            r as u8
        }
        fn dd(r: Reg16, line: usize) -> Result<u8, AsmError> {
            match r {
                Reg16::Bc => Ok(0),
                Reg16::De => Ok(1),
                Reg16::Hl => Ok(2),
                Reg16::Sp => Ok(3),
                _ => Err(AsmError {
                    line,
                    message: "register pair must be bc/de/hl/sp".into(),
                }),
            }
        }
        fn qq(r: Reg16, line: usize) -> Result<u8, AsmError> {
            match r {
                Reg16::Bc => Ok(0),
                Reg16::De => Ok(1),
                Reg16::Hl => Ok(2),
                Reg16::Af => Ok(3),
                _ => Err(AsmError {
                    line,
                    message: "register pair must be bc/de/hl/af".into(),
                }),
            }
        }
        fn idx_prefix(r: Reg16) -> Option<u8> {
            match r {
                Reg16::Ix => Some(0xDD),
                Reg16::Iy => Some(0xFD),
                _ => None,
            }
        }
        // Condition field taken from the raw first token, because `c` parses
        // as a register otherwise.
        let cond0 = raw_toks.first().and_then(|t| parse_cond(t));

        let out = match (mnem, ops) {
            ("nop", []) => vec![Emit::Lit(0x00)],
            ("halt", []) => vec![Emit::Lit(0x76)],
            ("exx", []) => vec![Emit::Lit(0xD9)],
            ("cpl", []) => vec![Emit::Lit(0x2F)],
            ("scf", []) => vec![Emit::Lit(0x37)],
            ("ccf", []) => vec![Emit::Lit(0x3F)],
            ("rlca", []) => vec![Emit::Lit(0x07)],
            ("rrca", []) => vec![Emit::Lit(0x0F)],
            ("rla", []) => vec![Emit::Lit(0x17)],
            ("rra", []) => vec![Emit::Lit(0x1F)],
            ("neg", []) => vec![Emit::Lit(0xED), Emit::Lit(0x44)],
            ("reti", []) => vec![Emit::Lit(0xED), Emit::Lit(0x4D)],
            ("ldi", []) => vec![Emit::Lit(0xED), Emit::Lit(0xA0)],
            ("ldir", []) => vec![Emit::Lit(0xED), Emit::Lit(0xB0)],
            ("ldd", []) => vec![Emit::Lit(0xED), Emit::Lit(0xA8)],
            ("lddr", []) => vec![Emit::Lit(0xED), Emit::Lit(0xB8)],
            ("mul", []) => vec![Emit::Lit(0xF7)],
            ("ipres", []) => vec![Emit::Lit(0xED), Emit::Lit(0x5D)],
            ("ipset", [Imm(e)]) => {
                let n = e.eval(&self.symbols, 0, line)?;
                let op = match n {
                    0 => 0x46,
                    1 => 0x56,
                    2 => 0x4E,
                    3 => 0x5E,
                    _ => return Err(err(format!("ipset priority {n} out of range"))),
                };
                vec![Emit::Lit(0xED), Emit::Lit(op)]
            }
            ("bool", [R16(Reg16::Hl)]) => vec![Emit::Lit(0xCC)],

            // ---- ld ----
            ("ld", [R8(d), R8(s)]) => vec![Emit::Lit(0x40 | (r8code(*d) << 3) | r8code(*s))],
            ("ld", [R8(d), Imm(e)]) => {
                vec![Emit::Lit(0x06 | (r8code(*d) << 3)), Emit::Byte(e.clone())]
            }
            ("ld", [R8(d), IndHl]) => vec![Emit::Lit(0x46 | (r8code(*d) << 3))],
            ("ld", [IndHl, R8(s)]) => vec![Emit::Lit(0x70 | r8code(*s))],
            ("ld", [IndHl, Imm(e)]) => vec![Emit::Lit(0x36), Emit::Byte(e.clone())],
            ("ld", [R8(Reg8::A), IndBc]) => vec![Emit::Lit(0x0A)],
            ("ld", [R8(Reg8::A), IndDe]) => vec![Emit::Lit(0x1A)],
            ("ld", [IndBc, R8(Reg8::A)]) => vec![Emit::Lit(0x02)],
            ("ld", [IndDe, R8(Reg8::A)]) => vec![Emit::Lit(0x12)],
            ("ld", [R8(Reg8::A), IndImm(e)]) => {
                vec![Emit::Lit(0x3A), Emit::Lo(e.clone()), Emit::Hi(e.clone())]
            }
            ("ld", [IndImm(e), R8(Reg8::A)]) => {
                vec![Emit::Lit(0x32), Emit::Lo(e.clone()), Emit::Hi(e.clone())]
            }
            ("ld", [R8(d), IndIdx(i, e)]) => {
                let p = idx_prefix(*i).ok_or_else(|| err("bad index register".into()))?;
                vec![
                    Emit::Lit(p),
                    Emit::Lit(0x46 | (r8code(*d) << 3)),
                    Emit::Disp(e.clone()),
                ]
            }
            ("ld", [IndIdx(i, e), R8(s)]) => {
                let p = idx_prefix(*i).ok_or_else(|| err("bad index register".into()))?;
                vec![
                    Emit::Lit(p),
                    Emit::Lit(0x70 | r8code(*s)),
                    Emit::Disp(e.clone()),
                ]
            }
            ("ld", [IndIdx(i, e), Imm(n)]) => {
                let p = idx_prefix(*i).ok_or_else(|| err("bad index register".into()))?;
                vec![
                    Emit::Lit(p),
                    Emit::Lit(0x36),
                    Emit::Disp(e.clone()),
                    Emit::Byte(n.clone()),
                ]
            }
            ("ld", [R16(r @ (Reg16::Ix | Reg16::Iy)), Imm(e)]) => {
                let p = idx_prefix(*r).expect("ix/iy");
                vec![
                    Emit::Lit(p),
                    Emit::Lit(0x21),
                    Emit::Lo(e.clone()),
                    Emit::Hi(e.clone()),
                ]
            }
            ("ld", [R16(r @ (Reg16::Ix | Reg16::Iy)), IndImm(e)]) => {
                let p = idx_prefix(*r).expect("ix/iy");
                vec![
                    Emit::Lit(p),
                    Emit::Lit(0x2A),
                    Emit::Lo(e.clone()),
                    Emit::Hi(e.clone()),
                ]
            }
            ("ld", [IndImm(e), R16(r @ (Reg16::Ix | Reg16::Iy))]) => {
                let p = idx_prefix(*r).expect("ix/iy");
                vec![
                    Emit::Lit(p),
                    Emit::Lit(0x22),
                    Emit::Lo(e.clone()),
                    Emit::Hi(e.clone()),
                ]
            }
            ("ld", [R16(Reg16::Hl), IndImm(e)]) => {
                vec![Emit::Lit(0x2A), Emit::Lo(e.clone()), Emit::Hi(e.clone())]
            }
            ("ld", [IndImm(e), R16(Reg16::Hl)]) => {
                vec![Emit::Lit(0x22), Emit::Lo(e.clone()), Emit::Hi(e.clone())]
            }
            ("ld", [R16(r), IndImm(e)]) => {
                let code = dd(*r, line)?;
                vec![
                    Emit::Lit(0xED),
                    Emit::Lit(0x4B | (code << 4)),
                    Emit::Lo(e.clone()),
                    Emit::Hi(e.clone()),
                ]
            }
            ("ld", [IndImm(e), R16(r)]) => {
                let code = dd(*r, line)?;
                vec![
                    Emit::Lit(0xED),
                    Emit::Lit(0x43 | (code << 4)),
                    Emit::Lo(e.clone()),
                    Emit::Hi(e.clone()),
                ]
            }
            ("ld", [R16(r), Imm(e)]) => {
                let code = dd(*r, line)?;
                vec![
                    Emit::Lit(0x01 | (code << 4)),
                    Emit::Lo(e.clone()),
                    Emit::Hi(e.clone()),
                ]
            }
            ("ld", [R16(Reg16::Sp), R16(Reg16::Hl)]) => vec![Emit::Lit(0xF9)],
            ("ld", [R16(Reg16::Sp), R16(r @ (Reg16::Ix | Reg16::Iy))]) => {
                let p = idx_prefix(*r).expect("ix/iy");
                vec![Emit::Lit(p), Emit::Lit(0xF9)]
            }
            ("ld", [R16(Reg16::Hl), IndSpOff(e)]) => {
                vec![Emit::Lit(0xC4), Emit::Byte(e.clone())]
            }
            ("ld", [IndSpOff(e), R16(Reg16::Hl)]) => {
                vec![Emit::Lit(0xD4), Emit::Byte(e.clone())]
            }
            ("ld", [Xpc, R8(Reg8::A)]) => vec![Emit::Lit(0xED), Emit::Lit(0x67)],
            ("ld", [R8(Reg8::A), Xpc]) => vec![Emit::Lit(0xED), Emit::Lit(0x77)],

            // ---- exchanges ----
            ("ex", [R16(Reg16::De), R16(Reg16::Hl)]) => vec![Emit::Lit(0xEB)],
            ("ex", [R16(Reg16::Af), AfAlt]) => vec![Emit::Lit(0x08)],
            ("ex", [IndSp, R16(Reg16::Hl)]) => vec![Emit::Lit(0xE3)],
            ("ex", [IndSp, R16(r @ (Reg16::Ix | Reg16::Iy))]) => {
                let p = idx_prefix(*r).expect("ix/iy");
                vec![Emit::Lit(p), Emit::Lit(0xE3)]
            }

            // ---- 16-bit arithmetic ----
            ("add", [R16(Reg16::Hl), R16(s)]) => vec![Emit::Lit(0x09 | (dd(*s, line)? << 4))],
            ("add", [R16(i @ (Reg16::Ix | Reg16::Iy)), R16(s)]) => {
                let p = idx_prefix(*i).expect("ix/iy");
                let code = match s {
                    Reg16::Bc => 0,
                    Reg16::De => 1,
                    r if r == i => 2,
                    Reg16::Sp => 3,
                    _ => return bad(),
                };
                vec![Emit::Lit(p), Emit::Lit(0x09 | (code << 4))]
            }
            ("add", [R16(Reg16::Sp), Imm(e)]) => vec![Emit::Lit(0x27), Emit::Disp(e.clone())],
            ("adc", [R16(Reg16::Hl), R16(s)]) => {
                vec![Emit::Lit(0xED), Emit::Lit(0x4A | (dd(*s, line)? << 4))]
            }
            ("sbc", [R16(Reg16::Hl), R16(s)]) => {
                vec![Emit::Lit(0xED), Emit::Lit(0x42 | (dd(*s, line)? << 4))]
            }
            ("and", [R16(Reg16::Hl), R16(Reg16::De)]) => vec![Emit::Lit(0xDC)],
            ("or", [R16(Reg16::Hl), R16(Reg16::De)]) => vec![Emit::Lit(0xEC)],
            ("rr", [R16(Reg16::Hl)]) => vec![Emit::Lit(0xFC)],
            ("rl", [R16(Reg16::De)]) => vec![Emit::Lit(0xF3)],
            ("rr", [R16(Reg16::De)]) => vec![Emit::Lit(0xFB)],

            ("inc", [R8(r)]) => vec![Emit::Lit(0x04 | (r8code(*r) << 3))],
            ("inc", [IndHl]) => vec![Emit::Lit(0x34)],
            ("inc", [IndIdx(i, e)]) => {
                let p = idx_prefix(*i).ok_or_else(|| err("bad index register".into()))?;
                vec![Emit::Lit(p), Emit::Lit(0x34), Emit::Disp(e.clone())]
            }
            ("inc", [R16(r @ (Reg16::Ix | Reg16::Iy))]) => {
                let p = idx_prefix(*r).expect("ix/iy");
                vec![Emit::Lit(p), Emit::Lit(0x23)]
            }
            ("inc", [R16(r)]) => vec![Emit::Lit(0x03 | (dd(*r, line)? << 4))],
            ("dec", [R8(r)]) => vec![Emit::Lit(0x05 | (r8code(*r) << 3))],
            ("dec", [IndHl]) => vec![Emit::Lit(0x35)],
            ("dec", [IndIdx(i, e)]) => {
                let p = idx_prefix(*i).ok_or_else(|| err("bad index register".into()))?;
                vec![Emit::Lit(p), Emit::Lit(0x35), Emit::Disp(e.clone())]
            }
            ("dec", [R16(r @ (Reg16::Ix | Reg16::Iy))]) => {
                let p = idx_prefix(*r).expect("ix/iy");
                vec![Emit::Lit(p), Emit::Lit(0x2B)]
            }
            ("dec", [R16(r)]) => vec![Emit::Lit(0x0B | (dd(*r, line)? << 4))],

            // ---- 8-bit ALU ----
            ("add" | "adc" | "sub" | "sbc" | "and" | "xor" | "or" | "cp", _) => {
                let code = match mnem {
                    "add" => 0,
                    "adc" => 1,
                    "sub" => 2,
                    "sbc" => 3,
                    "and" => 4,
                    "xor" => 5,
                    "or" => 6,
                    _ => 7,
                };
                // Accept both `add a, x` and `add x` spellings.
                let rhs = match ops {
                    [R8(Reg8::A), x] => x,
                    [x] => x,
                    _ => return bad(),
                };
                match rhs {
                    R8(s) => vec![Emit::Lit(0x80 | (code << 3) | r8code(*s))],
                    IndHl => vec![Emit::Lit(0x86 | (code << 3))],
                    IndIdx(i, e) => {
                        let p = idx_prefix(*i).ok_or_else(|| err("bad index register".into()))?;
                        vec![
                            Emit::Lit(p),
                            Emit::Lit(0x86 | (code << 3)),
                            Emit::Disp(e.clone()),
                        ]
                    }
                    Imm(e) => vec![Emit::Lit(0xC6 | (code << 3)), Emit::Byte(e.clone())],
                    _ => return bad(),
                }
            }

            // ---- rotates/shifts/bit via CB ----
            ("rlc" | "rrc" | "rl" | "rr" | "sla" | "sra" | "srl", [x]) => {
                let code = match mnem {
                    "rlc" => 0,
                    "rrc" => 1,
                    "rl" => 2,
                    "rr" => 3,
                    "sla" => 4,
                    "sra" => 5,
                    _ => 7,
                };
                match x {
                    R8(r) => vec![Emit::Lit(0xCB), Emit::Lit((code << 3) | r8code(*r))],
                    IndHl => vec![Emit::Lit(0xCB), Emit::Lit((code << 3) | 6)],
                    _ => return bad(),
                }
            }
            ("bit" | "set" | "res", [Imm(b), x]) => {
                let base: u8 = match mnem {
                    "bit" => 0x40,
                    "res" => 0x80,
                    _ => 0xC0,
                };
                let bitno = b.eval(&self.symbols, 0, line)?;
                if !(0..8).contains(&bitno) {
                    return Err(err(format!("bit number {bitno} out of range")));
                }
                let f = (bitno as u8) << 3;
                match x {
                    R8(r) => vec![Emit::Lit(0xCB), Emit::Lit(base | f | r8code(*r))],
                    IndHl => vec![Emit::Lit(0xCB), Emit::Lit(base | f | 6)],
                    _ => return bad(),
                }
            }

            // ---- stack ----
            ("push", [R16(r @ (Reg16::Ix | Reg16::Iy))]) => {
                vec![Emit::Lit(idx_prefix(*r).expect("ix/iy")), Emit::Lit(0xE5)]
            }
            ("pop", [R16(r @ (Reg16::Ix | Reg16::Iy))]) => {
                vec![Emit::Lit(idx_prefix(*r).expect("ix/iy")), Emit::Lit(0xE1)]
            }
            ("push", [R16(r)]) => vec![Emit::Lit(0xC5 | (qq(*r, line)? << 4))],
            ("pop", [R16(r)]) => vec![Emit::Lit(0xC1 | (qq(*r, line)? << 4))],

            // ---- control flow ----
            ("jp", [IndHl]) => vec![Emit::Lit(0xE9)],
            ("jp", [R16(Reg16::Hl)]) => vec![Emit::Lit(0xE9)],
            ("jp", [R16(r @ (Reg16::Ix | Reg16::Iy))]) => {
                vec![Emit::Lit(idx_prefix(*r).expect("ix/iy")), Emit::Lit(0xE9)]
            }
            ("jp", [IndIdx(r @ (Reg16::Ix | Reg16::Iy), e)]) => {
                if e.eval(&self.symbols, 0, line)? != 0 {
                    return Err(err("jp (ix/iy) takes no displacement".into()));
                }
                vec![Emit::Lit(idx_prefix(*r).expect("ix/iy")), Emit::Lit(0xE9)]
            }
            // A single operand is always a target, even when it collides
            // with a condition-code name like `c` or `lo`.
            ("jp", [Imm(e)]) => {
                vec![Emit::Lit(0xC3), Emit::Lo(e.clone()), Emit::Hi(e.clone())]
            }
            ("jp", [_, Imm(e)]) if cond0.is_some() => {
                let cc = cond0.expect("guarded").cc_code();
                vec![
                    Emit::Lit(0xC2 | (cc << 3)),
                    Emit::Lo(e.clone()),
                    Emit::Hi(e.clone()),
                ]
            }
            ("jr", [Imm(e)]) => vec![Emit::Lit(0x18), Emit::Rel(e.clone())],
            ("jr", [_, Imm(e)]) if cond0.is_some() => {
                let cc = cond0.expect("guarded");
                let code = match cc {
                    Cond::Nz => 0x20,
                    Cond::Z => 0x28,
                    Cond::Nc => 0x30,
                    Cond::C => 0x38,
                    _ => return Err(err("jr only supports nz/z/nc/c".into())),
                };
                vec![Emit::Lit(code), Emit::Rel(e.clone())]
            }
            ("djnz", [Imm(e)]) => vec![Emit::Lit(0x10), Emit::Rel(e.clone())],
            ("call", [Imm(e)]) => {
                vec![Emit::Lit(0xCD), Emit::Lo(e.clone()), Emit::Hi(e.clone())]
            }
            ("ret", []) => vec![Emit::Lit(0xC9)],
            ("ret", [_]) if cond0.is_some() => {
                vec![Emit::Lit(0xC0 | (cond0.expect("guarded").cc_code() << 3))]
            }
            ("rst", [Imm(e)]) => {
                let v = e.eval(&self.symbols, 0, line)?;
                match v {
                    0x10 | 0x18 | 0x20 | 0x28 | 0x38 => vec![Emit::Lit(0xC7 | v as u8)],
                    _ => return Err(err(format!("rst {v:#x} is not a Rabbit restart"))),
                }
            }

            _ => return bad(),
        };
        Ok(out)
    }
}

trait CcCode {
    fn cc_code(self) -> u8;
}

impl CcCode for Cond {
    fn cc_code(self) -> u8 {
        match self {
            Cond::Nz => 0,
            Cond::Z => 1,
            Cond::Nc => 2,
            Cond::C => 3,
            Cond::Po => 4,
            Cond::Pe => 5,
            Cond::P => 6,
            Cond::M => 7,
        }
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ';' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn tokenize(line: &str, line_no: usize) -> Result<Vec<String>, AsmError> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\r' => {
                chars.next();
            }
            '"' => {
                let mut s = String::from('"');
                chars.next();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    s.push(c);
                }
                s.push('"');
                toks.push(s);
            }
            '\'' => {
                let mut s = String::from('\'');
                chars.next();
                for c in chars.by_ref() {
                    s.push(c);
                    if c == '\'' {
                        break;
                    }
                }
                toks.push(s);
            }
            '<' | '>' => {
                chars.next();
                if chars.peek() == Some(&c) {
                    chars.next();
                    toks.push(format!("{c}{c}"));
                } else {
                    return Err(AsmError {
                        line: line_no,
                        message: format!("stray `{c}`"),
                    });
                }
            }
            '(' | ')' | ',' | ':' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '$'
            | '=' => {
                chars.next();
                toks.push(c.to_string());
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '.' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '\'' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(s);
            }
            other => {
                return Err(AsmError {
                    line: line_no,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

/// Splits a token list on top-level commas.
fn split_commas(toks: &[String]) -> Vec<&[String]> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.as_str() {
            "(" => depth += 1,
            ")" => depth = depth.saturating_sub(1),
            "," if depth == 0 => {
                out.push(&toks[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
    out
}

fn parse_operands(toks: &[String], line: usize) -> Result<Vec<Operand>, AsmError> {
    let mut ops = Vec::new();
    for field in split_commas(toks) {
        if field.is_empty() {
            return Err(AsmError {
                line,
                message: "empty operand".into(),
            });
        }
        ops.push(parse_operand(field, line)?);
    }
    Ok(ops)
}

fn parse_operand(field: &[String], line: usize) -> Result<Operand, AsmError> {
    // (…) memory operand?
    if field.len() >= 2 && field[0] == "(" && field[field.len() - 1] == ")" {
        let inner = &field[1..field.len() - 1];
        if inner.len() == 1 {
            if let Some(r) = parse_reg16(&inner[0]) {
                return Ok(match r {
                    Reg16::Hl => Operand::IndHl,
                    Reg16::Bc => Operand::IndBc,
                    Reg16::De => Operand::IndDe,
                    Reg16::Sp => Operand::IndSp,
                    Reg16::Ix | Reg16::Iy => Operand::IndIdx(r, Expr::Num(0)),
                    Reg16::Af => {
                        return Err(AsmError {
                            line,
                            message: "(af) is not addressable".into(),
                        })
                    }
                });
            }
        }
        // (ix+d), (iy+d), (sp+n)
        if inner.len() >= 2 {
            if let Some(r) = parse_reg16(&inner[0]) {
                if matches!(r, Reg16::Ix | Reg16::Iy | Reg16::Sp)
                    && (inner[1] == "+" || inner[1] == "-")
                {
                    let mut ep = ExprParser {
                        toks: &inner[1..],
                        pos: 0,
                        line,
                    };
                    // leading +/- parses as part of a unary/binary chain off 0
                    let rest = ep.parse_expr_with_leading_sign()?;
                    return Ok(if r == Reg16::Sp {
                        Operand::IndSpOff(rest)
                    } else {
                        Operand::IndIdx(r, rest)
                    });
                }
            }
        }
        let mut ep = ExprParser {
            toks: inner,
            pos: 0,
            line,
        };
        let e = ep.parse()?;
        if ep.pos != inner.len() {
            return Err(AsmError {
                line,
                message: "trailing tokens in memory operand".into(),
            });
        }
        return Ok(Operand::IndImm(e));
    }

    if field.len() == 1 {
        let t = &field[0];
        if t.eq_ignore_ascii_case("af'") {
            return Ok(Operand::AfAlt);
        }
        if t.eq_ignore_ascii_case("xpc") {
            return Ok(Operand::Xpc);
        }
        if let Some(r) = parse_reg8(t) {
            return Ok(Operand::R8(r));
        }
        if let Some(r) = parse_reg16(t) {
            return Ok(Operand::R16(r));
        }
    }
    // AF' may tokenize as ["af'"], handled above; otherwise immediate.
    let mut ep = ExprParser {
        toks: field,
        pos: 0,
        line,
    };
    let e = ep.parse()?;
    if ep.pos != field.len() {
        return Err(AsmError {
            line,
            message: format!("trailing tokens in operand near `{}`", field[ep.pos]),
        });
    }
    Ok(Operand::Imm(e))
}

impl<'a> ExprParser<'a> {
    /// Parses `+expr` / `-expr` (used for index displacements) as a signed
    /// expression.
    fn parse_expr_with_leading_sign(&mut self) -> Result<Expr, AsmError> {
        let neg = match self.peek() {
            Some("+") => {
                self.bump();
                false
            }
            Some("-") => {
                self.bump();
                true
            }
            _ => false,
        };
        let e = self.parse()?;
        if self.pos != self.toks.len() {
            return Err(self.err("trailing tokens in displacement"));
        }
        Ok(if neg {
            Expr::Unary('-', Box::new(e))
        } else {
            e
        })
    }
}
