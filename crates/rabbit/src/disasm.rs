//! A one-instruction-at-a-time disassembler for debugging and for the
//! code-size accounting in the reproduction of the paper's Section 6.

use crate::mem::Memory;

/// A decoded instruction: its textual form and its size in bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Assembler-syntax text, e.g. `ld hl, 0x1234`.
    pub text: String,
    /// Encoded length in bytes (including prefixes).
    pub len: u16,
}

const R8: [&str; 8] = ["b", "c", "d", "e", "h", "l", "(hl)", "a"];
const DD: [&str; 4] = ["bc", "de", "hl", "sp"];
const QQ: [&str; 4] = ["bc", "de", "hl", "af"];
const CC: [&str; 8] = ["nz", "z", "nc", "c", "po", "pe", "p", "m"];
const ALU: [&str; 8] = [
    "add a,", "adc a,", "sub", "sbc a,", "and", "xor", "or", "cp",
];
const ROT: [&str; 8] = ["rlc", "rrc", "rl", "rr", "sla", "sra", "sll?", "srl"];

/// Disassembles the instruction at physical address `addr`.
pub fn disassemble(mem: &Memory, addr: u32) -> Decoded {
    let b = |i: u32| mem.read_phys(addr + i);
    let imm16 = |i: u32| u16::from_le_bytes([b(i), b(i + 1)]);
    let rel = |i: u32| {
        let d = b(i) as i8;
        format!("$+{}", i32::from(d) + i as i32 + 1)
    };

    let op = b(0);
    let (text, len): (String, u16) = match op {
        0x00 => ("nop".into(), 1),
        0x01 | 0x11 | 0x21 | 0x31 => (
            format!("ld {}, {:#06x}", DD[usize::from(op >> 4)], imm16(1)),
            3,
        ),
        0x02 => ("ld (bc), a".into(), 1),
        0x12 => ("ld (de), a".into(), 1),
        0x0A => ("ld a, (bc)".into(), 1),
        0x1A => ("ld a, (de)".into(), 1),
        0x03 | 0x13 | 0x23 | 0x33 => (format!("inc {}", DD[usize::from(op >> 4)]), 1),
        0x0B | 0x1B | 0x2B | 0x3B => (format!("dec {}", DD[usize::from(op >> 4)]), 1),
        0x04 | 0x0C | 0x14 | 0x1C | 0x24 | 0x2C | 0x34 | 0x3C => {
            (format!("inc {}", R8[usize::from(op >> 3) & 7]), 1)
        }
        0x05 | 0x0D | 0x15 | 0x1D | 0x25 | 0x2D | 0x35 | 0x3D => {
            (format!("dec {}", R8[usize::from(op >> 3) & 7]), 1)
        }
        0x06 | 0x0E | 0x16 | 0x1E | 0x26 | 0x2E | 0x36 | 0x3E => (
            format!("ld {}, {:#04x}", R8[usize::from(op >> 3) & 7], b(1)),
            2,
        ),
        0x07 => ("rlca".into(), 1),
        0x0F => ("rrca".into(), 1),
        0x17 => ("rla".into(), 1),
        0x1F => ("rra".into(), 1),
        0x08 => ("ex af, af'".into(), 1),
        0x09 | 0x19 | 0x29 | 0x39 => (format!("add hl, {}", DD[usize::from(op >> 4)]), 1),
        0x10 => (format!("djnz {}", rel(1)), 2),
        0x18 => (format!("jr {}", rel(1)), 2),
        0x20 | 0x28 | 0x30 | 0x38 => (
            format!("jr {}, {}", CC[usize::from(op >> 3) & 3], rel(1)),
            2,
        ),
        0x22 => (format!("ld ({:#06x}), hl", imm16(1)), 3),
        0x2A => (format!("ld hl, ({:#06x})", imm16(1)), 3),
        0x32 => (format!("ld ({:#06x}), a", imm16(1)), 3),
        0x3A => (format!("ld a, ({:#06x})", imm16(1)), 3),
        0x27 => (format!("add sp, {}", b(1) as i8), 2),
        0x2F => ("cpl".into(), 1),
        0x37 => ("scf".into(), 1),
        0x3F => ("ccf".into(), 1),
        0x76 => ("halt".into(), 1),
        0x40..=0x7F => (
            format!(
                "ld {}, {}",
                R8[usize::from(op >> 3) & 7],
                R8[usize::from(op) & 7]
            ),
            1,
        ),
        0x80..=0xBF => (
            format!(
                "{} {}",
                ALU[usize::from(op >> 3) & 7],
                R8[usize::from(op) & 7]
            ),
            1,
        ),
        0xC0 | 0xC8 | 0xD0 | 0xD8 | 0xE0 | 0xE8 | 0xF0 | 0xF8 => {
            (format!("ret {}", CC[usize::from(op >> 3) & 7]), 1)
        }
        0xC1 | 0xD1 | 0xE1 | 0xF1 => (format!("pop {}", QQ[usize::from((op >> 4) - 0xC)]), 1),
        0xC5 | 0xD5 | 0xE5 | 0xF5 => (format!("push {}", QQ[usize::from((op >> 4) - 0xC)]), 1),
        0xC2 | 0xCA | 0xD2 | 0xDA | 0xE2 | 0xEA | 0xF2 | 0xFA => (
            format!("jp {}, {:#06x}", CC[usize::from(op >> 3) & 7], imm16(1)),
            3,
        ),
        0xC3 => (format!("jp {:#06x}", imm16(1)), 3),
        0xC6 | 0xCE | 0xD6 | 0xDE | 0xE6 | 0xEE | 0xF6 | 0xFE => (
            format!("{} {:#04x}", ALU[usize::from(op >> 3) & 7], b(1)),
            2,
        ),
        0xD7 | 0xDF | 0xE7 | 0xEF | 0xFF => (format!("rst {:#04x}", op & 0x38), 1),
        0xC9 => ("ret".into(), 1),
        0xCD => (format!("call {:#06x}", imm16(1)), 3),
        0xC4 => (format!("ld hl, (sp+{})", b(1)), 2),
        0xD4 => (format!("ld (sp+{}), hl", b(1)), 2),
        0xCC => ("bool hl".into(), 1),
        0xDC => ("and hl, de".into(), 1),
        0xEC => ("or hl, de".into(), 1),
        0xFC => ("rr hl".into(), 1),
        0xF3 => ("rl de".into(), 1),
        0xFB => ("rr de".into(), 1),
        0xF7 => ("mul".into(), 1),
        0xD9 => ("exx".into(), 1),
        0xE3 => ("ex (sp), hl".into(), 1),
        0xE9 => ("jp (hl)".into(), 1),
        0xEB => ("ex de, hl".into(), 1),
        0xF9 => ("ld sp, hl".into(), 1),
        0xD3 => {
            let inner = disassemble(mem, addr + 1);
            (format!("ioi {}", inner.text), inner.len + 1)
        }
        0xDB => {
            let inner = disassemble(mem, addr + 1);
            (format!("ioe {}", inner.text), inner.len + 1)
        }
        0xCB => {
            let sub = b(1);
            let r = R8[usize::from(sub) & 7];
            let f = usize::from(sub >> 3) & 7;
            let text = match sub >> 6 {
                0 => format!("{} {}", ROT[f], r),
                1 => format!("bit {f}, {r}"),
                2 => format!("res {f}, {r}"),
                _ => format!("set {f}, {r}"),
            };
            (text, 2)
        }
        0xED => {
            let sub = b(1);
            match sub {
                0x42 | 0x52 | 0x62 | 0x72 => {
                    (format!("sbc hl, {}", DD[usize::from((sub >> 4) - 4)]), 2)
                }
                0x4A | 0x5A | 0x6A | 0x7A => {
                    (format!("adc hl, {}", DD[usize::from((sub >> 4) - 4)]), 2)
                }
                0x43 | 0x53 | 0x63 | 0x73 => (
                    format!(
                        "ld ({:#06x}), {}",
                        imm16(2),
                        DD[usize::from((sub >> 4) - 4)]
                    ),
                    4,
                ),
                0x4B | 0x5B | 0x6B | 0x7B => (
                    format!(
                        "ld {}, ({:#06x})",
                        DD[usize::from((sub >> 4) - 4)],
                        imm16(2)
                    ),
                    4,
                ),
                0x44 => ("neg".into(), 2),
                0x4D => ("reti".into(), 2),
                0x46 => ("ipset 0".into(), 2),
                0x56 => ("ipset 1".into(), 2),
                0x4E => ("ipset 2".into(), 2),
                0x5E => ("ipset 3".into(), 2),
                0x5D => ("ipres".into(), 2),
                0x67 => ("ld xpc, a".into(), 2),
                0x77 => ("ld a, xpc".into(), 2),
                0xA0 => ("ldi".into(), 2),
                0xB0 => ("ldir".into(), 2),
                0xA8 => ("ldd".into(), 2),
                0xB8 => ("lddr".into(), 2),
                _ => (format!("db 0xed, {sub:#04x} ; ?"), 2),
            }
        }
        0xDD | 0xFD => {
            let idx = if op == 0xDD { "ix" } else { "iy" };
            let sub = b(1);
            let d = |i: u32| b(i) as i8;
            match sub {
                0x21 => (format!("ld {idx}, {:#06x}", imm16(2)), 4),
                0x22 => (format!("ld ({:#06x}), {idx}", imm16(2)), 4),
                0x2A => (format!("ld {idx}, ({:#06x})", imm16(2)), 4),
                0x23 => (format!("inc {idx}"), 2),
                0x2B => (format!("dec {idx}"), 2),
                0x09 | 0x19 | 0x29 | 0x39 => {
                    let ss = match sub >> 4 {
                        0 => "bc",
                        1 => "de",
                        2 => idx,
                        _ => "sp",
                    };
                    (format!("add {idx}, {ss}"), 2)
                }
                0x34 => (format!("inc ({idx}{:+})", d(2)), 3),
                0x35 => (format!("dec ({idx}{:+})", d(2)), 3),
                0x36 => (format!("ld ({idx}{:+}), {:#04x}", d(2), b(3)), 4),
                0x46 | 0x4E | 0x56 | 0x5E | 0x66 | 0x6E | 0x7E => (
                    format!("ld {}, ({idx}{:+})", R8[usize::from(sub >> 3) & 7], d(2)),
                    3,
                ),
                0x70..=0x75 | 0x77 => (
                    format!("ld ({idx}{:+}), {}", d(2), R8[usize::from(sub) & 7]),
                    3,
                ),
                0x86 | 0x8E | 0x96 | 0x9E | 0xA6 | 0xAE | 0xB6 | 0xBE => (
                    format!("{} ({idx}{:+})", ALU[usize::from(sub >> 3) & 7], d(2)),
                    3,
                ),
                0xE1 => (format!("pop {idx}"), 2),
                0xE5 => (format!("push {idx}"), 2),
                0xE3 => (format!("ex (sp), {idx}"), 2),
                0xE9 => (format!("jp ({idx})"), 2),
                0xF9 => (format!("ld sp, {idx}"), 2),
                _ => (format!("db {op:#04x}, {sub:#04x} ; ?"), 2),
            }
        }
        _ => (format!("db {op:#04x} ; ?"), 1),
    };
    Decoded { text, len }
}

/// Disassembles `count` consecutive instructions starting at `addr`,
/// returning `(address, text)` pairs.
pub fn listing(mem: &Memory, mut addr: u32, count: usize) -> Vec<(u32, String)> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let d = disassemble(mem, addr);
        out.push((addr, d.text));
        addr += u32::from(d.len);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_basic_forms() {
        let mut mem = Memory::new();
        mem.load(0x8000, &[0x21, 0x34, 0x12, 0x7E, 0xC9]);
        let d = disassemble(&mem, 0x8000);
        assert_eq!(d.text, "ld hl, 0x1234");
        assert_eq!(d.len, 3);
        assert_eq!(disassemble(&mem, 0x8003).text, "ld a, (hl)");
        assert_eq!(disassemble(&mem, 0x8004).text, "ret");
    }

    #[test]
    fn decodes_prefixed_io() {
        let mut mem = Memory::new();
        mem.load(0x8000, &[0xD3, 0x32, 0xC0, 0x00]);
        let d = disassemble(&mem, 0x8000);
        assert_eq!(d.text, "ioi ld (0x00c0), a");
        assert_eq!(d.len, 4);
    }

    #[test]
    fn listing_walks_instruction_stream() {
        let mut mem = Memory::new();
        mem.load(0x8000, &[0x00, 0x3E, 0x05, 0x76]);
        let l = listing(&mem, 0x8000, 3);
        assert_eq!(l.len(), 3);
        assert_eq!(l[0].1, "nop");
        assert_eq!(l[2].1, "halt");
    }
}
