//! The Rabbit 2000 register file.
//!
//! The Rabbit keeps the Z80's main and alternate banks (`AF BC DE HL` /
//! `AF' BC' DE' HL'`), the index registers `IX`/`IY`, the stack pointer and
//! program counter, and adds `XPC` (the 8-bit extended-memory window
//! selector) and `IP` (the interrupt-priority register).

use std::fmt;

/// Condition-code flag bits stored in the `F` register.
///
/// The layout follows the Z80: the Rabbit 2000 keeps `S`, `Z`, `L/V` and
/// `C` in the same positions; we additionally maintain `H` and `N` so that
/// Z80-style arithmetic semantics hold exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flags;

impl Flags {
    /// Sign flag: bit 7 of the result.
    pub const S: u8 = 0x80;
    /// Zero flag.
    pub const Z: u8 = 0x40;
    /// Half-carry flag (carry out of bit 3).
    pub const H: u8 = 0x10;
    /// Parity / overflow flag (the Rabbit calls this `L/V`).
    pub const PV: u8 = 0x04;
    /// Add/subtract flag (used by `neg`-style semantics).
    pub const N: u8 = 0x02;
    /// Carry flag.
    pub const C: u8 = 0x01;
}

/// An 8-bit register name, in the Z80 encoding order used by opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg8 {
    /// Register `B` (code 0).
    B = 0,
    /// Register `C` (code 1).
    C = 1,
    /// Register `D` (code 2).
    D = 2,
    /// Register `E` (code 3).
    E = 3,
    /// Register `H` (code 4).
    H = 4,
    /// Register `L` (code 5).
    L = 5,
    /// Register `A` (code 7; code 6 is the `(HL)` pseudo-operand).
    A = 7,
}

impl Reg8 {
    /// Decodes a 3-bit register field. Returns `None` for code 6, which
    /// denotes the `(HL)` memory operand rather than a register.
    pub fn from_code(code: u8) -> Option<Reg8> {
        match code & 7 {
            0 => Some(Reg8::B),
            1 => Some(Reg8::C),
            2 => Some(Reg8::D),
            3 => Some(Reg8::E),
            4 => Some(Reg8::H),
            5 => Some(Reg8::L),
            7 => Some(Reg8::A),
            _ => None,
        }
    }
}

/// A 16-bit register pair name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg16 {
    /// Pair `BC`.
    Bc,
    /// Pair `DE`.
    De,
    /// Pair `HL`.
    Hl,
    /// Stack pointer.
    Sp,
    /// Accumulator/flags pair (only for `push`/`pop`).
    Af,
    /// Index register `IX`.
    Ix,
    /// Index register `IY`.
    Iy,
}

/// The complete CPU register state.
#[derive(Clone, PartialEq, Eq)]
pub struct Registers {
    /// Accumulator.
    pub a: u8,
    /// Flags.
    pub f: u8,
    /// General registers.
    pub b: u8,
    pub c: u8,
    pub d: u8,
    pub e: u8,
    pub h: u8,
    pub l: u8,
    /// Alternate bank.
    pub a_alt: u8,
    pub f_alt: u8,
    pub b_alt: u8,
    pub c_alt: u8,
    pub d_alt: u8,
    pub e_alt: u8,
    pub h_alt: u8,
    pub l_alt: u8,
    /// Index registers.
    pub ix: u16,
    pub iy: u16,
    /// Stack pointer.
    pub sp: u16,
    /// Program counter (logical address).
    pub pc: u16,
    /// Extended-memory window selector (the `XPC` register).
    pub xpc: u8,
    /// Interrupt priority (0 = all enabled; 1..=3 mask lower priorities).
    pub ip: u8,
}

impl Registers {
    /// Creates a register file in the post-reset state: everything zero,
    /// stack pointer at the top of the root segment.
    pub fn new() -> Registers {
        Registers {
            a: 0,
            f: 0,
            b: 0,
            c: 0,
            d: 0,
            e: 0,
            h: 0,
            l: 0,
            a_alt: 0,
            f_alt: 0,
            b_alt: 0,
            c_alt: 0,
            d_alt: 0,
            e_alt: 0,
            h_alt: 0,
            l_alt: 0,
            ix: 0,
            iy: 0,
            sp: 0xDFFF,
            pc: 0,
            xpc: 0,
            ip: 0,
        }
    }

    /// Reads an 8-bit register.
    #[inline]
    pub fn get8(&self, r: Reg8) -> u8 {
        match r {
            Reg8::A => self.a,
            Reg8::B => self.b,
            Reg8::C => self.c,
            Reg8::D => self.d,
            Reg8::E => self.e,
            Reg8::H => self.h,
            Reg8::L => self.l,
        }
    }

    /// Writes an 8-bit register.
    #[inline]
    pub fn set8(&mut self, r: Reg8, v: u8) {
        match r {
            Reg8::A => self.a = v,
            Reg8::B => self.b = v,
            Reg8::C => self.c = v,
            Reg8::D => self.d = v,
            Reg8::E => self.e = v,
            Reg8::H => self.h = v,
            Reg8::L => self.l = v,
        }
    }

    /// Reads a 16-bit register pair.
    #[inline]
    pub fn get16(&self, r: Reg16) -> u16 {
        match r {
            Reg16::Bc => u16::from_be_bytes([self.b, self.c]),
            Reg16::De => u16::from_be_bytes([self.d, self.e]),
            Reg16::Hl => u16::from_be_bytes([self.h, self.l]),
            Reg16::Sp => self.sp,
            Reg16::Af => u16::from_be_bytes([self.a, self.f]),
            Reg16::Ix => self.ix,
            Reg16::Iy => self.iy,
        }
    }

    /// Writes a 16-bit register pair.
    #[inline]
    pub fn set16(&mut self, r: Reg16, v: u16) {
        let [hi, lo] = v.to_be_bytes();
        match r {
            Reg16::Bc => {
                self.b = hi;
                self.c = lo;
            }
            Reg16::De => {
                self.d = hi;
                self.e = lo;
            }
            Reg16::Hl => {
                self.h = hi;
                self.l = lo;
            }
            Reg16::Sp => self.sp = v,
            Reg16::Af => {
                self.a = hi;
                self.f = lo;
            }
            Reg16::Ix => self.ix = v,
            Reg16::Iy => self.iy = v,
        }
    }

    /// Convenience accessor for `HL`.
    pub fn hl(&self) -> u16 {
        self.get16(Reg16::Hl)
    }

    /// Convenience accessor for `BC`.
    pub fn bc(&self) -> u16 {
        self.get16(Reg16::Bc)
    }

    /// Convenience accessor for `DE`.
    pub fn de(&self) -> u16 {
        self.get16(Reg16::De)
    }

    /// Tests a flag bit.
    pub fn flag(&self, bit: u8) -> bool {
        self.f & bit != 0
    }

    /// Sets or clears a flag bit.
    pub fn set_flag(&mut self, bit: u8, on: bool) {
        if on {
            self.f |= bit;
        } else {
            self.f &= !bit;
        }
    }

    /// Swaps `AF` with the alternate bank (`ex af,af'`).
    pub fn swap_af(&mut self) {
        std::mem::swap(&mut self.a, &mut self.a_alt);
        std::mem::swap(&mut self.f, &mut self.f_alt);
    }

    /// Swaps `BC`, `DE` and `HL` with the alternate bank (`exx`).
    pub fn swap_main(&mut self) {
        std::mem::swap(&mut self.b, &mut self.b_alt);
        std::mem::swap(&mut self.c, &mut self.c_alt);
        std::mem::swap(&mut self.d, &mut self.d_alt);
        std::mem::swap(&mut self.e, &mut self.e_alt);
        std::mem::swap(&mut self.h, &mut self.h_alt);
        std::mem::swap(&mut self.l, &mut self.l_alt);
    }
}

impl Default for Registers {
    fn default() -> Registers {
        Registers::new()
    }
}

impl fmt::Debug for Registers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "A={:02X} F={:02X} BC={:04X} DE={:04X} HL={:04X} IX={:04X} IY={:04X} SP={:04X} PC={:04X} XPC={:02X} IP={}",
            self.a,
            self.f,
            self.bc(),
            self.de(),
            self.hl(),
            self.ix,
            self.iy,
            self.sp,
            self.pc,
            self.xpc,
            self.ip,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_round_trip() {
        let mut r = Registers::new();
        r.set16(Reg16::Bc, 0x1234);
        assert_eq!(r.b, 0x12);
        assert_eq!(r.c, 0x34);
        assert_eq!(r.get16(Reg16::Bc), 0x1234);
        r.set16(Reg16::Af, 0xABCD);
        assert_eq!(r.a, 0xAB);
        assert_eq!(r.f, 0xCD);
    }

    #[test]
    fn reg8_codes_match_z80_encoding() {
        assert_eq!(Reg8::from_code(0), Some(Reg8::B));
        assert_eq!(Reg8::from_code(5), Some(Reg8::L));
        assert_eq!(Reg8::from_code(6), None);
        assert_eq!(Reg8::from_code(7), Some(Reg8::A));
    }

    #[test]
    fn flag_set_clear() {
        let mut r = Registers::new();
        r.set_flag(Flags::Z, true);
        assert!(r.flag(Flags::Z));
        r.set_flag(Flags::Z, false);
        assert!(!r.flag(Flags::Z));
    }

    #[test]
    fn exx_swaps_banks() {
        let mut r = Registers::new();
        r.set16(Reg16::Hl, 0xBEEF);
        r.swap_main();
        assert_eq!(r.hl(), 0);
        r.swap_main();
        assert_eq!(r.hl(), 0xBEEF);
    }
}
