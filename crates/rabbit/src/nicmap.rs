//! The board NIC's external-I/O register map, shared across the repo.
//!
//! One definition for everyone who speaks to the NIC: the device model
//! (`rmc2000::nic`), the hand-written firmware shims
//! (`rmc2000::firmware`), and the `dcc` code generator's `nic.h`-style
//! intrinsics (which lower straight to `ioe` accesses against these
//! ports). `dcc` cannot depend on `rmc2000` — the board crate depends on
//! the compiler to build its C firmware — so the map lives here, next to
//! [`crate::fwmap`], the analogous shared memory map.
//!
//! # Register bank (external I/O space)
//!
//! | port | dir | register |
//! |------|-----|----------|
//! | `0x0300` | w | `CMD`: 1 LISTEN, 2 `TX_GO`, 3 `RX_NEXT`, 4 ACCEPT, 5 CLOSE |
//! | `0x0301` | r | `STATUS` (see the `STATUS_*` bits) |
//! | `0x0302` | w | `IER`: bit0 enables the NIC interrupt |
//! | `0x0303/4` | r | `RXLEN` lo/hi: length of the selected handle's rx frame |
//! | `0x0305/6` | w | `TXLEN` lo/hi: length for the next `TX_GO` |
//! | `0x0307/8` | w | `LPORT` lo/hi: TCP port for LISTEN (default 7) |
//! | `0x0309` | rw | `CONN`: connection-handle select (`0..MAX_CONNS`) |
//! | `0x1000..` | r | rx window: bytes of the selected handle's rx frame |
//! | `0x1800..` | w | tx window: staging buffer for `TX_GO` |
//!
//! `RXLEN`, the rx window, `TX_GO`, `RX_NEXT`, `ACCEPT`, `CLOSE` and the
//! per-connection `STATUS` bits all act on the handle currently selected
//! in `CONN`; `LISTEN`, `IER`, `LPORT` and the global `STATUS` bits are
//! handle-independent.

/// Connection handles the register file exposes — the paper's limit of
/// three concurrent connections.
pub const MAX_CONNS: usize = 3;

/// Base of the NIC register bank in external I/O space.
pub const NIC_BASE: u16 = 0x0300;
/// Command register (write).
pub const NIC_CMD: u16 = NIC_BASE;
/// Status register (read).
pub const NIC_STATUS: u16 = NIC_BASE + 1;
/// Interrupt-enable register (write).
pub const NIC_IER: u16 = NIC_BASE + 2;
/// Selected handle's current rx frame length, low byte (read).
pub const NIC_RXLEN_LO: u16 = NIC_BASE + 3;
/// Selected handle's current rx frame length, high byte (read).
pub const NIC_RXLEN_HI: u16 = NIC_BASE + 4;
/// Tx length, low byte (write).
pub const NIC_TXLEN_LO: u16 = NIC_BASE + 5;
/// Tx length, high byte (write).
pub const NIC_TXLEN_HI: u16 = NIC_BASE + 6;
/// Listen port, low byte (write).
pub const NIC_LPORT_LO: u16 = NIC_BASE + 7;
/// Listen port, high byte (write).
pub const NIC_LPORT_HI: u16 = NIC_BASE + 8;
/// Connection-handle select register (read/write).
pub const NIC_CONN: u16 = NIC_BASE + 9;
/// Start of the receive window in external I/O space.
pub const NIC_RX_WINDOW: u16 = 0x1000;
/// Start of the transmit window in external I/O space.
pub const NIC_TX_WINDOW: u16 = 0x1800;

/// `CMD` value: open the listening socket on the configured port.
pub const CMD_LISTEN: u8 = 1;
/// `CMD` value: transmit `TXLEN` bytes from the tx window on the selected
/// handle.
pub const CMD_TX_GO: u8 = 2;
/// `CMD` value: consume the selected handle's current rx frame.
pub const CMD_RX_NEXT: u8 = 3;
/// `CMD` value: bind the next pending connection to the selected handle.
pub const CMD_ACCEPT: u8 = 4;
/// `CMD` value: close the selected handle and free it.
pub const CMD_CLOSE: u8 = 5;

/// `STATUS` bit: link up (backend attached). Global.
pub const STATUS_LINK: u8 = 0x01;
/// `STATUS` bit: a received frame waits on the selected handle.
pub const STATUS_RX_AVAIL: u8 = 0x02;
/// `STATUS` bit: the selected handle is open (bound to a connection) and
/// can take a `TX_GO`.
pub const STATUS_TX_READY: u8 = 0x04;
/// `STATUS` bit: the selected handle's peer closed its direction.
pub const STATUS_PEER_CLOSED: u8 = 0x08;
/// `STATUS` bit: the selected handle's TCP connection is established.
pub const STATUS_ESTABLISHED: u8 = 0x10;
/// `STATUS` bit: the previous command failed (bad handle, no pending
/// connection, double LISTEN, empty rx queue). Global; each `CMD` write
/// rewrites it. Failed commands change nothing else.
pub const STATUS_ERR: u8 = 0x20;
/// `STATUS` bit: a connection waits in the listen backlog for an
/// `ACCEPT`. Global.
pub const STATUS_ACCEPT_READY: u8 = 0x40;
