//! Physical memory and the Rabbit 2000 memory-management unit.
//!
//! The Rabbit manipulates 16-bit *logical* addresses but can reach 1 MiB of
//! *physical* memory through four windows (the paper's §4: "like the Z80
//! \[it\] manipulates 16-bit addresses \[but\] can access up to 1 MB through
//! bank switching"):
//!
//! | logical range        | segment | physical mapping                   |
//! |----------------------|---------|------------------------------------|
//! | `0x0000..dataseg`    | root    | identity                           |
//! | `dataseg..stackseg`  | data    | `addr + DATASEG * 0x1000`          |
//! | `stackseg..0xE000`   | stack   | `addr + STACKSEG * 0x1000`         |
//! | `0xE000..=0xFFFF`    | xmem    | `addr + XPC * 0x1000`              |
//!
//! The boundaries come from the two nibbles of the `SEGSIZE` register; the
//! xmem window selector `XPC` is a CPU register.
//!
//! On the RMC2000 the physical space holds 512 KiB of flash at
//! `0x00000..0x80000` and 128 KiB of SRAM at `0x80000..0xA0000`. Runtime
//! stores to flash are ignored (flash requires an unlock sequence the
//! firmware never issues); images are loaded through [`Memory::load`],
//! which bypasses write protection.

/// Total physical address space reachable through the MMU.
pub const PHYS_SIZE: usize = 0x10_0000;

/// Size of the RMC2000's flash part (512 KiB).
pub const FLASH_SIZE: usize = 0x8_0000;

/// Size of the RMC2000's SRAM part (128 KiB).
pub const SRAM_SIZE: usize = 0x2_0000;

/// First physical address of SRAM.
pub const SRAM_BASE: u32 = FLASH_SIZE as u32;

/// Base logical address of the bank-switched xmem window.
pub const XMEM_WINDOW: u16 = 0xE000;

/// The MMU mapping registers (normally programmed through internal I/O
/// ports `0x11`–`0x13`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mmu {
    /// `SEGSIZE`: low nibble = data-segment start (in 4 KiB units), high
    /// nibble = stack-segment start.
    pub segsize: u8,
    /// `DATASEG`: 4 KiB-unit offset added to logical addresses in the data
    /// segment.
    pub dataseg: u8,
    /// `STACKSEG`: 4 KiB-unit offset added to logical addresses in the
    /// stack segment.
    pub stackseg: u8,
}

impl Mmu {
    /// Power-on mapping: everything identity-mapped (data segment starts at
    /// `0xD000`, stack at `0xD000`, offsets zero), matching a freshly reset
    /// Rabbit closely enough for firmware that programs the MMU itself.
    pub fn new() -> Mmu {
        Mmu {
            segsize: 0xDD,
            dataseg: 0,
            stackseg: 0,
        }
    }

    /// Logical start of the data segment.
    pub fn data_base(&self) -> u16 {
        u16::from(self.segsize & 0x0F) << 12
    }

    /// Logical start of the stack segment.
    pub fn stack_base(&self) -> u16 {
        u16::from(self.segsize >> 4) << 12
    }

    /// Translates a logical address to a physical address given the current
    /// `XPC` window.
    pub fn translate(&self, addr: u16, xpc: u8) -> u32 {
        if addr >= XMEM_WINDOW {
            (u32::from(addr) + u32::from(xpc) * 0x1000) & (PHYS_SIZE as u32 - 1)
        } else if addr >= self.stack_base() {
            u32::from(addr).wrapping_add(u32::from(self.stackseg) * 0x1000) & (PHYS_SIZE as u32 - 1)
        } else if addr >= self.data_base() {
            u32::from(addr).wrapping_add(u32::from(self.dataseg) * 0x1000) & (PHYS_SIZE as u32 - 1)
        } else {
            u32::from(addr)
        }
    }

    /// Compiles the current mapping (plus an `XPC` value) into a
    /// [`SegMap`]: a per-4-KiB-page offset table that translates with one
    /// indexed add instead of the three-way segment compare chain.
    ///
    /// All four segment boundaries are 4 KiB aligned (the `SEGSIZE`
    /// nibbles and the xmem window base), so a page-granular table is
    /// exact. The map is a snapshot: it must be rebuilt when any of
    /// `SEGSIZE`/`DATASEG`/`STACKSEG`/`XPC` change.
    pub fn seg_map(&self, xpc: u8) -> SegMap {
        let data_page = u16::from(self.segsize & 0x0F);
        let stack_page = u16::from(self.segsize >> 4);
        let mut offsets = [0u32; 16];
        for (page, off) in offsets.iter_mut().enumerate() {
            let page = page as u16;
            *off = if page >= (XMEM_WINDOW >> 12) {
                u32::from(xpc) * 0x1000
            } else if page >= stack_page {
                u32::from(self.stackseg) * 0x1000
            } else if page >= data_page {
                u32::from(self.dataseg) * 0x1000
            } else {
                0
            };
        }
        SegMap { offsets }
    }
}

/// A compiled per-segment translation cache: one physical offset per
/// 4 KiB logical page, derived from an [`Mmu`] snapshot and an `XPC`
/// value by [`Mmu::seg_map`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegMap {
    offsets: [u32; 16],
}

impl SegMap {
    /// Translates a logical address under the snapshotted mapping.
    #[inline]
    pub fn translate(&self, addr: u16) -> u32 {
        u32::from(addr).wrapping_add(self.offsets[usize::from(addr >> 12)]) & (PHYS_SIZE as u32 - 1)
    }
}

impl Default for Mmu {
    fn default() -> Mmu {
        Mmu::new()
    }
}

/// The physical memory of the board: flash plus SRAM.
///
/// Unpopulated physical addresses read as `0xFF` and ignore writes, like a
/// floating bus.
pub struct Memory {
    flash: Vec<u8>,
    sram: Vec<u8>,
    /// Count of stores that targeted flash and were dropped; useful for
    /// catching firmware bugs in tests.
    pub flash_write_faults: u64,
    /// Monotonic counter bumped on every mutation of RAM contents (SRAM
    /// stores and [`Memory::load`]). The block-caching engine compares it
    /// against the value it last saw to detect writes that happened while
    /// it was not watching. Dropped flash stores do not bump it: they
    /// change no bytes, so cached code stays valid.
    pub(crate) store_epoch: u64,
    /// When set, every mutated 256-byte physical page is appended to
    /// [`Memory::dirty_pages`] so the execution engine can invalidate
    /// cached code. Off by default: the plain interpreter pays nothing.
    pub(crate) track_dirty: bool,
    /// Pages (physical address `>> 8`) mutated since the engine last
    /// drained the list. May contain duplicates.
    pub(crate) dirty_pages: Vec<u16>,
    /// Bitset of pages holding cached code, mirrored from the execution
    /// engine. Acts as a store-side filter: writes to pages with no
    /// cached code skip dirty tracking entirely, which keeps the common
    /// data store as cheap as in the plain interpreter.
    pub(crate) code_pages: [u64; 64],
    /// Process-unique identity so a cached engine can tell two `Memory`
    /// instances apart (a fresh memory restarts the epoch counter).
    pub(crate) mem_id: u64,
}

impl Memory {
    /// Creates memory with erased flash (all `0xFF`) and zeroed SRAM.
    pub fn new() -> Memory {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        Memory {
            flash: vec![0xFF; FLASH_SIZE],
            sram: vec![0; SRAM_SIZE],
            flash_write_faults: 0,
            store_epoch: 0,
            track_dirty: false,
            dirty_pages: Vec::new(),
            code_pages: [0; 64],
            mem_id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    #[inline]
    fn mark_dirty(&mut self, phys: u32) {
        self.store_epoch = self.store_epoch.wrapping_add(1);
        if self.track_dirty {
            let page = (phys >> 8) as u16;
            // Only pages that hold cached code matter; everything else
            // (the overwhelmingly common case) skips the list.
            if self.code_pages[(page >> 6) as usize] & (1 << (page & 63)) != 0
                && self.dirty_pages.last() != Some(&page)
            {
                self.dirty_pages.push(page);
            }
        }
    }

    /// Reads one byte of physical memory.
    #[inline]
    pub fn read_phys(&self, phys: u32) -> u8 {
        let p = phys as usize;
        if p < FLASH_SIZE {
            self.flash[p]
        } else if p < FLASH_SIZE + SRAM_SIZE {
            self.sram[p - FLASH_SIZE]
        } else {
            0xFF
        }
    }

    /// Writes one byte of physical memory. Stores to flash are dropped and
    /// counted in [`Memory::flash_write_faults`].
    #[inline]
    pub fn write_phys(&mut self, phys: u32, v: u8) {
        let p = phys as usize;
        if p < FLASH_SIZE {
            self.flash_write_faults += 1;
        } else if p < FLASH_SIZE + SRAM_SIZE {
            self.sram[p - FLASH_SIZE] = v;
            self.mark_dirty(phys);
        }
    }

    /// Loads an image at a physical address, bypassing flash write
    /// protection (this models the development kit's programming port).
    ///
    /// Copies whole populated sub-ranges at once rather than byte by byte;
    /// a load may straddle the flash/SRAM boundary or run off the end of
    /// populated memory (the excess is dropped, like the floating bus).
    pub fn load(&mut self, phys: u32, bytes: &[u8]) {
        let start = phys as usize;
        let end = start.saturating_add(bytes.len());

        // Flash portion.
        if start < FLASH_SIZE {
            let n = bytes.len().min(FLASH_SIZE - start);
            self.flash[start..start + n].copy_from_slice(&bytes[..n]);
        }
        // SRAM portion.
        let sram_end = FLASH_SIZE + SRAM_SIZE;
        if end > FLASH_SIZE && start < sram_end {
            let lo = start.max(FLASH_SIZE);
            let hi = end.min(sram_end);
            let src = lo - start;
            self.sram[lo - FLASH_SIZE..hi - FLASH_SIZE]
                .copy_from_slice(&bytes[src..src + (hi - lo)]);
        }

        // A load rewrites arbitrary code, including flash: bump the epoch
        // so a cached engine does a full flush, and record pages when
        // tracking is live.
        self.store_epoch = self.store_epoch.wrapping_add(1);
        if self.track_dirty && !bytes.is_empty() {
            for page in (phys >> 8)..=((end.saturating_sub(1)) as u32 >> 8) {
                self.dirty_pages.push(page as u16);
            }
        }
    }

    /// Copies `len` bytes starting at a physical address into a vector.
    ///
    /// Bulk-copies the populated sub-ranges; unpopulated space reads as
    /// `0xFF` like the floating bus.
    pub fn dump(&self, phys: u32, len: usize) -> Vec<u8> {
        let mut out = vec![0xFF; len];
        let start = phys as usize;
        let end = start.saturating_add(len);

        if start < FLASH_SIZE {
            let n = len.min(FLASH_SIZE - start);
            out[..n].copy_from_slice(&self.flash[start..start + n]);
        }
        let sram_end = FLASH_SIZE + SRAM_SIZE;
        if end > FLASH_SIZE && start < sram_end {
            let lo = start.max(FLASH_SIZE);
            let hi = end.min(sram_end);
            out[lo - start..hi - start].copy_from_slice(&self.sram[lo - FLASH_SIZE..hi - FLASH_SIZE]);
        }
        out
    }
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mapping_in_root() {
        let mmu = Mmu::new();
        assert_eq!(mmu.translate(0x1234, 0), 0x1234);
    }

    #[test]
    fn xpc_window_maps_to_extended_memory() {
        let mmu = Mmu::new();
        // phys = logical + XPC*0x1000: XPC = 0x72 puts logical 0xE000 at
        // physical 0x80000 (the base of SRAM).
        assert_eq!(mmu.translate(0xE000, 0x72), 0x80000);
        assert_eq!(mmu.translate(0xFFFF, 0x72), 0x81FFF);
    }

    #[test]
    fn data_segment_offset_applies() {
        let mmu = Mmu {
            segsize: 0xD5, // data segment starts at 0x5000
            dataseg: 0x80, // shifted up by 0x80000 (into SRAM)
            stackseg: 0,
        };
        assert_eq!(mmu.translate(0x4FFF, 0), 0x4FFF);
        assert_eq!(mmu.translate(0x5000, 0), 0x85000);
    }

    #[test]
    fn stack_segment_offset_applies() {
        let mmu = Mmu {
            segsize: 0xD5,
            dataseg: 0,
            stackseg: 0x7F, // 0xD000 + 0x7F000 = 0x8C000
        };
        assert_eq!(mmu.translate(0xD000, 0), 0x8C000);
    }

    #[test]
    fn flash_is_write_protected_at_runtime() {
        let mut mem = Memory::new();
        mem.write_phys(0x100, 0xAB);
        assert_eq!(mem.read_phys(0x100), 0xFF);
        assert_eq!(mem.flash_write_faults, 1);
        mem.load(0x100, &[0xAB]);
        assert_eq!(mem.read_phys(0x100), 0xAB);
    }

    #[test]
    fn sram_reads_back() {
        let mut mem = Memory::new();
        mem.write_phys(SRAM_BASE + 5, 0x42);
        assert_eq!(mem.read_phys(SRAM_BASE + 5), 0x42);
    }

    #[test]
    fn unpopulated_space_floats_high() {
        let mut mem = Memory::new();
        mem.write_phys(0xF0000, 1);
        assert_eq!(mem.read_phys(0xF0000), 0xFF);
    }

    #[test]
    fn load_straddles_flash_sram_boundary() {
        let mut mem = Memory::new();
        let img: Vec<u8> = (0..=255u8).cycle().take(0x40).collect();
        mem.load(SRAM_BASE - 0x20, &img);
        for (i, &b) in img.iter().enumerate() {
            assert_eq!(mem.read_phys(SRAM_BASE - 0x20 + i as u32), b, "byte {i}");
        }
        assert_eq!(mem.dump(SRAM_BASE - 0x20, 0x40), img);
    }

    #[test]
    fn load_and_dump_straddle_end_of_populated_memory() {
        let mut mem = Memory::new();
        let top = SRAM_BASE + SRAM_SIZE as u32;
        // Last 4 bytes land in SRAM, the rest falls off the end.
        mem.load(top - 4, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(mem.dump(top - 4, 8), vec![1, 2, 3, 4, 0xFF, 0xFF, 0xFF, 0xFF]);
    }

    #[test]
    fn dump_entirely_outside_populated_memory() {
        let mem = Memory::new();
        assert_eq!(mem.dump(0xF0000, 3), vec![0xFF; 3]);
    }

    #[test]
    fn seg_map_matches_translate() {
        // Every page of a handful of mapping configurations must agree
        // with the reference three-way compare chain.
        let configs = [
            (0xDD, 0x00, 0x00, 0x00),
            (0xD8, 0x78, 0x78, 0x72),
            (0xE5, 0x80, 0x7F, 0xFF),
            (0x4A, 0x12, 0x9C, 0x33),
            (0x00, 0xFF, 0xFF, 0x01),
            (0xFF, 0x01, 0x02, 0x03),
        ];
        for (segsize, dataseg, stackseg, xpc) in configs {
            let mmu = Mmu {
                segsize,
                dataseg,
                stackseg,
            };
            let map = mmu.seg_map(xpc);
            for page in 0..16u32 {
                for off in [0u32, 1, 0x7FF, 0xFFF] {
                    let addr = (page * 0x1000 + off) as u16;
                    assert_eq!(
                        map.translate(addr),
                        mmu.translate(addr, xpc),
                        "addr {addr:#06x} cfg {segsize:#x}/{dataseg:#x}/{stackseg:#x}/{xpc:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn sram_stores_bump_epoch_and_record_pages_when_tracked() {
        let mut mem = Memory::new();
        let e0 = mem.store_epoch;
        mem.write_phys(0x100, 0xAB); // flash: dropped, no epoch bump
        assert_eq!(mem.store_epoch, e0);
        mem.write_phys(SRAM_BASE, 1);
        assert_eq!(mem.store_epoch, e0 + 1);
        assert!(mem.dirty_pages.is_empty(), "tracking off by default");

        mem.track_dirty = true;
        // Mark both target pages as holding cached code; stores to pages
        // without the bit are filtered out before they reach the list.
        for page in [
            ((SRAM_BASE + 0x100) >> 8) as u16,
            ((SRAM_BASE + 0x300) >> 8) as u16,
        ] {
            mem.code_pages[(page >> 6) as usize] |= 1 << (page & 63);
        }
        mem.write_phys(SRAM_BASE + 0x123, 2);
        mem.write_phys(SRAM_BASE + 0x124, 3); // same page, deduped
        mem.write_phys(SRAM_BASE + 0x400, 4); // no code bit: filtered
        mem.write_phys(SRAM_BASE + 0x300, 5);
        assert_eq!(
            mem.dirty_pages,
            vec![
                ((SRAM_BASE + 0x100) >> 8) as u16,
                ((SRAM_BASE + 0x300) >> 8) as u16
            ]
        );
    }
}
