//! Physical memory and the Rabbit 2000 memory-management unit.
//!
//! The Rabbit manipulates 16-bit *logical* addresses but can reach 1 MiB of
//! *physical* memory through four windows (the paper's §4: "like the Z80
//! \[it\] manipulates 16-bit addresses \[but\] can access up to 1 MB through
//! bank switching"):
//!
//! | logical range        | segment | physical mapping                   |
//! |----------------------|---------|------------------------------------|
//! | `0x0000..dataseg`    | root    | identity                           |
//! | `dataseg..stackseg`  | data    | `addr + DATASEG * 0x1000`          |
//! | `stackseg..0xE000`   | stack   | `addr + STACKSEG * 0x1000`         |
//! | `0xE000..=0xFFFF`    | xmem    | `addr + XPC * 0x1000`              |
//!
//! The boundaries come from the two nibbles of the `SEGSIZE` register; the
//! xmem window selector `XPC` is a CPU register.
//!
//! On the RMC2000 the physical space holds 512 KiB of flash at
//! `0x00000..0x80000` and 128 KiB of SRAM at `0x80000..0xA0000`. Runtime
//! stores to flash are ignored (flash requires an unlock sequence the
//! firmware never issues); images are loaded through [`Memory::load`],
//! which bypasses write protection.

/// Total physical address space reachable through the MMU.
pub const PHYS_SIZE: usize = 0x10_0000;

/// Size of the RMC2000's flash part (512 KiB).
pub const FLASH_SIZE: usize = 0x8_0000;

/// Size of the RMC2000's SRAM part (128 KiB).
pub const SRAM_SIZE: usize = 0x2_0000;

/// First physical address of SRAM.
pub const SRAM_BASE: u32 = FLASH_SIZE as u32;

/// Base logical address of the bank-switched xmem window.
pub const XMEM_WINDOW: u16 = 0xE000;

/// The MMU mapping registers (normally programmed through internal I/O
/// ports `0x11`–`0x13`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mmu {
    /// `SEGSIZE`: low nibble = data-segment start (in 4 KiB units), high
    /// nibble = stack-segment start.
    pub segsize: u8,
    /// `DATASEG`: 4 KiB-unit offset added to logical addresses in the data
    /// segment.
    pub dataseg: u8,
    /// `STACKSEG`: 4 KiB-unit offset added to logical addresses in the
    /// stack segment.
    pub stackseg: u8,
}

impl Mmu {
    /// Power-on mapping: everything identity-mapped (data segment starts at
    /// `0xD000`, stack at `0xD000`, offsets zero), matching a freshly reset
    /// Rabbit closely enough for firmware that programs the MMU itself.
    pub fn new() -> Mmu {
        Mmu {
            segsize: 0xDD,
            dataseg: 0,
            stackseg: 0,
        }
    }

    /// Logical start of the data segment.
    pub fn data_base(&self) -> u16 {
        u16::from(self.segsize & 0x0F) << 12
    }

    /// Logical start of the stack segment.
    pub fn stack_base(&self) -> u16 {
        u16::from(self.segsize >> 4) << 12
    }

    /// Translates a logical address to a physical address given the current
    /// `XPC` window.
    pub fn translate(&self, addr: u16, xpc: u8) -> u32 {
        if addr >= XMEM_WINDOW {
            (u32::from(addr) + u32::from(xpc) * 0x1000) & (PHYS_SIZE as u32 - 1)
        } else if addr >= self.stack_base() {
            u32::from(addr).wrapping_add(u32::from(self.stackseg) * 0x1000) & (PHYS_SIZE as u32 - 1)
        } else if addr >= self.data_base() {
            u32::from(addr).wrapping_add(u32::from(self.dataseg) * 0x1000) & (PHYS_SIZE as u32 - 1)
        } else {
            u32::from(addr)
        }
    }
}

impl Default for Mmu {
    fn default() -> Mmu {
        Mmu::new()
    }
}

/// The physical memory of the board: flash plus SRAM.
///
/// Unpopulated physical addresses read as `0xFF` and ignore writes, like a
/// floating bus.
pub struct Memory {
    flash: Vec<u8>,
    sram: Vec<u8>,
    /// Count of stores that targeted flash and were dropped; useful for
    /// catching firmware bugs in tests.
    pub flash_write_faults: u64,
}

impl Memory {
    /// Creates memory with erased flash (all `0xFF`) and zeroed SRAM.
    pub fn new() -> Memory {
        Memory {
            flash: vec![0xFF; FLASH_SIZE],
            sram: vec![0; SRAM_SIZE],
            flash_write_faults: 0,
        }
    }

    /// Reads one byte of physical memory.
    pub fn read_phys(&self, phys: u32) -> u8 {
        let p = phys as usize;
        if p < FLASH_SIZE {
            self.flash[p]
        } else if p < FLASH_SIZE + SRAM_SIZE {
            self.sram[p - FLASH_SIZE]
        } else {
            0xFF
        }
    }

    /// Writes one byte of physical memory. Stores to flash are dropped and
    /// counted in [`Memory::flash_write_faults`].
    pub fn write_phys(&mut self, phys: u32, v: u8) {
        let p = phys as usize;
        if p < FLASH_SIZE {
            self.flash_write_faults += 1;
        } else if p < FLASH_SIZE + SRAM_SIZE {
            self.sram[p - FLASH_SIZE] = v;
        }
    }

    /// Loads an image at a physical address, bypassing flash write
    /// protection (this models the development kit's programming port).
    pub fn load(&mut self, phys: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let p = phys as usize + i;
            if p < FLASH_SIZE {
                self.flash[p] = b;
            } else if p < FLASH_SIZE + SRAM_SIZE {
                self.sram[p - FLASH_SIZE] = b;
            }
        }
    }

    /// Copies `len` bytes starting at a physical address into a vector.
    pub fn dump(&self, phys: u32, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_phys(phys + i as u32)).collect()
    }
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mapping_in_root() {
        let mmu = Mmu::new();
        assert_eq!(mmu.translate(0x1234, 0), 0x1234);
    }

    #[test]
    fn xpc_window_maps_to_extended_memory() {
        let mmu = Mmu::new();
        // phys = logical + XPC*0x1000: XPC = 0x72 puts logical 0xE000 at
        // physical 0x80000 (the base of SRAM).
        assert_eq!(mmu.translate(0xE000, 0x72), 0x80000);
        assert_eq!(mmu.translate(0xFFFF, 0x72), 0x81FFF);
    }

    #[test]
    fn data_segment_offset_applies() {
        let mmu = Mmu {
            segsize: 0xD5, // data segment starts at 0x5000
            dataseg: 0x80, // shifted up by 0x80000 (into SRAM)
            stackseg: 0,
        };
        assert_eq!(mmu.translate(0x4FFF, 0), 0x4FFF);
        assert_eq!(mmu.translate(0x5000, 0), 0x85000);
    }

    #[test]
    fn stack_segment_offset_applies() {
        let mmu = Mmu {
            segsize: 0xD5,
            dataseg: 0,
            stackseg: 0x7F, // 0xD000 + 0x7F000 = 0x8C000
        };
        assert_eq!(mmu.translate(0xD000, 0), 0x8C000);
    }

    #[test]
    fn flash_is_write_protected_at_runtime() {
        let mut mem = Memory::new();
        mem.write_phys(0x100, 0xAB);
        assert_eq!(mem.read_phys(0x100), 0xFF);
        assert_eq!(mem.flash_write_faults, 1);
        mem.load(0x100, &[0xAB]);
        assert_eq!(mem.read_phys(0x100), 0xAB);
    }

    #[test]
    fn sram_reads_back() {
        let mut mem = Memory::new();
        mem.write_phys(SRAM_BASE + 5, 0x42);
        assert_eq!(mem.read_phys(SRAM_BASE + 5), 0x42);
    }

    #[test]
    fn unpopulated_space_floats_high() {
        let mut mem = Memory::new();
        mem.write_phys(0xF0000, 1);
        assert_eq!(mem.read_phys(0xF0000), 0xFF);
    }
}
