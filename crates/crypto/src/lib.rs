//! The cryptographic primitives of the issl service: the full Rijndael
//! cipher (every key/block-size combination issl advertised), the block
//! modes its record layer uses, SHA-1 and HMAC-SHA1 for record
//! authentication, and the `random()` replacement the RMC2000 port had to
//! write because Dynamic C lacks one.
//!
//! Correctness is pinned by published vectors: FIPS-197 appendices B and
//! C for AES, RFC 3174 for SHA-1, RFC 2202 for HMAC-SHA1.
//!
//! ```
//! use crypto::{cbc_decrypt, cbc_encrypt, Rijndael};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cipher = Rijndael::aes(&[7u8; 16])?;
//! let iv = [0u8; 16];
//! let ct = cbc_encrypt(&cipher, &iv, b"attack at dawn")?;
//! assert_eq!(cbc_decrypt(&cipher, &iv, &ct)?, b"attack at dawn");
//! # Ok(())
//! # }
//! ```

pub mod aes;
pub mod gf;
pub mod hmac;
pub mod modes;
pub mod prng;
pub mod sha1;

pub use aes::{Aes, AesError, Rijndael, Size};
pub use hmac::{hmac_sha1, verify_hmac_sha1};
pub use modes::{
    cbc_decrypt, cbc_encrypt, ctr_xor, ecb_decrypt, ecb_encrypt, pkcs7_pad, pkcs7_unpad, ModeError,
};
pub use prng::Prng;
pub use sha1::{sha1, Sha1, DIGEST_LEN};
