//! The `random()` replacement.
//!
//! The paper's §5 lists the missing C library `random` function as the
//! *simplest* class of porting problem — "our solutions ranged from
//! creating a new implementation of the library function (e.g., writing a
//! `random` function) …". This is that function: a small, seedable,
//! deterministic generator of the kind one writes for an 8-bit target
//! (xorshift — cheap enough for a Z80-class machine), **not** a
//! cryptographically strong source. Session keys in the embedded profile
//! stir in handshake nonces to compensate, exactly the sort of pragmatic
//! compromise the original port made.

/// A small xorshift64* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Seeds the generator. A zero seed is remapped (xorshift cannot hold
    /// zero state).
    pub fn new(seed: u64) -> Prng {
        Prng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The classic `random()` shape: a non-negative 31-bit value.
    pub fn random(&mut self) -> i32 {
        (self.next_u64() >> 33) as i32
    }

    /// Fills a buffer with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Folds entropy (e.g. a peer nonce) into the state.
    pub fn stir(&mut self, data: &[u8]) {
        for &b in data {
            self.state = self
                .state
                .rotate_left(8)
                .wrapping_add(u64::from(b))
                .wrapping_mul(0x0010_0000_01B3);
            if self.state == 0 {
                self.state = 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_is_non_negative() {
        let mut p = Prng::new(123);
        for _ in 0..1000 {
            assert!(p.random() >= 0);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut p = Prng::new(0);
        assert_ne!(p.next_u64(), 0);
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut p = Prng::new(5);
        let mut buf = [0u8; 13];
        p.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn stir_changes_the_stream() {
        let mut a = Prng::new(9);
        let mut b = Prng::new(9);
        b.stir(b"peer nonce");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bytes_look_roughly_uniform() {
        let mut p = Prng::new(42);
        let mut buf = vec![0u8; 64 * 1024];
        p.fill(&mut buf);
        let mut counts = [0u32; 256];
        for &b in &buf {
            counts[usize::from(b)] += 1;
        }
        let expected = buf.len() as f64 / 256.0;
        for (v, &c) in counts.iter().enumerate() {
            let ratio = f64::from(c) / expected;
            assert!(
                (0.7..1.3).contains(&ratio),
                "byte {v} count {c} deviates from {expected}"
            );
        }
    }
}
