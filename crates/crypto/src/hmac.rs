//! HMAC-SHA1 (RFC 2104), authenticating the issl record layer.

use crate::sha1::{Sha1, BLOCK_LEN, DIGEST_LEN};

/// Computes HMAC-SHA1 of `data` under `key`.
pub fn hmac_sha1(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = crate::sha1::sha1(key);
        k[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha1::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();

    let mut outer = Sha1::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5C).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time comparison of two MACs.
pub fn verify_hmac_sha1(key: &[u8], data: &[u8], mac: &[u8]) -> bool {
    let expect = hmac_sha1(key, data);
    if mac.len() != expect.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expect.iter().zip(mac) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc2202_test_case_1() {
        let key = [0x0B; 20];
        assert_eq!(
            hex(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_test_case_2() {
        assert_eq!(
            hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_test_case_3() {
        let key = [0xAA; 20];
        let data = [0xDD; 50];
        assert_eq!(
            hex(&hmac_sha1(&key, &data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn long_keys_are_hashed_first() {
        let key = [0xAA; 80];
        let mac = hmac_sha1(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(hex(&mac), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let mac = hmac_sha1(b"k", b"payload");
        assert!(verify_hmac_sha1(b"k", b"payload", &mac));
        assert!(!verify_hmac_sha1(b"k", b"payloae", &mac));
        assert!(!verify_hmac_sha1(b"j", b"payload", &mac));
        assert!(!verify_hmac_sha1(b"k", b"payload", &mac[..10]));
    }
}
