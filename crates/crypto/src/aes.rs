//! The Rijndael block cipher with the full key/block-size matrix issl
//! advertises: keys of 128/192/256 bits **and** blocks of 128/192/256
//! bits (AES proper is the Nb = 4 column).
//!
//! The paper's port kept only 128-bit keys and blocks "to keep our
//! implementation simple" — the embedded profile enforces that restriction
//! at its own layer; this crate implements the whole matrix so the host
//! profile has what issl had.

use std::sync::OnceLock;

use crate::gf::{inv_sbox_table, mul, sbox_table};

/// A Rijndael key or block size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Size {
    /// 128 bits (4 words).
    Bits128,
    /// 192 bits (6 words).
    Bits192,
    /// 256 bits (8 words).
    Bits256,
}

impl Size {
    /// Number of 32-bit words.
    pub fn words(self) -> usize {
        match self {
            Size::Bits128 => 4,
            Size::Bits192 => 6,
            Size::Bits256 => 8,
        }
    }

    /// Number of bytes.
    pub fn bytes(self) -> usize {
        self.words() * 4
    }

    /// Classifies a byte length.
    pub fn from_len(len: usize) -> Option<Size> {
        match len {
            16 => Some(Size::Bits128),
            24 => Some(Size::Bits192),
            32 => Some(Size::Bits256),
            _ => None,
        }
    }
}

/// Errors constructing a cipher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AesError {
    /// Key length is not 16, 24 or 32 bytes.
    BadKeyLength(usize),
    /// Data length does not match the block size.
    BadBlockLength {
        /// Bytes supplied.
        got: usize,
        /// Block size expected.
        expected: usize,
    },
}

impl std::fmt::Display for AesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AesError::BadKeyLength(n) => write!(f, "bad key length {n} (want 16/24/32)"),
            AesError::BadBlockLength { got, expected } => {
                write!(f, "bad block length {got} (want {expected})")
            }
        }
    }
}

impl std::error::Error for AesError {}

fn sbox() -> &'static [u8; 256] {
    static T: OnceLock<[u8; 256]> = OnceLock::new();
    T.get_or_init(sbox_table)
}

fn inv_sbox() -> &'static [u8; 256] {
    static T: OnceLock<[u8; 256]> = OnceLock::new();
    T.get_or_init(inv_sbox_table)
}

/// Lookup tables for the six MixColumns constants (02 03 | 0E 0B 0D 09),
/// replacing the bit-serial GF multiply on the per-block path.
fn mul_tables() -> &'static [[u8; 256]; 6] {
    static T: OnceLock<[[u8; 256]; 6]> = OnceLock::new();
    T.get_or_init(|| {
        let consts = [0x02, 0x03, 0x0E, 0x0B, 0x0D, 0x09];
        let mut t = [[0u8; 256]; 6];
        for (table, c) in t.iter_mut().zip(consts) {
            for (x, e) in table.iter_mut().enumerate() {
                *e = mul(c, x as u8);
            }
        }
        t
    })
}

/// Combined SubBytes+MixColumns tables for the 4-column (AES) geometry:
/// `ENC[i][b]` is the packed column contribution of S-box output
/// `sbox[b]` sitting in row `i`, little-endian byte order.
fn enc_tables() -> &'static [[u32; 256]; 4] {
    static T: OnceLock<[[u32; 256]; 4]> = OnceLock::new();
    T.get_or_init(|| {
        let sb = sbox_table();
        // Column i of the MixColumns matrix.
        let m = [[2, 1, 1, 3], [3, 2, 1, 1], [1, 3, 2, 1], [1, 1, 3, 2]];
        let mut t = [[0u32; 256]; 4];
        for (table, coeffs) in t.iter_mut().zip(m) {
            for (b, e) in table.iter_mut().enumerate() {
                let y = sb[b];
                *e = u32::from_le_bytes([
                    mul(coeffs[0], y),
                    mul(coeffs[1], y),
                    mul(coeffs[2], y),
                    mul(coeffs[3], y),
                ]);
            }
        }
        t
    })
}

/// InvMixColumns tables (no S-box folded in: the decrypt round order
/// interposes AddRoundKey between InvSubBytes and InvMixColumns).
fn dec_tables() -> &'static [[u32; 256]; 4] {
    static T: OnceLock<[[u32; 256]; 4]> = OnceLock::new();
    T.get_or_init(|| {
        // Column i of the InvMixColumns matrix.
        let m = [
            [0x0E, 0x09, 0x0D, 0x0B],
            [0x0B, 0x0E, 0x09, 0x0D],
            [0x0D, 0x0B, 0x0E, 0x09],
            [0x09, 0x0D, 0x0B, 0x0E],
        ];
        let mut t = [[0u32; 256]; 4];
        for (table, coeffs) in t.iter_mut().zip(m) {
            for (b, e) in table.iter_mut().enumerate() {
                let y = b as u8;
                *e = u32::from_le_bytes([
                    mul(coeffs[0], y),
                    mul(coeffs[1], y),
                    mul(coeffs[2], y),
                    mul(coeffs[3], y),
                ]);
            }
        }
        t
    })
}

/// ShiftRows offsets per row for a given Nb (Rijndael spec, Table 1: the
/// row-2/3 offsets grow for the 256-bit block).
fn shift_offsets(nb: usize) -> [usize; 4] {
    match nb {
        8 => [0, 1, 3, 4],
        _ => [0, 1, 2, 3],
    }
}

/// A Rijndael cipher instance: expanded key plus geometry.
#[derive(Clone)]
pub struct Rijndael {
    /// Round keys, one word per column, `nb * (nr + 1)` words.
    round_keys: Vec<[u8; 4]>,
    nb: usize,
    nr: usize,
    block_bytes: usize,
}

/// AES is Rijndael with a 128-bit block.
pub type Aes = Rijndael;

impl Rijndael {
    /// Builds a cipher for the given key bytes and block size.
    ///
    /// # Errors
    ///
    /// [`AesError::BadKeyLength`] unless the key is 16, 24 or 32 bytes.
    pub fn new(key: &[u8], block: Size) -> Result<Rijndael, AesError> {
        let Some(ksize) = Size::from_len(key.len()) else {
            return Err(AesError::BadKeyLength(key.len()));
        };
        let nk = ksize.words();
        let nb = block.words();
        let nr = nk.max(nb) + 6;
        let total_words = nb * (nr + 1);

        // Key expansion (FIPS-197 §5.2, generalised to any Nb).
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let sb = sbox();
        let mut rcon: u8 = 1;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sb[usize::from(*b)];
                }
                temp[0] ^= rcon;
                rcon = crate::gf::xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = sb[usize::from(*b)];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }

        Ok(Rijndael {
            round_keys: w,
            nb,
            nr,
            block_bytes: nb * 4,
        })
    }

    /// AES-128/192/256 constructor (16-byte block).
    ///
    /// # Errors
    ///
    /// As [`Rijndael::new`].
    pub fn aes(key: &[u8]) -> Result<Rijndael, AesError> {
        Rijndael::new(key, Size::Bits128)
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Number of rounds (10/12/14 for AES; up to 14 for big blocks).
    pub fn rounds(&self) -> usize {
        self.nr
    }

    fn add_round_key(&self, state: &mut [u8], round: usize) {
        for c in 0..self.nb {
            let k = self.round_keys[round * self.nb + c];
            for r in 0..4 {
                state[4 * c + r] ^= k[r];
            }
        }
    }

    fn sub_bytes(&self, state: &mut [u8], table: &[u8; 256]) {
        for b in state.iter_mut() {
            *b = table[usize::from(*b)];
        }
    }

    fn shift_rows(&self, state: &mut [u8], inverse: bool) {
        let offsets = shift_offsets(self.nb);
        let mut tmp = [0u8; 8]; // nb is at most 8 columns
        let tmp = &mut tmp[..self.nb];
        for r in 1..4 {
            let off = offsets[r];
            for (c, t) in tmp.iter_mut().enumerate() {
                let src = if inverse {
                    (c + self.nb - off % self.nb) % self.nb
                } else {
                    (c + off) % self.nb
                };
                *t = state[4 * src + r];
            }
            for (c, t) in tmp.iter().enumerate() {
                state[4 * c + r] = *t;
            }
        }
    }

    fn mix_columns(&self, state: &mut [u8], inverse: bool) {
        let tabs = mul_tables();
        for c in 0..self.nb {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            for r in 0..4 {
                let (b0, b1, b2, b3) = (
                    usize::from(col[r]),
                    usize::from(col[(r + 1) % 4]),
                    usize::from(col[(r + 2) % 4]),
                    usize::from(col[(r + 3) % 4]),
                );
                state[4 * c + r] = if inverse {
                    tabs[2][b0] ^ tabs[3][b1] ^ tabs[4][b2] ^ tabs[5][b3]
                } else {
                    tabs[0][b0] ^ tabs[1][b1] ^ col[(r + 2) % 4] ^ col[(r + 3) % 4]
                };
            }
        }
    }

    /// Round key for column `c` of round `round`, packed little-endian.
    #[inline]
    fn rk(&self, round: usize, c: usize) -> u32 {
        u32::from_le_bytes(self.round_keys[round * self.nb + c])
    }

    /// Table-driven encryption for the 4-column (AES proper) geometry.
    fn encrypt_block4(&self, block: &mut [u8]) {
        let te = enc_tables();
        let sb = sbox();
        let mut col = [0u32; 4];
        for (c, chunk) in block.chunks_exact(4).enumerate() {
            col[c] = u32::from_le_bytes(chunk.try_into().expect("4 bytes")) ^ self.rk(0, c);
        }
        for round in 1..self.nr {
            let mut out = [0u32; 4];
            for (c, o) in out.iter_mut().enumerate() {
                *o = te[0][(col[c] & 0xFF) as usize]
                    ^ te[1][((col[(c + 1) & 3] >> 8) & 0xFF) as usize]
                    ^ te[2][((col[(c + 2) & 3] >> 16) & 0xFF) as usize]
                    ^ te[3][(col[(c + 3) & 3] >> 24) as usize]
                    ^ self.rk(round, c);
            }
            col = out;
        }
        for (c, chunk) in block.chunks_exact_mut(4).enumerate() {
            let v = u32::from_le_bytes([
                sb[(col[c] & 0xFF) as usize],
                sb[((col[(c + 1) & 3] >> 8) & 0xFF) as usize],
                sb[((col[(c + 2) & 3] >> 16) & 0xFF) as usize],
                sb[(col[(c + 3) & 3] >> 24) as usize],
            ]) ^ self.rk(self.nr, c);
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Table-driven decryption for the 4-column geometry.
    fn decrypt_block4(&self, block: &mut [u8]) {
        let td = dec_tables();
        let isb = inv_sbox();
        // InvShiftRows moves row r right by r: destination column c takes
        // its row-r byte from column (c - r) mod 4.
        let inv_sub_shift = |col: &[u32; 4], c: usize| -> u32 {
            u32::from_le_bytes([
                isb[(col[c] & 0xFF) as usize],
                isb[((col[(c + 3) & 3] >> 8) & 0xFF) as usize],
                isb[((col[(c + 2) & 3] >> 16) & 0xFF) as usize],
                isb[(col[(c + 1) & 3] >> 24) as usize],
            ])
        };
        let mut col = [0u32; 4];
        for (c, chunk) in block.chunks_exact(4).enumerate() {
            col[c] = u32::from_le_bytes(chunk.try_into().expect("4 bytes")) ^ self.rk(self.nr, c);
        }
        for round in (1..self.nr).rev() {
            let mut out = [0u32; 4];
            for (c, o) in out.iter_mut().enumerate() {
                let u = inv_sub_shift(&col, c) ^ self.rk(round, c);
                *o = td[0][(u & 0xFF) as usize]
                    ^ td[1][((u >> 8) & 0xFF) as usize]
                    ^ td[2][((u >> 16) & 0xFF) as usize]
                    ^ td[3][(u >> 24) as usize];
            }
            col = out;
        }
        for (c, chunk) in block.chunks_exact_mut(4).enumerate() {
            let v = inv_sub_shift(&col, c) ^ self.rk(0, c);
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Encrypts one block in place.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != self.block_bytes()`.
    pub fn encrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), self.block_bytes, "block length");
        if self.nb == 4 {
            return self.encrypt_block4(block);
        }
        let sb = sbox();
        self.add_round_key(block, 0);
        for round in 1..self.nr {
            self.sub_bytes(block, sb);
            self.shift_rows(block, false);
            self.mix_columns(block, false);
            self.add_round_key(block, round);
        }
        self.sub_bytes(block, sb);
        self.shift_rows(block, false);
        self.add_round_key(block, self.nr);
    }

    /// Decrypts one block in place.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != self.block_bytes()`.
    pub fn decrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), self.block_bytes, "block length");
        if self.nb == 4 {
            return self.decrypt_block4(block);
        }
        let sb = inv_sbox();
        self.add_round_key(block, self.nr);
        for round in (1..self.nr).rev() {
            self.shift_rows(block, true);
            self.sub_bytes(block, sb);
            self.add_round_key(block, round);
            self.mix_columns(block, true);
        }
        self.shift_rows(block, true);
        self.sub_bytes(block, sb);
        self.add_round_key(block, 0);
    }
}

impl std::fmt::Debug for Rijndael {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rijndael")
            .field("nb", &self.nb)
            .field("nr", &self.nr)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_appendix_b() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let mut block = hex("3243f6a8885a308d313198a2e0370734");
        let aes = Rijndael::aes(&key).unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block, hex("3925841d02dc09fbdc118597196a0b32"));
        aes.decrypt_block(&mut block);
        assert_eq!(block, hex("3243f6a8885a308d313198a2e0370734"));
    }

    #[test]
    fn fips197_appendix_c1_aes128() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let mut block = hex("00112233445566778899aabbccddeeff");
        let aes = Rijndael::aes(&key).unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block, hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn fips197_appendix_c2_aes192() {
        let key = hex("000102030405060708090a0b0c0d0e0f1011121314151617");
        let mut block = hex("00112233445566778899aabbccddeeff");
        let aes = Rijndael::aes(&key).unwrap();
        assert_eq!(aes.rounds(), 12);
        aes.encrypt_block(&mut block);
        assert_eq!(block, hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
    }

    #[test]
    fn fips197_appendix_c3_aes256() {
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let mut block = hex("00112233445566778899aabbccddeeff");
        let aes = Rijndael::aes(&key).unwrap();
        assert_eq!(aes.rounds(), 14);
        aes.encrypt_block(&mut block);
        assert_eq!(block, hex("8ea2b7ca516745bfeafc49904b496089"));
    }

    #[test]
    fn all_nine_size_combinations_round_trip() {
        for ksize in [Size::Bits128, Size::Bits192, Size::Bits256] {
            for bsize in [Size::Bits128, Size::Bits192, Size::Bits256] {
                let key: Vec<u8> = (0..ksize.bytes() as u8).collect();
                let cipher = Rijndael::new(&key, bsize).unwrap();
                let plain: Vec<u8> = (0..bsize.bytes() as u8).map(|i| i ^ 0x5A).collect();
                let mut block = plain.clone();
                cipher.encrypt_block(&mut block);
                assert_ne!(block, plain, "{ksize:?}/{bsize:?} changed the data");
                cipher.decrypt_block(&mut block);
                assert_eq!(block, plain, "{ksize:?}/{bsize:?} round-trips");
            }
        }
    }

    #[test]
    fn round_counts_follow_the_spec() {
        let k128 = vec![0; 16];
        let k192 = vec![0; 24];
        let k256 = vec![0; 32];
        assert_eq!(Rijndael::new(&k128, Size::Bits128).unwrap().rounds(), 10);
        assert_eq!(Rijndael::new(&k192, Size::Bits128).unwrap().rounds(), 12);
        assert_eq!(Rijndael::new(&k256, Size::Bits128).unwrap().rounds(), 14);
        assert_eq!(Rijndael::new(&k128, Size::Bits256).unwrap().rounds(), 14);
        assert_eq!(Rijndael::new(&k128, Size::Bits192).unwrap().rounds(), 12);
    }

    #[test]
    fn bad_key_length_is_rejected() {
        assert_eq!(
            Rijndael::aes(&[0u8; 17]).unwrap_err(),
            AesError::BadKeyLength(17)
        );
    }

    #[test]
    fn avalanche_single_bit() {
        let key = [7u8; 16];
        let aes = Rijndael::aes(&key).unwrap();
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        b[0] = 1;
        aes.encrypt_block(&mut a);
        aes.encrypt_block(&mut b);
        let differing: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!(
            differing > 40,
            "one flipped bit changes ~half the output, got {differing}"
        );
    }
}
