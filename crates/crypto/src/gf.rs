//! Arithmetic in GF(2^8) with the Rijndael reduction polynomial
//! x^8 + x^4 + x^3 + x + 1 (0x11B), and the S-box built from it.

/// Multiplies by x (the `xtime` primitive of the Rijndael spec).
pub fn xtime(a: u8) -> u8 {
    let shifted = a << 1;
    if a & 0x80 != 0 {
        shifted ^ 0x1B
    } else {
        shifted
    }
}

/// Full GF(2^8) multiplication.
pub fn mul(a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    let mut a = a;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// Multiplicative inverse (0 maps to 0), by exponentiation to 254.
pub fn inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8)*
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u32;
    while e > 0 {
        if e & 1 == 1 {
            result = mul(result, base);
        }
        base = mul(base, base);
        e >>= 1;
    }
    result
}

/// The forward S-box: multiplicative inverse followed by the affine map.
pub fn sbox(a: u8) -> u8 {
    let x = inv(a);
    x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63
}

/// Builds the 256-entry forward S-box table.
pub fn sbox_table() -> [u8; 256] {
    let mut t = [0u8; 256];
    for (i, e) in t.iter_mut().enumerate() {
        *e = sbox(i as u8);
    }
    t
}

/// Builds the inverse S-box table.
pub fn inv_sbox_table() -> [u8; 256] {
    let fwd = sbox_table();
    let mut t = [0u8; 256];
    for (i, &v) in fwd.iter().enumerate() {
        t[usize::from(v)] = i as u8;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xtime_matches_spec_examples() {
        // FIPS-197 §4.2.1: {57} * {02} = {ae}, * {04} = {47}, * {08} = {8e}
        assert_eq!(xtime(0x57), 0xAE);
        assert_eq!(xtime(0xAE), 0x47);
        assert_eq!(xtime(0x47), 0x8E);
    }

    #[test]
    fn mul_matches_spec_example() {
        // FIPS-197 §4.2: {57} x {83} = {c1}
        assert_eq!(mul(0x57, 0x83), 0xC1);
        assert_eq!(mul(0x57, 0x13), 0xFE);
    }

    #[test]
    fn inverse_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a:#x}");
        }
        assert_eq!(inv(0), 0);
    }

    #[test]
    fn sbox_known_entries() {
        // FIPS-197 Figure 7.
        assert_eq!(sbox(0x00), 0x63);
        assert_eq!(sbox(0x01), 0x7C);
        assert_eq!(sbox(0x53), 0xED);
        assert_eq!(sbox(0xFF), 0x16);
    }

    #[test]
    fn inverse_sbox_inverts() {
        let fwd = sbox_table();
        let inv = inv_sbox_table();
        for i in 0..=255u8 {
            assert_eq!(inv[usize::from(fwd[usize::from(i)])], i);
        }
    }
}
