//! Block-cipher modes over [`crate::aes::Rijndael`]: ECB, CBC (with
//! PKCS#7 padding) and CTR, plus the padding helpers themselves.

use crate::aes::Rijndael;

/// Errors from mode-level operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeError {
    /// Input length is not a whole number of blocks.
    NotBlockAligned {
        /// Bytes supplied.
        got: usize,
        /// Block size in force.
        block: usize,
    },
    /// IV length does not match the block size.
    BadIvLength {
        /// Bytes supplied.
        got: usize,
        /// Block size in force.
        block: usize,
    },
    /// Padding bytes are inconsistent (wrong key, corrupt data).
    BadPadding,
}

impl std::fmt::Display for ModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModeError::NotBlockAligned { got, block } => {
                write!(f, "{got} bytes is not a multiple of the {block}-byte block")
            }
            ModeError::BadIvLength { got, block } => {
                write!(f, "IV of {got} bytes does not match the {block}-byte block")
            }
            ModeError::BadPadding => write!(f, "invalid padding"),
        }
    }
}

impl std::error::Error for ModeError {}

/// Appends PKCS#7 padding up to `block` bytes.
pub fn pkcs7_pad(data: &mut Vec<u8>, block: usize) {
    let pad = block - data.len() % block;
    data.extend(std::iter::repeat_n(pad as u8, pad));
}

/// Strips PKCS#7 padding.
///
/// # Errors
///
/// [`ModeError::BadPadding`] when the trailer is inconsistent.
pub fn pkcs7_unpad(data: &mut Vec<u8>, block: usize) -> Result<(), ModeError> {
    let &last = data.last().ok_or(ModeError::BadPadding)?;
    let pad = usize::from(last);
    if pad == 0 || pad > block || pad > data.len() {
        return Err(ModeError::BadPadding);
    }
    if data[data.len() - pad..].iter().any(|&b| b != last) {
        return Err(ModeError::BadPadding);
    }
    data.truncate(data.len() - pad);
    Ok(())
}

/// ECB encryption of whole blocks (no padding; exposed for the Rabbit
/// test bench which pumps raw blocks).
///
/// # Errors
///
/// [`ModeError::NotBlockAligned`].
pub fn ecb_encrypt(cipher: &Rijndael, data: &mut [u8]) -> Result<(), ModeError> {
    let block = cipher.block_bytes();
    if !data.len().is_multiple_of(block) {
        return Err(ModeError::NotBlockAligned {
            got: data.len(),
            block,
        });
    }
    for chunk in data.chunks_mut(block) {
        cipher.encrypt_block(chunk);
    }
    Ok(())
}

/// ECB decryption of whole blocks.
///
/// # Errors
///
/// [`ModeError::NotBlockAligned`].
pub fn ecb_decrypt(cipher: &Rijndael, data: &mut [u8]) -> Result<(), ModeError> {
    let block = cipher.block_bytes();
    if !data.len().is_multiple_of(block) {
        return Err(ModeError::NotBlockAligned {
            got: data.len(),
            block,
        });
    }
    for chunk in data.chunks_mut(block) {
        cipher.decrypt_block(chunk);
    }
    Ok(())
}

/// CBC-encrypts `plain` with PKCS#7 padding. Returns the ciphertext.
///
/// # Errors
///
/// [`ModeError::BadIvLength`].
pub fn cbc_encrypt(cipher: &Rijndael, iv: &[u8], plain: &[u8]) -> Result<Vec<u8>, ModeError> {
    let block = cipher.block_bytes();
    if iv.len() != block {
        return Err(ModeError::BadIvLength {
            got: iv.len(),
            block,
        });
    }
    let mut data = plain.to_vec();
    pkcs7_pad(&mut data, block);
    let mut prev = iv.to_vec();
    for chunk in data.chunks_mut(block) {
        for (b, p) in chunk.iter_mut().zip(&prev) {
            *b ^= p;
        }
        cipher.encrypt_block(chunk);
        prev.copy_from_slice(chunk);
    }
    Ok(data)
}

/// CBC-decrypts and strips PKCS#7 padding. Returns the plaintext.
///
/// # Errors
///
/// [`ModeError::BadIvLength`], [`ModeError::NotBlockAligned`],
/// [`ModeError::BadPadding`].
pub fn cbc_decrypt(cipher: &Rijndael, iv: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, ModeError> {
    let block = cipher.block_bytes();
    if iv.len() != block {
        return Err(ModeError::BadIvLength {
            got: iv.len(),
            block,
        });
    }
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(block) {
        return Err(ModeError::NotBlockAligned {
            got: ciphertext.len(),
            block,
        });
    }
    let mut data = ciphertext.to_vec();
    let mut prev = iv.to_vec();
    for chunk in data.chunks_mut(block) {
        let this_ct = chunk.to_vec();
        cipher.decrypt_block(chunk);
        for (b, p) in chunk.iter_mut().zip(&prev) {
            *b ^= p;
        }
        prev = this_ct;
    }
    pkcs7_unpad(&mut data, block)?;
    Ok(data)
}

/// CTR keystream transform (encryption and decryption are the same
/// operation). The counter occupies the trailing 8 bytes of the nonce
/// block, big-endian.
///
/// # Errors
///
/// [`ModeError::BadIvLength`].
pub fn ctr_xor(cipher: &Rijndael, nonce: &[u8], data: &mut [u8]) -> Result<(), ModeError> {
    let block = cipher.block_bytes();
    if nonce.len() != block {
        return Err(ModeError::BadIvLength {
            got: nonce.len(),
            block,
        });
    }
    let mut counter_block = nonce.to_vec();
    let mut counter: u64 = 0;
    for chunk in data.chunks_mut(block) {
        let mut ks = counter_block.clone();
        let ctr_bytes = counter.to_be_bytes();
        let tail = ks.len() - 8;
        for (k, c) in ks[tail..].iter_mut().zip(ctr_bytes) {
            *k ^= c;
        }
        cipher.encrypt_block(&mut ks);
        for (b, k) in chunk.iter_mut().zip(&ks) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
        counter_block.copy_from_slice(nonce);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Rijndael, Size};

    fn cipher() -> Rijndael {
        Rijndael::aes(&[0x42; 16]).unwrap()
    }

    #[test]
    fn pkcs7_round_trip_all_lengths() {
        for len in 0..48 {
            let mut data: Vec<u8> = (0..len as u8).collect();
            let original = data.clone();
            pkcs7_pad(&mut data, 16);
            assert_eq!(data.len() % 16, 0);
            pkcs7_unpad(&mut data, 16).unwrap();
            assert_eq!(data, original);
        }
    }

    #[test]
    fn pkcs7_rejects_corruption() {
        let mut data = vec![1, 2, 3];
        pkcs7_pad(&mut data, 16);
        let last = data.len() - 1;
        data[last] = 0;
        assert_eq!(pkcs7_unpad(&mut data, 16), Err(ModeError::BadPadding));
    }

    #[test]
    fn ecb_round_trip_and_alignment() {
        let c = cipher();
        let mut data = vec![7u8; 32];
        ecb_encrypt(&c, &mut data).unwrap();
        assert_ne!(data, vec![7u8; 32]);
        // identical plaintext blocks leak in ECB
        assert_eq!(data[..16], data[16..], "ECB leaks repeated blocks");
        ecb_decrypt(&c, &mut data).unwrap();
        assert_eq!(data, vec![7u8; 32]);
        assert!(ecb_encrypt(&c, &mut [0u8; 15]).is_err());
    }

    #[test]
    fn cbc_hides_repeated_blocks_and_round_trips() {
        let c = cipher();
        let iv = [9u8; 16];
        let plain = vec![7u8; 32];
        let ct = cbc_encrypt(&c, &iv, &plain).unwrap();
        assert_ne!(ct[..16], ct[16..32], "CBC masks repetition");
        assert_eq!(cbc_decrypt(&c, &iv, &ct).unwrap(), plain);
    }

    #[test]
    fn cbc_wrong_iv_fails_or_garbles() {
        let c = cipher();
        let ct = cbc_encrypt(&c, &[1u8; 16], b"attack at dawn").unwrap();
        let out = cbc_decrypt(&c, &[2u8; 16], &ct);
        assert!(out.is_err() || out.unwrap() != b"attack at dawn");
    }

    #[test]
    fn cbc_rejects_truncated_ciphertext() {
        let c = cipher();
        let ct = cbc_encrypt(&c, &[0u8; 16], b"hello").unwrap();
        assert!(matches!(
            cbc_decrypt(&c, &[0u8; 16], &ct[..15]),
            Err(ModeError::NotBlockAligned { .. })
        ));
    }

    #[test]
    fn ctr_is_an_involution_any_length() {
        let c = cipher();
        let nonce = [3u8; 16];
        for len in [1usize, 15, 16, 17, 100] {
            let plain: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let mut data = plain.clone();
            ctr_xor(&c, &nonce, &mut data).unwrap();
            assert_ne!(data, plain);
            ctr_xor(&c, &nonce, &mut data).unwrap();
            assert_eq!(data, plain, "len {len}");
        }
    }

    #[test]
    fn modes_work_with_large_rijndael_blocks() {
        let key: Vec<u8> = (0..24).collect();
        let c = Rijndael::new(&key, Size::Bits192).unwrap();
        let iv = vec![5u8; 24];
        let msg = b"rijndael with 192-bit blocks, as issl allowed";
        let ct = cbc_encrypt(&c, &iv, msg).unwrap();
        assert_eq!(cbc_decrypt(&c, &iv, &ct).unwrap(), msg);
    }
}
