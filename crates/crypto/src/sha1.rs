//! SHA-1 (RFC 3174), used by the issl record layer's HMAC.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 20;

/// Block size in bytes (relevant to HMAC).
pub const BLOCK_LEN: usize = 64;

/// Incremental SHA-1 state.
#[derive(Clone)]
pub struct Sha1 {
    h: [u32; 5],
    buf: Vec<u8>,
    len_bits: u64,
}

impl Sha1 {
    /// Fresh hash state.
    pub fn new() -> Sha1 {
        Sha1 {
            h: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            buf: Vec::with_capacity(BLOCK_LEN),
            len_bits: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.len_bits = self.len_bits.wrapping_add(data.len() as u64 * 8);
        let mut rest = data;
        // Top up a partial buffer first.
        if !self.buf.is_empty() {
            let need = BLOCK_LEN - self.buf.len();
            let take = need.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == BLOCK_LEN {
                let block: [u8; BLOCK_LEN] = self.buf[..].try_into().expect("length checked");
                self.compress(&block);
                self.buf.clear();
            }
        }
        // Whole blocks straight from the input, no staging copy.
        while rest.len() >= BLOCK_LEN {
            let block: [u8; BLOCK_LEN] = rest[..BLOCK_LEN].try_into().expect("length checked");
            self.compress(&block);
            rest = &rest[BLOCK_LEN..];
        }
        self.buf.extend_from_slice(rest);
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let len_bits = self.len_bits;
        self.buf.push(0x80);
        self.len_bits = len_bits; // update() above not used for padding
        while self.buf.len() % BLOCK_LEN != 56 {
            self.buf.push(0);
        }
        self.buf.extend_from_slice(&len_bits.to_be_bytes());
        let blocks: Vec<[u8; BLOCK_LEN]> = self
            .buf
            .chunks(BLOCK_LEN)
            .map(|c| c.try_into().expect("whole blocks"))
            .collect();
        for b in blocks {
            self.compress(&b);
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5A82_7999),
                1 => (b ^ c ^ d, 0x6ED9_EBA1),
                2 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

impl Default for Sha1 {
    fn default() -> Sha1 {
        Sha1::new()
    }
}

impl std::fmt::Debug for Sha1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sha1({} bits absorbed)", self.len_bits)
    }
}

/// One-shot convenience.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc3174_vectors() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..500u16).map(|i| (i % 251) as u8).collect();
        let mut h = Sha1::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha1(&data));
    }
}
