//! Property tests over the cipher and modes: round-trip laws for every
//! key/block geometry, mode involutions, and MAC soundness.

use crypto::{
    cbc_decrypt, cbc_encrypt, ctr_xor, ecb_decrypt, ecb_encrypt, hmac_sha1, pkcs7_pad, pkcs7_unpad,
    sha1, verify_hmac_sha1, Rijndael, Size,
};
use proptest::prelude::*;

fn size_strategy() -> impl Strategy<Value = Size> {
    prop_oneof![
        Just(Size::Bits128),
        Just(Size::Bits192),
        Just(Size::Bits256)
    ]
}

proptest! {
    #[test]
    fn rijndael_block_round_trip(
        key in proptest::collection::vec(any::<u8>(), 16..=16),
        block_size in size_strategy(),
        seed: u8,
    ) {
        let cipher = Rijndael::new(&key, block_size).unwrap();
        let plain: Vec<u8> = (0..cipher.block_bytes()).map(|i| (i as u8) ^ seed).collect();
        let mut buf = plain.clone();
        cipher.encrypt_block(&mut buf);
        cipher.decrypt_block(&mut buf);
        prop_assert_eq!(buf, plain);
    }

    #[test]
    fn all_key_sizes_round_trip(klen in prop_oneof![Just(16usize), Just(24), Just(32)], data: [u8; 16]) {
        let key: Vec<u8> = (0..klen as u8).collect();
        let cipher = Rijndael::aes(&key).unwrap();
        let mut buf = data;
        cipher.encrypt_block(&mut buf);
        prop_assert_ne!(buf, data);
        cipher.decrypt_block(&mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn cbc_round_trip_any_length(
        key: [u8; 16],
        iv: [u8; 16],
        plain in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let cipher = Rijndael::aes(&key).unwrap();
        let ct = cbc_encrypt(&cipher, &iv, &plain).unwrap();
        prop_assert_eq!(ct.len() % 16, 0);
        prop_assert!(ct.len() > plain.len(), "padding always added");
        prop_assert_eq!(cbc_decrypt(&cipher, &iv, &ct).unwrap(), plain);
    }

    #[test]
    fn ctr_involution_any_length(
        key: [u8; 16],
        nonce: [u8; 16],
        plain in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let cipher = Rijndael::aes(&key).unwrap();
        let mut buf = plain.clone();
        ctr_xor(&cipher, &nonce, &mut buf).unwrap();
        ctr_xor(&cipher, &nonce, &mut buf).unwrap();
        prop_assert_eq!(buf, plain);
    }

    #[test]
    fn ecb_round_trip_whole_blocks(key: [u8; 16], nblocks in 1usize..8, fill: u8) {
        let cipher = Rijndael::aes(&key).unwrap();
        let plain = vec![fill; nblocks * 16];
        let mut buf = plain.clone();
        ecb_encrypt(&cipher, &mut buf).unwrap();
        ecb_decrypt(&cipher, &mut buf).unwrap();
        prop_assert_eq!(buf, plain);
    }

    #[test]
    fn pkcs7_inverse(data in proptest::collection::vec(any::<u8>(), 0..100)) {
        let mut buf = data.clone();
        pkcs7_pad(&mut buf, 16);
        pkcs7_unpad(&mut buf, 16).unwrap();
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn sha1_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 1..200), flip in 0usize..200) {
        let d1 = sha1(&data);
        prop_assert_eq!(d1, sha1(&data));
        let mut tampered = data.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 1;
        prop_assert_ne!(d1, sha1(&tampered));
    }

    #[test]
    fn hmac_binds_key_and_data(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mac = hmac_sha1(&key, &data);
        prop_assert!(verify_hmac_sha1(&key, &data, &mac));
        let mut k2 = key.clone();
        k2[0] ^= 1;
        prop_assert!(!verify_hmac_sha1(&k2, &data, &mac));
    }

    #[test]
    fn cbc_tampering_is_detected_or_garbles(
        key: [u8; 16],
        iv: [u8; 16],
        plain in proptest::collection::vec(any::<u8>(), 1..100),
        tamper_at in any::<usize>(),
    ) {
        let cipher = Rijndael::aes(&key).unwrap();
        let mut ct = cbc_encrypt(&cipher, &iv, &plain).unwrap();
        let idx = tamper_at % ct.len();
        ct[idx] ^= 0x80;
        match cbc_decrypt(&cipher, &iv, &ct) {
            Err(_) => {}
            Ok(out) => prop_assert_ne!(out, plain),
        }
    }
}
