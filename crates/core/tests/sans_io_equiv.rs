//! Equivalence pinning for the sans-I/O refactor: under arbitrary seeds,
//! payloads and fragmentation boundaries, the [`SessionMachine`] driven
//! directly, the blocking `Session` client wrapper, and the blocking
//! `Session` server wrapper all produce **identical wire transcripts**
//! (both directions, byte for byte) and identical plaintext.
//!
//! This is the acceptance gate for the refactor: `Session` is now a thin
//! wrapper over the machine, and these properties pin that the wrapper
//! is byte-identical to the protocol the blocking implementation spoke —
//! same PRNG consumption order, same record boundaries, same handshake
//! bytes — no matter how the transport fragments the stream.

use std::collections::VecDeque;

use crypto::Prng;
use issl::machine::SessionMachine;
use issl::{
    CipherSuite, ClientConfig, ClientKx, ServerConfig, ServerKx, Session, Wire, WireError,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsa::KeyPair;

/// Both directions of a completed handshake + echo exchange.
#[derive(Debug, PartialEq, Eq)]
struct Transcript {
    c2s: Vec<u8>,
    s2c: Vec<u8>,
    client_plain: Vec<u8>,
    server_plain: Vec<u8>,
}

fn psk_configs() -> (ClientConfig, ServerConfig) {
    let psk = b"equivalence secret".to_vec();
    (
        ClientConfig {
            suite: CipherSuite::AES128,
            kx: ClientKx::PreShared(psk.clone()),
        },
        ServerConfig {
            suites: vec![CipherSuite::AES128],
            kx: ServerKx::PreShared(psk),
        },
    )
}

fn rsa_configs() -> (ClientConfig, ServerConfig) {
    let mut rng = StdRng::seed_from_u64(4242);
    (
        ClientConfig {
            suite: CipherSuite::AES128,
            kx: ClientKx::Rsa,
        },
        ServerConfig {
            suites: vec![CipherSuite::AES128],
            kx: ServerKx::Rsa(KeyPair::generate(512, &mut rng)),
        },
    )
}

/// Harness A: two machines in direct lockstep, delivering bytes in
/// fragments taken from `frag` (cycled).
fn run_machine_pair(
    client_cfg: &ClientConfig,
    server_cfg: &ServerConfig,
    seed_c: u64,
    seed_s: u64,
    payload: &[u8],
    frag: &[usize],
) -> Transcript {
    let mut client = SessionMachine::client(client_cfg.clone(), Prng::new(seed_c));
    let mut server = SessionMachine::server(server_cfg.clone(), Prng::new(seed_s));
    let mut c2s = Vec::new();
    let mut s2c = Vec::new();
    let mut c_inflight: VecDeque<u8> = VecDeque::new();
    let mut s_inflight: VecDeque<u8> = VecDeque::new();
    let mut client_plain = Vec::new();
    let mut server_plain = Vec::new();
    let mut payload_sent = false;
    let mut fi = 0;

    for _ in 0..100_000 {
        let out = client.take_output();
        if !out.is_empty() {
            c2s.extend_from_slice(&out);
            c_inflight.extend(out);
        }
        let out = server.take_output();
        if !out.is_empty() {
            s2c.extend_from_slice(&out);
            s_inflight.extend(out);
        }

        let mut progressed = false;
        if !c_inflight.is_empty() {
            let n = frag[fi % frag.len()].max(1).min(c_inflight.len());
            fi += 1;
            let chunk: Vec<u8> = c_inflight.drain(..n).collect();
            server.feed(&chunk).expect("server machine healthy");
            progressed = true;
        }
        if !s_inflight.is_empty() {
            let n = frag[fi % frag.len()].max(1).min(s_inflight.len());
            fi += 1;
            let chunk: Vec<u8> = s_inflight.drain(..n).collect();
            client.feed(&chunk).expect("client machine healthy");
            progressed = true;
        }

        if client.is_established() && !payload_sent {
            payload_sent = true;
            client.write(payload).expect("client write");
        }
        let plain = server.take_plaintext();
        if !plain.is_empty() {
            server_plain.extend_from_slice(&plain);
            server.write(&plain).expect("server echo");
        }
        client_plain.extend(client.take_plaintext());

        if client_plain.len() >= payload.len()
            && payload_sent
            && !client.has_output()
            && !server.has_output()
            && c_inflight.is_empty()
            && s_inflight.is_empty()
            && !progressed
        {
            break;
        }
    }
    Transcript {
        c2s,
        s2c,
        client_plain,
        server_plain,
    }
}

/// The far-end behaviour a [`MachineWire`] simulates.
enum PeerRole {
    /// A server machine that echoes decrypted data back.
    EchoServer,
    /// A client machine that sends `payload` once established.
    Client { payload: Vec<u8>, sent: bool },
}

/// A blocking [`Wire`] whose far end is a sans-I/O machine, delivering
/// reads in fragments from `frag` — so the blocking wrapper under test
/// sees arbitrarily chopped streams.
struct MachineWire {
    peer: SessionMachine,
    role: PeerRole,
    written: Vec<u8>,
    read_log: Vec<u8>,
    inflight: VecDeque<u8>,
    frag: Vec<usize>,
    fi: usize,
    peer_plain: Vec<u8>,
}

impl MachineWire {
    fn new(peer: SessionMachine, role: PeerRole, frag: Vec<usize>) -> MachineWire {
        MachineWire {
            peer,
            role,
            written: Vec::new(),
            read_log: Vec::new(),
            inflight: VecDeque::new(),
            frag,
            fi: 0,
            peer_plain: Vec::new(),
        }
    }

    fn pump_peer(&mut self) {
        match &mut self.role {
            PeerRole::EchoServer => {
                let plain = self.peer.take_plaintext();
                if !plain.is_empty() {
                    self.peer_plain.extend_from_slice(&plain);
                    let _ = self.peer.write(&plain);
                }
            }
            PeerRole::Client { payload, sent } => {
                if self.peer.is_established() && !*sent {
                    *sent = true;
                    let data = payload.clone();
                    let _ = self.peer.write(&data);
                }
                self.peer_plain.extend(self.peer.take_plaintext());
            }
        }
    }

    /// Everything the peer put on the wire, whether or not the blocking
    /// side got around to reading it.
    fn peer_sent(mut self) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        self.inflight.extend(self.peer.take_output());
        let mut sent = self.read_log.clone();
        sent.extend(self.inflight.iter().copied());
        (self.written, sent, self.peer_plain)
    }
}

impl Wire for MachineWire {
    fn write_all(&mut self, data: &[u8]) -> Result<(), WireError> {
        self.written.extend_from_slice(data);
        let _ = self.peer.feed(data);
        self.pump_peer();
        Ok(())
    }

    fn read(&mut self, buf: &mut [u8]) -> Result<usize, WireError> {
        self.inflight.extend(self.peer.take_output());
        if self.inflight.is_empty() {
            self.pump_peer();
            self.inflight.extend(self.peer.take_output());
        }
        if self.inflight.is_empty() {
            // The peer machine has nothing more to say: a real socket
            // would block forever here.
            return Err(WireError::Timeout);
        }
        let want = self.frag[self.fi % self.frag.len()].max(1);
        self.fi += 1;
        let n = want.min(buf.len()).min(self.inflight.len());
        for b in buf.iter_mut().take(n) {
            *b = self.inflight.pop_front().expect("length checked");
        }
        self.read_log.extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

/// Harness B: the blocking `Session` client wrapper against a sans-I/O
/// echo-server machine.
fn run_blocking_client(
    client_cfg: &ClientConfig,
    server_cfg: &ServerConfig,
    seed_c: u64,
    seed_s: u64,
    payload: &[u8],
    frag: &[usize],
) -> Transcript {
    let server = SessionMachine::server(server_cfg.clone(), Prng::new(seed_s));
    let wire = MachineWire::new(server, PeerRole::EchoServer, frag.to_vec());
    let mut session =
        Session::client_handshake(wire, client_cfg, Prng::new(seed_c)).expect("client handshake");
    session.secure_write(payload).expect("secure_write");
    let mut client_plain = Vec::new();
    let mut buf = [0u8; 1024];
    while client_plain.len() < payload.len() {
        let n = session.secure_read(&mut buf).expect("secure_read");
        assert!(n > 0, "echo stream ended early");
        client_plain.extend_from_slice(&buf[..n]);
    }
    let (c2s, s2c, server_plain) = session.into_wire().peer_sent();
    Transcript {
        c2s,
        s2c,
        client_plain,
        server_plain,
    }
}

/// Harness C: the blocking `Session` server wrapper against a sans-I/O
/// client machine; the test body plays the echo service.
fn run_blocking_server(
    client_cfg: &ClientConfig,
    server_cfg: &ServerConfig,
    seed_c: u64,
    seed_s: u64,
    payload: &[u8],
    frag: &[usize],
) -> Transcript {
    let client = SessionMachine::client(client_cfg.clone(), Prng::new(seed_c));
    let wire = MachineWire::new(
        client,
        PeerRole::Client {
            payload: payload.to_vec(),
            sent: false,
        },
        frag.to_vec(),
    );
    let mut session =
        Session::server_handshake(wire, server_cfg, Prng::new(seed_s)).expect("server handshake");
    let mut server_plain = Vec::new();
    let mut buf = [0u8; 1024];
    while server_plain.len() < payload.len() {
        let n = session.secure_read(&mut buf).expect("secure_read");
        assert!(n > 0, "client stream ended early");
        server_plain.extend_from_slice(&buf[..n]);
        session.secure_write(&buf[..n]).expect("echo write");
    }
    let (s2c, c2s, client_plain) = session.into_wire().peer_sent();
    Transcript {
        c2s,
        s2c,
        client_plain,
        server_plain,
    }
}

fn assert_all_equivalent(
    client_cfg: &ClientConfig,
    server_cfg: &ServerConfig,
    seed_c: u64,
    seed_s: u64,
    payload: &[u8],
    frag: &[usize],
) {
    let a = run_machine_pair(client_cfg, server_cfg, seed_c, seed_s, payload, frag);
    let b = run_blocking_client(client_cfg, server_cfg, seed_c, seed_s, payload, frag);
    let c = run_blocking_server(client_cfg, server_cfg, seed_c, seed_s, payload, frag);

    assert_eq!(a.client_plain, payload, "machine pair echo");
    assert_eq!(a.server_plain, payload, "machine pair server plaintext");
    assert_eq!(a.c2s, b.c2s, "client wrapper c2s transcript");
    assert_eq!(a.s2c, b.s2c, "client wrapper s2c transcript");
    assert_eq!(a.c2s, c.c2s, "server wrapper c2s transcript");
    assert_eq!(a.s2c, c.s2c, "server wrapper s2c transcript");
    assert_eq!(b.client_plain, payload, "client wrapper plaintext");
    assert_eq!(c.server_plain, payload, "server wrapper plaintext");
    assert_eq!(c.client_plain, payload, "machine client echo plaintext");
}

// Random seeds, payload sizes (spanning the 1024-byte fragment boundary)
// and fragmentation schedules: all three paths speak byte-identical PSK
// sessions.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn psk_paths_are_byte_identical(
        seed_c in 0u64..1_000,
        seed_s in 0u64..1_000,
        len in 1usize..2_300,
        frag in proptest::collection::vec(1usize..200, 1..6),
    ) {
        let (client_cfg, server_cfg) = psk_configs();
        let payload: Vec<u8> = (0..len).map(|i| (i.wrapping_mul(37) % 251) as u8).collect();
        assert_all_equivalent(&client_cfg, &server_cfg, seed_c, seed_s, &payload, &frag);
    }
}

/// The RSA path exercises the full PRNG choreography (nonce → stir →
/// premaster → padding randomness), so transcript identity here pins the
/// exact PRNG consumption order of the original blocking code.
#[test]
fn rsa_paths_are_byte_identical() {
    let (client_cfg, server_cfg) = rsa_configs();
    let payload: Vec<u8> = (0..1500).map(|i| (i % 249) as u8).collect();
    for (seed_c, seed_s, frag) in [
        (7u64, 11u64, vec![1usize, 3, 7, 64]),
        (123, 456, vec![2, 2048]),
        (999, 1, vec![5]),
    ] {
        assert_all_equivalent(&client_cfg, &server_cfg, seed_c, seed_s, &payload, &frag);
    }
}

/// Byte-level fragmentation (1-byte reads) across the whole session.
#[test]
fn single_byte_fragmentation_is_byte_identical() {
    let (client_cfg, server_cfg) = psk_configs();
    let payload = b"one byte at a time".to_vec();
    assert_all_equivalent(&client_cfg, &server_cfg, 3, 4, &payload, &[1]);
}
