//! Adversarial tests of the secure channel: tampering, replay,
//! truncation and garbage must all be detected — never panic, never
//! yield wrong plaintext.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use crypto::Prng;
use issl::record::{read_record, write_record, RecordError, RecordType, MAX_RECORD};
use issl::wire::{PipePair, Wire, WireError};
use issl::{CipherSuite, ClientConfig, ClientKx, IsslError, ServerConfig, ServerKx, Session};

// ---------------------------------------------------------------------
// a blocking in-memory wire so both handshake halves can run on threads
// ---------------------------------------------------------------------

struct ChannelWire {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    buf: VecDeque<u8>,
}

fn wire_pair() -> (ChannelWire, ChannelWire) {
    let (atx, arx) = channel();
    let (btx, brx) = channel();
    (
        ChannelWire {
            tx: atx,
            rx: brx,
            buf: VecDeque::new(),
        },
        ChannelWire {
            tx: btx,
            rx: arx,
            buf: VecDeque::new(),
        },
    )
}

impl Wire for ChannelWire {
    fn write_all(&mut self, data: &[u8]) -> Result<(), WireError> {
        self.tx
            .send(data.to_vec())
            .map_err(|_| WireError::ConnectionLost)
    }

    fn read(&mut self, buf: &mut [u8]) -> Result<usize, WireError> {
        while self.buf.is_empty() {
            match self.rx.recv_timeout(Duration::from_secs(10)) {
                Ok(chunk) => self.buf.extend(chunk),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => return Err(WireError::Timeout),
                Err(_) => return Ok(0), // peer hung up: clean EOF
            }
        }
        let n = buf.len().min(self.buf.len());
        for b in buf.iter_mut().take(n) {
            *b = self.buf.pop_front().expect("length checked");
        }
        Ok(n)
    }
}

/// A wire that can corrupt or replay frames once armed.
struct HostileWire {
    inner: ChannelWire,
    tamper: Arc<AtomicBool>,
    replay: Arc<AtomicBool>,
    last_frame: Option<Vec<u8>>,
}

impl Wire for HostileWire {
    fn write_all(&mut self, data: &[u8]) -> Result<(), WireError> {
        let mut frame = data.to_vec();
        if self.tamper.load(Ordering::SeqCst) && frame.len() > 8 {
            let idx = frame.len() - 5; // inside ciphertext/MAC, not the header
            frame[idx] ^= 0x80;
        }
        self.inner.write_all(&frame)?;
        if self.replay.load(Ordering::SeqCst) {
            if let Some(prev) = self.last_frame.take() {
                self.inner.write_all(&prev)?;
            }
            self.last_frame = Some(frame);
        }
        Ok(())
    }

    fn read(&mut self, buf: &mut [u8]) -> Result<usize, WireError> {
        self.inner.read(buf)
    }
}

fn psk_configs() -> (ClientConfig, ServerConfig) {
    let psk = b"adversarial tests psk".to_vec();
    (
        ClientConfig {
            suite: CipherSuite::AES128,
            kx: ClientKx::PreShared(psk.clone()),
        },
        ServerConfig {
            suites: vec![CipherSuite::AES128],
            kx: ServerKx::PreShared(psk),
        },
    )
}

#[test]
fn tampered_record_is_rejected_with_bad_mac() {
    let (cw, sw) = wire_pair();
    let tamper = Arc::new(AtomicBool::new(false));
    let hostile = HostileWire {
        inner: cw,
        tamper: Arc::clone(&tamper),
        replay: Arc::new(AtomicBool::new(false)),
        last_frame: None,
    };
    let (ccfg, scfg) = psk_configs();

    let server = std::thread::spawn(move || {
        let mut s = Session::server_handshake(sw, &scfg, Prng::new(2)).expect("server handshake");
        let mut buf = [0u8; 256];
        s.secure_read(&mut buf)
    });

    let mut c = Session::client_handshake(hostile, &ccfg, Prng::new(1)).expect("client handshake");
    tamper.store(true, Ordering::SeqCst);
    c.secure_write(b"this record will be flipped in flight")
        .expect("write");

    let outcome = server.join().expect("server thread");
    assert_eq!(outcome, Err(IsslError::BadMac));
}

#[test]
fn replayed_record_is_rejected() {
    let (cw, sw) = wire_pair();
    let replay = Arc::new(AtomicBool::new(false));
    let hostile = HostileWire {
        inner: cw,
        tamper: Arc::new(AtomicBool::new(false)),
        replay: Arc::clone(&replay),
        last_frame: None,
    };
    let (ccfg, scfg) = psk_configs();

    let server = std::thread::spawn(move || {
        let mut s = Session::server_handshake(sw, &scfg, Prng::new(4)).expect("server handshake");
        let mut buf = [0u8; 256];
        let first = s.secure_read(&mut buf);
        let second = s.secure_read(&mut buf);
        let replayed = s.secure_read(&mut buf);
        (first, second, replayed)
    });

    let mut c = Session::client_handshake(hostile, &ccfg, Prng::new(3)).expect("client handshake");
    replay.store(true, Ordering::SeqCst);
    c.secure_write(b"first").expect("write 1");
    // the hostile wire retransmits record #1 right after record #2
    c.secure_write(b"second").expect("write 2");

    let (first, second, replayed) = server.join().expect("server thread");
    assert_eq!(first, Ok(5), "the original record is fine");
    assert_eq!(second, Ok(6), "the next record is fine");
    assert_eq!(
        replayed,
        Err(IsslError::BadMac),
        "a replayed record fails the sequence-bound MAC"
    );
}

#[test]
fn sessions_with_different_psks_fail_cleanly() {
    let (cw, sw) = wire_pair();
    let server = std::thread::spawn(move || {
        let cfg = ServerConfig {
            suites: vec![CipherSuite::AES128],
            kx: ServerKx::PreShared(b"server secret".to_vec()),
        };
        Session::server_handshake(sw, &cfg, Prng::new(6)).map(|_| ())
    });
    let cfg = ClientConfig {
        suite: CipherSuite::AES128,
        kx: ClientKx::PreShared(b"client secret".to_vec()),
    };
    let client = Session::client_handshake(cw, &cfg, Prng::new(5)).map(|_| ());
    let server = server.join().expect("thread");
    assert!(client.is_err() || server.is_err(), "mismatched keys fail");
    assert_eq!(server, Err(IsslError::BadMac), "server detects it first");
}

// ---------------------------------------------------------------------
// record-layer fuzz: malformed frames never panic
// ---------------------------------------------------------------------

#[test]
fn truncated_records_error_cleanly() {
    // A full record followed by a truncated one.
    let cell = PipePair::new();
    let (mut a, mut b) = PipePair::ends(&cell);
    write_record(&mut a, RecordType::Data, b"complete").unwrap();
    a.write_all(&[5, 0x10]).unwrap(); // data record claiming 0x10xx bytes, cut off
    assert_eq!(read_record(&mut b).unwrap().body, b"complete");
    assert!(matches!(
        read_record(&mut b),
        Err(RecordError::Wire(WireError::UnexpectedEof)) | Err(RecordError::TooLong(_))
    ));
}

#[test]
fn oversized_length_field_is_rejected() {
    let cell = PipePair::new();
    let (mut a, mut b) = PipePair::ends(&cell);
    let len = (MAX_RECORD + 1) as u16;
    let mut frame = vec![5u8];
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend(std::iter::repeat_n(0u8, 16));
    a.write_all(&frame).unwrap();
    assert_eq!(
        read_record(&mut b),
        Err(RecordError::TooLong(MAX_RECORD + 1))
    );
}

#[test]
fn random_garbage_never_panics_the_record_layer() {
    let mut prng = Prng::new(0xFA22);
    for _ in 0..500 {
        let len = (prng.next_u64() % 64) as usize + 1;
        let mut junk = vec![0u8; len];
        prng.fill(&mut junk);
        let cell = PipePair::new();
        let (mut a, mut b) = PipePair::ends(&cell);
        a.write_all(&junk).unwrap();
        // Any outcome is fine except a panic or an impossible success of
        // more bytes than were supplied.
        let _ = read_record(&mut b);
    }
}

#[test]
fn handshake_against_garbage_speaker_fails_cleanly() {
    // A "server" that answers the hello with noise.
    let (cw, mut sw) = wire_pair();
    let server = std::thread::spawn(move || {
        let mut drop_buf = [0u8; 512];
        let _ = sw.read(&mut drop_buf); // swallow the client hello
        let _ = sw.write_all(&[0xFF, 0x00, 0x04, 1, 2, 3, 4]); // bad type
    });
    let (ccfg, _scfg) = psk_configs();
    let outcome = Session::client_handshake(cw, &ccfg, Prng::new(9)).map(|_| ());
    server.join().expect("thread");
    assert!(matches!(
        outcome,
        Err(IsslError::Record(RecordError::BadType(0xFF)))
    ));
}
