//! End-to-end tests of the RMC2000 port (the paper's Figure 3 server):
//! the three-connection cap (E5), the static-allocation discipline (E7),
//! the AES-128-only restriction, and the circular log.

use std::sync::atomic::Ordering;

use crypto::Size;
use dynamicc::Scheduler;
use issl::host::{spawn_driver, spawn_secure_client, standard_rig};
use issl::log::Log;
use issl::rmc::{spawn_rmc_server, RmcServerConfig};
use issl::{CipherSuite, ClientConfig, ClientKx};
use netsim::Endpoint;
use sockets::dynic::Stack;

fn psk() -> Vec<u8> {
    b"rmc2000 pre-shared master secret".to_vec()
}

fn client_config() -> ClientConfig {
    ClientConfig {
        suite: CipherSuite::AES128,
        kx: ClientKx::PreShared(psk()),
    }
}

#[test]
fn psk_session_against_the_board() {
    let (net, board, client) = standard_rig(60);
    let stack = Stack::sock_init(&net, board);
    let mut sched = Scheduler::new();
    let server = spawn_rmc_server(&mut sched, &stack, &RmcServerConfig::default());
    let result = spawn_secure_client(
        &mut sched,
        &net,
        client,
        Endpoint::new(net.with(|w| w.host_ip(board)), 4433),
        client_config(),
        (0..2500u32).map(|i| (i % 256) as u8).collect(),
        600,
        3,
    );
    spawn_driver(&mut sched, &net, 2_000);

    let mut rounds = 0;
    while !result.done.load(Ordering::SeqCst) && !result.failed.load(Ordering::SeqCst) {
        sched.tick();
        rounds += 1;
        assert!(rounds < 200_000, "exchange stalled");
    }
    assert!(!result.failed.load(Ordering::SeqCst));
    assert_eq!(result.bytes_verified.load(Ordering::SeqCst), 2500);
    // Let the handler observe the close and log.
    for _ in 0..5000 {
        sched.tick();
        if server.stats.served.load(Ordering::SeqCst) > 0 {
            break;
        }
    }
    assert_eq!(server.stats.served.load(Ordering::SeqCst), 1);
    assert!(server
        .log
        .lines()
        .iter()
        .any(|l| l.contains("served 2500 bytes")));
}

/// E5: with three handler costatements, at most three connections are
/// served simultaneously; a fourth and fifth wait for a free handler but
/// do eventually get served — without recompiling anything, just slower.
#[test]
fn connection_cap_is_three_simultaneous() {
    let (net, board, client) = standard_rig(61);
    let stack = Stack::sock_init(&net, board);
    let mut sched = Scheduler::new();
    let config = RmcServerConfig::default();
    assert_eq!(config.handlers, 3, "the paper's figure 3 has 3 handlers");
    let server = spawn_rmc_server(&mut sched, &stack, &config);

    let results: Vec<_> = (0..5)
        .map(|i| {
            spawn_secure_client(
                &mut sched,
                &net,
                client,
                Endpoint::new(net.with(|w| w.host_ip(board)), 4433),
                client_config(),
                vec![i as u8; 4000],
                400,
                100 + i as u64,
            )
        })
        .collect();
    spawn_driver(&mut sched, &net, 2_000);

    let mut rounds = 0;
    while !results
        .iter()
        .all(|r| r.done.load(Ordering::SeqCst) || r.failed.load(Ordering::SeqCst))
    {
        sched.tick();
        rounds += 1;
        assert!(rounds < 500_000, "five-client run stalled");
    }
    for (i, r) in results.iter().enumerate() {
        assert!(!r.failed.load(Ordering::SeqCst), "client {i} failed");
        assert_eq!(r.bytes_verified.load(Ordering::SeqCst), 4000, "client {i}");
    }
    let max = server.stats.max_active.load(Ordering::SeqCst);
    assert!(max <= 3, "never more than three in flight, saw {max}");
    assert!(max >= 2, "the load did overlap, saw {max}");
    // All five were served in the end.
    for _ in 0..5000 {
        sched.tick();
        if server.stats.served.load(Ordering::SeqCst) == 5 {
            break;
        }
    }
    assert_eq!(server.stats.served.load(Ordering::SeqCst), 5);
}

/// The port rejects the Rijndael geometries it dropped (§2: only 128-bit
/// keys and blocks survived the port).
#[test]
fn non_aes128_suites_are_rejected() {
    let (net, board, client) = standard_rig(62);
    let stack = Stack::sock_init(&net, board);
    let mut sched = Scheduler::new();
    let server = spawn_rmc_server(&mut sched, &stack, &RmcServerConfig::default());
    let result = spawn_secure_client(
        &mut sched,
        &net,
        client,
        Endpoint::new(net.with(|w| w.host_ip(board)), 4433),
        ClientConfig {
            suite: CipherSuite {
                key: Size::Bits256,
                block: Size::Bits256,
            },
            kx: ClientKx::PreShared(psk()),
        },
        b"should never flow".to_vec(),
        64,
        9,
    );
    spawn_driver(&mut sched, &net, 2_000);

    let mut rounds = 0;
    while !result.done.load(Ordering::SeqCst) && !result.failed.load(Ordering::SeqCst) {
        sched.tick();
        rounds += 1;
        assert!(rounds < 200_000);
    }
    assert!(result.failed.load(Ordering::SeqCst), "handshake must fail");
    for _ in 0..5000 {
        sched.tick();
        if server.stats.rejected_suites.load(Ordering::SeqCst) > 0 {
            break;
        }
    }
    assert_eq!(server.stats.rejected_suites.load(Ordering::SeqCst), 1);
}

/// E7: all extended memory is allocated at start-up; serving traffic
/// allocates nothing further (xalloc has no free, so anything else would
/// leak the board to death).
#[test]
fn allocation_trace_is_flat_while_serving() {
    let (net, board, client) = standard_rig(63);
    let stack = Stack::sock_init(&net, board);
    let mut sched = Scheduler::new();
    let server = spawn_rmc_server(&mut sched, &stack, &RmcServerConfig::default());

    let (count_before, used_before) = {
        let arena = server.xalloc.lock().unwrap();
        (arena.allocation_count(), arena.used())
    };
    assert_eq!(count_before, 3, "one static buffer per handler");

    let result = spawn_secure_client(
        &mut sched,
        &net,
        client,
        Endpoint::new(net.with(|w| w.host_ip(board)), 4433),
        client_config(),
        vec![7u8; 6000],
        512,
        11,
    );
    spawn_driver(&mut sched, &net, 2_000);
    let mut rounds = 0;
    while !result.done.load(Ordering::SeqCst) && !result.failed.load(Ordering::SeqCst) {
        sched.tick();
        rounds += 1;
        assert!(rounds < 200_000);
    }
    assert!(!result.failed.load(Ordering::SeqCst));

    let arena = server.xalloc.lock().unwrap();
    assert_eq!(arena.allocation_count(), count_before, "no runtime allocs");
    assert_eq!(arena.used(), used_before, "no runtime arena growth");
}

/// The circular log stays bounded over many connections, unlike the
/// host's file log.
#[test]
fn circular_log_stays_bounded_over_many_sessions() {
    let (net, board, client) = standard_rig(64);
    let stack = Stack::sock_init(&net, board);
    let mut sched = Scheduler::new();
    let config = RmcServerConfig {
        log_lines: 4,
        ..RmcServerConfig::default()
    };
    let server = spawn_rmc_server(&mut sched, &stack, &config);
    spawn_driver(&mut sched, &net, 2_000);

    for i in 0..6 {
        let result = spawn_secure_client(
            &mut sched,
            &net,
            client,
            Endpoint::new(net.with(|w| w.host_ip(board)), 4433),
            client_config(),
            vec![i as u8; 100],
            100,
            200 + i as u64,
        );
        let mut rounds = 0;
        while !result.done.load(Ordering::SeqCst) && !result.failed.load(Ordering::SeqCst) {
            sched.tick();
            rounds += 1;
            assert!(rounds < 200_000, "client {i} stalled");
        }
        assert!(!result.failed.load(Ordering::SeqCst), "client {i} failed");
    }
    for _ in 0..10_000 {
        sched.tick();
        if server.stats.served.load(Ordering::SeqCst) == 6 {
            break;
        }
    }
    assert_eq!(server.stats.served.load(Ordering::SeqCst), 6);
    assert!(server.log.lines().len() <= 4, "log bounded at capacity");
    assert!(server.log.dropped() >= 2, "older entries rolled off");
}

/// The compiled-in key hash replaces the host's key-hash file.
#[test]
fn key_hash_is_compiled_in() {
    let (net, board, _client) = standard_rig(65);
    let stack = Stack::sock_init(&net, board);
    let mut sched = Scheduler::new();
    let server = spawn_rmc_server(&mut sched, &stack, &RmcServerConfig::default());
    let expected: String = crypto::sha1(&psk())
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();
    assert_eq!(server.key_hash, expected);
    server.stats.stop.store(true, Ordering::SeqCst);
}
