//! The secure channel over an unreliable wire: TCP repairs the loss
//! underneath, the record MACs stay valid, and the application bytes
//! survive intact — the full stack exercising every recovery path at
//! once.

use std::sync::atomic::Ordering;

use dynamicc::Scheduler;
use issl::host::{
    spawn_driver, spawn_redirector, spawn_secure_client, ComputeCost, RedirectorConfig,
};
use issl::{CipherSuite, ClientConfig, ClientKx, FileLog, Filesystem, ServerConfig, ServerKx};
use netsim::{Endpoint, Ipv4, LinkParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsa::KeyPair;
use sockets::Net;

#[test]
fn secure_exchange_survives_a_lossy_link() {
    let net = Net::new(0x105);
    let server = net.add_host("server", Ipv4::new(10, 0, 0, 1));
    let client = net.add_host("client", Ipv4::new(10, 0, 0, 2));
    net.link(server, client, LinkParams::lan_100m().with_drop_rate(0.08));

    let mut rng = StdRng::seed_from_u64(3);
    let mut sched = Scheduler::new();
    spawn_redirector(
        &mut sched,
        &net,
        server,
        &RedirectorConfig {
            port: 4433,
            backend: None,
            tls: ServerConfig {
                suites: vec![CipherSuite::AES128],
                kx: ServerKx::Rsa(KeyPair::generate(512, &mut rng)),
            },
            workers: 1,
            seed: 4,
            compute: ComputeCost::free(),
        },
        FileLog::new(Filesystem::new(), "/var/log/issl.log"),
    );
    let payload: Vec<u8> = (0..8000u32).map(|i| (i % 249) as u8).collect();
    let result = spawn_secure_client(
        &mut sched,
        &net,
        client,
        Endpoint::new(Ipv4::new(10, 0, 0, 1), 4433),
        ClientConfig {
            suite: CipherSuite::AES128,
            kx: ClientKx::Rsa,
        },
        payload,
        800,
        5,
    );
    spawn_driver(&mut sched, &net, 2_000);

    let mut rounds = 0u64;
    while !result.done.load(Ordering::SeqCst) && !result.failed.load(Ordering::SeqCst) {
        sched.tick();
        rounds += 1;
        assert!(rounds < 3_000_000, "lossy exchange stalled");
    }
    assert!(
        !result.failed.load(Ordering::SeqCst),
        "loss below the channel must be invisible to issl"
    );
    assert_eq!(result.bytes_verified.load(Ordering::SeqCst), 8000);
    net.with(|w| {
        assert!(w.stats.dropped > 0, "the link really dropped packets");
        assert!(w.stats.retransmits > 0, "TCP really retransmitted");
    });
}
