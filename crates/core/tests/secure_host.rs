//! End-to-end tests of the Unix host profile: RSA-keyed issl sessions
//! over simulated BSD sockets, served by the fork-style redirector.

use std::sync::atomic::Ordering;

use crypto::Size;
use dynamicc::Scheduler;
use issl::host::{
    publish_key_hash, spawn_driver, spawn_plain_echo, spawn_redirector, spawn_secure_client,
    standard_rig, RedirectorConfig,
};
use issl::{CipherSuite, ClientConfig, ClientKx, FileLog, Filesystem, Log, ServerConfig, ServerKx};
use netsim::Endpoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsa::KeyPair;

fn rsa_server_config() -> ServerConfig {
    let mut rng = StdRng::seed_from_u64(77);
    ServerConfig {
        suites: vec![
            CipherSuite::AES128,
            CipherSuite {
                key: Size::Bits192,
                block: Size::Bits128,
            },
            CipherSuite {
                key: Size::Bits256,
                block: Size::Bits256,
            },
        ],
        kx: ServerKx::Rsa(KeyPair::generate(512, &mut rng)),
    }
}

fn run_exchange(suite: CipherSuite, payload_len: usize) -> u64 {
    let (net, server, client) = standard_rig(42);
    let fs = Filesystem::new();
    let log = FileLog::new(fs.clone(), "/var/log/issl.log");
    let tls = rsa_server_config();
    publish_key_hash(&fs, &tls.kx);

    let mut sched = Scheduler::new();
    let _stats = spawn_redirector(
        &mut sched,
        &net,
        server,
        &RedirectorConfig {
            port: 4433,
            backend: None,
            tls,
            workers: 2,
            seed: 1,
            compute: issl::host::ComputeCost::free(),
        },
        log.clone(),
    );
    let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
    let result = spawn_secure_client(
        &mut sched,
        &net,
        client,
        Endpoint::new(net.with(|w| w.host_ip(server)), 4433),
        ClientConfig {
            suite,
            kx: ClientKx::Rsa,
        },
        payload,
        700,
        99,
    );
    spawn_driver(&mut sched, &net, 2_000);

    let mut rounds = 0;
    while !result.done.load(Ordering::SeqCst) && !result.failed.load(Ordering::SeqCst) {
        sched.tick();
        rounds += 1;
        assert!(rounds < 200_000, "exchange stalled");
    }
    assert!(!result.failed.load(Ordering::SeqCst), "client failed");
    result.bytes_verified.load(Ordering::SeqCst)
}

#[test]
fn rsa_handshake_and_echo_aes128() {
    assert_eq!(run_exchange(CipherSuite::AES128, 3000), 3000);
}

#[test]
fn host_profile_supports_large_suites() {
    // The host keeps the full Rijndael matrix issl advertised.
    let suite = CipherSuite {
        key: Size::Bits256,
        block: Size::Bits256,
    };
    assert_eq!(run_exchange(suite, 2000), 2000);
}

#[test]
fn redirector_forwards_to_backend() {
    let (net, server, client) = standard_rig(43);
    // Backend echo lives on a third host behind the server.
    let backend_host = net.add_host("backend", netsim::Ipv4::new(10, 0, 0, 3));
    net.link(server, backend_host, netsim::LinkParams::lan_100m());

    let fs = Filesystem::new();
    let log = FileLog::new(fs.clone(), "/var/log/issl.log");
    let mut sched = Scheduler::new();
    spawn_plain_echo(&mut sched, &net, backend_host, 8080, 2);
    let stats = spawn_redirector(
        &mut sched,
        &net,
        server,
        &RedirectorConfig {
            port: 4433,
            backend: Some(Endpoint::new(netsim::Ipv4::new(10, 0, 0, 3), 8080)),
            tls: rsa_server_config(),
            workers: 2,
            seed: 5,
            compute: issl::host::ComputeCost::free(),
        },
        log.clone(),
    );
    let payload = vec![0xA5u8; 1500];
    let result = spawn_secure_client(
        &mut sched,
        &net,
        client,
        Endpoint::new(net.with(|w| w.host_ip(server)), 4433),
        ClientConfig {
            suite: CipherSuite::AES128,
            kx: ClientKx::Rsa,
        },
        payload,
        500,
        7,
    );
    spawn_driver(&mut sched, &net, 2_000);

    let mut rounds = 0;
    while !result.done.load(Ordering::SeqCst) && !result.failed.load(Ordering::SeqCst) {
        sched.tick();
        rounds += 1;
        assert!(rounds < 200_000, "redirection stalled");
    }
    assert!(!result.failed.load(Ordering::SeqCst));
    assert_eq!(result.bytes_verified.load(Ordering::SeqCst), 1500);
    assert_eq!(stats.bytes_forward.load(Ordering::SeqCst), 1500);
}

#[test]
fn key_hash_lives_in_a_file_on_the_host() {
    let fs = Filesystem::new();
    let tls = rsa_server_config();
    let hex = publish_key_hash(&fs, &tls.kx);
    assert_eq!(hex.len(), 40);
    assert_eq!(fs.read("/etc/issl/key.hash").unwrap(), hex.as_bytes());
}

#[test]
fn host_log_grows_per_connection() {
    let (net, server, client) = standard_rig(44);
    let fs = Filesystem::new();
    let log = FileLog::new(fs.clone(), "/var/log/issl.log");
    let mut sched = Scheduler::new();
    spawn_redirector(
        &mut sched,
        &net,
        server,
        &RedirectorConfig {
            port: 4433,
            backend: None,
            tls: rsa_server_config(),
            workers: 1,
            seed: 6,
            compute: issl::host::ComputeCost::free(),
        },
        log.clone(),
    );
    let result = spawn_secure_client(
        &mut sched,
        &net,
        client,
        Endpoint::new(net.with(|w| w.host_ip(server)), 4433),
        ClientConfig {
            suite: CipherSuite::AES128,
            kx: ClientKx::Rsa,
        },
        b"log me".to_vec(),
        64,
        8,
    );
    spawn_driver(&mut sched, &net, 2_000);
    let mut rounds = 0;
    while !result.done.load(Ordering::SeqCst) && !result.failed.load(Ordering::SeqCst) {
        sched.tick();
        rounds += 1;
        assert!(rounds < 200_000);
    }
    // Give the worker a few rounds to notice the close and log.
    for _ in 0..2000 {
        sched.tick();
        if !log.lines().is_empty() {
            break;
        }
    }
    let lines = log.lines();
    assert!(
        lines.iter().any(|l| l.contains("served connection")),
        "log: {lines:?}"
    );
}
