//! The sans-I/O session core: the issl handshake and record data path as
//! a pure state machine that consumes bytes and emits bytes, with no
//! transport inside.
//!
//! This is the same decoupling move the paper's port makes (§5.3): the
//! protocol logic must not care whether it runs over blocking BSD reads,
//! a `tcp_tick`-pumped Dynamic C socket, or an event loop multiplexing a
//! thousand connections. Feed inbound bytes with [`SessionMachine::feed`]
//! (and [`SessionMachine::feed_eof`] at end of stream), drain outbound
//! bytes with [`SessionMachine::take_output`], and read decrypted
//! plaintext with [`SessionMachine::read_plaintext`]. The blocking
//! [`Session`](crate::session::Session) is a thin wrapper that pumps a
//! [`Wire`](crate::wire::Wire) through one of these; the event-loop
//! server in [`serve`](crate::serve) pumps many at once.
//!
//! Byte-for-byte equivalence with the original blocking implementation
//! is load-bearing (and pinned by the `sans_io_equiv` property tests):
//! the PRNG is consumed in exactly the original order (client nonce →
//! stir peer nonce → premaster → RSA padding → per-record IVs), and every
//! validation fires with the original error at the original point in the
//! stream.

use std::collections::VecDeque;

use crypto::{cbc_decrypt, cbc_encrypt, hmac_sha1, sha1, verify_hmac_sha1, Prng, Rijndael};
use rsa::PublicKey;

use crate::kdf::{derive_session_keys, SessionKeys};
use crate::record::{Record, RecordError, RecordType, MAX_RECORD};
use crate::recmap;
use crate::session::{ClientConfig, ClientKx, IsslError, ServerConfig, ServerKx};
use crate::wire::{suite_from_bytes, suite_to_bytes, WireError};

pub(crate) const NONCE_LEN: usize = recmap::NONCE_LEN;
pub(crate) const PREMASTER_LEN: usize = 32;
/// Payload carried per data record (fits [`MAX_RECORD`] with IV and MAC).
pub(crate) const FRAGMENT: usize = recmap::FRAGMENT;

/// Which side of the handshake this machine plays.
enum Role {
    Client(ClientConfig),
    Server(ServerConfig),
}

/// Where the machine is in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Client: ClientHello sent, waiting for the ServerHello.
    AwaitServerHello,
    /// Client: KeyExchange + Finished sent, waiting for the server's
    /// Finished.
    AwaitServerFinished,
    /// Server: waiting for the ClientHello.
    AwaitClientHello,
    /// Server: ServerHello sent, waiting for the KeyExchange.
    AwaitKeyExchange,
    /// Server: keys derived, waiting for the client's Finished.
    AwaitClientFinished,
    /// Handshake done; records carry application data.
    Established,
    /// A sticky error stopped the machine.
    Failed,
}

/// A sans-I/O secure session: handshake and record processing with all
/// I/O externalised.
pub struct SessionMachine {
    role: Role,
    state: State,
    prng: Prng,

    // Handshake intermediates.
    transcript: Vec<u8>,
    transcript_hash: [u8; 20],
    client_nonce: Vec<u8>,
    server_nonce: Vec<u8>,
    offered: Option<crate::session::CipherSuite>,
    keys: Option<SessionKeys>,

    // Established-state crypto.
    enc: Option<Rijndael>,
    dec: Option<Rijndael>,
    mac_out: Vec<u8>,
    mac_in: Vec<u8>,
    block_len: usize,
    seq_out: u64,
    seq_in: u64,

    // Byte queues.
    inbox: VecDeque<u8>,
    outbox: Vec<u8>,
    plain_buf: VecDeque<u8>,

    error: Option<IsslError>,
    peer_closed: bool,
    eof: bool,
}

impl SessionMachine {
    fn new(role: Role, state: State, prng: Prng) -> SessionMachine {
        SessionMachine {
            role,
            state,
            prng,
            transcript: Vec::new(),
            transcript_hash: [0u8; 20],
            client_nonce: Vec::new(),
            server_nonce: Vec::new(),
            offered: None,
            keys: None,
            enc: None,
            dec: None,
            mac_out: Vec::new(),
            mac_in: Vec::new(),
            block_len: 0,
            seq_out: 0,
            seq_in: 0,
            inbox: VecDeque::new(),
            outbox: Vec::new(),
            plain_buf: VecDeque::new(),
            error: None,
            peer_closed: false,
            eof: false,
        }
    }

    /// Creates a client machine. The ClientHello is queued immediately —
    /// drain it with [`SessionMachine::take_output`].
    pub fn client(config: ClientConfig, mut prng: Prng) -> SessionMachine {
        let mut client_nonce = [0u8; NONCE_LEN];
        prng.fill(&mut client_nonce);
        let suite = config.suite;
        let mut m = SessionMachine::new(Role::Client(config), State::AwaitServerHello, prng);
        let mut hello = suite_to_bytes(suite).to_vec();
        hello.extend_from_slice(&client_nonce);
        let _ = m.emit_record(RecordType::ClientHello, &hello);
        m.transcript.extend_from_slice(&hello);
        m.client_nonce = client_nonce.to_vec();
        m
    }

    /// Creates a server machine, waiting for a ClientHello.
    pub fn server(config: ServerConfig, prng: Prng) -> SessionMachine {
        SessionMachine::new(Role::Server(config), State::AwaitClientHello, prng)
    }

    // ---- byte-queue interface -----------------------------------------

    /// Feeds inbound transport bytes and advances the machine as far as
    /// they allow.
    ///
    /// # Errors
    ///
    /// The machine's sticky error, if processing hit one (now or
    /// earlier). Bytes after the error point are never processed —
    /// exactly like the blocking path, which stops reading the wire at
    /// the first failure.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), IsslError> {
        self.inbox.extend(bytes);
        self.advance();
        match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Signals a clean end of the inbound stream. Mid-handshake this
    /// becomes [`RecordError::Eof`]; established with an empty inbox it
    /// is an orderly close; mid-record it is an unexpected EOF.
    pub fn feed_eof(&mut self) {
        self.eof = true;
        self.advance();
    }

    /// Drains the bytes the machine wants on the wire.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.outbox)
    }

    /// Whether outbound bytes are queued.
    pub fn has_output(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// Decrypted plaintext bytes ready to read.
    pub fn available(&self) -> usize {
        self.plain_buf.len()
    }

    /// Pops decrypted plaintext into `buf`, returning the count.
    pub fn read_plaintext(&mut self, buf: &mut [u8]) -> usize {
        let n = buf.len().min(self.plain_buf.len());
        for b in buf.iter_mut().take(n) {
            *b = self.plain_buf.pop_front().expect("length checked");
        }
        n
    }

    /// Takes all decrypted plaintext at once (event-loop convenience).
    pub fn take_plaintext(&mut self) -> Vec<u8> {
        self.plain_buf.drain(..).collect()
    }

    /// Encrypts application data into the outbox (fragmenting across
    /// records), mirroring the blocking `secure_write`.
    ///
    /// # Errors
    ///
    /// [`IsslError::Handshake`] before the handshake completes;
    /// [`IsslError::Corrupt`] if encryption fails.
    pub fn write(&mut self, data: &[u8]) -> Result<(), IsslError> {
        if self.state != State::Established {
            return Err(IsslError::Handshake("session not established"));
        }
        for chunk in data.chunks(FRAGMENT) {
            let mut iv = vec![0u8; self.block_len];
            self.prng.fill(&mut iv);
            let enc = self.enc.as_ref().expect("established");
            let ct = cbc_encrypt(enc, &iv, chunk).map_err(|_| IsslError::Corrupt)?;
            let mut mac_input = self.seq_out.to_be_bytes().to_vec();
            mac_input.extend_from_slice(&iv);
            mac_input.extend_from_slice(&ct);
            let mac = hmac_sha1(&self.mac_out, &mac_input);
            let mut body = iv;
            body.extend_from_slice(&ct);
            body.extend_from_slice(&mac);
            debug_assert!(body.len() <= MAX_RECORD);
            self.emit_record(RecordType::Data, &body)?;
            self.seq_out += 1;
        }
        Ok(())
    }

    /// Queues a close alert.
    ///
    /// # Errors
    ///
    /// [`RecordError::TooLong`] cannot actually occur for the fixed body.
    pub fn close(&mut self) -> Result<(), IsslError> {
        self.emit_record(RecordType::Alert, recmap::ALERT_CLOSE)
    }

    // ---- observers ----------------------------------------------------

    /// Whether the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// Whether the peer ended the stream (close alert or clean EOF).
    pub fn is_peer_closed(&self) -> bool {
        self.peer_closed
    }

    /// The sticky error, if the machine has failed.
    pub fn error(&self) -> Option<&IsslError> {
        self.error.as_ref()
    }

    /// Records sent (sequence number of the next outgoing data record).
    pub fn records_sent(&self) -> u64 {
        self.seq_out
    }

    /// Data records received and verified.
    pub fn records_received(&self) -> u64 {
        self.seq_in
    }

    /// Cipher block length once established (0 before).
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    // ---- internals ----------------------------------------------------

    fn emit_record(&mut self, kind: RecordType, body: &[u8]) -> Result<(), IsslError> {
        if body.len() > MAX_RECORD {
            return Err(IsslError::Record(RecordError::TooLong(body.len())));
        }
        self.outbox.push(kind.to_byte());
        self.outbox
            .extend_from_slice(&(body.len() as u16).to_be_bytes());
        self.outbox.extend_from_slice(body);
        Ok(())
    }

    /// Pops one complete record off the inbox, reproducing the blocking
    /// `read_record`'s error order: EOF only at a record boundary, then
    /// type byte, then length, with truncation-by-EOF mapping to
    /// [`WireError::UnexpectedEof`].
    fn next_record(&mut self) -> Result<Option<Record>, RecordError> {
        if self.inbox.is_empty() {
            if self.eof {
                return Err(RecordError::Eof);
            }
            return Ok(None);
        }
        if self.inbox.len() < 3 {
            if self.eof {
                return Err(RecordError::Wire(WireError::UnexpectedEof));
            }
            return Ok(None);
        }
        let type_byte = self.inbox[0];
        let kind = RecordType::from_byte(type_byte).ok_or(RecordError::BadType(type_byte))?;
        let len = usize::from(u16::from_be_bytes([self.inbox[1], self.inbox[2]]));
        if len > MAX_RECORD {
            return Err(RecordError::TooLong(len));
        }
        if self.inbox.len() < 3 + len {
            if self.eof {
                return Err(RecordError::Wire(WireError::UnexpectedEof));
            }
            return Ok(None);
        }
        self.inbox.drain(..3);
        let body: Vec<u8> = self.inbox.drain(..len).collect();
        Ok(Some(Record { kind, body }))
    }

    fn advance(&mut self) {
        loop {
            if self.error.is_some() || self.peer_closed {
                return;
            }
            let progressed = match self.state {
                State::Established => self.step_data(),
                State::Failed => false,
                _ => self.step_handshake(),
            };
            if !progressed {
                return;
            }
        }
    }

    fn step_handshake(&mut self) -> bool {
        let rec = match self.next_record() {
            Ok(Some(r)) => r,
            Ok(None) => return false,
            Err(e) => {
                self.error = Some(IsslError::Record(e));
                self.state = State::Failed;
                return false;
            }
        };
        let res = match self.state {
            State::AwaitServerHello => self.on_server_hello(&rec),
            State::AwaitServerFinished => self.on_server_finished(&rec),
            State::AwaitClientHello => self.on_client_hello(&rec),
            State::AwaitKeyExchange => self.on_key_exchange(&rec),
            State::AwaitClientFinished => self.on_client_finished(&rec),
            State::Established | State::Failed => unreachable!("handled in advance"),
        };
        if let Err(e) = res {
            self.error = Some(e);
            self.state = State::Failed;
            return false;
        }
        true
    }

    fn client_config(&self) -> ClientConfig {
        match &self.role {
            Role::Client(c) => c.clone(),
            Role::Server(_) => unreachable!("client state on server machine"),
        }
    }

    fn server_config(&self) -> ServerConfig {
        match &self.role {
            Role::Server(c) => c.clone(),
            Role::Client(_) => unreachable!("server state on client machine"),
        }
    }

    fn on_server_hello(&mut self, rec: &Record) -> Result<(), IsslError> {
        let config = self.client_config();
        if rec.kind == RecordType::Alert {
            return Err(IsslError::PeerAlert);
        }
        if rec.kind != RecordType::ServerHello {
            return Err(IsslError::Handshake("expected server hello"));
        }
        if rec.body.len() < 2 + NONCE_LEN + 4 {
            return Err(IsslError::Handshake("short server hello"));
        }
        let suite = suite_from_bytes(&rec.body).ok_or(IsslError::Handshake("bad suite"))?;
        if suite != config.suite {
            return Err(IsslError::Handshake("server changed the suite"));
        }
        let server_nonce = rec.body[2..2 + NONCE_LEN].to_vec();
        let mut off = 2 + NONCE_LEN;
        let n_len = usize::from(u16::from_be_bytes([rec.body[off], rec.body[off + 1]]));
        off += 2;
        let n_bytes = rec
            .body
            .get(off..off + n_len)
            .ok_or(IsslError::Handshake("truncated modulus"))?
            .to_vec();
        off += n_len;
        let e_len = usize::from(u16::from_be_bytes([
            *rec.body.get(off).ok_or(IsslError::Handshake("truncated"))?,
            *rec.body
                .get(off + 1)
                .ok_or(IsslError::Handshake("truncated"))?,
        ]));
        off += 2;
        let e_bytes = rec
            .body
            .get(off..off + e_len)
            .ok_or(IsslError::Handshake("truncated exponent"))?
            .to_vec();
        self.transcript.extend_from_slice(&rec.body);

        // Premaster + KeyExchange, consuming the PRNG in the blocking
        // path's exact order.
        self.prng.stir(&server_nonce);
        let premaster: Vec<u8> = match &config.kx {
            ClientKx::Rsa => {
                if n_len == 0 {
                    return Err(IsslError::Handshake("server offered no RSA key"));
                }
                let pk = PublicKey::from_bytes(&n_bytes, &e_bytes);
                let mut pm = vec![0u8; PREMASTER_LEN];
                self.prng.fill(&mut pm);
                let ct = pk
                    .encrypt(&pm, &mut PrngRng(&mut self.prng))
                    .map_err(|_| IsslError::Rsa)?;
                self.emit_record(RecordType::KeyExchange, &ct)?;
                self.transcript.extend_from_slice(&ct);
                pm
            }
            ClientKx::PreShared(psk) => {
                self.emit_record(RecordType::KeyExchange, &[])?;
                psk.clone()
            }
        };

        let keys = derive_session_keys(
            &premaster,
            &self.client_nonce,
            &server_nonce,
            config.suite.key.bytes(),
        );
        self.transcript_hash = sha1(&self.transcript);

        let my_mac = hmac_sha1(&keys.client_mac_key, &self.transcript_hash);
        self.emit_record(RecordType::Finished, &my_mac)?;
        self.server_nonce = server_nonce;
        self.keys = Some(keys);
        self.state = State::AwaitServerFinished;
        Ok(())
    }

    fn on_server_finished(&mut self, rec: &Record) -> Result<(), IsslError> {
        let config = self.client_config();
        if rec.kind == RecordType::Alert {
            return Err(IsslError::PeerAlert);
        }
        if rec.kind != RecordType::Finished {
            return Err(IsslError::Handshake("expected finished"));
        }
        let keys = self.keys.take().expect("set by on_server_hello");
        if !verify_hmac_sha1(&keys.server_mac_key, &self.transcript_hash, &rec.body) {
            return Err(IsslError::BadMac);
        }
        let enc = Rijndael::new(&keys.client_write_key, config.suite.block)
            .map_err(|_| IsslError::Handshake("bad key length"))?;
        let dec = Rijndael::new(&keys.server_write_key, config.suite.block)
            .map_err(|_| IsslError::Handshake("bad key length"))?;
        self.enc = Some(enc);
        self.dec = Some(dec);
        self.mac_out = keys.client_mac_key;
        self.mac_in = keys.server_mac_key;
        self.block_len = config.suite.block.bytes();
        self.state = State::Established;
        Ok(())
    }

    fn on_client_hello(&mut self, rec: &Record) -> Result<(), IsslError> {
        let config = self.server_config();
        if rec.kind != RecordType::ClientHello {
            return Err(IsslError::Handshake("expected client hello"));
        }
        if rec.body.len() != 2 + NONCE_LEN {
            return Err(IsslError::Handshake("bad client hello length"));
        }
        let offered = suite_from_bytes(&rec.body).ok_or(IsslError::Handshake("bad suite"))?;
        if !config.suites.contains(&offered) {
            let _ = self.emit_record(RecordType::Alert, recmap::ALERT_UNSUPPORTED_SUITE);
            return Err(IsslError::UnsupportedSuite);
        }
        self.client_nonce = rec.body[2..].to_vec();
        self.transcript.extend_from_slice(&rec.body);
        self.prng.stir(&self.client_nonce);

        let mut server_nonce = [0u8; NONCE_LEN];
        self.prng.fill(&mut server_nonce);
        let mut hello = suite_to_bytes(offered).to_vec();
        hello.extend_from_slice(&server_nonce);
        match &config.kx {
            ServerKx::Rsa(kp) => {
                let n = kp.public().n_bytes();
                let e = kp.public().e_bytes();
                hello.extend_from_slice(&(n.len() as u16).to_be_bytes());
                hello.extend_from_slice(&n);
                hello.extend_from_slice(&(e.len() as u16).to_be_bytes());
                hello.extend_from_slice(&e);
            }
            ServerKx::PreShared(_) => {
                hello.extend_from_slice(&0u16.to_be_bytes());
                hello.extend_from_slice(&0u16.to_be_bytes());
            }
        }
        self.emit_record(RecordType::ServerHello, &hello)?;
        self.transcript.extend_from_slice(&hello);
        self.server_nonce = server_nonce.to_vec();
        self.offered = Some(offered);
        self.state = State::AwaitKeyExchange;
        Ok(())
    }

    fn on_key_exchange(&mut self, rec: &Record) -> Result<(), IsslError> {
        let config = self.server_config();
        if rec.kind != RecordType::KeyExchange {
            return Err(IsslError::Handshake("expected key exchange"));
        }
        let premaster: Vec<u8> = match &config.kx {
            ServerKx::Rsa(kp) => {
                let pm = kp.decrypt(&rec.body).map_err(|_| IsslError::Rsa)?;
                self.transcript.extend_from_slice(&rec.body);
                pm
            }
            ServerKx::PreShared(psk) => psk.clone(),
        };
        let offered = self.offered.expect("set by on_client_hello");
        let keys = derive_session_keys(
            &premaster,
            &self.client_nonce,
            &self.server_nonce,
            offered.key.bytes(),
        );
        self.transcript_hash = sha1(&self.transcript);
        self.keys = Some(keys);
        self.state = State::AwaitClientFinished;
        Ok(())
    }

    fn on_client_finished(&mut self, rec: &Record) -> Result<(), IsslError> {
        if rec.kind != RecordType::Finished {
            return Err(IsslError::Handshake("expected finished"));
        }
        let keys = self.keys.take().expect("set by on_key_exchange");
        if !verify_hmac_sha1(&keys.client_mac_key, &self.transcript_hash, &rec.body) {
            let _ = self.emit_record(RecordType::Alert, recmap::ALERT_BAD_FINISHED);
            return Err(IsslError::BadMac);
        }
        let my_mac = hmac_sha1(&keys.server_mac_key, &self.transcript_hash);
        self.emit_record(RecordType::Finished, &my_mac)?;
        let offered = self.offered.expect("set by on_client_hello");
        let enc = Rijndael::new(&keys.server_write_key, offered.block)
            .map_err(|_| IsslError::Handshake("bad key length"))?;
        let dec = Rijndael::new(&keys.client_write_key, offered.block)
            .map_err(|_| IsslError::Handshake("bad key length"))?;
        self.enc = Some(enc);
        self.dec = Some(dec);
        self.mac_out = keys.server_mac_key;
        self.mac_in = keys.client_mac_key;
        self.block_len = offered.block.bytes();
        self.state = State::Established;
        Ok(())
    }

    fn step_data(&mut self) -> bool {
        let rec = match self.next_record() {
            Ok(Some(r)) => r,
            Ok(None) => return false,
            Err(RecordError::Eof) => {
                self.peer_closed = true;
                return false;
            }
            Err(e) => {
                self.error = Some(IsslError::Record(e));
                return false;
            }
        };
        match rec.kind {
            RecordType::Alert => {
                self.peer_closed = true;
                false
            }
            RecordType::Data => {
                let min = self.block_len + crypto::DIGEST_LEN;
                if rec.body.len() < min + self.block_len {
                    self.error = Some(IsslError::Corrupt);
                    return false;
                }
                let mac_at = rec.body.len() - crypto::DIGEST_LEN;
                let (payload, mac) = rec.body.split_at(mac_at);
                let mut mac_input = self.seq_in.to_be_bytes().to_vec();
                mac_input.extend_from_slice(payload);
                if !verify_hmac_sha1(&self.mac_in, &mac_input, mac) {
                    self.error = Some(IsslError::BadMac);
                    return false;
                }
                let (iv, ct) = payload.split_at(self.block_len);
                let dec = self.dec.as_ref().expect("established");
                match cbc_decrypt(dec, iv, ct) {
                    Ok(plain) => {
                        self.plain_buf.extend(plain);
                        self.seq_in += 1;
                        true
                    }
                    Err(_) => {
                        self.error = Some(IsslError::Corrupt);
                        false
                    }
                }
            }
            _ => {
                self.error = Some(IsslError::Handshake("handshake record after handshake"));
                false
            }
        }
    }
}

impl std::fmt::Debug for SessionMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionMachine")
            .field("state", &self.state)
            .field("seq_out", &self.seq_out)
            .field("seq_in", &self.seq_in)
            .field("inbox", &self.inbox.len())
            .field("outbox", &self.outbox.len())
            .finish()
    }
}

/// Adapter exposing [`Prng`] as a `rand::Rng` for the RSA padding code.
pub(crate) struct PrngRng<'a>(pub(crate) &'a mut Prng);

impl rand::RngCore for PrngRng<'_> {
    fn next_u32(&mut self) -> u32 {
        (self.0.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.fill(dest);
        Ok(())
    }
}
