//! Key derivation for issl sessions: an HMAC-SHA1 expansion of the
//! (pre)master secret and handshake nonces into directional cipher and
//! MAC keys.

use crypto::hmac_sha1;

/// Derives the 20-byte master secret from the premaster secret and the
/// two handshake nonces.
pub fn master_secret(premaster: &[u8], client_nonce: &[u8], server_nonce: &[u8]) -> [u8; 20] {
    let mut seed = Vec::with_capacity(6 + client_nonce.len() + server_nonce.len());
    seed.extend_from_slice(b"master");
    seed.extend_from_slice(client_nonce);
    seed.extend_from_slice(server_nonce);
    hmac_sha1(premaster, &seed)
}

/// Expands the master secret into `len` bytes of key material.
pub fn key_block(master: &[u8], client_nonce: &[u8], server_nonce: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 20);
    let mut counter = 0u8;
    while out.len() < len {
        let mut seed = Vec::with_capacity(14 + client_nonce.len() + server_nonce.len());
        seed.push(counter);
        seed.extend_from_slice(b"key expansion");
        seed.extend_from_slice(client_nonce);
        seed.extend_from_slice(server_nonce);
        out.extend_from_slice(&hmac_sha1(master, &seed));
        counter = counter.wrapping_add(1);
    }
    out.truncate(len);
    out
}

/// The directional keys carved out of a key block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// Client-to-server cipher key.
    pub client_write_key: Vec<u8>,
    /// Server-to-client cipher key.
    pub server_write_key: Vec<u8>,
    /// Client-to-server MAC key (20 bytes).
    pub client_mac_key: Vec<u8>,
    /// Server-to-client MAC key (20 bytes).
    pub server_mac_key: Vec<u8>,
}

/// Splits a key block into session keys for the given cipher-key length.
pub fn derive_session_keys(
    premaster: &[u8],
    client_nonce: &[u8],
    server_nonce: &[u8],
    key_len: usize,
) -> SessionKeys {
    let master = master_secret(premaster, client_nonce, server_nonce);
    let block = key_block(&master, client_nonce, server_nonce, key_len * 2 + 40);
    SessionKeys {
        client_write_key: block[..key_len].to_vec(),
        server_write_key: block[key_len..2 * key_len].to_vec(),
        client_mac_key: block[2 * key_len..2 * key_len + 20].to_vec(),
        server_mac_key: block[2 * key_len + 20..2 * key_len + 40].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = derive_session_keys(b"secret", b"cn", b"sn", 16);
        let b = derive_session_keys(b"secret", b"cn", b"sn", 16);
        assert_eq!(a, b);
    }

    #[test]
    fn any_input_change_changes_all_keys() {
        let base = derive_session_keys(b"secret", b"cn", b"sn", 16);
        for variant in [
            derive_session_keys(b"secreT", b"cn", b"sn", 16),
            derive_session_keys(b"secret", b"cN", b"sn", 16),
            derive_session_keys(b"secret", b"cn", b"sN", 16),
        ] {
            assert_ne!(base.client_write_key, variant.client_write_key);
            assert_ne!(base.server_mac_key, variant.server_mac_key);
        }
    }

    #[test]
    fn directional_keys_differ() {
        let k = derive_session_keys(b"secret", b"cn", b"sn", 32);
        assert_ne!(k.client_write_key, k.server_write_key);
        assert_ne!(k.client_mac_key, k.server_mac_key);
        assert_eq!(k.client_write_key.len(), 32);
        assert_eq!(k.client_mac_key.len(), 20);
    }

    #[test]
    fn key_block_extends_to_any_length() {
        let kb = key_block(b"m", b"c", b"s", 173);
        assert_eq!(kb.len(), 173);
        // prefix property
        let kb2 = key_block(b"m", b"c", b"s", 60);
        assert_eq!(&kb[..60], &kb2[..]);
    }
}
