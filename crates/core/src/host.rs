//! The Unix host profile: the "simple Unix service that used the issl
//! library to establish a secure redirector" (§2), which the authors
//! built first and later ported to the board.
//!
//! Structure mirrors the original: a listener hands each accepted
//! connection to a concurrent handler (the paper's `fork`-per-request
//! loop in §5.3 — modelled here as a pool of cooperative processes, since
//! the simulation has no processes to fork), each handler speaks issl
//! over BSD sockets, redirects plaintext to a backend service, and logs
//! to an append-only file on the host filesystem.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crypto::Prng;
use dynamicc::Scheduler;
use netsim::{Endpoint, HostId, Ipv4};
use sockets::bsd::{SockAddrIn, UnixProcess, AF_INET, SOCK_STREAM};
use sockets::Net;

use crate::log::{FileLog, Log};
use crate::session::{ClientConfig, ServerConfig, Session};
use crate::wire::BsdWire;

/// Counters published by a running redirector.
#[derive(Debug, Default)]
pub struct RedirectorStats {
    /// Connections fully served.
    pub served: AtomicU64,
    /// Application bytes redirected (client→backend direction).
    pub bytes_forward: AtomicU64,
    /// Handshakes that failed.
    pub handshake_failures: AtomicU64,
    /// Stop flag: set to end the worker pool after their current request.
    pub stop: AtomicBool,
}

/// Virtual CPU time the server charges for cryptography, in the spirit of
/// Goldberg et al.'s SSL-server measurements (§2 cites them observing SSL
/// "reducing throughput by an order of magnitude"): the public-key
/// operation dominates connection setup, the symmetric cipher taxes bulk
/// bytes. Costs are charged to the simulation clock while the handler
/// works, so a busy server really does serve fewer requests per virtual
/// second.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComputeCost {
    /// Microseconds for the server side of one handshake (RSA decrypt).
    pub handshake_us: u64,
    /// Microseconds per kilobyte of bulk data (cipher + MAC).
    pub per_kilobyte_us: u64,
}

impl ComputeCost {
    /// No modelled compute cost (wire-limited).
    pub fn free() -> ComputeCost {
        ComputeCost::default()
    }

    /// A server of the paper's era: ~20 ms per RSA handshake, symmetric
    /// crypto at roughly 12 MB/s.
    pub fn era_2002() -> ComputeCost {
        ComputeCost {
            handshake_us: 20_000,
            per_kilobyte_us: 80,
        }
    }
}

/// Configuration of a secure redirector.
#[derive(Debug, Clone)]
pub struct RedirectorConfig {
    /// Port to listen on.
    pub port: u16,
    /// Backend to forward plaintext to; `None` echoes locally.
    pub backend: Option<Endpoint>,
    /// Server-side session policy.
    pub tls: ServerConfig,
    /// Worker-pool size (the `fork` concurrency).
    pub workers: usize,
    /// PRNG seed base.
    pub seed: u64,
    /// Virtual crypto cost charged while serving.
    pub compute: ComputeCost,
}

/// Spawns the redirector's worker pool onto a costatement scheduler.
/// Returns the shared stats block.
///
/// # Panics
///
/// Panics if the listen port is already bound on `host`.
pub fn spawn_redirector(
    sched: &mut Scheduler,
    net: &Net,
    host: HostId,
    config: &RedirectorConfig,
    log: FileLog,
) -> Arc<RedirectorStats> {
    let stats = Arc::new(RedirectorStats::default());
    // One shared listener; workers all accept from it.
    let listener = net
        .with(|w| w.tcp_listen(host, config.port, config.workers.max(1) * 2))
        .expect("listen port free");

    for worker in 0..config.workers {
        let net = net.clone();
        let stats = Arc::clone(&stats);
        let config = config.clone();
        let log = log.clone();
        sched.spawn(&format!("redirector-{worker}"), move |co| {
            let mut proc = UnixProcess::in_costate(&net, host, co.clone());
            loop {
                if stats.stop.load(Ordering::SeqCst) {
                    return;
                }
                // accept() without a timeout: park until the listener has
                // a pending connection (or stop is raised), then accept.
                let conn = loop {
                    if stats.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    if net.with(|w| w.tcp_pending(listener)) > 0 {
                        if let Some(sid) = net.with(|w| w.tcp_accept(listener)) {
                            break sid;
                        }
                    }
                    let net = net.clone();
                    let stats = Arc::clone(&stats);
                    co.wait_until(move || {
                        stats.stop.load(Ordering::SeqCst)
                            || net.with(|w| w.tcp_pending(listener)) > 0
                    });
                };

                let seed = config.seed ^ (0xC0FF_EE00 + worker as u64);
                let outcome = serve_connection(&mut proc, &net, &co, conn, &config, seed, &stats);
                match outcome {
                    Ok(bytes) => {
                        stats.served.fetch_add(1, Ordering::SeqCst);
                        log.log(&format!("served connection ({bytes} bytes redirected)"));
                    }
                    Err(e) => {
                        stats.handshake_failures.fetch_add(1, Ordering::SeqCst);
                        log.log(&format!("connection failed: {e}"));
                    }
                }
            }
        });
    }
    stats
}

#[allow(clippy::too_many_arguments)] // internal helper; the grouping *is* the connection context
fn serve_connection(
    proc: &mut UnixProcess,
    net: &Net,
    co: &dynamicc::Co,
    conn: netsim::SocketId,
    config: &RedirectorConfig,
    seed: u64,
    stats: &RedirectorStats,
) -> Result<u64, crate::session::IsslError> {
    let wire = RawSocketWire {
        net: net.clone(),
        sid: conn,
        co: co.clone(),
    };
    let mut session = Session::server_handshake(wire, &config.tls, Prng::new(seed))?;
    if config.compute.handshake_us > 0 {
        net.pump(config.compute.handshake_us);
    }

    // Optional plaintext leg to the backend.
    let mut backend_fd = None;
    if let Some(be) = config.backend {
        let fd = proc.socket(AF_INET, SOCK_STREAM, 0).expect("socket");
        proc.connect(fd, &SockAddrIn::new(be.ip, be.port))
            .map_err(|_| crate::session::IsslError::Handshake("backend unreachable"))?;
        backend_fd = Some(fd);
    }

    let mut total = 0u64;
    let mut buf = vec![0u8; 2048];
    loop {
        let n = session.secure_read(&mut buf)?;
        if n == 0 {
            break;
        }
        total += n as u64;
        stats.bytes_forward.fetch_add(n as u64, Ordering::SeqCst);
        if config.compute.per_kilobyte_us > 0 {
            // decrypt + re-encrypt of n bytes
            net.pump(2 * (n as u64 * config.compute.per_kilobyte_us) / 1024);
        }
        match backend_fd {
            Some(fd) => {
                // redirect: plaintext to the backend, its reply back over
                // the secure channel
                proc.send_all(fd, &buf[..n])
                    .map_err(|_| crate::session::IsslError::Handshake("backend send"))?;
                let mut reply = vec![0u8; n];
                let mut got = 0;
                while got < n {
                    let m = proc
                        .recv(fd, &mut reply[got..])
                        .map_err(|_| crate::session::IsslError::Handshake("backend recv"))?;
                    if m == 0 {
                        break;
                    }
                    got += m;
                }
                session.secure_write(&reply[..got])?;
            }
            None => session.secure_write(&buf[..n])?, // echo
        }
    }
    let _ = session.close();
    if let Some(fd) = backend_fd {
        let _ = proc.close(fd);
    }
    Ok(total)
}

/// A raw netsim TCP socket used directly as a [`crate::wire::Wire`]
/// inside a costatement: blocked operations yield to the scheduler and a
/// driver costatement advances the wire.
pub struct RawSocketWire {
    /// Network handle.
    pub net: Net,
    /// Connected socket.
    pub sid: netsim::SocketId,
    /// Costatement handle used to yield while blocked.
    pub co: dynamicc::Co,
}

impl crate::wire::Wire for RawSocketWire {
    fn write_all(&mut self, data: &[u8]) -> Result<(), crate::wire::WireError> {
        let mut off = 0;
        let mut idle = 0u32;
        while off < data.len() {
            match self.net.with(|w| w.tcp_send(self.sid, &data[off..])) {
                Ok(0) => {
                    self.co.yield_now();
                    idle += 1;
                    if idle > 10_000_000 {
                        return Err(crate::wire::WireError::Timeout);
                    }
                }
                Ok(n) => {
                    off += n;
                    idle = 0;
                }
                Err(_) => return Err(crate::wire::WireError::ConnectionLost),
            }
        }
        Ok(())
    }

    fn read(&mut self, buf: &mut [u8]) -> Result<usize, crate::wire::WireError> {
        let mut idle = 0u32;
        loop {
            match self.net.with(|w| w.tcp_recv(self.sid, buf)) {
                netsim::Recv::Data(n) => return Ok(n),
                netsim::Recv::Closed => return Ok(0),
                netsim::Recv::Reset => return Err(crate::wire::WireError::ConnectionLost),
                netsim::Recv::WouldBlock => {
                    self.co.yield_now();
                    idle += 1;
                    if idle > 10_000_000 {
                        return Err(crate::wire::WireError::Timeout);
                    }
                }
            }
        }
    }
}

/// Spawns a plaintext echo server (the backend the redirector fronts, and
/// the baseline for the SSL-overhead experiment).
pub fn spawn_plain_echo(
    sched: &mut Scheduler,
    net: &Net,
    host: HostId,
    port: u16,
    workers: usize,
) -> Arc<RedirectorStats> {
    let stats = Arc::new(RedirectorStats::default());
    let listener = net
        .with(|w| w.tcp_listen(host, port, workers.max(1) * 2))
        .expect("listen port free");
    for worker in 0..workers {
        let net = net.clone();
        let stats = Arc::clone(&stats);
        sched.spawn(&format!("plain-echo-{worker}"), move |co| loop {
            if stats.stop.load(Ordering::SeqCst) {
                return;
            }
            let conn = loop {
                if stats.stop.load(Ordering::SeqCst) {
                    return;
                }
                if net.with(|w| w.tcp_pending(listener)) > 0 {
                    if let Some(sid) = net.with(|w| w.tcp_accept(listener)) {
                        break sid;
                    }
                }
                let net = net.clone();
                let stats = Arc::clone(&stats);
                co.wait_until(move || {
                    stats.stop.load(Ordering::SeqCst)
                        || net.with(|w| w.tcp_pending(listener)) > 0
                });
            };
            let mut buf = [0u8; 2048];
            loop {
                match net.with(|w| w.tcp_recv(conn, &mut buf)) {
                    netsim::Recv::Data(n) => {
                        stats.bytes_forward.fetch_add(n as u64, Ordering::SeqCst);
                        let mut off = 0;
                        while off < n {
                            match net.with(|w| w.tcp_send(conn, &buf[off..n])) {
                                Ok(m) => off += m,
                                Err(_) => break,
                            }
                            if off < n {
                                co.yield_now();
                            }
                        }
                    }
                    netsim::Recv::WouldBlock => co.yield_now(),
                    netsim::Recv::Closed | netsim::Recv::Reset => break,
                }
            }
            let _ = net.with(|w| w.tcp_close(conn));
            stats.served.fetch_add(1, Ordering::SeqCst);
        });
    }
    stats
}

/// Spawns a driver costatement that pumps the simulated network each
/// round (the event-loop "process" every cooperative rig needs).
pub fn spawn_driver(sched: &mut Scheduler, net: &Net, quantum_us: u64) -> Arc<AtomicBool> {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let net = net.clone();
    // Inline: the driver never blocks mid-slice, so it runs on the
    // scheduler thread and skips two context switches per round.
    sched.spawn_inline("net-driver", move || {
        if flag.load(Ordering::SeqCst) {
            return true;
        }
        net.pump(quantum_us);
        false
    });
    stop
}

/// Result block filled in by [`spawn_secure_client`].
#[derive(Debug, Default)]
pub struct ClientResult {
    /// Bytes echoed back and verified.
    pub bytes_verified: AtomicU64,
    /// Completed successfully.
    pub done: AtomicBool,
    /// Error string if the exchange failed.
    pub failed: AtomicBool,
}

/// Spawns a client costatement that connects to `server`, performs the
/// issl handshake, streams `payload` through in `chunk`-byte secure
/// writes, and verifies the echoed/redirected reply.
#[allow(clippy::too_many_arguments)] // a workload spec, deliberately flat
pub fn spawn_secure_client(
    sched: &mut Scheduler,
    net: &Net,
    host: HostId,
    server: Endpoint,
    tls: ClientConfig,
    payload: Vec<u8>,
    chunk: usize,
    seed: u64,
) -> Arc<ClientResult> {
    let result = Arc::new(ClientResult::default());
    let out = Arc::clone(&result);
    let net = net.clone();
    sched.spawn("secure-client", move |co| {
        let mut proc = UnixProcess::in_costate(&net, host, co.clone());
        let fd = proc.socket(AF_INET, SOCK_STREAM, 0).expect("socket");
        if proc
            .connect(fd, &SockAddrIn::new(server.ip, server.port))
            .is_err()
        {
            out.failed.store(true, Ordering::SeqCst);
            return;
        }
        let wire = BsdWire {
            process: &mut proc,
            fd,
        };
        let Ok(mut session) = Session::client_handshake(wire, &tls, Prng::new(seed)) else {
            out.failed.store(true, Ordering::SeqCst);
            return;
        };
        let mut verified = 0u64;
        for part in payload.chunks(chunk.max(1)) {
            if session.secure_write(part).is_err() {
                out.failed.store(true, Ordering::SeqCst);
                return;
            }
            let mut echoed = vec![0u8; part.len()];
            let mut got = 0;
            while got < part.len() {
                match session.secure_read(&mut echoed[got..]) {
                    Ok(0) => {
                        out.failed.store(true, Ordering::SeqCst);
                        return;
                    }
                    Ok(n) => got += n,
                    Err(_) => {
                        out.failed.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
            if echoed != part {
                out.failed.store(true, Ordering::SeqCst);
                return;
            }
            verified += part.len() as u64;
            out.bytes_verified.store(verified, Ordering::SeqCst);
        }
        let _ = session.close();
        out.done.store(true, Ordering::SeqCst);
    });
    result
}

/// Spawns a *plaintext* client with the same traffic pattern, for the
/// SSL-overhead baseline.
pub fn spawn_plain_client(
    sched: &mut Scheduler,
    net: &Net,
    host: HostId,
    server: Endpoint,
    payload: Vec<u8>,
    chunk: usize,
) -> Arc<ClientResult> {
    let result = Arc::new(ClientResult::default());
    let out = Arc::clone(&result);
    let net = net.clone();
    sched.spawn("plain-client", move |co| {
        let mut proc = UnixProcess::in_costate(&net, host, co.clone());
        let fd = proc.socket(AF_INET, SOCK_STREAM, 0).expect("socket");
        if proc
            .connect(fd, &SockAddrIn::new(server.ip, server.port))
            .is_err()
        {
            out.failed.store(true, Ordering::SeqCst);
            return;
        }
        let mut verified = 0u64;
        for part in payload.chunks(chunk.max(1)) {
            if proc.send_all(fd, part).is_err() {
                out.failed.store(true, Ordering::SeqCst);
                return;
            }
            let mut echoed = vec![0u8; part.len()];
            let mut got = 0;
            while got < part.len() {
                match proc.recv(fd, &mut echoed[got..]) {
                    Ok(0) => {
                        out.failed.store(true, Ordering::SeqCst);
                        return;
                    }
                    Ok(n) => got += n,
                    Err(_) => {
                        out.failed.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
            if echoed != part {
                out.failed.store(true, Ordering::SeqCst);
                return;
            }
            verified += part.len() as u64;
            out.bytes_verified.store(verified, Ordering::SeqCst);
        }
        let _ = proc.close(fd);
        out.done.store(true, Ordering::SeqCst);
    });
    result
}

/// Writes the SHA-1 of the server's public key to the conventional path —
/// the "hash value in a file" whose absence on the board forced a logic
/// change (§5).
pub fn publish_key_hash(fs: &crate::fs::Filesystem, kx: &crate::session::ServerKx) -> String {
    let digest = match kx {
        crate::session::ServerKx::Rsa(kp) => crypto::sha1(&kp.public().n_bytes()),
        crate::session::ServerKx::PreShared(psk) => crypto::sha1(psk),
    };
    let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
    fs.write("/etc/issl/key.hash", hex.as_bytes());
    hex
}

/// Convenience: build the standard two-host rig (server + client LAN).
pub fn standard_rig(seed: u64) -> (Net, HostId, HostId) {
    let net = Net::new(seed);
    let server = net.add_host("server", Ipv4::new(10, 0, 0, 1));
    let client = net.add_host("client", Ipv4::new(10, 0, 0, 2));
    net.link(server, client, netsim::LinkParams::lan_100m());
    (net, server, client)
}
