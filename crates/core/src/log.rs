//! Logging, two ways — the paper's third class of porting problem (§5):
//! "The solutions to such problems are either to remove the offending
//! functionality at the expense of features (e.g., remove logging
//! altogether), or a serious reworking of the code (e.g., to make logging
//! write to a circular buffer rather than a file)."
//!
//! [`FileLog`] is the host-side unbounded append-to-file logger;
//! [`CircularLog`] is the reworked embedded logger with a fixed-capacity
//! ring, as the port chose. The ring itself is [`telemetry::Ring`] — the
//! same bounded buffer the span recorder uses.

use std::sync::{Arc, Mutex};

use telemetry::Ring;

use crate::fs::Filesystem;

/// Something log lines can be written to.
pub trait Log {
    /// Records one line.
    fn log(&self, line: &str);

    /// Returns the currently retained lines, oldest first.
    fn lines(&self) -> Vec<String>;
}

/// Unbounded logging to a file — fine on a workstation, fatal on a
/// 128 KiB board.
#[derive(Debug, Clone)]
pub struct FileLog {
    fs: Filesystem,
    path: String,
}

impl FileLog {
    /// Creates a logger appending to `path` on `fs`.
    pub fn new(fs: Filesystem, path: &str) -> FileLog {
        FileLog {
            fs,
            path: path.to_string(),
        }
    }

    /// Bytes currently consumed on the filesystem.
    pub fn bytes(&self) -> usize {
        self.fs.size(&self.path)
    }
}

impl Log for FileLog {
    fn log(&self, line: &str) {
        self.fs.append(&self.path, line.as_bytes());
        self.fs.append(&self.path, b"\n");
    }

    fn lines(&self) -> Vec<String> {
        match self.fs.read(&self.path) {
            Ok(data) => String::from_utf8_lossy(&data)
                .lines()
                .map(str::to_string)
                .collect(),
            Err(_) => Vec::new(),
        }
    }
}

/// The embedded rework: a fixed-capacity ring of log lines. Memory use is
/// bounded forever; old entries fall off the front.
#[derive(Debug, Clone)]
pub struct CircularLog {
    inner: Arc<Mutex<Ring<String>>>,
}

impl CircularLog {
    /// Creates a ring holding at most `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> CircularLog {
        CircularLog {
            inner: Arc::new(Mutex::new(Ring::new(capacity))),
        }
    }

    /// Lines evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("log lock").dropped()
    }

    /// Maximum retained lines.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("log lock").capacity()
    }
}

impl Log for CircularLog {
    fn log(&self, line: &str) {
        self.inner.lock().expect("log lock").push(line.to_string());
    }

    fn lines(&self) -> Vec<String> {
        self.inner.lock().expect("log lock").iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_log_grows_without_bound() {
        let fs = Filesystem::new();
        let log = FileLog::new(fs, "/var/log/issl.log");
        for i in 0..1000 {
            log.log(&format!("session {i}"));
        }
        assert_eq!(log.lines().len(), 1000);
        assert!(log.bytes() > 10_000);
    }

    #[test]
    fn circular_log_is_bounded() {
        let log = CircularLog::new(8);
        for i in 0..100 {
            log.log(&format!("session {i}"));
        }
        let lines = log.lines();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0], "session 92");
        assert_eq!(lines[7], "session 99");
        assert_eq!(log.dropped(), 92);
    }

    #[test]
    fn circular_log_under_capacity_keeps_everything() {
        let log = CircularLog::new(10);
        log.log("a");
        log.log("b");
        assert_eq!(log.lines(), vec!["a", "b"]);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _ = CircularLog::new(0);
    }
}
