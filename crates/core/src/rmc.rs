//! The RMC2000 port of the issl service — the paper's Figure 3 server.
//!
//! Everything the port changed is reproduced here:
//!
//! * **No `fork`/`accept`**: the server is a fixed set of handler
//!   costatements, each owning one `tcp_listen` slot on the service port,
//!   plus one costatement that drives the TCP stack with `tcp_tick(NULL)`
//!   — "three processes to handle requests (allowing a maximum of three
//!   connections), and one to drive the TCP stack". Adding concurrency
//!   means adding costatements and **recompiling**.
//! * **No RSA**: key exchange degenerates to a pre-shared master secret
//!   ([`crate::session::ServerKx::PreShared`]); the bignum package never
//!   crossed the porting gap.
//! * **AES-128/128 only**: other Rijndael geometries are rejected with an
//!   alert ("we only implemented 128-bit keys and blocks").
//! * **Static allocation**: all per-handler buffers come from one
//!   [`dynamicc::Xalloc`] arena at start-up; the arena's allocation count
//!   never moves once the server is serving (no `malloc`, no `free`).
//! * **No filesystem**: logging goes to a fixed [`CircularLog`]; the key
//!   hash that the host reads from a file is a compiled-in constant.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crypto::Prng;
use dynamicc::{Scheduler, Xalloc};
use sockets::dynic::{Stack, TcpSock};

use crate::log::{CircularLog, Log};
use crate::session::{CipherSuite, ServerConfig, ServerKx, Session};
use crate::wire::{Wire, WireError};

/// Fixed record buffer per handler, allocated once from the arena —
/// exactly one maximum-size record ([`crate::recmap::MAX_RECORD`]).
pub const HANDLER_BUFFER: usize = crate::recmap::MAX_RECORD;

/// Counters published by the running port.
#[derive(Debug, Default)]
pub struct RmcStats {
    /// Connections fully served.
    pub served: AtomicU64,
    /// Handlers currently inside a connection.
    pub active: AtomicU64,
    /// High-water mark of simultaneous connections — the paper's cap of
    /// three (experiment E5).
    pub max_active: AtomicU64,
    /// Hellos rejected for offering a non-AES-128 suite.
    pub rejected_suites: AtomicU64,
    /// Handshakes that failed for other reasons.
    pub failures: AtomicU64,
    /// Stop flag for orderly shutdown.
    pub stop: AtomicBool,
}

/// Configuration of the ported server.
#[derive(Debug, Clone)]
pub struct RmcServerConfig {
    /// Service port.
    pub port: u16,
    /// The pre-shared master secret (replaces RSA).
    pub psk: Vec<u8>,
    /// Number of handler costatements — 3 in the paper; changing it
    /// means "the program would have to be re-compiled", i.e. a new call
    /// to [`spawn_rmc_server`].
    pub handlers: usize,
    /// Circular-log capacity in lines.
    pub log_lines: usize,
    /// Extended-memory arena size for the static buffers.
    pub xmem_bytes: usize,
    /// PRNG seed base.
    pub seed: u64,
}

impl Default for RmcServerConfig {
    fn default() -> RmcServerConfig {
        RmcServerConfig {
            port: 4433,
            psk: b"rmc2000 pre-shared master secret".to_vec(),
            handlers: 3,
            log_lines: 32,
            xmem_bytes: 16 * 1024,
            seed: 0x2000,
        }
    }
}

/// A Dynamic C socket as a [`Wire`] for costatement handlers: blocked
/// operations yield; the tick costatement advances the stack.
struct CoDynicWire {
    stack: Stack,
    sock: TcpSock,
    co: dynamicc::Co,
}

impl Wire for CoDynicWire {
    fn write_all(&mut self, mut data: &[u8]) -> Result<(), WireError> {
        let mut idle = 0u32;
        while !data.is_empty() {
            match self.stack.sock_write(self.sock, data) {
                Ok(0) => {
                    self.co.yield_now();
                    idle += 1;
                    if idle > 10_000_000 {
                        return Err(WireError::Timeout);
                    }
                }
                Ok(n) => {
                    data = &data[n..];
                    idle = 0;
                }
                Err(_) => return Err(WireError::ConnectionLost),
            }
        }
        Ok(())
    }

    fn read(&mut self, buf: &mut [u8]) -> Result<usize, WireError> {
        let mut idle = 0u32;
        loop {
            match self.stack.sock_read(self.sock, buf) {
                Ok(0) => {
                    if self.stack.sock_peer_closed(self.sock) {
                        return Ok(0);
                    }
                    self.co.yield_now();
                    idle += 1;
                    if idle > 10_000_000 {
                        return Err(WireError::Timeout);
                    }
                }
                Ok(n) => return Ok(n),
                Err(_) => return Err(WireError::ConnectionLost),
            }
        }
    }
}

/// Handle to the spawned port: stats, the circular log, and the arena
/// (exposed so tests can verify the allocation trace stays flat).
pub struct RmcServer {
    /// Shared counters.
    pub stats: Arc<RmcStats>,
    /// The bounded log.
    pub log: CircularLog,
    /// The static-allocation arena.
    pub xalloc: Arc<Mutex<Xalloc>>,
    /// Compiled-in key hash (hex), replacing the host's key-hash file.
    pub key_hash: String,
}

/// Spawns the Figure 3 server onto a scheduler: `config.handlers` handler
/// costatements plus the `tcp_tick(NULL)` driver costatement.
///
/// # Panics
///
/// Panics if the xmem arena cannot hold the handlers' static buffers.
pub fn spawn_rmc_server(
    sched: &mut Scheduler,
    stack: &Stack,
    config: &RmcServerConfig,
) -> RmcServer {
    let stats = Arc::new(RmcStats::default());
    let log = CircularLog::new(config.log_lines);
    let mut arena = Xalloc::new(config.xmem_bytes);

    // §5.2: everything allocated up front, nothing ever freed.
    let buffers: Vec<dynamicc::XPtr> = (0..config.handlers)
        .map(|_| arena.alloc(HANDLER_BUFFER).expect("xmem budget"))
        .collect();
    let xalloc = Arc::new(Mutex::new(arena));

    // The compiled-in key hash (the host reads this from a file).
    let digest = crypto::sha1(&config.psk);
    let key_hash: String = digest.iter().map(|b| format!("{b:02x}")).collect();

    let tls = ServerConfig {
        suites: vec![CipherSuite::AES128],
        kx: ServerKx::PreShared(config.psk.clone()),
    };

    for (idx, buffer) in buffers.into_iter().enumerate() {
        let stack = stack.clone();
        let stats = Arc::clone(&stats);
        let log = log.clone();
        let tls = tls.clone();
        let xalloc = Arc::clone(&xalloc);
        let port = config.port;
        let seed = config.seed ^ ((idx as u64 + 1) << 24);
        sched.spawn(&format!("tls-handler-{idx}"), move |co| {
            loop {
                if stats.stop.load(Ordering::SeqCst) {
                    return;
                }
                let sock = stack.tcp_socket();
                if stack.tcp_listen(sock, port).is_err() {
                    log.log(&format!("handler {idx}: listen failed"));
                    return;
                }
                // waitfor(sock_established(&socket)) — Figure 3's shape,
                // rebased on the readiness primitive: accept-ready on a
                // Dynamic C listen slot is exactly "the slot was handed
                // its connection and the handshake finished".
                co.waitfor(|| {
                    stack.sock_readiness(sock).accept_ready || stats.stop.load(Ordering::SeqCst)
                });
                if stats.stop.load(Ordering::SeqCst) {
                    stack.sock_close(sock);
                    return;
                }

                let now_active = stats.active.fetch_add(1, Ordering::SeqCst) + 1;
                stats.max_active.fetch_max(now_active, Ordering::SeqCst);

                let wire = CoDynicWire {
                    stack: stack.clone(),
                    sock,
                    co: co.clone(),
                };
                match Session::server_handshake(wire, &tls, Prng::new(seed)) {
                    Ok(mut session) => {
                        // Echo service over the secure channel. Incoming
                        // plaintext is staged through this handler's
                        // static arena buffer; the arena lock is never
                        // held across a yield point (reads and writes
                        // block cooperatively).
                        let mut total = 0u64;
                        let mut record = [0u8; HANDLER_BUFFER];
                        loop {
                            let n = match session.secure_read(&mut record) {
                                Ok(0) => break,
                                Ok(n) => n,
                                Err(_) => {
                                    stats.failures.fetch_add(1, Ordering::SeqCst);
                                    break;
                                }
                            };
                            let chunk = {
                                let mut arena = xalloc.lock().expect("arena lock");
                                arena.bytes_mut(buffer)[..n].copy_from_slice(&record[..n]);
                                arena.bytes(buffer)[..n].to_vec()
                            };
                            if session.secure_write(&chunk).is_err() {
                                stats.failures.fetch_add(1, Ordering::SeqCst);
                                break;
                            }
                            total += n as u64;
                        }
                        let _ = session.close();
                        stats.served.fetch_add(1, Ordering::SeqCst);
                        log.log(&format!("handler {idx}: served {total} bytes"));
                    }
                    Err(crate::session::IsslError::UnsupportedSuite) => {
                        stats.rejected_suites.fetch_add(1, Ordering::SeqCst);
                        log.log(&format!("handler {idx}: rejected non-AES-128 hello"));
                    }
                    Err(e) => {
                        stats.failures.fetch_add(1, Ordering::SeqCst);
                        log.log(&format!("handler {idx}: handshake failed: {e}"));
                    }
                }
                stack.sock_close(sock);
                stats.active.fetch_sub(1, Ordering::SeqCst);
            }
        });
    }

    // The fourth process: drive the TCP stack.
    {
        let stack = stack.clone();
        let stats = Arc::clone(&stats);
        sched.spawn("tcp-tick", move |co| {
            while !stats.stop.load(Ordering::SeqCst) {
                stack.tcp_tick(None);
                co.yield_now();
            }
        });
    }

    RmcServer {
        stats,
        log,
        xalloc,
        key_hash,
    }
}
