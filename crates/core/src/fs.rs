//! A miniature in-memory filesystem for the Unix host profile.
//!
//! The paper's §5 calls the filesystem assumption out twice: issl "makes
//! some use of a filesystem, something not provided by the RMC2000
//! environment", and server code assumes "a filesystem with nearly
//! unlimited capacity (e.g., for keeping a log)". The host profile uses
//! this module for its key-hash file and its append-only log; the RMC
//! profile has **no** filesystem at all — its workarounds live in
//! [`crate::log::CircularLog`] and in compiled-in constants.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// A shared in-memory filesystem; clones alias the same tree.
#[derive(Debug, Clone, Default)]
pub struct Filesystem {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl Filesystem {
    /// An empty filesystem.
    pub fn new() -> Filesystem {
        Filesystem::default()
    }

    /// Writes (creating or truncating) a file.
    pub fn write(&self, path: &str, data: &[u8]) {
        self.files
            .lock()
            .expect("fs lock")
            .insert(path.to_string(), data.to_vec());
    }

    /// Appends to a file, creating it if needed.
    pub fn append(&self, path: &str, data: &[u8]) {
        self.files
            .lock()
            .expect("fs lock")
            .entry(path.to_string())
            .or_default()
            .extend_from_slice(data);
    }

    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`].
    pub fn read(&self, path: &str) -> Result<Vec<u8>, FsError> {
        self.files
            .lock()
            .expect("fs lock")
            .get(path)
            .cloned()
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.lock().expect("fs lock").contains_key(path)
    }

    /// Size of a file in bytes (0 if missing).
    pub fn size(&self, path: &str) -> usize {
        self.files
            .lock()
            .expect("fs lock")
            .get(path)
            .map_or(0, Vec::len)
    }

    /// Lists all paths.
    pub fn list(&self) -> Vec<String> {
        self.files
            .lock()
            .expect("fs lock")
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let fs = Filesystem::new();
        fs.write("/etc/issl/key.hash", b"abc123");
        assert_eq!(fs.read("/etc/issl/key.hash").unwrap(), b"abc123");
        assert!(fs.exists("/etc/issl/key.hash"));
        assert!(!fs.exists("/etc/shadow"));
    }

    #[test]
    fn append_grows_without_bound() {
        let fs = Filesystem::new();
        for _ in 0..100 {
            fs.append("/var/log/issl.log", b"entry\n");
        }
        assert_eq!(fs.size("/var/log/issl.log"), 600);
    }

    #[test]
    fn missing_file_is_an_error() {
        let fs = Filesystem::new();
        assert_eq!(
            fs.read("/nope"),
            Err(FsError::NotFound("/nope".to_string()))
        );
    }

    #[test]
    fn clones_share_state() {
        let fs = Filesystem::new();
        let fs2 = fs.clone();
        fs.write("/a", b"1");
        assert!(fs2.exists("/a"));
    }
}
