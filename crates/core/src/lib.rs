//! **issl** — the network cryptographic service of *Porting a Network
//! Cryptographic Service to the RMC2000* (DATE 2003), rebuilt in full:
//! an SSL-style secure-channel library that layers on top of a sockets
//! layer, with both ends of the case study:
//!
//! * the **Unix host profile** ([`host`]): RSA key exchange over BSD
//!   sockets, a fork-style concurrent secure redirector, unbounded
//!   logging to a filesystem;
//! * the **RMC2000 port profile** ([`rmc`]): the paper's Figure 3 server
//!   — handler costatements plus a `tcp_tick` costatement over the
//!   Dynamic C socket API, pre-shared keys instead of RSA (the bignum
//!   package didn't make the crossing), AES-128/128 only, static
//!   allocation from an `xalloc` arena, and a circular log instead of a
//!   file.
//!
//! Layering (§2: "After a normal unencrypted socket is created, the issl
//! API allows a user to bind to the socket and then do secure read/writes
//! on it"):
//!
//! ```text
//!   application
//!   ── secure_read / secure_write ───────────── [session]
//!   ── records: type ‖ len ‖ IV ‖ CBC ‖ HMAC ── [record]
//!   ── transport: BSD / Dynamic C / raw ─────── [wire]
//!   ── simulated TCP/IP ─────────────────────── netsim
//! ```

pub mod fs;
pub mod host;
pub mod kdf;
pub mod log;
pub mod machine;
pub mod recmap;
pub mod record;
pub mod rmc;
pub mod serve;
pub mod session;
pub mod wire;

pub use fs::Filesystem;
pub use host::ComputeCost;
pub use log::{CircularLog, FileLog, Log};
pub use machine::SessionMachine;
pub use record::{Record, RecordError, RecordType, MAX_RECORD};
pub use serve::{EventLoop, LoadSpec, ServeReport};
pub use session::{
    CipherSuite, ClientConfig, ClientKx, IsslError, ServerConfig, ServerKx, Session,
};
pub use wire::{suite_from_bytes, suite_to_bytes, BsdWire, DynicWire, Wire, WireError};
