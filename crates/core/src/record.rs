//! The issl record layer: type-length-value framing over a [`Wire`],
//! with encrypted records carrying `IV || CBC(payload) || HMAC`.
//!
//! The wire constants (type bytes, header layout, size cap) live in
//! [`crate::recmap`] — shared with the guest C record runtime, which is
//! generated from the same module.

use crate::recmap;
use crate::wire::{Wire, WireError};

/// Record content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordType {
    /// Client hello: nonce + offered cipher geometry.
    ClientHello,
    /// Server hello: nonce + (host profile) RSA public key.
    ServerHello,
    /// RSA-encrypted premaster secret.
    KeyExchange,
    /// Handshake-transcript MAC.
    Finished,
    /// Application data.
    Data,
    /// Fatal alert / orderly close.
    Alert,
}

impl RecordType {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            RecordType::ClientHello => recmap::REC_CLIENT_HELLO,
            RecordType::ServerHello => recmap::REC_SERVER_HELLO,
            RecordType::KeyExchange => recmap::REC_KEY_EXCHANGE,
            RecordType::Finished => recmap::REC_FINISHED,
            RecordType::Data => recmap::REC_DATA,
            RecordType::Alert => recmap::REC_ALERT,
        }
    }

    pub(crate) fn from_byte(b: u8) -> Option<RecordType> {
        Some(match b {
            recmap::REC_CLIENT_HELLO => RecordType::ClientHello,
            recmap::REC_SERVER_HELLO => RecordType::ServerHello,
            recmap::REC_KEY_EXCHANGE => RecordType::KeyExchange,
            recmap::REC_FINISHED => RecordType::Finished,
            recmap::REC_DATA => RecordType::Data,
            recmap::REC_ALERT => RecordType::Alert,
            _ => return None,
        })
    }
}

/// Largest record body accepted (see [`crate::recmap::MAX_RECORD`]).
pub const MAX_RECORD: usize = recmap::MAX_RECORD;

/// Record-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Transport failed underneath.
    Wire(WireError),
    /// Unknown record type byte.
    BadType(u8),
    /// Record body exceeds [`MAX_RECORD`].
    TooLong(usize),
    /// Clean end of stream between records.
    Eof,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Wire(e) => write!(f, "transport: {e}"),
            RecordError::BadType(b) => write!(f, "unknown record type {b:#04x}"),
            RecordError::TooLong(n) => write!(f, "record of {n} bytes exceeds {MAX_RECORD}"),
            RecordError::Eof => write!(f, "end of stream"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<WireError> for RecordError {
    fn from(e: WireError) -> RecordError {
        RecordError::Wire(e)
    }
}

/// A parsed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Content type.
    pub kind: RecordType,
    /// Raw body (plaintext for handshake records, ciphertext for data).
    pub body: Vec<u8>,
}

/// Writes a record: `[type:1][len:2 BE][body]`.
///
/// # Errors
///
/// [`RecordError::TooLong`] or a transport failure.
pub fn write_record<W: Wire + ?Sized>(
    wire: &mut W,
    kind: RecordType,
    body: &[u8],
) -> Result<(), RecordError> {
    if body.len() > MAX_RECORD {
        return Err(RecordError::TooLong(body.len()));
    }
    let mut frame = Vec::with_capacity(3 + body.len());
    frame.push(kind.to_byte());
    frame.extend_from_slice(&(body.len() as u16).to_be_bytes());
    frame.extend_from_slice(body);
    wire.write_all(&frame)?;
    Ok(())
}

/// Reads one record.
///
/// # Errors
///
/// [`RecordError::Eof`] on a clean end of stream before the first header
/// byte; other variants on malformed or truncated frames.
pub fn read_record<W: Wire + ?Sized>(wire: &mut W) -> Result<Record, RecordError> {
    let mut header = [0u8; 3];
    // First byte may hit EOF cleanly.
    let n = wire.read(&mut header[..1])?;
    if n == 0 {
        return Err(RecordError::Eof);
    }
    wire.read_exact(&mut header[1..])?;
    let kind = RecordType::from_byte(header[0]).ok_or(RecordError::BadType(header[0]))?;
    let len = usize::from(u16::from_be_bytes([header[1], header[2]]));
    if len > MAX_RECORD {
        return Err(RecordError::TooLong(len));
    }
    let mut body = vec![0u8; len];
    wire.read_exact(&mut body)?;
    Ok(Record { kind, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::PipePair;

    #[test]
    fn record_round_trip() {
        let cell = PipePair::new();
        let (mut a, mut b) = PipePair::ends(&cell);
        write_record(&mut a, RecordType::Data, b"payload").unwrap();
        let r = read_record(&mut b).unwrap();
        assert_eq!(r.kind, RecordType::Data);
        assert_eq!(r.body, b"payload");
    }

    #[test]
    fn empty_body_is_fine() {
        let cell = PipePair::new();
        let (mut a, mut b) = PipePair::ends(&cell);
        write_record(&mut a, RecordType::Alert, &[]).unwrap();
        let r = read_record(&mut b).unwrap();
        assert_eq!(r.kind, RecordType::Alert);
        assert!(r.body.is_empty());
    }

    #[test]
    fn oversized_record_rejected_on_write() {
        let cell = PipePair::new();
        let (mut a, _b) = PipePair::ends(&cell);
        let big = vec![0u8; MAX_RECORD + 1];
        assert_eq!(
            write_record(&mut a, RecordType::Data, &big),
            Err(RecordError::TooLong(MAX_RECORD + 1))
        );
    }

    #[test]
    fn bad_type_byte_rejected() {
        let cell = PipePair::new();
        let (mut a, mut b) = PipePair::ends(&cell);
        a.write_all(&[0x99, 0, 0]).unwrap();
        assert_eq!(read_record(&mut b), Err(RecordError::BadType(0x99)));
    }

    #[test]
    fn multiple_records_in_sequence() {
        let cell = PipePair::new();
        let (mut a, mut b) = PipePair::ends(&cell);
        write_record(&mut a, RecordType::ClientHello, b"one").unwrap();
        write_record(&mut a, RecordType::Data, b"two").unwrap();
        assert_eq!(read_record(&mut b).unwrap().body, b"one");
        assert_eq!(read_record(&mut b).unwrap().body, b"two");
    }
}
