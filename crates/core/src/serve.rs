//! Event-driven mass-concurrency serving: one loop multiplexing many
//! sans-I/O [`SessionMachine`]s over one simulated world.
//!
//! This is the architecture the blocking profiles cannot reach. The host
//! profile forks a `UnixProcess` per connection and pseudo-blocks inside
//! every read; the RMC profile is authentically capped at three handler
//! costatements. The [`EventLoop`] instead reacts to netsim's per-socket
//! events ([`netsim::SocketEvent`]) — accept-ready, bytes-ready,
//! window-open, peer-closed — so each iteration touches only the sockets
//! that changed, O(ready) rather than O(connections).
//!
//! [`run_load`] is the deterministic load generator: N concurrent echo
//! clients against one in-loop echo server, reporting sessions/sec and
//! handshake-latency percentiles in virtual time.

use std::collections::HashMap;

use crypto::Prng;
use netsim::{Endpoint, HostId, Ipv4, LinkParams, Recv, SocketEvent, SocketId};
use sockets::Net;

use crate::machine::SessionMachine;
use crate::session::{CipherSuite, ClientConfig, ClientKx, IsslError, ServerConfig, ServerKx};

/// Folds an [`IsslError`] into the label value of the
/// `serve.errors{kind=...}` counter family.
fn error_kind(e: &IsslError) -> &'static str {
    match e {
        IsslError::Record(_) => "record",
        IsslError::BadMac => "bad_mac",
        IsslError::Handshake(_) => "handshake",
        IsslError::UnsupportedSuite => "unsupported_suite",
        IsslError::Rsa => "rsa",
        IsslError::Corrupt => "corrupt",
        IsslError::PeerAlert => "peer_alert",
    }
}

/// Label value for the per-suite handshake counter, e.g. `aes128-128`.
fn suite_label(s: &CipherSuite) -> String {
    format!("aes{}-{}", s.key.words() * 32, s.block.words() * 32)
}

/// What a multiplexed connection is doing.
enum ConnKind {
    /// Server side: echo every decrypted byte back, encrypted.
    Echo,
    /// Load-generator client: handshake, send `payload`, expect it back.
    Client {
        payload: Vec<u8>,
        received: Vec<u8>,
        sent: bool,
        hs_start_us: u64,
        hs_done_us: Option<u64>,
        /// Virtual time the echo payload entered the machine, for the
        /// `serve.echo_us` round-trip histogram.
        echo_sent_us: Option<u64>,
        /// Pre-rendered label for `serve.handshakes{suite=...}`.
        suite_label: String,
    },
}

/// One multiplexed connection: a sans-I/O machine plus transmit state.
struct Conn {
    machine: SessionMachine,
    kind: ConnKind,
    /// Machine output the TCP send buffer has not yet accepted.
    out_pending: Vec<u8>,
    /// Close once `out_pending` drains.
    want_close: bool,
}

/// A listener: every accepted connection becomes an echo server session.
struct Listener {
    config: ServerConfig,
    seed: u64,
    accepted: u64,
}

/// Outcome counters and latency samples for completed client sessions.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Client sessions that completed handshake + echo round-trip.
    pub completed: usize,
    /// Client sessions that failed (protocol error, reset, premature
    /// close).
    pub failed: usize,
    /// Virtual time the run consumed, in microseconds.
    pub elapsed_us: u64,
    /// Handshake latencies (connect → issl Finished verified) of
    /// completed sessions, in virtual microseconds, unsorted.
    pub handshake_us: Vec<u64>,
}

impl ServeReport {
    /// Completed sessions per virtual second.
    pub fn sessions_per_sec(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.elapsed_us as f64 / 1_000_000.0)
    }

    /// The `p`-th percentile handshake latency in virtual microseconds
    /// (nearest-rank; 0 when no session completed).
    pub fn handshake_percentile_us(&self, p: f64) -> u64 {
        if self.handshake_us.is_empty() {
            return 0;
        }
        let mut sorted = self.handshake_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }
}

/// An event-driven server/load loop over one [`Net`].
pub struct EventLoop {
    net: Net,
    listeners: HashMap<SocketId, Listener>,
    conns: HashMap<SocketId, Conn>,
    clients_spawned: usize,
    completed: usize,
    failed: usize,
    handshake_us: Vec<u64>,
    started_us: u64,
    /// The world's registry — serve metrics land next to the `net.*`
    /// counters so one snapshot covers the whole stack.
    registry: telemetry::Registry,
    hs_hist: telemetry::Histogram,
    echo_hist: telemetry::Histogram,
    completed_ctr: telemetry::Counter,
    failed_ctr: telemetry::Counter,
    accepted_ctr: telemetry::Counter,
    spans: telemetry::SpanRecorder,
}

impl EventLoop {
    /// Creates the loop and switches the world to event-driven
    /// notification. Metrics register in the world's own
    /// [`telemetry::Registry`], so a snapshot taken through
    /// [`EventLoop::telemetry`] shows the serving layer and the network
    /// underneath it together.
    pub fn new(net: &Net) -> EventLoop {
        net.with(|w| w.enable_socket_events());
        let started_us = net.now();
        let registry = net.telemetry();
        let hs_hist = registry.histogram("serve.handshake_us", &[]);
        let echo_hist = registry.histogram("serve.echo_us", &[]);
        let completed_ctr = registry.counter("serve.sessions.completed", &[]);
        let failed_ctr = registry.counter("serve.sessions.failed", &[]);
        let accepted_ctr = registry.counter("serve.accepted", &[]);
        EventLoop {
            net: net.clone(),
            listeners: HashMap::new(),
            conns: HashMap::new(),
            clients_spawned: 0,
            completed: 0,
            failed: 0,
            handshake_us: Vec::new(),
            started_us,
            registry,
            hs_hist,
            echo_hist,
            completed_ctr,
            failed_ctr,
            accepted_ctr,
            spans: telemetry::SpanRecorder::new(1024),
        }
    }

    /// The registry this loop records into (shared with the world).
    pub fn telemetry(&self) -> &telemetry::Registry {
        &self.registry
    }

    /// Completed handshake spans in virtual time, oldest first.
    pub fn spans(&self) -> &telemetry::SpanRecorder {
        &self.spans
    }

    /// Opens an issl echo listener: every accepted connection runs the
    /// server handshake (seeded deterministically per connection) and
    /// echoes decrypted data back encrypted.
    ///
    /// # Errors
    ///
    /// [`netsim::NetError`] if the port is taken.
    pub fn listen_echo(
        &mut self,
        host: HostId,
        port: u16,
        backlog: usize,
        config: ServerConfig,
        seed: u64,
    ) -> Result<SocketId, netsim::NetError> {
        let sid = self.net.with(|w| w.tcp_listen(host, port, backlog))?;
        self.listeners.insert(
            sid,
            Listener {
                config,
                seed,
                accepted: 0,
            },
        );
        Ok(sid)
    }

    /// Starts a load-generator client: connect, handshake, send
    /// `payload`, expect it echoed back, close.
    pub fn connect_echo_client(
        &mut self,
        host: HostId,
        server: Endpoint,
        config: ClientConfig,
        payload: Vec<u8>,
        seed: u64,
    ) -> SocketId {
        let sid = self.net.with(|w| w.tcp_connect(host, server));
        let label = suite_label(&config.suite);
        let machine = SessionMachine::client(config, Prng::new(seed));
        let hs_start_us = self.net.now();
        self.conns.insert(
            sid,
            Conn {
                machine,
                kind: ConnKind::Client {
                    payload,
                    received: Vec::new(),
                    sent: false,
                    hs_start_us,
                    hs_done_us: None,
                    echo_sent_us: None,
                    suite_label: label,
                },
                out_pending: Vec::new(),
                want_close: false,
            },
        );
        self.clients_spawned += 1;
        sid
    }

    /// Client sessions still in flight.
    pub fn clients_pending(&self) -> usize {
        self.clients_spawned - self.completed - self.failed
    }

    /// Drives the world until every spawned client finished, the event
    /// queue goes idle, or virtual time reaches `deadline_us`.
    pub fn run(&mut self, deadline_us: u64) {
        loop {
            self.dispatch();
            if self.clients_spawned > 0 && self.clients_pending() == 0 {
                break;
            }
            if self.net.now() >= deadline_us {
                break;
            }
            if !self.net.step() {
                self.dispatch();
                break;
            }
        }
    }

    /// The outcome so far.
    pub fn report(&self) -> ServeReport {
        ServeReport {
            completed: self.completed,
            failed: self.failed,
            elapsed_us: self.net.now() - self.started_us,
            handshake_us: self.handshake_us.clone(),
        }
    }

    /// Drains pending socket events and reacts to exactly those sockets.
    fn dispatch(&mut self) {
        loop {
            let events = self.net.with(|w| w.take_socket_events());
            if events.is_empty() {
                return;
            }
            for ev in events {
                match ev {
                    SocketEvent::AcceptReady(listener) => self.on_accept_ready(listener),
                    SocketEvent::Established(sid) => {
                        if self.conns.contains_key(&sid) {
                            self.flush(sid);
                        }
                    }
                    SocketEvent::BytesReady(sid) | SocketEvent::PeerClosed(sid) => {
                        if self.conns.contains_key(&sid) {
                            self.pump(sid);
                        }
                    }
                    SocketEvent::WindowOpen(sid) => {
                        if self.conns.contains_key(&sid) {
                            self.flush(sid);
                        }
                    }
                }
            }
        }
    }

    fn on_accept_ready(&mut self, listener_id: SocketId) {
        loop {
            let Some(listener) = self.listeners.get_mut(&listener_id) else {
                return;
            };
            let Some(conn) = self.net.with(|w| w.tcp_accept(listener_id)) else {
                return;
            };
            // Deterministic per-connection seed: listener seed mixed with
            // the accept ordinal (splitmix64 finalizer).
            let mut z = listener
                .seed
                .wrapping_add(listener.accepted.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            listener.accepted += 1;
            let machine = SessionMachine::server(listener.config.clone(), Prng::new(z));
            self.conns.insert(
                conn,
                Conn {
                    machine,
                    kind: ConnKind::Echo,
                    out_pending: Vec::new(),
                    want_close: false,
                },
            );
            self.accepted_ctr.inc();
            self.pump(conn);
        }
    }

    /// Feeds everything the socket has buffered into the machine, reacts
    /// to new plaintext / handshake completion, then flushes output.
    fn pump(&mut self, sid: SocketId) {
        let mut reset = false;
        let mut eof = false;
        loop {
            let avail = self.net.with(|w| w.tcp_available(sid));
            if avail == 0 {
                self.net.with(|w| {
                    let mut probe = [0u8; 0];
                    match w.tcp_recv(sid, &mut probe) {
                        Recv::Closed => eof = true,
                        Recv::Reset => reset = true,
                        Recv::Data(_) | Recv::WouldBlock => {}
                    }
                });
                break;
            }
            let mut buf = vec![0u8; avail];
            let n = self.net.with(|w| match w.tcp_recv(sid, &mut buf) {
                Recv::Data(n) => n,
                Recv::Closed | Recv::Reset | Recv::WouldBlock => 0,
            });
            if n == 0 {
                break;
            }
            let conn = self.conns.get_mut(&sid).expect("pumped conn exists");
            if conn.machine.feed(&buf[..n]).is_err() {
                break;
            }
        }

        let now = self.net.now();
        let conn = self.conns.get_mut(&sid).expect("pumped conn exists");
        if eof {
            conn.machine.feed_eof();
        }

        let mut fail_kind = match conn.machine.error() {
            Some(e) => Some(error_kind(e)),
            None if reset => Some("reset"),
            None => None,
        };
        let mut completed_latency = None;
        let mut echo_latency = None;
        let mut hs_span: Option<(String, u64)> = None;
        if fail_kind.is_none() {
            match &mut conn.kind {
                ConnKind::Echo => {
                    let plain = conn.machine.take_plaintext();
                    if !plain.is_empty() && conn.machine.write(&plain).is_err() {
                        fail_kind = Some(conn.machine.error().map_or("write", error_kind));
                    } else if conn.machine.is_peer_closed() {
                        conn.want_close = true;
                    }
                }
                ConnKind::Client {
                    payload,
                    received,
                    sent,
                    hs_start_us,
                    hs_done_us,
                    echo_sent_us,
                    suite_label,
                } => {
                    if conn.machine.is_established() {
                        if hs_done_us.is_none() {
                            *hs_done_us = Some(now - *hs_start_us);
                            hs_span = Some((suite_label.clone(), *hs_start_us));
                        }
                        if !*sent {
                            *sent = true;
                            *echo_sent_us = Some(now);
                            let data = payload.clone();
                            if conn.machine.write(&data).is_err() {
                                fail_kind =
                                    Some(conn.machine.error().map_or("write", error_kind));
                            }
                        }
                    }
                    if fail_kind.is_none() {
                        received.extend(conn.machine.take_plaintext());
                        if received.len() >= payload.len() && !payload.is_empty() {
                            if received == payload {
                                completed_latency = Some(hs_done_us.unwrap_or(0));
                                echo_latency = echo_sent_us.map(|t| now - t);
                            } else {
                                fail_kind = Some("echo_mismatch");
                            }
                        } else if conn.machine.is_peer_closed() {
                            // Peer went away before the echo finished.
                            fail_kind = Some("premature_close");
                        }
                    }
                }
            }
            if completed_latency.is_some() {
                let _ = conn.machine.close();
                conn.want_close = true;
            }
        }

        if let Some((suite, start)) = hs_span {
            self.spans.record("handshake", start, now);
            self.registry
                .counter("serve.handshakes", &[("suite", &suite)])
                .inc();
        }
        if let Some(kind) = fail_kind {
            self.fail(sid, kind);
            return;
        }
        if let Some(latency) = completed_latency {
            self.handshake_us.push(latency);
            self.hs_hist.record(latency);
            if let Some(rtt) = echo_latency {
                self.echo_hist.record(rtt);
            }
            self.completed += 1;
            self.completed_ctr.inc();
        }
        self.flush(sid);
    }

    /// Moves machine output into the TCP send buffer as far as flow
    /// control allows; the rest waits for a `WindowOpen` event.
    fn flush(&mut self, sid: SocketId) {
        let net = self.net.clone();
        let Some(conn) = self.conns.get_mut(&sid) else {
            return;
        };
        conn.out_pending.extend(conn.machine.take_output());
        let mut failed = false;
        while !conn.out_pending.is_empty() {
            let room = net.with(|w| w.tcp_send_room(sid));
            if room == 0 {
                // Not established yet or flow-controlled: Established /
                // WindowOpen will retry.
                return;
            }
            match net.with(|w| w.tcp_send(sid, &conn.out_pending)) {
                Ok(0) => return,
                Ok(n) => {
                    conn.out_pending.drain(..n);
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        let do_close = !failed && conn.want_close && conn.out_pending.is_empty();
        if failed {
            self.fail(sid, "send");
            return;
        }
        if do_close {
            // Completed clients were already counted in pump.
            self.conns.remove(&sid);
            let _ = net.with(|w| w.tcp_close(sid));
        }
    }

    /// Tears a connection down after an unrecoverable error, counting it
    /// under `serve.errors{kind=...}`.
    fn fail(&mut self, sid: SocketId, kind: &str) {
        if let Some(conn) = self.conns.remove(&sid) {
            if matches!(conn.kind, ConnKind::Client { .. }) {
                self.failed += 1;
                self.failed_ctr.inc();
            }
            self.registry.counter("serve.errors", &[("kind", kind)]).inc();
        }
        let _ = self.net.with(|w| w.tcp_close(sid));
    }
}

impl std::fmt::Debug for EventLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoop")
            .field("listeners", &self.listeners.len())
            .field("conns", &self.conns.len())
            .field("completed", &self.completed)
            .field("failed", &self.failed)
            .finish()
    }
}

/// Parameters for the deterministic mass-concurrency load run.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent client sessions to drive.
    pub clients: usize,
    /// World / PRNG seed; identical specs give identical runs.
    pub seed: u64,
    /// Echo payload per session, in bytes.
    pub payload_len: usize,
    /// Client hosts to spread the sessions across (each gets its own
    /// link, so this scales aggregate wire bandwidth).
    pub client_hosts: usize,
    /// Virtual-time budget in microseconds.
    pub deadline_us: u64,
}

impl LoadSpec {
    /// A deterministic spec for `clients` concurrent sessions.
    pub fn concurrency(clients: usize) -> LoadSpec {
        LoadSpec {
            clients,
            seed: 7,
            payload_len: 256,
            client_hosts: clients.clamp(1, 8),
            deadline_us: 120_000_000,
        }
    }
}

/// A load run's outcome together with the telemetry snapshot taken at
/// the end: the [`ServeReport`] numbers plus every `serve.*` and `net.*`
/// metric the run produced. Identical specs give byte-identical
/// snapshots.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The classic outcome counters and latency samples.
    pub serve: ServeReport,
    /// Point-in-time copy of the world's registry at run end.
    pub snapshot: telemetry::Snapshot,
}

impl LoadReport {
    /// The `q`-quantile (0.0..=1.0) handshake latency from the
    /// `serve.handshake_us` histogram, in virtual microseconds.
    pub fn handshake_quantile_us(&self, q: f64) -> u64 {
        self.snapshot
            .histogram("serve.handshake_us", &[])
            .map_or(0, |h| h.quantile(q))
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sessions: {} completed, {} failed ({:.1}/s virtual)",
            self.serve.completed,
            self.serve.failed,
            self.serve.sessions_per_sec()
        )?;
        writeln!(
            f,
            "handshake_us: p50={} p90={} p99={}",
            self.handshake_quantile_us(0.50),
            self.handshake_quantile_us(0.90),
            self.handshake_quantile_us(0.99)
        )?;
        if let Some(h) = self.snapshot.histogram("serve.echo_us", &[]) {
            writeln!(
                f,
                "echo_us: p50={} p90={} p99={}",
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99)
            )?;
        }
        write!(
            f,
            "net: {} packets delivered, {} retransmits",
            self.snapshot.counter("net.packets.delivered", &[]),
            self.snapshot.counter("net.tcp.retransmits", &[])
        )
    }
}

/// Runs the load generator: `spec.clients` concurrent pre-shared-key
/// sessions (the RMC suite, AES-128/128) through handshake + echo against
/// one event-loop server in one deterministic world.
pub fn run_load(spec: &LoadSpec) -> ServeReport {
    run_load_report(spec).serve
}

/// [`run_load`], but also returning the end-of-run telemetry snapshot.
pub fn run_load_report(spec: &LoadSpec) -> LoadReport {
    let psk = b"rmc2000 shared secret".to_vec();
    let server_cfg = ServerConfig {
        suites: vec![crate::session::CipherSuite::AES128],
        kx: ServerKx::PreShared(psk.clone()),
    };
    let client_cfg = ClientConfig {
        suite: crate::session::CipherSuite::AES128,
        kx: ClientKx::PreShared(psk),
    };

    let net = Net::new(spec.seed);
    let server_ip = Ipv4::new(10, 0, 0, 1);
    let server = net.add_host("server", server_ip);
    let mut hosts = Vec::new();
    for i in 0..spec.client_hosts.max(1) {
        let ip = Ipv4::new(10, 0, 1 + (i / 200) as u8, (2 + i % 200) as u8);
        let h = net.add_host(&format!("load-{i}"), ip);
        net.link(server, h, LinkParams::ethernet_10base_t());
        hosts.push(h);
    }

    let mut el = EventLoop::new(&net);
    el.listen_echo(server, 4433, spec.clients.max(16), server_cfg, spec.seed ^ 0x5eed)
        .expect("listen");

    let payload: Vec<u8> = (0..spec.payload_len).map(|i| (i % 251) as u8).collect();
    for i in 0..spec.clients {
        let host = hosts[i % hosts.len()];
        el.connect_echo_client(
            host,
            Endpoint::new(server_ip, 4433),
            client_cfg.clone(),
            payload.clone(),
            spec.seed.wrapping_mul(0x100_0000)
                .wrapping_add(i as u64),
        );
    }
    el.run(spec.deadline_us);
    LoadReport {
        serve: el.report(),
        snapshot: el.telemetry().snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_concurrent_sessions_complete() {
        let report = run_load(&LoadSpec::concurrency(10));
        assert_eq!(report.completed, 10);
        assert_eq!(report.failed, 0);
        assert!(report.handshake_percentile_us(50.0) > 0);
    }

    #[test]
    fn identical_specs_are_deterministic() {
        let a = run_load(&LoadSpec::concurrency(12));
        let b = run_load(&LoadSpec::concurrency(12));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.elapsed_us, b.elapsed_us);
        assert_eq!(a.handshake_us, b.handshake_us);
    }

    #[test]
    fn percentiles_are_ordered() {
        let report = run_load(&LoadSpec::concurrency(25));
        assert_eq!(report.completed, 25);
        let p50 = report.handshake_percentile_us(50.0);
        let p99 = report.handshake_percentile_us(99.0);
        assert!(p50 <= p99);
    }

    #[test]
    fn snapshot_mirrors_the_report_and_is_deterministic() {
        let a = run_load_report(&LoadSpec::concurrency(12));
        let b = run_load_report(&LoadSpec::concurrency(12));
        assert_eq!(
            a.snapshot.to_json(),
            b.snapshot.to_json(),
            "same seed, byte-identical telemetry dump"
        );
        assert_eq!(a.snapshot.counter("serve.sessions.completed", &[]), 12);
        assert_eq!(a.snapshot.counter("serve.sessions.failed", &[]), 0);
        assert_eq!(a.snapshot.counter("serve.accepted", &[]), 12);
        assert_eq!(
            a.snapshot
                .counter("serve.handshakes", &[("suite", "aes128-128")]),
            12
        );

        // The histogram saw exactly the latencies the Vec kept.
        let h = a.snapshot.histogram("serve.handshake_us", &[]).expect("histogram");
        assert_eq!(h.count(), 12);
        assert_eq!(h.sum(), a.serve.handshake_us.iter().sum::<u64>());
        assert_eq!(h.max(), *a.serve.handshake_us.iter().max().unwrap());

        // The same snapshot carries the network layer underneath.
        assert!(a.snapshot.counter("net.packets.delivered", &[]) > 0);
        assert!(a.snapshot.counter("net.tcp.bytes_delivered", &[]) > 0);

        let text = format!("{a}");
        assert!(text.contains("p50="), "load report prints percentiles: {text}");
        assert!(a.handshake_quantile_us(0.50) <= a.handshake_quantile_us(0.99));
    }

    #[test]
    fn handshake_spans_are_recorded_in_virtual_time() {
        let psk = b"span test".to_vec();
        let server_cfg = ServerConfig {
            suites: vec![CipherSuite::AES128],
            kx: ServerKx::PreShared(psk.clone()),
        };
        let client_cfg = ClientConfig {
            suite: CipherSuite::AES128,
            kx: ClientKx::PreShared(psk),
        };
        let net = Net::new(11);
        let server_ip = Ipv4::new(10, 0, 0, 1);
        let server = net.add_host("server", server_ip);
        let client = net.add_host("client", Ipv4::new(10, 0, 0, 2));
        net.link(server, client, LinkParams::ethernet_10base_t());

        let mut el = EventLoop::new(&net);
        el.listen_echo(server, 4433, 4, server_cfg, 3).expect("listen");
        el.connect_echo_client(
            client,
            Endpoint::new(server_ip, 4433),
            client_cfg,
            b"ping".to_vec(),
            5,
        );
        el.run(10_000_000);

        let spans = el.spans().spans();
        assert_eq!(spans.len(), 1, "one handshake span: {spans:?}");
        assert_eq!(spans[0].name, "handshake");
        assert!(spans[0].end > spans[0].start, "span has virtual duration");
        let report = el.report();
        assert_eq!(report.completed, 1);
        assert_eq!(spans[0].duration(), report.handshake_us[0]);
    }

    #[test]
    fn failed_sessions_land_in_error_counters() {
        // A client expecting RSA against a pre-shared-key server fails
        // the handshake; the failure shows up labeled by kind.
        let psk = b"kx mismatch".to_vec();
        let server_cfg = ServerConfig {
            suites: vec![CipherSuite::AES128],
            kx: ServerKx::PreShared(psk),
        };
        let client_cfg = ClientConfig {
            suite: CipherSuite::AES128,
            kx: ClientKx::Rsa,
        };
        let net = Net::new(13);
        let server_ip = Ipv4::new(10, 0, 0, 1);
        let server = net.add_host("server", server_ip);
        let client = net.add_host("client", Ipv4::new(10, 0, 0, 2));
        net.link(server, client, LinkParams::ethernet_10base_t());

        let mut el = EventLoop::new(&net);
        el.listen_echo(server, 4433, 4, server_cfg, 3).expect("listen");
        el.connect_echo_client(
            client,
            Endpoint::new(server_ip, 4433),
            client_cfg,
            b"ping".to_vec(),
            5,
        );
        el.run(10_000_000);

        let report = el.report();
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed, 1);
        let snap = el.telemetry().snapshot();
        assert_eq!(snap.counter("serve.sessions.failed", &[]), 1);
        let errors: u64 = snap
            .entries()
            .iter()
            .filter(|(k, _)| k.name == "serve.errors")
            .map(|(_, v)| match v {
                telemetry::SnapshotValue::Counter(c) => *c,
                _ => 0,
            })
            .sum();
        assert!(errors >= 1, "error kind counted: {}", snap.to_text());
    }
}
