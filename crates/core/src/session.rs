//! Secure sessions: the issl handshake and the `secure_read` /
//! `secure_write` data path (§2: "the issl API allows a user to bind to
//! the socket and then do secure read/writes on it").
//!
//! The protocol logic itself lives in the sans-I/O
//! [`SessionMachine`](crate::machine::SessionMachine); [`Session`] is the
//! blocking convenience wrapper that pumps a [`Wire`] through one —
//! byte-identical to the original blocking implementation (pinned by the
//! `sans_io_equiv` property tests).
//!
//! Two key-exchange modes reflect the two profiles of the case study:
//!
//! * [`ServerKx::Rsa`] — the full host-side handshake: the server sends
//!   its RSA public key, the client returns an RSA-encrypted premaster
//!   secret.
//! * [`ServerKx::PreShared`] — the RMC2000 port's degenerate handshake:
//!   RSA was dropped with its bignum package, so both ends derive session
//!   keys from a pre-shared secret plus fresh nonces.

use crypto::{Prng, Size};
use rsa::KeyPair;

use crate::machine::SessionMachine;
use crate::record::RecordError;
use crate::wire::Wire;

/// Cipher geometry negotiated in the hello exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CipherSuite {
    /// Rijndael key size.
    pub key: Size,
    /// Rijndael block size.
    pub block: Size,
}

impl CipherSuite {
    /// AES-128 with 128-bit blocks — the only suite the RMC2000 port
    /// kept.
    pub const AES128: CipherSuite = CipherSuite {
        key: Size::Bits128,
        block: Size::Bits128,
    };
}

/// Session-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsslError {
    /// Record-layer failure.
    Record(RecordError),
    /// MAC verification failed (tampering or key mismatch).
    BadMac,
    /// Malformed or out-of-order handshake message.
    Handshake(&'static str),
    /// The peer offered a suite this endpoint does not support (the RMC
    /// profile rejects everything but AES-128/128).
    UnsupportedSuite,
    /// RSA failure during key exchange.
    Rsa,
    /// Decryption produced garbage (bad padding).
    Corrupt,
    /// Peer sent a fatal alert.
    PeerAlert,
}

impl std::fmt::Display for IsslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsslError::Record(e) => write!(f, "record layer: {e}"),
            IsslError::BadMac => write!(f, "record MAC verification failed"),
            IsslError::Handshake(m) => write!(f, "handshake: {m}"),
            IsslError::UnsupportedSuite => write!(f, "unsupported cipher suite"),
            IsslError::Rsa => write!(f, "rsa key exchange failed"),
            IsslError::Corrupt => write!(f, "record decryption failed"),
            IsslError::PeerAlert => write!(f, "peer sent a fatal alert"),
        }
    }
}

impl std::error::Error for IsslError {}

impl From<RecordError> for IsslError {
    fn from(e: RecordError) -> IsslError {
        IsslError::Record(e)
    }
}

/// Client-side key-exchange configuration.
#[derive(Debug, Clone)]
pub enum ClientKx {
    /// Expect an RSA public key in the server hello.
    Rsa,
    /// Use a pre-shared secret (the embedded port's mode).
    PreShared(Vec<u8>),
}

/// Server-side key-exchange configuration.
#[derive(Clone)]
pub enum ServerKx {
    /// Offer this RSA key pair.
    Rsa(KeyPair),
    /// Use a pre-shared secret.
    PreShared(Vec<u8>),
}

impl std::fmt::Debug for ServerKx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerKx::Rsa(_) => write!(f, "ServerKx::Rsa(..)"),
            ServerKx::PreShared(_) => write!(f, "ServerKx::PreShared(..)"),
        }
    }
}

/// Server policy: which suites to accept.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Accepted suites, in preference order.
    pub suites: Vec<CipherSuite>,
    /// Key exchange mode.
    pub kx: ServerKx,
}

/// Client policy: the suite to offer.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Offered suite.
    pub suite: CipherSuite,
    /// Key exchange mode.
    pub kx: ClientKx,
}

/// An established secure channel over a [`Wire`]: a [`SessionMachine`]
/// plus the transport that feeds it.
pub struct Session<W: Wire> {
    wire: W,
    machine: SessionMachine,
}

/// Transport scratch size for wrapper reads. Reads are greedy — whatever
/// the wire returns is fed to the machine, which processes exactly as
/// many records as the blocking path would have.
const READ_CHUNK: usize = 4096;

impl<W: Wire> Session<W> {
    /// Runs the client side of the handshake and returns the session.
    ///
    /// # Errors
    ///
    /// Any [`IsslError`]: transport failure, malformed messages, MAC
    /// mismatch in `Finished`, or an alert from a server that rejected
    /// the offered suite.
    pub fn client_handshake(
        mut wire: W,
        config: &ClientConfig,
        prng: Prng,
    ) -> Result<Session<W>, IsslError> {
        let mut machine = SessionMachine::client(config.clone(), prng);
        Self::drive_handshake(&mut wire, &mut machine)?;
        Ok(Session { wire, machine })
    }

    /// Runs the server side of the handshake.
    ///
    /// # Errors
    ///
    /// [`IsslError::UnsupportedSuite`] when the client offers a geometry
    /// outside `config.suites` (an alert is sent first — this is the
    /// embedded profile rejecting 192/256-bit requests); other variants
    /// as for the client.
    pub fn server_handshake(
        mut wire: W,
        config: &ServerConfig,
        prng: Prng,
    ) -> Result<Session<W>, IsslError> {
        let mut machine = SessionMachine::server(config.clone(), prng);
        Self::drive_handshake(&mut wire, &mut machine)?;
        Ok(Session { wire, machine })
    }

    /// Pumps wire bytes through the machine until the handshake finishes
    /// or fails. Output is flushed before the error check so protocol
    /// alerts (unsupported suite, bad finished) reach the peer first,
    /// exactly like the blocking code's `let _ = write_record(alert)`.
    fn drive_handshake(wire: &mut W, machine: &mut SessionMachine) -> Result<(), IsslError> {
        loop {
            let out = machine.take_output();
            if !out.is_empty() {
                let sent = wire.write_all(&out);
                if let Some(e) = machine.error() {
                    return Err(e.clone());
                }
                sent.map_err(|e| IsslError::Record(RecordError::Wire(e)))?;
            }
            if let Some(e) = machine.error() {
                return Err(e.clone());
            }
            if machine.is_established() {
                return Ok(());
            }
            let mut tmp = [0u8; READ_CHUNK];
            match wire.read(&mut tmp) {
                Ok(0) => machine.feed_eof(),
                Ok(n) => {
                    // A sticky error surfaces on the next loop pass, after
                    // any alert the machine queued has been flushed.
                    let _ = machine.feed(&tmp[..n]);
                }
                Err(e) => return Err(IsslError::Record(RecordError::Wire(e))),
            }
        }
    }

    /// Encrypts and sends application data (fragmenting across records).
    ///
    /// # Errors
    ///
    /// Transport failures via [`IsslError::Record`].
    pub fn secure_write(&mut self, data: &[u8]) -> Result<(), IsslError> {
        self.machine.write(data)?;
        let out = self.machine.take_output();
        self.wire
            .write_all(&out)
            .map_err(|e| IsslError::Record(RecordError::Wire(e)))
    }

    /// Receives and decrypts application data into `buf`. Returns 0 at an
    /// orderly close.
    ///
    /// # Errors
    ///
    /// [`IsslError::BadMac`] / [`IsslError::Corrupt`] on tampered
    /// records, transport failures otherwise.
    pub fn secure_read(&mut self, buf: &mut [u8]) -> Result<usize, IsslError> {
        loop {
            // Buffered plaintext first: a greedy read may have processed a
            // good record and then hit a bad one — the blocking path would
            // deliver the good plaintext and only error on the next call.
            if self.machine.available() > 0 {
                return Ok(self.machine.read_plaintext(buf));
            }
            if let Some(e) = self.machine.error() {
                return Err(e.clone());
            }
            if self.machine.is_peer_closed() {
                return Ok(0);
            }
            let mut tmp = [0u8; READ_CHUNK];
            match self.wire.read(&mut tmp) {
                Ok(0) => self.machine.feed_eof(),
                Ok(n) => {
                    let _ = self.machine.feed(&tmp[..n]);
                }
                Err(e) => return Err(IsslError::Record(RecordError::Wire(e))),
            }
        }
    }

    /// Sends a close alert.
    ///
    /// # Errors
    ///
    /// Transport failures via [`IsslError::Record`].
    pub fn close(&mut self) -> Result<(), IsslError> {
        self.machine.close()?;
        let out = self.machine.take_output();
        self.wire
            .write_all(&out)
            .map_err(|e| IsslError::Record(RecordError::Wire(e)))
    }

    /// Gives back the transport.
    pub fn into_wire(self) -> W {
        self.wire
    }

    /// Records sent so far (sequence number of the next outgoing record).
    pub fn records_sent(&self) -> u64 {
        self.machine.records_sent()
    }
}

impl<W: Wire> std::fmt::Debug for Session<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("seq_out", &self.machine.records_sent())
            .field("seq_in", &self.machine.records_received())
            .field("block_len", &self.machine.block_len())
            .finish()
    }
}
