//! Secure sessions: the issl handshake and the `secure_read` /
//! `secure_write` data path (§2: "the issl API allows a user to bind to
//! the socket and then do secure read/writes on it").
//!
//! Two key-exchange modes reflect the two profiles of the case study:
//!
//! * [`ServerKx::Rsa`] — the full host-side handshake: the server sends
//!   its RSA public key, the client returns an RSA-encrypted premaster
//!   secret.
//! * [`ServerKx::PreShared`] — the RMC2000 port's degenerate handshake:
//!   RSA was dropped with its bignum package, so both ends derive session
//!   keys from a pre-shared secret plus fresh nonces.

use std::collections::VecDeque;

use crypto::{cbc_decrypt, cbc_encrypt, hmac_sha1, sha1, verify_hmac_sha1, Prng, Rijndael, Size};
use rsa::{KeyPair, PublicKey};

use crate::kdf::derive_session_keys;
use crate::record::{read_record, write_record, RecordError, RecordType, MAX_RECORD};
use crate::wire::Wire;

/// Cipher geometry negotiated in the hello exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CipherSuite {
    /// Rijndael key size.
    pub key: Size,
    /// Rijndael block size.
    pub block: Size,
}

impl CipherSuite {
    /// AES-128 with 128-bit blocks — the only suite the RMC2000 port
    /// kept.
    pub const AES128: CipherSuite = CipherSuite {
        key: Size::Bits128,
        block: Size::Bits128,
    };
}

/// Session-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsslError {
    /// Record-layer failure.
    Record(RecordError),
    /// MAC verification failed (tampering or key mismatch).
    BadMac,
    /// Malformed or out-of-order handshake message.
    Handshake(&'static str),
    /// The peer offered a suite this endpoint does not support (the RMC
    /// profile rejects everything but AES-128/128).
    UnsupportedSuite,
    /// RSA failure during key exchange.
    Rsa,
    /// Decryption produced garbage (bad padding).
    Corrupt,
    /// Peer sent a fatal alert.
    PeerAlert,
}

impl std::fmt::Display for IsslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsslError::Record(e) => write!(f, "record layer: {e}"),
            IsslError::BadMac => write!(f, "record MAC verification failed"),
            IsslError::Handshake(m) => write!(f, "handshake: {m}"),
            IsslError::UnsupportedSuite => write!(f, "unsupported cipher suite"),
            IsslError::Rsa => write!(f, "rsa key exchange failed"),
            IsslError::Corrupt => write!(f, "record decryption failed"),
            IsslError::PeerAlert => write!(f, "peer sent a fatal alert"),
        }
    }
}

impl std::error::Error for IsslError {}

impl From<RecordError> for IsslError {
    fn from(e: RecordError) -> IsslError {
        IsslError::Record(e)
    }
}

/// Client-side key-exchange configuration.
#[derive(Debug, Clone)]
pub enum ClientKx {
    /// Expect an RSA public key in the server hello.
    Rsa,
    /// Use a pre-shared secret (the embedded port's mode).
    PreShared(Vec<u8>),
}

/// Server-side key-exchange configuration.
#[derive(Clone)]
pub enum ServerKx {
    /// Offer this RSA key pair.
    Rsa(KeyPair),
    /// Use a pre-shared secret.
    PreShared(Vec<u8>),
}

impl std::fmt::Debug for ServerKx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerKx::Rsa(_) => write!(f, "ServerKx::Rsa(..)"),
            ServerKx::PreShared(_) => write!(f, "ServerKx::PreShared(..)"),
        }
    }
}

/// Server policy: which suites to accept.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Accepted suites, in preference order.
    pub suites: Vec<CipherSuite>,
    /// Key exchange mode.
    pub kx: ServerKx,
}

/// Client policy: the suite to offer.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Offered suite.
    pub suite: CipherSuite,
    /// Key exchange mode.
    pub kx: ClientKx,
}

const NONCE_LEN: usize = 16;
const PREMASTER_LEN: usize = 32;
/// Payload carried per data record (fits [`MAX_RECORD`] with IV and MAC).
const FRAGMENT: usize = 1024;

/// An established secure channel over a [`Wire`].
pub struct Session<W: Wire> {
    wire: W,
    enc: Rijndael,
    dec: Rijndael,
    mac_out: Vec<u8>,
    mac_in: Vec<u8>,
    block_len: usize,
    seq_out: u64,
    seq_in: u64,
    prng: Prng,
    peer_closed: bool,
    plain_buf: VecDeque<u8>,
}

fn suite_to_bytes(s: CipherSuite) -> [u8; 2] {
    [s.key.words() as u8, s.block.words() as u8]
}

fn suite_from_bytes(b: &[u8]) -> Option<CipherSuite> {
    let key = match b.first()? {
        4 => Size::Bits128,
        6 => Size::Bits192,
        8 => Size::Bits256,
        _ => return None,
    };
    let block = match b.get(1)? {
        4 => Size::Bits128,
        6 => Size::Bits192,
        8 => Size::Bits256,
        _ => return None,
    };
    Some(CipherSuite { key, block })
}

impl<W: Wire> Session<W> {
    /// Runs the client side of the handshake and returns the session.
    ///
    /// # Errors
    ///
    /// Any [`IsslError`]: transport failure, malformed messages, MAC
    /// mismatch in `Finished`, or an alert from a server that rejected
    /// the offered suite.
    pub fn client_handshake(
        mut wire: W,
        config: &ClientConfig,
        mut prng: Prng,
    ) -> Result<Session<W>, IsslError> {
        let mut transcript = Vec::new();

        // -> ClientHello
        let mut client_nonce = [0u8; NONCE_LEN];
        prng.fill(&mut client_nonce);
        let mut hello = suite_to_bytes(config.suite).to_vec();
        hello.extend_from_slice(&client_nonce);
        write_record(&mut wire, RecordType::ClientHello, &hello)?;
        transcript.extend_from_slice(&hello);

        // <- ServerHello
        let rec = read_record(&mut wire)?;
        if rec.kind == RecordType::Alert {
            return Err(IsslError::PeerAlert);
        }
        if rec.kind != RecordType::ServerHello {
            return Err(IsslError::Handshake("expected server hello"));
        }
        if rec.body.len() < 2 + NONCE_LEN + 4 {
            return Err(IsslError::Handshake("short server hello"));
        }
        let suite = suite_from_bytes(&rec.body).ok_or(IsslError::Handshake("bad suite"))?;
        if suite != config.suite {
            return Err(IsslError::Handshake("server changed the suite"));
        }
        let server_nonce = &rec.body[2..2 + NONCE_LEN];
        let mut off = 2 + NONCE_LEN;
        let n_len = usize::from(u16::from_be_bytes([rec.body[off], rec.body[off + 1]]));
        off += 2;
        let n_bytes = rec
            .body
            .get(off..off + n_len)
            .ok_or(IsslError::Handshake("truncated modulus"))?;
        off += n_len;
        let e_len = usize::from(u16::from_be_bytes([
            *rec.body.get(off).ok_or(IsslError::Handshake("truncated"))?,
            *rec.body
                .get(off + 1)
                .ok_or(IsslError::Handshake("truncated"))?,
        ]));
        off += 2;
        let e_bytes = rec
            .body
            .get(off..off + e_len)
            .ok_or(IsslError::Handshake("truncated exponent"))?;
        transcript.extend_from_slice(&rec.body);

        // Premaster + -> KeyExchange
        prng.stir(server_nonce);
        let premaster: Vec<u8> = match &config.kx {
            ClientKx::Rsa => {
                if n_len == 0 {
                    return Err(IsslError::Handshake("server offered no RSA key"));
                }
                let pk = PublicKey::from_bytes(n_bytes, e_bytes);
                let mut pm = vec![0u8; PREMASTER_LEN];
                prng.fill(&mut pm);
                let ct = pk
                    .encrypt(&pm, &mut PrngRng(&mut prng))
                    .map_err(|_| IsslError::Rsa)?;
                write_record(&mut wire, RecordType::KeyExchange, &ct)?;
                transcript.extend_from_slice(&ct);
                pm
            }
            ClientKx::PreShared(psk) => {
                write_record(&mut wire, RecordType::KeyExchange, &[])?;
                psk.clone()
            }
        };

        let keys = derive_session_keys(
            &premaster,
            &client_nonce,
            server_nonce,
            config.suite.key.bytes(),
        );
        let transcript_hash = sha1(&transcript);

        // -> Finished, <- Finished
        let my_mac = hmac_sha1(&keys.client_mac_key, &transcript_hash);
        write_record(&mut wire, RecordType::Finished, &my_mac)?;
        let rec = read_record(&mut wire)?;
        if rec.kind == RecordType::Alert {
            return Err(IsslError::PeerAlert);
        }
        if rec.kind != RecordType::Finished {
            return Err(IsslError::Handshake("expected finished"));
        }
        if !verify_hmac_sha1(&keys.server_mac_key, &transcript_hash, &rec.body) {
            return Err(IsslError::BadMac);
        }

        let enc = Rijndael::new(&keys.client_write_key, config.suite.block)
            .map_err(|_| IsslError::Handshake("bad key length"))?;
        let dec = Rijndael::new(&keys.server_write_key, config.suite.block)
            .map_err(|_| IsslError::Handshake("bad key length"))?;
        Ok(Session {
            wire,
            enc,
            dec,
            mac_out: keys.client_mac_key,
            mac_in: keys.server_mac_key,
            block_len: config.suite.block.bytes(),
            seq_out: 0,
            seq_in: 0,
            prng,
            peer_closed: false,
            plain_buf: VecDeque::new(),
        })
    }

    /// Runs the server side of the handshake.
    ///
    /// # Errors
    ///
    /// [`IsslError::UnsupportedSuite`] when the client offers a geometry
    /// outside `config.suites` (an alert is sent first — this is the
    /// embedded profile rejecting 192/256-bit requests); other variants
    /// as for the client.
    pub fn server_handshake(
        mut wire: W,
        config: &ServerConfig,
        mut prng: Prng,
    ) -> Result<Session<W>, IsslError> {
        let mut transcript = Vec::new();

        // <- ClientHello
        let rec = read_record(&mut wire)?;
        if rec.kind != RecordType::ClientHello {
            return Err(IsslError::Handshake("expected client hello"));
        }
        if rec.body.len() != 2 + NONCE_LEN {
            return Err(IsslError::Handshake("bad client hello length"));
        }
        let offered = suite_from_bytes(&rec.body).ok_or(IsslError::Handshake("bad suite"))?;
        if !config.suites.contains(&offered) {
            let _ = write_record(&mut wire, RecordType::Alert, b"unsupported suite");
            return Err(IsslError::UnsupportedSuite);
        }
        let client_nonce: Vec<u8> = rec.body[2..].to_vec();
        transcript.extend_from_slice(&rec.body);
        prng.stir(&client_nonce);

        // -> ServerHello
        let mut server_nonce = [0u8; NONCE_LEN];
        prng.fill(&mut server_nonce);
        let mut hello = suite_to_bytes(offered).to_vec();
        hello.extend_from_slice(&server_nonce);
        match &config.kx {
            ServerKx::Rsa(kp) => {
                let n = kp.public().n_bytes();
                let e = kp.public().e_bytes();
                hello.extend_from_slice(&(n.len() as u16).to_be_bytes());
                hello.extend_from_slice(&n);
                hello.extend_from_slice(&(e.len() as u16).to_be_bytes());
                hello.extend_from_slice(&e);
            }
            ServerKx::PreShared(_) => {
                hello.extend_from_slice(&0u16.to_be_bytes());
                hello.extend_from_slice(&0u16.to_be_bytes());
            }
        }
        write_record(&mut wire, RecordType::ServerHello, &hello)?;
        transcript.extend_from_slice(&hello);

        // <- KeyExchange
        let rec = read_record(&mut wire)?;
        if rec.kind != RecordType::KeyExchange {
            return Err(IsslError::Handshake("expected key exchange"));
        }
        let premaster: Vec<u8> = match &config.kx {
            ServerKx::Rsa(kp) => {
                let pm = kp.decrypt(&rec.body).map_err(|_| IsslError::Rsa)?;
                transcript.extend_from_slice(&rec.body);
                pm
            }
            ServerKx::PreShared(psk) => psk.clone(),
        };

        let keys = derive_session_keys(
            &premaster,
            &client_nonce,
            &server_nonce,
            offered.key.bytes(),
        );
        let transcript_hash = sha1(&transcript);

        // <- Finished, -> Finished
        let rec = read_record(&mut wire)?;
        if rec.kind != RecordType::Finished {
            return Err(IsslError::Handshake("expected finished"));
        }
        if !verify_hmac_sha1(&keys.client_mac_key, &transcript_hash, &rec.body) {
            let _ = write_record(&mut wire, RecordType::Alert, b"bad finished");
            return Err(IsslError::BadMac);
        }
        let my_mac = hmac_sha1(&keys.server_mac_key, &transcript_hash);
        write_record(&mut wire, RecordType::Finished, &my_mac)?;

        let enc = Rijndael::new(&keys.server_write_key, offered.block)
            .map_err(|_| IsslError::Handshake("bad key length"))?;
        let dec = Rijndael::new(&keys.client_write_key, offered.block)
            .map_err(|_| IsslError::Handshake("bad key length"))?;
        Ok(Session {
            wire,
            enc,
            dec,
            mac_out: keys.server_mac_key,
            mac_in: keys.client_mac_key,
            block_len: offered.block.bytes(),
            seq_out: 0,
            seq_in: 0,
            prng,
            peer_closed: false,
            plain_buf: VecDeque::new(),
        })
    }

    /// Encrypts and sends application data (fragmenting across records).
    ///
    /// # Errors
    ///
    /// Transport failures via [`IsslError::Record`].
    pub fn secure_write(&mut self, data: &[u8]) -> Result<(), IsslError> {
        for chunk in data.chunks(FRAGMENT) {
            let mut iv = vec![0u8; self.block_len];
            self.prng.fill(&mut iv);
            let ct = cbc_encrypt(&self.enc, &iv, chunk).map_err(|_| IsslError::Corrupt)?;
            let mut mac_input = self.seq_out.to_be_bytes().to_vec();
            mac_input.extend_from_slice(&iv);
            mac_input.extend_from_slice(&ct);
            let mac = hmac_sha1(&self.mac_out, &mac_input);
            let mut body = iv;
            body.extend_from_slice(&ct);
            body.extend_from_slice(&mac);
            debug_assert!(body.len() <= MAX_RECORD);
            write_record(&mut self.wire, RecordType::Data, &body)?;
            self.seq_out += 1;
        }
        Ok(())
    }

    /// Receives and decrypts application data into `buf`. Returns 0 at an
    /// orderly close.
    ///
    /// # Errors
    ///
    /// [`IsslError::BadMac`] / [`IsslError::Corrupt`] on tampered
    /// records, transport failures otherwise.
    pub fn secure_read(&mut self, buf: &mut [u8]) -> Result<usize, IsslError> {
        while self.plain_buf.is_empty() {
            if self.peer_closed {
                return Ok(0);
            }
            let rec = match read_record(&mut self.wire) {
                Ok(r) => r,
                Err(RecordError::Eof) => {
                    self.peer_closed = true;
                    return Ok(0);
                }
                Err(e) => return Err(e.into()),
            };
            match rec.kind {
                RecordType::Alert => {
                    self.peer_closed = true;
                    return Ok(0);
                }
                RecordType::Data => {
                    let min = self.block_len + crypto::DIGEST_LEN;
                    if rec.body.len() < min + self.block_len {
                        return Err(IsslError::Corrupt);
                    }
                    let mac_at = rec.body.len() - crypto::DIGEST_LEN;
                    let (payload, mac) = rec.body.split_at(mac_at);
                    let mut mac_input = self.seq_in.to_be_bytes().to_vec();
                    mac_input.extend_from_slice(payload);
                    if !verify_hmac_sha1(&self.mac_in, &mac_input, mac) {
                        return Err(IsslError::BadMac);
                    }
                    let (iv, ct) = payload.split_at(self.block_len);
                    let plain = cbc_decrypt(&self.dec, iv, ct).map_err(|_| IsslError::Corrupt)?;
                    self.plain_buf.extend(plain);
                    self.seq_in += 1;
                }
                _ => return Err(IsslError::Handshake("handshake record after handshake")),
            }
        }
        let n = buf.len().min(self.plain_buf.len());
        for b in buf.iter_mut().take(n) {
            *b = self.plain_buf.pop_front().expect("length checked");
        }
        Ok(n)
    }

    /// Sends a close alert.
    ///
    /// # Errors
    ///
    /// Transport failures via [`IsslError::Record`].
    pub fn close(&mut self) -> Result<(), IsslError> {
        write_record(&mut self.wire, RecordType::Alert, b"close")?;
        Ok(())
    }

    /// Gives back the transport.
    pub fn into_wire(self) -> W {
        self.wire
    }

    /// Records sent so far (sequence number of the next outgoing record).
    pub fn records_sent(&self) -> u64 {
        self.seq_out
    }
}

impl<W: Wire> std::fmt::Debug for Session<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("seq_out", &self.seq_out)
            .field("seq_in", &self.seq_in)
            .field("block_len", &self.block_len)
            .finish()
    }
}

/// Adapter exposing [`Prng`] as a `rand::Rng` for the RSA padding code.
struct PrngRng<'a>(&'a mut Prng);

impl rand::RngCore for PrngRng<'_> {
    fn next_u32(&mut self) -> u32 {
        (self.0.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.fill(dest);
        Ok(())
    }
}
