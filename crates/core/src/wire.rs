//! The transport abstraction issl layers on: "issl is a cryptographic
//! library that layers on top of the Unix sockets layer" (§2). The same
//! record machinery runs over a BSD descriptor on the host and over a
//! Dynamic C socket on the RMC2000 — the two transports whose API gap is
//! the paper's Figure 2.

use crypto::Size;
use sockets::bsd::{Errno, Fd, UnixProcess};
use sockets::dynic::{Stack, TcpSock};

use crate::session::CipherSuite;

/// Encodes a cipher suite as the two-byte geometry field both hello
/// messages carry (`[key words, block words]`). The single encoding
/// authority for the blocking wrapper and the sans-I/O machine alike.
pub fn suite_to_bytes(s: CipherSuite) -> [u8; 2] {
    [s.key.words() as u8, s.block.words() as u8]
}

/// Decodes the two-byte suite geometry; `None` for sizes Rijndael does
/// not have.
pub fn suite_from_bytes(b: &[u8]) -> Option<CipherSuite> {
    let key = match b.first()? {
        4 => Size::Bits128,
        6 => Size::Bits192,
        8 => Size::Bits256,
        _ => return None,
    };
    let block = match b.get(1)? {
        4 => Size::Bits128,
        6 => Size::Bits192,
        8 => Size::Bits256,
        _ => return None,
    };
    Some(CipherSuite { key, block })
}

/// Transport-level failures surfaced to the record layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The connection is gone (reset, refused, or torn down).
    ConnectionLost,
    /// Clean end of stream in the middle of a record.
    UnexpectedEof,
    /// The wait budget ran out.
    Timeout,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::ConnectionLost => "connection lost",
            WireError::UnexpectedEof => "unexpected end of stream",
            WireError::Timeout => "transport timeout",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for WireError {}

/// A byte-stream transport the record layer can run over.
pub trait Wire {
    /// Writes the whole buffer.
    ///
    /// # Errors
    ///
    /// [`WireError::ConnectionLost`] when the stream dies mid-write.
    fn write_all(&mut self, data: &[u8]) -> Result<(), WireError>;

    /// Reads at least one byte into `buf` (pseudo-blocking); `Ok(0)` means
    /// a clean end of stream.
    ///
    /// # Errors
    ///
    /// [`WireError::ConnectionLost`] / [`WireError::Timeout`].
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, WireError>;

    /// Reads exactly `buf.len()` bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when the stream ends early.
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), WireError> {
        let mut off = 0;
        while off < buf.len() {
            let n = self.read(&mut buf[off..])?;
            if n == 0 {
                return Err(WireError::UnexpectedEof);
            }
            off += n;
        }
        Ok(())
    }
}

/// A BSD descriptor as a [`Wire`] (the host profile's transport).
pub struct BsdWire<'a> {
    /// The owning process.
    pub process: &'a mut UnixProcess,
    /// The connected descriptor.
    pub fd: Fd,
}

impl Wire for BsdWire<'_> {
    fn write_all(&mut self, data: &[u8]) -> Result<(), WireError> {
        self.process.send_all(self.fd, data).map_err(|e| match e {
            Errno::Etimedout => WireError::Timeout,
            _ => WireError::ConnectionLost,
        })
    }

    fn read(&mut self, buf: &mut [u8]) -> Result<usize, WireError> {
        self.process.recv(self.fd, buf).map_err(|e| match e {
            Errno::Etimedout => WireError::Timeout,
            _ => WireError::ConnectionLost,
        })
    }
}

/// A Dynamic C socket as a [`Wire`] (the embedded profile's transport).
/// Reads tick the stack; writes retry through `sock_write` until the
/// buffer drains, mirroring how the port pumped `tcp_tick` everywhere.
pub struct DynicWire {
    /// The TCP/IP stack of the board.
    pub stack: Stack,
    /// The socket slot carrying the connection.
    pub sock: TcpSock,
    /// Tick budget for a single pseudo-blocking read.
    pub max_ticks: usize,
}

impl DynicWire {
    /// Wraps a connected Dynamic C socket.
    pub fn new(stack: Stack, sock: TcpSock) -> DynicWire {
        DynicWire {
            stack,
            sock,
            max_ticks: 1_000_000,
        }
    }
}

impl Wire for DynicWire {
    fn write_all(&mut self, mut data: &[u8]) -> Result<(), WireError> {
        let mut idle = 0;
        while !data.is_empty() {
            let n = self
                .stack
                .sock_write(self.sock, data)
                .map_err(|_| WireError::ConnectionLost)?;
            data = &data[n..];
            if n == 0 {
                self.stack.tcp_tick(None);
                idle += 1;
                if idle > self.max_ticks {
                    return Err(WireError::Timeout);
                }
            } else {
                idle = 0;
            }
        }
        Ok(())
    }

    fn read(&mut self, buf: &mut [u8]) -> Result<usize, WireError> {
        for _ in 0..self.max_ticks {
            match self.stack.sock_read(self.sock, buf) {
                Ok(0) => {
                    if !self.stack.tcp_tick(Some(self.sock)) {
                        return Ok(0); // connection fully closed
                    }
                }
                Ok(n) => return Ok(n),
                Err(_) => return Err(WireError::ConnectionLost),
            }
        }
        Err(WireError::Timeout)
    }
}

/// An in-memory pipe pair for unit-testing the record layer without a
/// network.
#[derive(Debug, Default)]
pub struct PipePair {
    a_to_b: std::collections::VecDeque<u8>,
    b_to_a: std::collections::VecDeque<u8>,
}

/// One end of a [`PipePair`].
pub struct PipeEnd<'a> {
    pair: &'a std::cell::RefCell<PipePair>,
    is_a: bool,
}

impl PipePair {
    /// Creates the shared state; wrap in a `RefCell` and call
    /// [`PipePair::ends`].
    pub fn new() -> std::cell::RefCell<PipePair> {
        std::cell::RefCell::new(PipePair::default())
    }

    /// Borrows the two ends.
    pub fn ends(cell: &std::cell::RefCell<PipePair>) -> (PipeEnd<'_>, PipeEnd<'_>) {
        (
            PipeEnd {
                pair: cell,
                is_a: true,
            },
            PipeEnd {
                pair: cell,
                is_a: false,
            },
        )
    }
}

impl Wire for PipeEnd<'_> {
    fn write_all(&mut self, data: &[u8]) -> Result<(), WireError> {
        let mut p = self.pair.borrow_mut();
        let q = if self.is_a {
            &mut p.a_to_b
        } else {
            &mut p.b_to_a
        };
        q.extend(data);
        Ok(())
    }

    fn read(&mut self, buf: &mut [u8]) -> Result<usize, WireError> {
        let mut p = self.pair.borrow_mut();
        let q = if self.is_a {
            &mut p.b_to_a
        } else {
            &mut p.a_to_b
        };
        if q.is_empty() {
            return Err(WireError::UnexpectedEof); // pipes are synchronous in tests
        }
        let n = buf.len().min(q.len());
        for b in buf.iter_mut().take(n) {
            *b = q.pop_front().expect("length checked");
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_moves_bytes_between_ends() {
        let cell = PipePair::new();
        let (mut a, mut b) = PipePair::ends(&cell);
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 8];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        b.write_all(b"pong").unwrap();
        let n = a.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"pong");
    }

    #[test]
    fn read_exact_assembles_fragments() {
        let cell = PipePair::new();
        let (mut a, mut b) = PipePair::ends(&cell);
        a.write_all(b"0123456789").unwrap();
        let mut buf = [0u8; 10];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"0123456789");
    }

    #[test]
    fn read_exact_reports_eof() {
        let cell = PipePair::new();
        let (mut a, mut b) = PipePair::ends(&cell);
        a.write_all(b"123").unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(b.read_exact(&mut buf), Err(WireError::UnexpectedEof));
    }
}
