//! `any::<T>()` — strategies for "any value of a type".

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 != 0
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text well-formed.
        (0x20u8 + (rng.below(0x5F) as u8)) as char
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
