//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for collection strategies. Taking this by
/// `Into` (rather than a generic `usize` strategy) lets unsuffixed range
/// literals like `0..400` infer as `usize`, matching the real crate.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty length range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty length range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// A strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    elem: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.hi - self.len.lo) as u128 + 1;
        let n = self.len.lo + rng.below(span) as usize;
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// `vec(element_strategy, length_range)` — a strategy for vectors whose
/// length is drawn uniformly from `len`.
pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        len: len.into(),
    }
}
