//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// Something that can generate values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking — a
/// strategy is just a sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples the strategy built from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `f` maps a strategy for the type to a
    /// "one level deeper" strategy. Each of the `depth` levels mixes the
    /// base strategy back in so all depths are generated.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base: BoxedStrategy<Self::Value> = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            cur = Union::new(vec![base.clone(), deeper]).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among strategies (the [`crate::prop_oneof!`] backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given (non-empty) options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                (lo as u128).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (10u16..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (5usize..=5).sample(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::from_seed(2);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[usize::from(u.sample(&mut rng))] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = Just("x".to_string()).boxed();
        let s = leaf.prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let e = s.sample(&mut rng);
            assert!(e.contains('x'));
        }
    }
}
