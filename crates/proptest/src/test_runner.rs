//! The deterministic PRNG behind the shimmed test runner.

/// A xoshiro256**-style PRNG seeded from the test name, so every run of a
/// property test draws the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds from an arbitrary label (FNV-1a over the bytes).
    pub fn deterministic(label: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// Seeds from a 64-bit value.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut st = seed;
        TestRng {
            s: core::array::from_fn(|_| splitmix64(&mut st)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform value in `[0, bound)`; `bound == 0` means the full domain.
    pub fn below(&mut self, bound: u128) -> u128 {
        let v = self.next_u128();
        if bound == 0 {
            v
        } else {
            v % bound
        }
    }
}
