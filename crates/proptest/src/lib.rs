//! A minimal, dependency-free stand-in for the subset of `proptest` used
//! by this workspace's property tests.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the pieces it needs: the [`proptest!`] macro (both the
//! `name: Type` and `name in strategy` binding forms, plus
//! `#![proptest_config(..)]`), the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`,
//! [`strategy::Just`], ranges and tuples as strategies,
//! [`collection::vec`], [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from the real crate: sampling is plain pseudo-random with a
//! seed derived from the test name (deterministic run to run), there is
//! **no shrinking**, and failures panic like ordinary assertions.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Run-count configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The property-test macro. Supports the two binding forms
/// (`name: Type` and `name in strategy`) and an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@tests ($cfg) $($rest)*}
    };
    (@tests ($cfg:expr)) => {};
    (@tests ($cfg:expr) #[test] fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::proptest!{@bind __rng, [$($params)*,] $body}
            }
        }
        $crate::proptest!{@tests ($cfg) $($rest)*}
    };
    (@bind $rng:ident, [,] $body:block) => { $body };
    (@bind $rng:ident, [] $body:block) => { $body };
    (@bind $rng:ident, [$p:ident in $s:expr, $($rest:tt)*] $body:block) => {{
        let $p = $crate::strategy::Strategy::sample(&($s), &mut $rng);
        $crate::proptest!{@bind $rng, [$($rest)*] $body}
    }};
    (@bind $rng:ident, [$p:ident: $ty:ty, $($rest:tt)*] $body:block) => {{
        let $p: $ty = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::proptest!{@bind $rng, [$($rest)*] $body}
    }};
    ($($rest:tt)*) => {
        $crate::proptest!{@tests ($crate::ProptestConfig::default()) $($rest)*}
    };
}

/// Panic unless the condition holds (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Panic unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Panic if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
