//! Property tests: under any seed, loss rate and chunking pattern, TCP
//! delivers the byte stream exactly, in order.

use netsim::{Endpoint, Ipv4, LinkParams, Recv, World};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tcp_delivers_exactly_under_loss(
        seed in 0u64..1_000,
        drop_permille in 0u32..200,
        len in 1usize..30_000,
        chunk in 1usize..5_000,
    ) {
        let mut w = World::new(seed);
        let a = w.add_host("a", Ipv4::new(10, 0, 0, 1));
        let b = w.add_host("b", Ipv4::new(10, 0, 0, 2));
        w.link(
            a,
            b,
            LinkParams::lan_100m().with_drop_rate(f64::from(drop_permille) / 1000.0),
        );

        let listener = w.tcp_listen(a, 1000, 4).unwrap();
        let c = w.tcp_connect(b, Endpoint::new(Ipv4::new(10, 0, 0, 1), 1000));
        prop_assert!(w.run_until(|w| w.tcp_pending(listener) > 0, 1_000_000));
        let s = w.tcp_accept(listener).unwrap();

        let data: Vec<u8> = (0..len).map(|i| (i.wrapping_mul(131) % 251) as u8).collect();
        let mut sent = 0;
        let mut received = Vec::new();
        let mut buf = vec![0u8; 8192];
        let mut stall = 0;
        while received.len() < data.len() {
            if sent < data.len() {
                let end = (sent + chunk).min(data.len());
                sent += w.tcp_send(c, &data[sent..end]).unwrap();
            }
            w.run_for(100_000);
            loop {
                match w.tcp_recv(s, &mut buf) {
                    Recv::Data(n) => {
                        received.extend_from_slice(&buf[..n]);
                        stall = 0;
                    }
                    Recv::WouldBlock => break,
                    Recv::Closed => break,
                    Recv::Reset => prop_assert!(false, "unexpected reset"),
                }
            }
            stall += 1;
            prop_assert!(stall < 2_000, "stalled at {}/{}", received.len(), data.len());
        }
        prop_assert_eq!(received, data);
    }
}
