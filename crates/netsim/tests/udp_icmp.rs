//! UDP and ICMP edge cases.

use netsim::{Endpoint, Ipv4, LinkParams, NetError, World};

fn rig() -> (World, netsim::HostId, netsim::HostId) {
    let mut w = World::new(3);
    let a = w.add_host("a", Ipv4::new(10, 0, 0, 1));
    let b = w.add_host("b", Ipv4::new(10, 0, 0, 2));
    w.link(a, b, LinkParams::ethernet_10base_t());
    (w, a, b)
}

#[test]
fn udp_bind_conflicts_are_rejected() {
    let (mut w, a, b) = rig();
    w.udp_bind(a, 53).unwrap();
    assert_eq!(w.udp_bind(a, 53), Err(NetError::AddrInUse(53)));
    // same port on a different host is fine
    w.udp_bind(b, 53).unwrap();
}

#[test]
fn udp_to_unbound_port_is_dropped_silently() {
    let (mut w, a, b) = rig();
    let ua = w.udp_bind(a, 1000).unwrap();
    w.udp_send_to(ua, Endpoint::new(Ipv4::new(10, 0, 0, 2), 9), b"void");
    w.run_for(100_000);
    let ub = w.udp_bind(b, 9).unwrap();
    assert_eq!(
        w.udp_recv_from(ub),
        None,
        "nothing queued for a late binder"
    );
}

#[test]
fn udp_is_bidirectional_and_ordered_on_a_clean_link() {
    let (mut w, a, b) = rig();
    let ua = w.udp_bind(a, 100).unwrap();
    let ub = w.udp_bind(b, 200).unwrap();
    for i in 0..5u8 {
        w.udp_send_to(ua, Endpoint::new(Ipv4::new(10, 0, 0, 2), 200), &[i]);
    }
    w.run_for(200_000);
    for i in 0..5u8 {
        let (from, data) = w.udp_recv_from(ub).expect("datagram");
        assert_eq!(from.port, 100);
        assert_eq!(data, vec![i], "FIFO order on a lossless link");
    }
    w.udp_send_to(ub, Endpoint::new(Ipv4::new(10, 0, 0, 1), 100), b"back");
    w.run_for(100_000);
    assert_eq!(w.udp_recv_from(ua).expect("reply").1, b"back");
}

#[test]
fn ping_to_unroutable_address_is_counted() {
    let (mut w, a, _b) = rig();
    w.ping(a, Ipv4::new(192, 168, 99, 99), 1, 1);
    w.run_for(100_000);
    assert_eq!(w.ping_reply(a), None);
    assert_eq!(w.stats.unroutable, 1);
}

#[test]
fn ping_round_trip_time_reflects_the_link() {
    let (mut w, a, _b) = rig();
    let t0 = w.now();
    w.ping(a, Ipv4::new(10, 0, 0, 2), 7, 1);
    w.run_for(10_000);
    let (from, echo) = w.ping_reply(a).expect("reply");
    assert_eq!(from, Ipv4::new(10, 0, 0, 2));
    assert_eq!((echo.ident, echo.seq), (7, 1));
    assert!(w.now() - t0 >= 200, "two traversals of a 100 µs link");
}
