//! End-to-end TCP behaviour over the simulated wire.

use netsim::{Endpoint, Ipv4, LinkParams, NetError, Recv, TcpState, World};

const SERVER_IP: Ipv4 = Ipv4(0x0A00_0001);
const CLIENT_IP: Ipv4 = Ipv4(0x0A00_0002);

fn world(params: LinkParams) -> (World, netsim::HostId, netsim::HostId) {
    let mut w = World::new(7);
    let server = w.add_host("server", SERVER_IP);
    let client = w.add_host("client", CLIENT_IP);
    w.link(server, client, params);
    (w, server, client)
}

fn connect(
    w: &mut World,
    server: netsim::HostId,
    client: netsim::HostId,
    port: u16,
) -> (netsim::SocketId, netsim::SocketId, netsim::SocketId) {
    let listener = w.tcp_listen(server, port, 8).expect("listen");
    let c = w.tcp_connect(client, Endpoint::new(SERVER_IP, port));
    assert!(w.run_until(|w| w.tcp_pending(listener) > 0, 100_000));
    let s = w.tcp_accept(listener).expect("backlog non-empty");
    assert!(w.tcp_established(c));
    assert!(w.tcp_established(s));
    (listener, c, s)
}

/// Pulls everything currently readable from `sock` into `out`.
fn drain(w: &mut World, sock: netsim::SocketId, out: &mut Vec<u8>) -> bool {
    let mut buf = [0u8; 4096];
    loop {
        match w.tcp_recv(sock, &mut buf) {
            Recv::Data(n) => out.extend_from_slice(&buf[..n]),
            Recv::WouldBlock => return false,
            Recv::Closed => return true,
            Recv::Reset => panic!("unexpected reset"),
        }
    }
}

#[test]
fn handshake_establishes_both_ends() {
    let (mut w, server, client) = world(LinkParams::ethernet_10base_t());
    let (_l, c, s) = connect(&mut w, server, client, 4433);
    assert_eq!(w.tcp_state(c), TcpState::Established);
    assert_eq!(w.tcp_state(s), TcpState::Established);
    assert_eq!(w.tcp_peer(s), Some(w.tcp_peer(s).unwrap()));
    assert_eq!(w.tcp_peer(c).unwrap().ip, SERVER_IP);
}

#[test]
fn small_transfer_round_trip() {
    let (mut w, server, client) = world(LinkParams::ethernet_10base_t());
    let (_l, c, s) = connect(&mut w, server, client, 80);
    assert_eq!(w.tcp_send(c, b"ping").unwrap(), 4);
    assert!(w.run_until(|w| w.tcp_available(s) >= 4, 100_000));
    let mut buf = [0u8; 8];
    assert_eq!(w.tcp_recv(s, &mut buf), Recv::Data(4));
    assert_eq!(&buf[..4], b"ping");
    // reply
    w.tcp_send(s, b"pong").unwrap();
    assert!(w.run_until(|w| w.tcp_available(c) >= 4, 100_000));
    assert_eq!(w.tcp_recv(c, &mut buf), Recv::Data(4));
    assert_eq!(&buf[..4], b"pong");
}

#[test]
fn bulk_transfer_crosses_mss_and_window() {
    let (mut w, server, client) = world(LinkParams::lan_100m());
    let (_l, c, s) = connect(&mut w, server, client, 9000);
    // 100 KiB: far beyond one MSS (1460) and beyond the 16 KiB window, so
    // flow control and segmentation both engage. Also beyond the 64 KiB
    // send buffer, so the sender must dribble it in.
    let data: Vec<u8> = (0..100 * 1024).map(|i| (i * 31 % 251) as u8).collect();
    let mut offset = 0;
    let mut received = Vec::new();
    let mut guard = 0;
    while received.len() < data.len() {
        if offset < data.len() {
            offset += w.tcp_send(c, &data[offset..]).unwrap();
        }
        w.run_for(10_000);
        drain(&mut w, s, &mut received);
        guard += 1;
        assert!(guard < 10_000, "transfer stalled at {}", received.len());
    }
    assert_eq!(received, data, "byte-exact in-order delivery");
}

#[test]
fn orderly_close_reaches_closed_on_both_sides() {
    let (mut w, server, client) = world(LinkParams::ethernet_10base_t());
    let (_l, c, s) = connect(&mut w, server, client, 23);
    w.tcp_send(c, b"bye").unwrap();
    w.tcp_close(c).unwrap();
    assert!(w.run_until(|w| w.tcp_available(s) >= 3, 100_000));
    let mut out = Vec::new();
    let eof = drain(&mut w, s, &mut out);
    assert_eq!(out, b"bye");
    assert!(
        eof || {
            w.run_for(100_000);
            drain(&mut w, s, &mut out)
        }
    );
    // Server closes its side; client should drain to Closed/TimeWait.
    w.tcp_close(s).unwrap();
    assert!(w.run_until(
        |w| matches!(w.tcp_state(s), TcpState::Closed)
            && matches!(w.tcp_state(c), TcpState::TimeWait | TcpState::Closed),
        100_000
    ));
}

#[test]
fn recv_reports_closed_after_fin_and_drain() {
    let (mut w, server, client) = world(LinkParams::ethernet_10base_t());
    let (_l, c, s) = connect(&mut w, server, client, 1234);
    w.tcp_send(c, b"last words").unwrap();
    w.tcp_close(c).unwrap();
    w.run_for(2_000_000);
    let mut out = Vec::new();
    let eof = drain(&mut w, s, &mut out);
    assert!(eof, "FIN after data must surface as Closed");
    assert_eq!(out, b"last words");
    let mut buf = [0u8; 4];
    assert_eq!(w.tcp_recv(s, &mut buf), Recv::Closed);
}

#[test]
fn lossy_link_still_delivers_everything() {
    let (mut w, server, client) = world(LinkParams::lan_100m().with_drop_rate(0.15));
    let (_l, c, s) = connect(&mut w, server, client, 5000);
    let data: Vec<u8> = (0..20_000).map(|i| (i % 256) as u8).collect();
    let mut offset = 0;
    let mut received = Vec::new();
    let mut guard = 0;
    while received.len() < data.len() {
        if offset < data.len() {
            offset += w.tcp_send(c, &data[offset..]).unwrap();
        }
        w.run_for(50_000);
        drain(&mut w, s, &mut received);
        guard += 1;
        assert!(
            guard < 20_000,
            "lossy transfer stalled at {}",
            received.len()
        );
    }
    assert_eq!(received, data);
    assert!(w.stats.dropped > 0, "the link actually dropped packets");
    assert!(w.stats.retransmits > 0, "TCP actually retransmitted");
}

#[test]
fn connect_to_closed_port_is_reset() {
    let (mut w, _server, client) = world(LinkParams::ethernet_10base_t());
    let c = w.tcp_connect(client, Endpoint::new(SERVER_IP, 81));
    assert!(w.run_until(|w| w.tcp_state(c) == TcpState::Closed, 100_000));
    let mut buf = [0u8; 1];
    assert_eq!(w.tcp_recv(c, &mut buf), Recv::Reset);
    assert!(matches!(
        w.tcp_send(c, b"x"),
        Err(NetError::ConnectionReset)
    ));
}

#[test]
fn abort_resets_the_peer() {
    let (mut w, server, client) = world(LinkParams::ethernet_10base_t());
    let (_l, c, s) = connect(&mut w, server, client, 6000);
    w.tcp_abort(c);
    assert!(w.run_until(|w| w.tcp_state(s) == TcpState::Closed, 100_000));
    let mut buf = [0u8; 1];
    assert_eq!(w.tcp_recv(s, &mut buf), Recv::Reset);
}

#[test]
fn multiple_simultaneous_connections_are_isolated() {
    let (mut w, server, client) = world(LinkParams::lan_100m());
    let listener = w.tcp_listen(server, 7777, 8).unwrap();
    let clients: Vec<_> = (0..3)
        .map(|_| w.tcp_connect(client, Endpoint::new(SERVER_IP, 7777)))
        .collect();
    assert!(w.run_until(|w| w.tcp_pending(listener) == 3, 100_000));
    let servers: Vec<_> = (0..3).map(|_| w.tcp_accept(listener).unwrap()).collect();

    for (i, &c) in clients.iter().enumerate() {
        let msg = format!("client-{i}");
        w.tcp_send(c, msg.as_bytes()).unwrap();
    }
    w.run_for(1_000_000);
    for (i, &s) in servers.iter().enumerate() {
        let mut out = Vec::new();
        drain(&mut w, s, &mut out);
        assert_eq!(out, format!("client-{i}").as_bytes(), "stream {i} isolated");
    }
}

#[test]
fn backlog_limit_defers_excess_connections() {
    let (mut w, server, client) = world(LinkParams::ethernet_10base_t());
    let listener = w.tcp_listen(server, 9999, 2).unwrap();
    let c: Vec<_> = (0..4)
        .map(|_| w.tcp_connect(client, Endpoint::new(SERVER_IP, 9999)))
        .collect();
    w.run_for(300_000);
    assert_eq!(w.tcp_pending(listener), 2, "only backlog-many complete");
    // Accepting drains the backlog; the remaining SYNs retransmit and
    // eventually get in.
    let _s1 = w.tcp_accept(listener).unwrap();
    let _s2 = w.tcp_accept(listener).unwrap();
    assert!(w.run_until(|w| w.tcp_pending(listener) == 2, 1_000_000));
    let _ = c;
}

#[test]
fn listen_twice_on_same_port_fails() {
    let (mut w, server, _client) = world(LinkParams::ethernet_10base_t());
    w.tcp_listen(server, 443, 4).unwrap();
    assert_eq!(w.tcp_listen(server, 443, 4), Err(NetError::AddrInUse(443)));
}

#[test]
fn loopback_connections_work() {
    let mut w = World::new(1);
    let host = w.add_host("lonely", Ipv4::new(127, 0, 0, 1));
    let listener = w.tcp_listen(host, 80, 4).unwrap();
    let c = w.tcp_connect(host, Endpoint::new(Ipv4::new(127, 0, 0, 1), 80));
    assert!(w.run_until(|w| w.tcp_pending(listener) > 0, 100_000));
    let s = w.tcp_accept(listener).unwrap();
    w.tcp_send(c, b"self").unwrap();
    assert!(w.run_until(|w| w.tcp_available(s) == 4, 100_000));
}

#[test]
fn udp_datagrams_and_icmp_echo() {
    let (mut w, server, client) = world(LinkParams::ethernet_10base_t());
    let us = w.udp_bind(server, 53).unwrap();
    let uc = w.udp_bind(client, 5353).unwrap();
    w.udp_send_to(uc, Endpoint::new(SERVER_IP, 53), b"query");
    w.run_for(100_000);
    let (from, payload) = w.udp_recv_from(us).expect("datagram arrived");
    assert_eq!(from.ip, CLIENT_IP);
    assert_eq!(payload, b"query");

    w.ping(client, SERVER_IP, 99, 1);
    w.run_for(100_000);
    let (from, echo) = w.ping_reply(client).expect("echo reply");
    assert_eq!(from, SERVER_IP);
    assert_eq!(echo.ident, 99);
    assert!(!echo.request);
}

#[test]
fn virtual_time_advances_with_wire_delays() {
    let (mut w, server, client) = world(LinkParams::ethernet_10base_t());
    assert_eq!(w.now(), 0);
    let (_l, c, s) = connect(&mut w, server, client, 80);
    let t_handshake = w.now();
    assert!(t_handshake >= 200, "handshake costs at least two latencies");
    w.tcp_send(c, &[0u8; 10_000]).unwrap();
    assert!(w.run_until(|w| w.tcp_available(s) == 10_000, 100_000));
    // 10 KB at 10 Mbit/s is at least 8 ms of serialization.
    assert!(w.now() - t_handshake >= 8_000, "bandwidth delay modelled");
}

#[test]
fn stats_count_delivered_bytes() {
    let (mut w, server, client) = world(LinkParams::ethernet_10base_t());
    let (_l, c, s) = connect(&mut w, server, client, 80);
    w.tcp_send(c, &[7u8; 5000]).unwrap();
    assert!(w.run_until(|w| w.tcp_available(s) == 5000, 100_000));
    assert_eq!(w.stats.tcp_bytes_delivered, 5000);
    assert!(w.stats.delivered > 3, "handshake + data + acks");

    // The same numbers surface through the world's telemetry registry.
    let snap = w.telemetry().snapshot();
    assert_eq!(snap.counter("net.tcp.bytes_delivered", &[]), 5000);
    assert_eq!(
        snap.counter("net.packets.delivered", &[]),
        w.stats.delivered.get()
    );
    assert!(snap.to_text().contains("net.tcp.bytes_delivered 5000\n"));
}

#[test]
fn trace_records_the_three_way_handshake() {
    let (mut w, server, client) = world(LinkParams::ethernet_10base_t());
    w.enable_trace();
    let (_l, c, _s) = connect(&mut w, server, client, 80);
    let summaries: Vec<String> = w.trace().iter().map(|t| t.summary.clone()).collect();
    assert!(summaries[0].starts_with("SYN "), "first: {}", summaries[0]);
    assert!(
        summaries[1].starts_with("SYN|ACK"),
        "second: {}",
        summaries[1]
    );
    assert!(summaries[2].starts_with("ACK"), "third: {}", summaries[2]);
    // the display form is tcpdump-ish
    let line = w.trace()[0].to_string();
    assert!(line.contains("10.0.0.2") && line.contains("µs"), "{line}");
    // data packets get len annotations
    w.clear_trace();
    w.tcp_send(c, b"hello").unwrap();
    w.run_for(100_000);
    assert!(
        w.trace().iter().any(|t| t.summary.contains("len=5")),
        "{:?}",
        w.trace()
    );
}

#[test]
fn trace_marks_dropped_packets() {
    let (mut w, server, client) = world(LinkParams::lan_100m().with_drop_rate(0.4));
    w.enable_trace();
    let listener = w.tcp_listen(server, 80, 4).unwrap();
    let _c = w.tcp_connect(client, Endpoint::new(SERVER_IP, 80));
    assert!(w.run_until(|w| w.tcp_pending(listener) > 0, 1_000_000));
    assert!(
        w.trace().iter().any(|t| t.dropped) || w.stats.dropped == 0,
        "drops show up in the trace"
    );
}
