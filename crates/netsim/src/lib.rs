//! A deterministic discrete-event network simulator: hosts joined by
//! links with latency, bandwidth and loss, carrying IP packets with full
//! TCP (three-way handshake, segmentation, cumulative acknowledgement,
//! retransmission with exponential backoff, flow control, orderly FIN
//! teardown and RST), UDP and ICMP echo.
//!
//! This is the substitute for the physical LAN of *Porting a Network
//! Cryptographic Service to the RMC2000* (DATE 2003): the paper's service
//! ran on a 10Base-T development kit talking to Unix peers, and the
//! throughput-shaped experiments (plaintext vs SSL redirection) need a
//! reproducible wire. Time is virtual — microseconds advance only when
//! events are processed — so every run is exactly repeatable for a given
//! seed.
//!
//! # Example
//!
//! ```
//! use netsim::{Endpoint, Ipv4, LinkParams, Recv, World};
//!
//! let mut w = World::new(42);
//! let server = w.add_host("server", Ipv4::new(10, 0, 0, 1));
//! let client = w.add_host("client", Ipv4::new(10, 0, 0, 2));
//! w.link(server, client, LinkParams::ethernet_10base_t());
//!
//! let listener = w.tcp_listen(server, 7, 4).unwrap();
//! let c = w.tcp_connect(client, Endpoint::new(Ipv4::new(10, 0, 0, 1), 7));
//! assert!(w.run_until(|w| w.tcp_pending(listener) > 0, 1_000));
//!
//! let s = w.tcp_accept(listener).unwrap();
//! assert!(w.tcp_established(c));
//! w.tcp_send(c, b"hello").unwrap();
//! assert!(w.run_until(|w| w.tcp_available(s) >= 5, 1_000));
//! let mut buf = [0u8; 16];
//! assert_eq!(w.tcp_recv(s, &mut buf), Recv::Data(5));
//! assert_eq!(&buf[..5], b"hello");
//! ```

pub mod addr;
pub mod attach;
pub mod fault;
pub mod lb;
pub mod packet;
pub mod tcp;
pub mod world;

pub use addr::{htonl, htons, ntohl, ntohs, Endpoint, Ipv4};
pub use attach::SimHost;
pub use fault::{Corruption, LinkId};
pub use lb::{BackendStats, LbCounters, LbPolicy, LoadBalancer, CONNECT_TIMEOUT_US};
pub use packet::{IcmpEcho, Packet, TcpFlags, TcpSegment, Transport, UdpDatagram};
pub use tcp::{HostId, SocketId, TcpState, MSS, RECV_WINDOW, SEND_BUFFER};
pub use world::{LinkParams, NetError, Recv, SocketEvent, Stats, TraceEntry, UdpId, World};
