//! Addressing: IPv4 addresses, ports and endpoints, plus the byte-order
//! helpers (`htons` and friends) that BSD sockets code leans on.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// The wildcard address `0.0.0.0` (`INADDR_ANY`).
    pub const ANY: Ipv4 = Ipv4(0);

    /// Builds an address from dotted-quad octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4 {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets, most significant first.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Error parsing a dotted-quad address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpv4Error(pub String);

impl fmt::Display for ParseIpv4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address `{}`", self.0)
    }
}

impl std::error::Error for ParseIpv4Error {}

impl FromStr for Ipv4 {
    type Err = ParseIpv4Error;

    fn from_str(s: &str) -> Result<Ipv4, ParseIpv4Error> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(ParseIpv4Error(s.to_string()));
        }
        let mut octets = [0u8; 4];
        for (o, p) in octets.iter_mut().zip(&parts) {
            *o = p.parse().map_err(|_| ParseIpv4Error(s.to_string()))?;
        }
        Ok(Ipv4(u32::from_be_bytes(octets)))
    }
}

/// A transport endpoint: address plus port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    /// The host address.
    pub ip: Ipv4,
    /// The TCP/UDP port.
    pub port: u16,
}

impl Endpoint {
    /// Builds an endpoint.
    pub fn new(ip: Ipv4, port: u16) -> Endpoint {
        Endpoint { ip, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Host-to-network byte order for a 16-bit value (`htons`).
pub fn htons(v: u16) -> u16 {
    v.to_be()
}

/// Host-to-network byte order for a 32-bit value (`htonl`).
pub fn htonl(v: u32) -> u32 {
    v.to_be()
}

/// Network-to-host byte order for a 16-bit value (`ntohs`).
pub fn ntohs(v: u16) -> u16 {
    u16::from_be(v)
}

/// Network-to-host byte order for a 32-bit value (`ntohl`).
pub fn ntohl(v: u32) -> u32 {
    u32::from_be(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips() {
        let ip = Ipv4::new(192, 168, 1, 30);
        assert_eq!(ip.to_string(), "192.168.1.30");
        assert_eq!("192.168.1.30".parse::<Ipv4>(), Ok(ip));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("1.2.3".parse::<Ipv4>().is_err());
        assert!("1.2.3.256".parse::<Ipv4>().is_err());
        assert!("a.b.c.d".parse::<Ipv4>().is_err());
    }

    #[test]
    fn byte_order_helpers_are_involutions() {
        assert_eq!(ntohs(htons(0x1234)), 0x1234);
        assert_eq!(ntohl(htonl(0xDEAD_BEEF)), 0xDEAD_BEEF);
    }

    #[test]
    fn endpoint_display() {
        let ep = Endpoint::new(Ipv4::new(10, 0, 0, 1), 4433);
        assert_eq!(ep.to_string(), "10.0.0.1:4433");
    }
}
