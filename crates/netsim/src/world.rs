//! The discrete-event simulation world: hosts, links, the event queue and
//! the full TCP/UDP/ICMP machinery.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::{Endpoint, Ipv4};
use crate::fault::{Corruption, LinkId};
use crate::packet::{IcmpEcho, Packet, TcpFlags, TcpSegment, Transport, UdpDatagram};
use crate::tcp::{
    HostId, SocketId, TcpSocket, TcpState, INITIAL_RTO_US, MAX_RTO_US, MSS, RECV_WINDOW,
    SEND_BUFFER, TIME_WAIT_US,
};

/// Copies `len` bytes starting at `start` out of a byte deque without
/// walking it element-by-element (the send buffer is re-read from an
/// `in_flight` offset on every segment, so this is a hot path).
fn copy_range(dq: &VecDeque<u8>, start: usize, len: usize) -> Vec<u8> {
    let end = start + len;
    let (a, b) = dq.as_slices();
    let mut out = Vec::with_capacity(len);
    if start < a.len() {
        out.extend_from_slice(&a[start..end.min(a.len())]);
    }
    if end > a.len() {
        out.extend_from_slice(&b[start.saturating_sub(a.len())..end - a.len()]);
    }
    out
}

/// Parameters of a point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// One-way propagation latency in microseconds.
    pub latency_us: u64,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Probability that a packet is lost in transit.
    pub drop_rate: f64,
}

impl LinkParams {
    /// A 10Base-T Ethernet segment, as on the RMC2000 development kit:
    /// 10 Mbit/s, 100 µs latency, lossless.
    pub fn ethernet_10base_t() -> LinkParams {
        LinkParams {
            latency_us: 100,
            bandwidth_bps: 10_000_000,
            drop_rate: 0.0,
        }
    }

    /// A fast LAN (100 Mbit/s, 50 µs), for host-side experiments.
    pub fn lan_100m() -> LinkParams {
        LinkParams {
            latency_us: 50,
            bandwidth_bps: 100_000_000,
            drop_rate: 0.0,
        }
    }

    /// Adds loss to a link, for retransmission tests.
    pub fn with_drop_rate(mut self, rate: f64) -> LinkParams {
        self.drop_rate = rate;
        self
    }
}

#[derive(Debug)]
struct Link {
    a: HostId,
    b: HostId,
    params: LinkParams,
    busy_until: u64,
    rng: StdRng,
    /// RNG for fault decisions (corruption draws) — a stream separate
    /// from the drop RNG, seeded from the world seed and the link id,
    /// so arming a fault never shifts the loss pattern.
    fault_rng: StdRng,
    /// Armed frame-corruption spec, if any (see [`crate::fault`]).
    corrupt: Option<Corruption>,
}

#[derive(Debug)]
struct Host {
    ip: Ipv4,
    name: String,
    icmp_inbox: VecDeque<(Ipv4, IcmpEcho)>,
    next_ephemeral: u16,
}

/// Handle to a UDP socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpId(usize);

#[derive(Debug)]
struct UdpSock {
    host: HostId,
    port: u16,
    inbox: VecDeque<(Endpoint, Vec<u8>)>,
}

#[derive(Debug)]
enum Event {
    Deliver { host: HostId, packet: Packet },
    Retransmit { sock: SocketId, snapshot: u32 },
    TimeWaitExpire { sock: SocketId },
}

#[derive(Debug)]
struct Scheduled {
    time: u64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// One line of the wire trace (tcpdump style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time the packet hit the wire, in microseconds.
    pub time_us: u64,
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Human-readable summary (`SYN seq=1`, `ACK ack=42 len=100`, …).
    pub summary: String,
    /// Whether the link dropped this packet.
    pub dropped: bool,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>10} µs  {} > {}  {}{}",
            self.time_us,
            self.src,
            self.dst,
            self.summary,
            if self.dropped { "  [DROPPED]" } else { "" }
        )
    }
}

fn summarize(body: &Transport) -> String {
    match body {
        Transport::Tcp(t) => {
            let mut s = t.flags.to_string();
            s.push_str(&format!(" seq={}", t.seq));
            if t.flags.ack {
                s.push_str(&format!(" ack={}", t.ack));
            }
            if !t.payload.is_empty() {
                s.push_str(&format!(" len={}", t.payload.len()));
            }
            s.push_str(&format!(" win={}", t.window));
            s
        }
        Transport::Udp(u) => format!("UDP len={}", u.payload.len()),
        Transport::Icmp(e) => format!(
            "ICMP echo {} id={} seq={}",
            if e.request { "request" } else { "reply" },
            e.ident,
            e.seq
        ),
    }
}

/// Counters accumulated while the simulation runs.
///
/// Each field is a [`telemetry::Counter`] registered in the world's
/// [`telemetry::Registry`] under a `net.*` name, so a registry snapshot
/// carries the same numbers. Counters compare against plain integers
/// (`w.stats.dropped > 0` still reads as before); cloning a `Stats`
/// shares the underlying cells rather than copying values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Packets handed to a host's stack (`net.packets.delivered`).
    pub delivered: telemetry::Counter,
    /// Packets lost on a link (`net.packets.dropped`).
    pub dropped: telemetry::Counter,
    /// TCP payloads damaged by scripted link corruption
    /// (`net.packets.corrupted`).
    pub corrupted: telemetry::Counter,
    /// TCP retransmissions sent (`net.tcp.retransmits`).
    pub retransmits: telemetry::Counter,
    /// Packets with no route to their destination
    /// (`net.packets.unroutable`).
    pub unroutable: telemetry::Counter,
    /// Application payload bytes delivered in order by TCP
    /// (`net.tcp.bytes_delivered`).
    pub tcp_bytes_delivered: telemetry::Counter,
}

impl Stats {
    /// Creates the stats block with every counter registered in
    /// `registry` under its `net.*` name.
    fn register(registry: &telemetry::Registry) -> Stats {
        Stats {
            delivered: registry.counter("net.packets.delivered", &[]),
            dropped: registry.counter("net.packets.dropped", &[]),
            corrupted: registry.counter("net.packets.corrupted", &[]),
            retransmits: registry.counter("net.tcp.retransmits", &[]),
            unroutable: registry.counter("net.packets.unroutable", &[]),
            tcp_bytes_delivered: registry.counter("net.tcp.bytes_delivered", &[]),
        }
    }
}

/// A per-socket readiness transition, recorded as the TCP machinery
/// processes segments. Consumers that register interest (via
/// [`World::enable_socket_events`]) drain these with
/// [`World::take_socket_events`] and wake exactly the sockets that
/// changed — O(ready), not O(sockets). Each event marks an edge
/// (empty→non-empty buffer, new backlog entry, first FIN), so an idle
/// world generates no events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketEvent {
    /// An active open completed its three-way handshake (SYN-SENT →
    /// ESTABLISHED), or a passive child became synchronised.
    Established(SocketId),
    /// A listener gained a fully established connection in its backlog;
    /// `tcp_accept` will now succeed.
    AcceptReady(SocketId),
    /// The receive buffer went from empty to non-empty; `tcp_recv` will
    /// now return data.
    BytesReady(SocketId),
    /// The peer's FIN was sequenced (or the connection was reset); after
    /// the buffered bytes, `tcp_recv` reports end of stream.
    PeerClosed(SocketId),
    /// Acknowledged data freed send-buffer space, or a zero receive
    /// window reopened; a previously blocked `tcp_send` may make
    /// progress again.
    WindowOpen(SocketId),
}

/// Outcome of a non-blocking `recv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recv {
    /// `n` bytes were copied out.
    Data(usize),
    /// No data available yet; the connection is open.
    WouldBlock,
    /// Orderly end of stream (peer closed and buffer drained).
    Closed,
    /// The connection was reset.
    Reset,
}

/// Errors from socket operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The socket handle does not name a live socket.
    BadSocket,
    /// Operation invalid in the socket's current state.
    BadState(TcpState),
    /// The port is already bound on this host.
    AddrInUse(u16),
    /// The connection was reset by the peer.
    ConnectionReset,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::BadSocket => write!(f, "bad socket handle"),
            NetError::BadState(s) => write!(f, "operation invalid in state {s:?}"),
            NetError::AddrInUse(p) => write!(f, "port {p} already in use"),
            NetError::ConnectionReset => write!(f, "connection reset by peer"),
        }
    }
}

impl std::error::Error for NetError {}

fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// The simulation: owns virtual time, hosts, links and sockets.
///
/// All socket calls are non-blocking; time only advances through
/// [`World::step`] / [`World::run_for`] / [`World::run_until`].
pub struct World {
    now: u64,
    next_event_seq: u64,
    next_iss: u32,
    events: BinaryHeap<Reverse<Scheduled>>,
    hosts: Vec<Host>,
    links: Vec<Link>,
    socks: Vec<Option<TcpSocket>>,
    udps: Vec<Option<UdpSock>>,
    seed: u64,
    trace: Option<Vec<TraceEntry>>,
    socket_events: VecDeque<SocketEvent>,
    socket_events_enabled: bool,
    registry: telemetry::Registry,
    /// Wire/stack counters.
    pub stats: Stats,
}

impl World {
    /// Creates an empty world; `seed` makes loss patterns reproducible.
    pub fn new(seed: u64) -> World {
        let registry = telemetry::Registry::new();
        let stats = Stats::register(&registry);
        World {
            now: 0,
            next_event_seq: 0,
            next_iss: 1,
            events: BinaryHeap::new(),
            hosts: Vec::new(),
            links: Vec::new(),
            socks: Vec::new(),
            udps: Vec::new(),
            seed,
            trace: None,
            socket_events: VecDeque::new(),
            socket_events_enabled: false,
            registry,
            stats,
        }
    }

    /// The world's telemetry registry. The simulator registers its own
    /// `net.*` counters here; layers built on the world (the serving
    /// loop, load generators) register theirs in the same registry so
    /// one snapshot covers the whole stack.
    pub fn telemetry(&self) -> &telemetry::Registry {
        &self.registry
    }

    /// Turns on readiness-event recording. Off by default so worlds with
    /// no event-driven consumer pay nothing and leak nothing.
    pub fn enable_socket_events(&mut self) {
        self.socket_events_enabled = true;
    }

    /// Drains every readiness event recorded since the last drain, in the
    /// order the transitions happened.
    pub fn take_socket_events(&mut self) -> Vec<SocketEvent> {
        self.socket_events.drain(..).collect()
    }

    /// Whether any readiness event is waiting to be drained.
    pub fn has_socket_events(&self) -> bool {
        !self.socket_events.is_empty()
    }

    fn push_event(&mut self, event: SocketEvent) {
        if self.socket_events_enabled {
            self.socket_events.push_back(event);
        }
    }

    /// Starts recording every transmitted packet (tcpdump-style).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The trace recorded so far (empty if tracing was never enabled).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Clears the recorded trace, keeping tracing enabled.
    pub fn clear_trace(&mut self) {
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }

    fn record_trace(&mut self, packet: &Packet, dropped: bool) {
        let time_us = self.now;
        if let Some(t) = &mut self.trace {
            t.push(TraceEntry {
                time_us,
                src: packet.src,
                dst: packet.dst,
                summary: summarize(&packet.body),
                dropped,
            });
        }
    }

    /// Current virtual time in microseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Adds a host with the given address.
    pub fn add_host(&mut self, name: &str, ip: Ipv4) -> HostId {
        let id = HostId(self.hosts.len());
        self.hosts.push(Host {
            ip,
            name: name.to_string(),
            icmp_inbox: VecDeque::new(),
            next_ephemeral: 49152,
        });
        id
    }

    /// The address of a host.
    pub fn host_ip(&self, host: HostId) -> Ipv4 {
        self.hosts[host.0].ip
    }

    /// The name of a host.
    pub fn host_name(&self, host: HostId) -> &str {
        &self.hosts[host.0].name
    }

    /// Connects two hosts with a bidirectional link. The returned
    /// [`LinkId`] addresses the link for fault scripting
    /// ([`World::set_drop_rate`], [`World::set_corruption`]).
    pub fn link(&mut self, a: HostId, b: HostId, params: LinkParams) -> LinkId {
        let id = self.links.len();
        let rng = StdRng::seed_from_u64(self.seed ^ (id as u64) << 17);
        // The fault stream is keyed off the same (seed, link id) pair
        // but offset by a golden-ratio constant: reproducible
        // run-to-run, yet never aliasing the drop stream.
        let fault_rng =
            StdRng::seed_from_u64(self.seed ^ ((id as u64) << 17) ^ 0x9E37_79B9_7F4A_7C15);
        self.links.push(Link {
            a,
            b,
            params,
            busy_until: 0,
            rng,
            fault_rng,
            corrupt: None,
        });
        LinkId(id)
    }

    /// The link joining hosts `a` and `b` (either orientation), if one
    /// exists.
    pub fn link_between(&self, a: HostId, b: HostId) -> Option<LinkId> {
        self.links
            .iter()
            .position(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
            .map(LinkId)
    }

    /// Rewrites a link's drop rate in place — the mid-session flap the
    /// static `LinkParams::with_drop_rate` cannot express. Latency and
    /// bandwidth are untouched; the link's drop RNG stream continues
    /// where it was, so a flap-and-restore replays byte-identically
    /// for a given world seed.
    pub fn set_drop_rate(&mut self, link: LinkId, rate: f64) {
        self.links[link.0].params.drop_rate = rate;
    }

    /// A link's current drop rate.
    #[must_use]
    pub fn drop_rate(&self, link: LinkId) -> f64 {
        self.links[link.0].params.drop_rate
    }

    /// Arms (or with `None` disarms) frame corruption on a link. While
    /// armed, every matching in-flight TCP payload consults the link's
    /// dedicated fault RNG and may have one byte flipped per
    /// [`Corruption`]; corrupted frames still deliver and are ACKed —
    /// the damage is the kind a TCP checksum misses, so only the
    /// application layer can catch it.
    pub fn set_corruption(&mut self, link: LinkId, spec: Option<Corruption>) {
        self.links[link.0].corrupt = spec;
    }

    fn schedule(&mut self, time: u64, event: Event) {
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        self.events.push(Reverse(Scheduled { time, seq, event }));
    }

    /// Virtual time of the earliest scheduled event, if any — the soonest
    /// moment at which any socket or wire state can change on its own.
    /// Callers that own the clock (the board's idle scheduler) use this
    /// to fast-forward: advancing in one `run_for` to (or before) this
    /// time is indistinguishable from advancing microsecond by
    /// microsecond.
    pub fn next_event_time(&self) -> Option<u64> {
        self.events.peek().map(|Reverse(s)| s.time)
    }

    /// Processes the next event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(sch)) = self.events.pop() else {
            return false;
        };
        debug_assert!(sch.time >= self.now, "time went backwards");
        self.now = sch.time;
        match sch.event {
            Event::Deliver { host, packet } => self.deliver(host, packet),
            Event::Retransmit { sock, snapshot } => self.retransmit(sock, snapshot),
            Event::TimeWaitExpire { sock } => {
                if let Some(s) = self.sock_mut_opt(sock) {
                    if s.state == TcpState::TimeWait {
                        s.state = TcpState::Closed;
                    }
                }
            }
        }
        true
    }

    /// Runs until virtual time reaches `now + us` (or the queue drains).
    pub fn run_for(&mut self, us: u64) {
        let deadline = self.now + us;
        while let Some(Reverse(head)) = self.events.peek() {
            if head.time > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Steps until `pred` holds or the event queue drains or `max_steps`
    /// elapse. Returns whether the predicate held.
    pub fn run_until(&mut self, mut pred: impl FnMut(&World) -> bool, max_steps: usize) -> bool {
        for _ in 0..max_steps {
            if pred(self) {
                return true;
            }
            if !self.step() {
                return pred(self);
            }
        }
        pred(self)
    }

    // ---- wire --------------------------------------------------------

    fn transmit(&mut self, src_host: HostId, packet: Packet) {
        // Loopback.
        if packet.dst.ip == self.hosts[src_host.0].ip {
            self.record_trace(&packet, false);
            self.schedule(
                self.now + 1,
                Event::Deliver {
                    host: src_host,
                    packet,
                },
            );
            return;
        }
        let dst_ip = packet.dst.ip;
        let link_idx = self.links.iter().position(|l| {
            (l.a == src_host && self.hosts[l.b.0].ip == dst_ip)
                || (l.b == src_host && self.hosts[l.a.0].ip == dst_ip)
        });
        let Some(li) = link_idx else {
            self.stats.unroutable.inc();
            return;
        };
        let dst_host = {
            let l = &self.links[li];
            if l.a == src_host {
                l.b
            } else {
                l.a
            }
        };
        let wire_len = packet.wire_len() as u64;
        let l = &mut self.links[li];
        let start = l.busy_until.max(self.now);
        // serialization delay: bits / bps, in µs
        let tx_us = (wire_len * 8 * 1_000_000).div_ceil(l.params.bandwidth_bps);
        l.busy_until = start + tx_us;
        let arrival = l.busy_until + l.params.latency_us;
        let dropped = l.params.drop_rate > 0.0 && l.rng.gen::<f64>() < l.params.drop_rate;
        let mut packet = packet;
        let mut corrupted = false;
        if !dropped {
            // Scripted frame corruption: damage the in-flight copy only
            // (a retransmission re-reads the sender's clean buffer), and
            // only TCP payload bytes — the transport machinery keeps
            // working, the application stream carries the flip.
            if let (Some(spec), Transport::Tcp(ref mut seg)) = (&l.corrupt, &mut packet.body) {
                if spec.matches(&seg.payload) && l.fault_rng.gen::<f64>() < spec.prob {
                    spec.apply(&mut seg.payload);
                    corrupted = true;
                }
            }
        }
        self.record_trace(&packet, dropped);
        if dropped {
            self.stats.dropped.inc();
            return;
        }
        if corrupted {
            self.stats.corrupted.inc();
        }
        self.schedule(
            arrival,
            Event::Deliver {
                host: dst_host,
                packet,
            },
        );
    }

    fn deliver(&mut self, host: HostId, packet: Packet) {
        self.stats.delivered.inc();
        match packet.body {
            Transport::Tcp(ref _seg) => self.handle_tcp(host, packet),
            Transport::Udp(UdpDatagram { payload }) => {
                if let Some(u) = self
                    .udps
                    .iter_mut()
                    .flatten()
                    .find(|u| u.host == host && u.port == packet.dst.port)
                {
                    u.inbox.push_back((packet.src, payload));
                }
            }
            Transport::Icmp(echo) => {
                if echo.request {
                    let reply = Packet {
                        src: packet.dst,
                        dst: packet.src,
                        body: Transport::Icmp(IcmpEcho {
                            request: false,
                            ..echo
                        }),
                    };
                    self.transmit(host, reply);
                } else {
                    self.hosts[host.0]
                        .icmp_inbox
                        .push_back((packet.src.ip, echo));
                }
            }
        }
    }

    // ---- TCP ---------------------------------------------------------

    fn sock(&self, id: SocketId) -> &TcpSocket {
        self.socks[id.0].as_ref().expect("live socket")
    }

    fn sock_mut(&mut self, id: SocketId) -> &mut TcpSocket {
        self.socks[id.0].as_mut().expect("live socket")
    }

    fn sock_mut_opt(&mut self, id: SocketId) -> Option<&mut TcpSocket> {
        self.socks.get_mut(id.0).and_then(Option::as_mut)
    }

    fn alloc_sock(&mut self, sock: TcpSocket) -> SocketId {
        let id = SocketId(self.socks.len());
        self.socks.push(Some(sock));
        id
    }

    fn next_iss(&mut self) -> u32 {
        let iss = self.next_iss;
        self.next_iss = self.next_iss.wrapping_add(64_400);
        iss
    }

    /// Passive open: listen on `port`.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if another listener holds the port.
    pub fn tcp_listen(
        &mut self,
        host: HostId,
        port: u16,
        backlog: usize,
    ) -> Result<SocketId, NetError> {
        let in_use = self
            .socks
            .iter()
            .flatten()
            .any(|s| s.host == host && s.local.port == port && s.state == TcpState::Listen);
        if in_use {
            return Err(NetError::AddrInUse(port));
        }
        let ip = self.hosts[host.0].ip;
        let mut s = TcpSocket::new(host, Endpoint::new(ip, port));
        s.state = TcpState::Listen;
        s.backlog_limit = backlog.max(1);
        Ok(self.alloc_sock(s))
    }

    /// Active open toward `remote`.
    pub fn tcp_connect(&mut self, host: HostId, remote: Endpoint) -> SocketId {
        let ip = self.hosts[host.0].ip;
        let port = self.hosts[host.0].next_ephemeral;
        self.hosts[host.0].next_ephemeral =
            self.hosts[host.0].next_ephemeral.wrapping_add(1).max(49152);
        let iss = self.next_iss();
        let mut s = TcpSocket::new(host, Endpoint::new(ip, port));
        s.remote = Some(remote);
        s.state = TcpState::SynSent;
        s.iss = iss;
        s.snd_una = iss;
        s.snd_nxt = iss.wrapping_add(1);
        let id = self.alloc_sock(s);
        self.emit(id, iss, TcpFlags::SYN, Vec::new());
        self.arm_retransmit(id);
        id
    }

    /// Pops one established connection off a listener's backlog.
    pub fn tcp_accept(&mut self, listener: SocketId) -> Option<SocketId> {
        self.sock_mut_opt(listener)?.backlog.pop_front()
    }

    /// Number of established connections waiting in a listener's backlog.
    pub fn tcp_pending(&self, listener: SocketId) -> usize {
        self.socks[listener.0]
            .as_ref()
            .map_or(0, |s| s.backlog.len())
    }

    /// Connection state of a socket.
    pub fn tcp_state(&self, id: SocketId) -> TcpState {
        self.socks[id.0]
            .as_ref()
            .map_or(TcpState::Closed, |s| s.state)
    }

    /// Whether the three-way handshake has completed.
    pub fn tcp_established(&self, id: SocketId) -> bool {
        matches!(
            self.tcp_state(id),
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2 | TcpState::CloseWait
        )
    }

    /// Remote endpoint once the connection is synchronised.
    pub fn tcp_peer(&self, id: SocketId) -> Option<Endpoint> {
        self.socks[id.0].as_ref().and_then(|s| s.remote)
    }

    /// Queues application data; returns how many bytes were accepted
    /// (bounded by the send buffer).
    ///
    /// # Errors
    ///
    /// [`NetError::BadState`] if the connection cannot carry data,
    /// [`NetError::ConnectionReset`] after an RST.
    pub fn tcp_send(&mut self, id: SocketId, data: &[u8]) -> Result<usize, NetError> {
        let s = self.sock_mut_opt(id).ok_or(NetError::BadSocket)?;
        if s.reset {
            return Err(NetError::ConnectionReset);
        }
        if !s.state.can_send() {
            return Err(NetError::BadState(s.state));
        }
        if s.fin_queued {
            return Err(NetError::BadState(s.state));
        }
        let room = SEND_BUFFER.saturating_sub(s.send_buf.len());
        let n = room.min(data.len());
        s.send_buf.extend(&data[..n]);
        self.try_transmit(id);
        Ok(n)
    }

    /// Non-blocking read into `buf`.
    pub fn tcp_recv(&mut self, id: SocketId, buf: &mut [u8]) -> Recv {
        let Some(s) = self.sock_mut_opt(id) else {
            return Recv::Reset;
        };
        if s.reset {
            return Recv::Reset;
        }
        if s.recv_buf.is_empty() {
            if s.peer_fin {
                return Recv::Closed;
            }
            return Recv::WouldBlock;
        }
        let n = buf.len().min(s.recv_buf.len());
        let (a, b) = s.recv_buf.as_slices();
        if n <= a.len() {
            buf[..n].copy_from_slice(&a[..n]);
        } else {
            buf[..a.len()].copy_from_slice(a);
            buf[a.len()..n].copy_from_slice(&b[..n - a.len()]);
        }
        s.recv_buf.drain(..n);
        // Draining the buffer reopens the receive window; advertise it so
        // a flow-controlled sender can resume.
        let update = s.remote.is_some()
            && matches!(
                s.state,
                TcpState::Established
                    | TcpState::FinWait1
                    | TcpState::FinWait2
                    | TcpState::CloseWait
            );
        if update {
            let seq = s.snd_nxt;
            self.emit(id, seq, TcpFlags::ACK, Vec::new());
        }
        Recv::Data(n)
    }

    /// Bytes readable right now.
    pub fn tcp_available(&self, id: SocketId) -> usize {
        self.socks[id.0].as_ref().map_or(0, TcpSocket::available)
    }

    /// Bytes not yet acknowledged by the peer (0 once everything sent has
    /// arrived).
    pub fn tcp_unacked(&self, id: SocketId) -> usize {
        self.socks[id.0].as_ref().map_or(0, |s| s.send_buf.len())
    }

    /// Whether the peer will send no more data: its FIN has been
    /// sequenced, the connection was reset, or the socket is gone.
    pub fn tcp_peer_closed(&self, id: SocketId) -> bool {
        self.socks[id.0]
            .as_ref()
            .is_none_or(|s| s.peer_fin || s.reset)
    }

    /// Whether the connection was reset by the peer.
    pub fn tcp_reset(&self, id: SocketId) -> bool {
        self.socks[id.0].as_ref().is_some_and(|s| s.reset)
    }

    /// Send-buffer bytes `tcp_send` would accept right now (0 when the
    /// connection cannot carry data or a close has been queued).
    pub fn tcp_send_room(&self, id: SocketId) -> usize {
        self.socks[id.0].as_ref().map_or(0, |s| {
            if s.reset || !s.state.can_send() || s.fin_queued {
                0
            } else {
                SEND_BUFFER.saturating_sub(s.send_buf.len())
            }
        })
    }

    /// Orderly close: sends FIN after any buffered data.
    ///
    /// # Errors
    ///
    /// [`NetError::BadSocket`] for a dead handle; closing twice is a
    /// no-op.
    pub fn tcp_close(&mut self, id: SocketId) -> Result<(), NetError> {
        let s = self.sock_mut_opt(id).ok_or(NetError::BadSocket)?;
        match s.state {
            TcpState::Listen | TcpState::SynSent | TcpState::Closed => {
                s.state = TcpState::Closed;
                return Ok(());
            }
            _ => {}
        }
        if s.fin_queued {
            return Ok(());
        }
        s.fin_queued = true;
        self.try_transmit(id);
        Ok(())
    }

    /// Hard reset: sends RST and abandons the socket.
    pub fn tcp_abort(&mut self, id: SocketId) {
        let Some(s) = self.sock_mut_opt(id) else {
            return;
        };
        if let Some(remote) = s.remote {
            let seg = TcpSegment {
                seq: s.snd_nxt,
                ack: s.rcv_nxt,
                flags: TcpFlags::RST,
                window: 0,
                payload: Vec::new(),
            };
            let pkt = Packet {
                src: s.local,
                dst: remote,
                body: Transport::Tcp(seg),
            };
            let host = s.host;
            s.state = TcpState::Closed;
            s.reset = true;
            self.transmit(host, pkt);
        } else {
            s.state = TcpState::Closed;
        }
    }

    fn emit(&mut self, id: SocketId, seq: u32, flags: TcpFlags, payload: Vec<u8>) {
        let s = self.sock(id);
        let Some(remote) = s.remote else { return };
        let seg = TcpSegment {
            seq,
            ack: s.rcv_nxt,
            flags,
            window: s.advertised_window(),
            payload,
        };
        let pkt = Packet {
            src: s.local,
            dst: remote,
            body: Transport::Tcp(seg),
        };
        let host = s.host;
        self.transmit(host, pkt);
    }

    fn arm_retransmit(&mut self, id: SocketId) {
        let (snapshot, rto) = {
            let s = self.sock_mut(id);
            if s.timer_pending {
                return;
            }
            s.timer_pending = true;
            (s.snd_una, s.rto_us)
        };
        let at = self.now + rto;
        self.schedule(at, Event::Retransmit { sock: id, snapshot });
    }

    fn retransmit(&mut self, id: SocketId, snapshot: u32) {
        {
            let Some(s) = self.sock_mut_opt(id) else {
                return;
            };
            s.timer_pending = false;
            if s.reset || s.snd_una == s.snd_nxt {
                return; // nothing outstanding; timer dies until re-armed
            }
            match s.state {
                TcpState::Closed | TcpState::Listen | TcpState::TimeWait => return,
                _ => {}
            }
            if s.snd_una != snapshot {
                // Progress since arming: no retransmission, but keep the
                // timer alive for the still-outstanding tail.
                self.arm_retransmit(id);
                return;
            }
            let s = self.sock_mut(id);
            s.rto_us = (s.rto_us * 2).min(MAX_RTO_US);
        }
        self.stats.retransmits.inc();
        let state = self.sock(id).state;
        match state {
            TcpState::SynSent => {
                let iss = self.sock(id).iss;
                self.emit(id, iss, TcpFlags::SYN, Vec::new());
            }
            TcpState::SynReceived => {
                let iss = self.sock(id).iss;
                self.emit(id, iss, TcpFlags::SYN_ACK, Vec::new());
            }
            _ => {
                let (seq, chunk, fin_only) = {
                    let s = self.sock(id);
                    let outstanding_data = s
                        .send_buf
                        .len()
                        .min(s.snd_nxt.wrapping_sub(s.snd_una) as usize);
                    if outstanding_data > 0 {
                        let chunk = copy_range(&s.send_buf, 0, outstanding_data.min(MSS));
                        (s.snd_una, chunk, false)
                    } else {
                        (s.snd_una, Vec::new(), s.fin_seq == Some(s.snd_una))
                    }
                };
                if fin_only {
                    self.emit(id, seq, TcpFlags::FIN_ACK, Vec::new());
                } else if !chunk.is_empty() {
                    self.emit(id, seq, TcpFlags::ACK, chunk);
                }
            }
        }
        self.arm_retransmit(id);
    }

    fn try_transmit(&mut self, id: SocketId) {
        loop {
            let (seq, chunk) = {
                let s = self.sock(id);
                if !matches!(
                    s.state,
                    TcpState::Established
                        | TcpState::CloseWait
                        | TcpState::FinWait1
                        | TcpState::LastAck
                ) {
                    break;
                }
                let in_flight = s.snd_nxt.wrapping_sub(s.snd_una) as usize;
                let unsent = s.send_buf.len().saturating_sub(in_flight);
                // Persist-probe guarantee: with nothing in flight, always
                // push at least one segment even into a closed window, so
                // a lost window update cannot deadlock the connection.
                let window_room = if in_flight == 0 {
                    usize::from(s.peer_window).max(MSS)
                } else {
                    usize::from(s.peer_window).saturating_sub(in_flight)
                };
                let n = unsent.min(window_room).min(MSS);
                if n == 0 {
                    break;
                }
                (s.snd_nxt, copy_range(&s.send_buf, in_flight, n))
            };
            let n = chunk.len() as u32;
            self.emit(id, seq, TcpFlags::ACK, chunk);
            let s = self.sock_mut(id);
            s.snd_nxt = s.snd_nxt.wrapping_add(n);
            self.arm_retransmit(id);
        }

        // FIN once everything queued has been transmitted.
        let send_fin = {
            let s = self.sock(id);
            s.fin_queued
                && s.fin_seq.is_none()
                && s.state.can_send()
                && s.snd_nxt.wrapping_sub(s.snd_una) as usize == s.send_buf.len()
        };
        if send_fin {
            let (seq, new_state) = {
                let s = self.sock_mut(id);
                let seq = s.snd_nxt;
                s.fin_seq = Some(seq);
                s.snd_nxt = s.snd_nxt.wrapping_add(1);
                s.state = match s.state {
                    TcpState::Established => TcpState::FinWait1,
                    TcpState::CloseWait => TcpState::LastAck,
                    other => other,
                };
                (seq, s.state)
            };
            let _ = new_state;
            self.emit(id, seq, TcpFlags::FIN_ACK, Vec::new());
            self.arm_retransmit(id);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn handle_tcp(&mut self, host: HostId, packet: Packet) {
        let Transport::Tcp(seg) = &packet.body else {
            unreachable!("handle_tcp only sees TCP");
        };
        let seg = seg.clone();

        // Exact four-tuple match first.
        let exact = self.socks.iter().position(|s| {
            s.as_ref().is_some_and(|s| {
                s.host == host
                    && s.local.port == packet.dst.port
                    && s.remote == Some(packet.src)
                    && s.state != TcpState::Closed
            })
        });
        let listener = || {
            self.socks.iter().position(|s| {
                s.as_ref().is_some_and(|s| {
                    s.host == host && s.local.port == packet.dst.port && s.state == TcpState::Listen
                })
            })
        };

        let Some(idx) = exact.or_else(listener) else {
            // No socket: answer everything but RST with RST.
            if !seg.flags.rst {
                let rst = Packet {
                    src: packet.dst,
                    dst: packet.src,
                    body: Transport::Tcp(TcpSegment {
                        seq: seg.ack,
                        ack: seg.seq.wrapping_add(seg.seq_len()),
                        flags: TcpFlags::RST,
                        window: 0,
                        payload: Vec::new(),
                    }),
                };
                self.transmit(host, rst);
            }
            return;
        };
        let id = SocketId(idx);

        if seg.flags.rst {
            let s = self.sock_mut(id);
            if s.state != TcpState::Listen {
                s.reset = true;
                s.state = TcpState::Closed;
                self.push_event(SocketEvent::PeerClosed(id));
            }
            return;
        }

        match self.sock(id).state {
            TcpState::Listen => {
                if !seg.flags.syn {
                    return;
                }
                let (limit, len) = {
                    let s = self.sock(id);
                    (s.backlog_limit, s.backlog.len())
                };
                let half_open = self
                    .socks
                    .iter()
                    .flatten()
                    .filter(|ch| ch.parent == Some(id) && ch.state == TcpState::SynReceived)
                    .count();
                if len + half_open >= limit {
                    return; // silently drop: client will retransmit the SYN
                }
                let iss = self.next_iss();
                let local = Endpoint::new(self.hosts[host.0].ip, packet.dst.port);
                let mut child = TcpSocket::new(host, local);
                child.remote = Some(packet.src);
                child.state = TcpState::SynReceived;
                child.iss = iss;
                child.snd_una = iss;
                child.snd_nxt = iss.wrapping_add(1);
                child.rcv_nxt = seg.seq.wrapping_add(1);
                child.peer_window = seg.window;
                child.parent = Some(id);
                let child_id = self.alloc_sock(child);
                self.emit(child_id, iss, TcpFlags::SYN_ACK, Vec::new());
                self.arm_retransmit(child_id);
            }
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.sock(id).snd_nxt {
                    let s = self.sock_mut(id);
                    s.snd_una = seg.ack;
                    s.rcv_nxt = seg.seq.wrapping_add(1);
                    s.peer_window = seg.window;
                    s.state = TcpState::Established;
                    s.rto_us = INITIAL_RTO_US;
                    let rcv = s.rcv_nxt;
                    let _ = rcv;
                    let seq = s.snd_nxt;
                    self.push_event(SocketEvent::Established(id));
                    self.emit(id, seq, TcpFlags::ACK, Vec::new());
                    self.try_transmit(id);
                }
            }
            _ => self.segment_arrives(id, seg),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn segment_arrives(&mut self, id: SocketId, seg: TcpSegment) {
        let mut need_ack = false;

        // --- ACK processing ------------------------------------------
        if seg.flags.ack {
            let (una, nxt) = {
                let s = self.sock(id);
                (s.snd_una, s.snd_nxt)
            };
            if seq_lt(una, seg.ack) && seq_le(seg.ack, nxt) {
                let s = self.sock_mut(id);
                let mut acked = seg.ack.wrapping_sub(s.snd_una) as usize;
                // A FIN occupies one sequence number not present in the
                // data buffer.
                if let Some(f) = s.fin_seq {
                    if seq_lt(f, seg.ack) {
                        acked -= 1;
                    }
                }
                let freed = acked.min(s.send_buf.len());
                s.send_buf.drain(..freed);
                s.snd_una = seg.ack;
                s.rto_us = INITIAL_RTO_US;
                s.peer_window = seg.window;
                if freed > 0 {
                    self.push_event(SocketEvent::WindowOpen(id));
                }

                // Handshake completion for passive opens.
                let s = self.sock_mut(id);
                if s.state == TcpState::SynReceived {
                    s.state = TcpState::Established;
                    let parent = s.parent;
                    self.push_event(SocketEvent::Established(id));
                    if let Some(parent) = parent {
                        if let Some(p) = self.sock_mut_opt(parent) {
                            p.backlog.push_back(id);
                            self.push_event(SocketEvent::AcceptReady(parent));
                        }
                    }
                }

                // FIN acknowledged?
                let s = self.sock_mut(id);
                if let Some(f) = s.fin_seq {
                    if seq_lt(f, seg.ack) {
                        s.state = match s.state {
                            TcpState::FinWait1 => TcpState::FinWait2,
                            TcpState::Closing => TcpState::TimeWait,
                            TcpState::LastAck => TcpState::Closed,
                            other => other,
                        };
                        if s.state == TcpState::TimeWait {
                            let at = self.now + TIME_WAIT_US;
                            self.schedule(at, Event::TimeWaitExpire { sock: id });
                        }
                    }
                }
            } else {
                let s = self.sock_mut(id);
                let was_zero = s.peer_window == 0;
                s.peer_window = seg.window;
                if was_zero && seg.window > 0 {
                    self.push_event(SocketEvent::WindowOpen(id));
                }
            }
        }

        // --- payload processing --------------------------------------
        if !seg.payload.is_empty() {
            let can_receive = matches!(
                self.sock(id).state,
                TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
            );
            if can_receive {
                let s = self.sock_mut(id);
                let was_empty = s.recv_buf.is_empty();
                if seg.seq == s.rcv_nxt {
                    // Receive-window enforcement: accept only the prefix
                    // that fits in the advertised window. The dropped tail
                    // stays unacknowledged; the sender retransmits it after
                    // a read reopens the window (tcp_recv advertises the
                    // update).
                    let room = RECV_WINDOW.saturating_sub(s.recv_buf.len());
                    let take = seg.payload.len().min(room);
                    s.rcv_nxt = s.rcv_nxt.wrapping_add(take as u32);
                    s.recv_buf.extend(&seg.payload[..take]);
                    let mut delivered = take as u64;
                    // Drain any out-of-order segments that now fit.
                    while take == seg.payload.len() {
                        let Some((&q, data)) = s.ooo.first_key_value() else {
                            break;
                        };
                        if q != s.rcv_nxt {
                            if seq_lt(q, s.rcv_nxt) {
                                // stale duplicate
                                s.ooo.pop_first();
                                continue;
                            }
                            break;
                        }
                        if s.recv_buf.len() + data.len() > RECV_WINDOW {
                            break;
                        }
                        let (_, data) = s.ooo.pop_first().expect("checked non-empty");
                        s.rcv_nxt = s.rcv_nxt.wrapping_add(data.len() as u32);
                        delivered += data.len() as u64;
                        s.recv_buf.extend(&data);
                    }
                    self.stats.tcp_bytes_delivered.add(delivered);
                    if was_empty && !self.sock(id).recv_buf.is_empty() {
                        self.push_event(SocketEvent::BytesReady(id));
                    }
                } else if seq_lt(self.sock(id).rcv_nxt, seg.seq) {
                    let s = self.sock_mut(id);
                    s.ooo.entry(seg.seq).or_insert_with(|| seg.payload.clone());
                }
                need_ack = true;
            }
        }

        // --- FIN processing -------------------------------------------
        if seg.flags.fin {
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            let s = self.sock_mut(id);
            if fin_seq == s.rcv_nxt && !s.peer_fin {
                s.rcv_nxt = s.rcv_nxt.wrapping_add(1);
                s.peer_fin = true;
                s.state = match s.state {
                    TcpState::Established => TcpState::CloseWait,
                    TcpState::FinWait1 => TcpState::Closing,
                    TcpState::FinWait2 => TcpState::TimeWait,
                    other => other,
                };
                if s.state == TcpState::TimeWait {
                    let at = self.now + TIME_WAIT_US;
                    self.schedule(at, Event::TimeWaitExpire { sock: id });
                }
                self.push_event(SocketEvent::PeerClosed(id));
                need_ack = true;
            } else if seq_lt(fin_seq, s.rcv_nxt) {
                need_ack = true; // retransmitted FIN: re-ACK
            }
        }

        // A pure duplicate data segment (already received) still deserves
        // an ACK so the sender stops retransmitting; likewise a
        // retransmitted SYN-ACK reaching an established connection (its
        // final handshake ACK was lost).
        if (!seg.payload.is_empty() || seg.flags.syn) && !need_ack {
            need_ack = true;
        }

        // --- replies ---------------------------------------------------
        self.try_transmit(id);
        if need_ack {
            let seq = self.sock(id).snd_nxt;
            // A FIN we already sent occupies snd_nxt-1; bare ACKs use
            // snd_nxt regardless, which peers accept.
            self.emit(id, seq, TcpFlags::ACK, Vec::new());
        }
    }

    // ---- UDP ----------------------------------------------------------

    /// Binds a UDP socket.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if the port is taken on this host.
    pub fn udp_bind(&mut self, host: HostId, port: u16) -> Result<UdpId, NetError> {
        if self
            .udps
            .iter()
            .flatten()
            .any(|u| u.host == host && u.port == port)
        {
            return Err(NetError::AddrInUse(port));
        }
        let id = UdpId(self.udps.len());
        self.udps.push(Some(UdpSock {
            host,
            port,
            inbox: VecDeque::new(),
        }));
        Ok(id)
    }

    /// Sends a datagram.
    pub fn udp_send_to(&mut self, id: UdpId, dst: Endpoint, payload: &[u8]) {
        let Some(u) = self.udps.get(id.0).and_then(Option::as_ref) else {
            return;
        };
        let src = Endpoint::new(self.hosts[u.host.0].ip, u.port);
        let host = u.host;
        let pkt = Packet {
            src,
            dst,
            body: Transport::Udp(UdpDatagram {
                payload: payload.to_vec(),
            }),
        };
        self.transmit(host, pkt);
    }

    /// Receives a pending datagram, if any.
    pub fn udp_recv_from(&mut self, id: UdpId) -> Option<(Endpoint, Vec<u8>)> {
        self.udps.get_mut(id.0)?.as_mut()?.inbox.pop_front()
    }

    // ---- ICMP ---------------------------------------------------------

    /// Sends an ICMP echo request.
    pub fn ping(&mut self, host: HostId, dst: Ipv4, ident: u16, seq: u16) {
        let src = Endpoint::new(self.hosts[host.0].ip, 0);
        let pkt = Packet {
            src,
            dst: Endpoint::new(dst, 0),
            body: Transport::Icmp(IcmpEcho {
                request: true,
                ident,
                seq,
            }),
        };
        self.transmit(host, pkt);
    }

    /// Pops a received echo reply.
    pub fn ping_reply(&mut self, host: HostId) -> Option<(Ipv4, IcmpEcho)> {
        self.hosts[host.0].icmp_inbox.pop_front()
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now_us", &self.now)
            .field("hosts", &self.hosts.len())
            .field("links", &self.links.len())
            .field("sockets", &self.socks.len())
            .field("pending_events", &self.events.len())
            .field("stats", &self.stats)
            .finish()
    }
}
