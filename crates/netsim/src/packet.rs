//! On-the-wire packet representations: TCP segments, UDP datagrams and
//! ICMP echoes, all carried over the simulated IP layer.

use crate::addr::Endpoint;

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronise sequence numbers.
    pub syn: bool,
    /// Acknowledgement field is significant.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// `SYN`.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// `SYN|ACK`.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// `ACK`.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// `FIN|ACK`.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
    };
    /// `RST`.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.ack {
            parts.push("ACK");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        if parts.is_empty() {
            parts.push("-");
        }
        write!(f, "{}", parts.join("|"))
    }
}

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Sequence number of the first payload byte (or of SYN/FIN).
    pub seq: u32,
    /// Next sequence number expected by the sender of this segment.
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Receive window advertisement, in bytes.
    pub window: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// Sequence space consumed by this segment (payload plus SYN/FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }
}

/// A UDP datagram payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// An ICMP echo request or reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpEcho {
    /// True for a request, false for a reply.
    pub request: bool,
    /// Echo identifier.
    pub ident: u16,
    /// Echo sequence number.
    pub seq: u16,
}

/// Transport-layer content of an IP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// An ICMP echo.
    Icmp(IcmpEcho),
}

/// A simulated IP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source endpoint (port 0 for ICMP).
    pub src: Endpoint,
    /// Destination endpoint (port 0 for ICMP).
    pub dst: Endpoint,
    /// Transport payload.
    pub body: Transport,
}

/// Fixed per-packet header overhead charged by the link model, in bytes
/// (Ethernet + IP + TCP headers, roughly).
pub const HEADER_OVERHEAD: usize = 54;

impl Packet {
    /// Wire size of the packet in bytes, for serialization-delay
    /// accounting.
    pub fn wire_len(&self) -> usize {
        HEADER_OVERHEAD
            + match &self.body {
                Transport::Tcp(t) => t.payload.len(),
                Transport::Udp(u) => u.payload.len(),
                Transport::Icmp(_) => 8,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Endpoint, Ipv4};

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut seg = TcpSegment {
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 0,
            payload: vec![],
        };
        assert_eq!(seg.seq_len(), 1);
        seg.flags = TcpFlags::ACK;
        seg.payload = vec![0; 10];
        assert_eq!(seg.seq_len(), 10);
        seg.flags = TcpFlags::FIN_ACK;
        assert_eq!(seg.seq_len(), 11);
    }

    #[test]
    fn wire_len_includes_headers() {
        let p = Packet {
            src: Endpoint::new(Ipv4::new(10, 0, 0, 1), 1000),
            dst: Endpoint::new(Ipv4::new(10, 0, 0, 2), 2000),
            body: Transport::Udp(UdpDatagram {
                payload: vec![0; 100],
            }),
        };
        assert_eq!(p.wire_len(), 154);
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }
}
