//! Link-layer fault primitives: scripted frame corruption.
//!
//! The world already models *loss* (per-link `drop_rate`, decided by a
//! per-link deterministic RNG). This module adds the second hostile
//! wire behaviour the paper's service has to survive: *corruption* —
//! byte flips on in-flight TCP payloads, the storms a failing switch or
//! a noisy 10Base-T segment produces. A [`Corruption`] spec is armed on
//! a link via [`crate::World::set_corruption`] and applied inside the
//! wire model, so neither endpoint's stack is involved: the receiver
//! ACKs the mangled segment like any other (our frames carry no
//! checksum — the corruption model is exactly the class of damage a TCP
//! checksum misses), and it is the *application* layer above (the issl
//! record MAC) that must detect the damage and answer with its
//! deterministic close alert.
//!
//! Determinism: every probability draw comes from a per-link fault RNG
//! seeded from the world seed and the link id — a stream separate from
//! the link's drop RNG, so arming or disarming corruption never shifts
//! the loss pattern, and the same plan replays byte-identically.

/// Identifies one link of a [`crate::World`], as returned by
/// [`crate::World::link`]. Fault scripting (drop-rate flips, corruption
/// storms) addresses links by this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The link's index in creation order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A frame-corruption spec for one link: which TCP payloads to damage,
/// with what probability, and how.
///
/// Only TCP *payload* bytes are touched — flags, sequence numbers and
/// ports stay intact, so the transport machinery keeps working and the
/// damage surfaces exactly where a checksum-evading bit flip would: in
/// the application byte stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Corruption {
    /// Probability a matching frame is corrupted (1.0 = every frame).
    /// The per-link fault RNG is consulted once per matching frame
    /// whether or not the draw hits, so transcripts are invariant to
    /// the probability's value pattern across runs with the same seed.
    pub prob: f64,
    /// XOR mask applied to the chosen payload byte. Must be non-zero to
    /// have any effect.
    pub mask: u8,
    /// Which byte to flip: `Some(k)` flips the byte `k` from the end of
    /// the payload (`Some(1)` = last byte — where a record MAC's final
    /// byte lives); `None` flips the first byte.
    pub from_end: Option<usize>,
    /// Only corrupt frames whose payload starts with this byte — e.g.
    /// `recmap::REC_DATA` to storm data records while letting
    /// handshake records and plaintext sessions through unharmed.
    /// `None` matches every non-empty payload.
    pub first_byte: Option<u8>,
}

impl Corruption {
    /// A storm that flips the last payload byte (a record MAC's final
    /// byte) of every frame whose payload starts with `first_byte`.
    #[must_use]
    pub fn mac_storm(first_byte: u8) -> Corruption {
        Corruption {
            prob: 1.0,
            mask: 0x01,
            from_end: Some(1),
            first_byte: Some(first_byte),
        }
    }

    /// Whether this spec matches `payload` (non-empty and first-byte
    /// filter passes).
    #[must_use]
    pub fn matches(&self, payload: &[u8]) -> bool {
        !payload.is_empty() && self.first_byte.is_none_or(|b| payload[0] == b)
    }

    /// Applies the byte flip to `payload` in place. No-op on an empty
    /// payload or an out-of-range `from_end`.
    pub fn apply(&self, payload: &mut [u8]) {
        if payload.is_empty() {
            return;
        }
        let idx = match self.from_end {
            Some(k) if k >= 1 && k <= payload.len() => payload.len() - k,
            Some(_) => return,
            None => 0,
        };
        payload[idx] ^= self.mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flips_the_addressed_byte() {
        let c = Corruption {
            prob: 1.0,
            mask: 0x80,
            from_end: Some(1),
            first_byte: Some(5),
        };
        let mut p = vec![5, 0, 3, 0xAA];
        assert!(c.matches(&p));
        c.apply(&mut p);
        assert_eq!(p, vec![5, 0, 3, 0x2A]);

        let mut q = vec![4, 0, 3, 0xAA];
        assert!(!c.matches(&q), "first-byte filter");
        let head = Corruption {
            from_end: None,
            ..c.clone()
        };
        head.apply(&mut q);
        assert_eq!(q, vec![0x84, 0, 3, 0xAA]);
    }

    #[test]
    fn out_of_range_from_end_is_a_no_op() {
        let c = Corruption {
            prob: 1.0,
            mask: 0xFF,
            from_end: Some(9),
            first_byte: None,
        };
        let mut p = vec![1, 2];
        c.apply(&mut p);
        assert_eq!(p, vec![1, 2]);
    }
}
