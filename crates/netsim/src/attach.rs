//! Raw host attach point: a shareable handle to one host inside a
//! [`World`].
//!
//! Device models outside this crate (the `rmc2000` NIC) need to *be* a
//! host on the simulated network: accept connections and move bytes — all
//! through one owned handle while the test harness keeps a second handle
//! on the same world for the remote peers. [`SimHost`] packages an
//! `Rc<RefCell<World>>` plus a [`HostId`] behind a borrow-free API so a
//! peripheral can hold it without naming the interior mutability.
//!
//! Everything here forwards to the [`World`] socket API; determinism is
//! inherited ([`World::run_for`] is granularity-independent, so time may
//! advance in whatever increments the clock owner produces).
//!
//! # Time ownership
//!
//! A `SimHost` *can* advance the shared clock ([`SimHost::advance`]), but
//! whether it *may* is a contract decided by whoever assembles the world:
//! exactly one party owns time. A solo board following the legacy
//! one-board contract drives the clock through its NIC; in a multi-board
//! fleet the `rmc2000::fleet` scheduler owns the clock exclusively and
//! every attached host is a passive participant that only reads `now` and
//! moves bytes (see the fleet module's docs for why the NIC-driven
//! contract cannot scale past one board).

use std::cell::RefCell;
use std::rc::Rc;

use crate::addr::{Endpoint, Ipv4};
use crate::tcp::{HostId, SocketId};
use crate::world::{NetError, Recv, World};

/// A shareable handle to one host in a shared [`World`].
#[derive(Clone)]
pub struct SimHost {
    world: Rc<RefCell<World>>,
    host: HostId,
}

impl SimHost {
    /// Wraps an existing host of `world`.
    pub fn new(world: Rc<RefCell<World>>, host: HostId) -> SimHost {
        SimHost { world, host }
    }

    /// Adds a new host to `world` and returns its handle.
    pub fn attach(world: &Rc<RefCell<World>>, name: &str, ip: Ipv4) -> SimHost {
        let host = world.borrow_mut().add_host(name, ip);
        SimHost {
            world: Rc::clone(world),
            host,
        }
    }

    /// The underlying world (shared).
    pub fn world(&self) -> Rc<RefCell<World>> {
        Rc::clone(&self.world)
    }

    /// The host this handle speaks for.
    pub fn id(&self) -> HostId {
        self.host
    }

    /// This host's IP address.
    pub fn ip(&self) -> Ipv4 {
        self.world.borrow().host_ip(self.host)
    }

    /// Current virtual time in microseconds.
    pub fn now(&self) -> u64 {
        self.world.borrow().now()
    }

    /// Advances virtual time by `us` microseconds.
    pub fn advance(&mut self, us: u64) {
        self.world.borrow_mut().run_for(us);
    }

    /// Registers (or fetches) a counter in the world's telemetry registry.
    pub fn counter(&self, name: &str) -> telemetry::Counter {
        self.world.borrow().telemetry().counter(name, &[])
    }

    /// Virtual time of the world's earliest scheduled event (see
    /// [`World::next_event_time`]).
    pub fn next_event_us(&self) -> Option<u64> {
        self.world.borrow().next_event_time()
    }

    /// Connections waiting to be accepted on `listener`.
    pub fn pending(&self, listener: SocketId) -> usize {
        self.world.borrow().tcp_pending(listener)
    }

    /// Passive open on `port`.
    ///
    /// # Errors
    ///
    /// [`NetError::AddrInUse`] if another listener holds the port.
    pub fn listen(&mut self, port: u16, backlog: usize) -> Result<SocketId, NetError> {
        self.world.borrow_mut().tcp_listen(self.host, port, backlog)
    }

    /// Accepts one pending connection on `listener`, if any.
    pub fn accept(&mut self, listener: SocketId) -> Option<SocketId> {
        self.world.borrow_mut().tcp_accept(listener)
    }

    /// Active open toward `remote`.
    pub fn connect(&mut self, remote: Endpoint) -> SocketId {
        self.world.borrow_mut().tcp_connect(self.host, remote)
    }

    /// Whether `id` has completed its handshake.
    pub fn established(&self, id: SocketId) -> bool {
        self.world.borrow().tcp_established(id)
    }

    /// Whether the peer has closed its direction of `id`.
    pub fn peer_closed(&self, id: SocketId) -> bool {
        self.world.borrow().tcp_peer_closed(id)
    }

    /// Bytes buffered for reading on `id`.
    pub fn available(&self, id: SocketId) -> usize {
        self.world.borrow().tcp_available(id)
    }

    /// Sends as much of `data` as the send buffer accepts; returns the
    /// number of bytes taken (0 on any socket error).
    pub fn send(&mut self, id: SocketId, data: &[u8]) -> usize {
        self.world.borrow_mut().tcp_send(id, data).unwrap_or(0)
    }

    /// Receives into `buf`.
    pub fn recv(&mut self, id: SocketId, buf: &mut [u8]) -> Recv {
        self.world.borrow_mut().tcp_recv(id, buf)
    }

    /// Room left in `id`'s send buffer, in bytes.
    pub fn send_room(&self, id: SocketId) -> usize {
        self.world.borrow().tcp_send_room(id)
    }

    /// Orderly close of `id` (errors ignored — the handle may already be
    /// closed).
    pub fn close(&mut self, id: SocketId) {
        let _ = self.world.borrow_mut().tcp_close(id);
    }

    /// Abortive close of `id` (RST; nothing further is delivered).
    pub fn abort(&mut self, id: SocketId) {
        self.world.borrow_mut().tcp_abort(id);
    }
}

impl std::fmt::Debug for SimHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimHost")
            .field("host", &self.host)
            .field("now_us", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::LinkParams;

    #[test]
    fn two_handles_share_one_world() {
        let world = Rc::new(RefCell::new(World::new(7)));
        let mut a = SimHost::attach(&world, "a", Ipv4::new(10, 0, 0, 1));
        let mut b = SimHost::attach(&world, "b", Ipv4::new(10, 0, 0, 2));
        world
            .borrow_mut()
            .link(a.id(), b.id(), LinkParams::lan_100m());

        let l = a.listen(7, 4).expect("listen");
        let c = b.connect(Endpoint::new(a.ip(), 7));
        let mut server = None;
        for _ in 0..100 {
            a.advance(1_000);
            if server.is_none() {
                server = a.accept(l);
            }
            if server.is_some() && b.established(c) {
                break;
            }
        }
        let server = server.expect("accepted");
        assert!(b.established(c));

        assert_eq!(b.send(c, b"ping"), 4);
        for _ in 0..100 {
            b.advance(1_000);
            if a.available(server) >= 4 {
                break;
            }
        }
        let mut buf = [0u8; 8];
        assert_eq!(a.recv(server, &mut buf), Recv::Data(4));
        assert_eq!(&buf[..4], b"ping");
    }
}
