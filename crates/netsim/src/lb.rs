//! A simulated TCP load balancer: one world host that accepts client
//! connections on a front port and proxies each to one of a set of
//! backend listeners.
//!
//! The balancer is a *passive* world participant — it never advances
//! virtual time. Whoever owns the clock (a test driver, the
//! `rmc2000::fleet` scheduler) calls [`LoadBalancer::pump`] between time
//! slices; a pump accepts whatever is pending, routes new sessions by
//! [`LbPolicy`], shuttles buffered bytes both ways, propagates FINs, and
//! fails over connections whose backend never answers (a dead link, a
//! full accept queue that never drains). Every decision is a
//! deterministic function of world state, so runs are byte-identical for
//! identical workloads.

use telemetry::Counter;

use crate::addr::{Endpoint, Ipv4};
use crate::attach::SimHost;
use crate::tcp::SocketId;
use crate::world::{Recv, World};
use std::cell::RefCell;
use std::rc::Rc;

/// How a new client session picks its backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbPolicy {
    /// Cycle through the healthy backends in order.
    RoundRobin,
    /// Pick the healthy backend with the fewest sessions in flight
    /// (ties broken by index).
    LeastOpen,
}

/// Per-backend bookkeeping, exposed to tests via
/// [`LoadBalancer::backend_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendStats {
    /// Where this backend listens.
    pub addr: Endpoint,
    /// Sessions currently routed here (connecting or established).
    pub inflight: usize,
    /// Most sessions ever in flight here at once.
    pub peak_inflight: usize,
    /// Sessions that finished here.
    pub served: u64,
    /// Connect attempts that timed out or were reset.
    pub failures: u64,
    /// Established sessions torn down for making no progress past the
    /// stall timeout ([`LoadBalancer::set_stall_timeout_us`]).
    pub stalls: u64,
    /// Times a dead-marked backend came back: a probe connect
    /// established and routing resumed.
    pub revivals: u64,
    /// Marked unhealthy: skipped by routing while any healthy backend
    /// remains (until a [`LoadBalancer::set_retry_after_us`] probe
    /// succeeds).
    pub dead: bool,
}

struct Backend {
    addr: Endpoint,
    inflight: usize,
    peak_inflight: usize,
    served: u64,
    failures: u64,
    stalls: u64,
    revivals: u64,
    dead: bool,
    /// When the backend was (last) marked dead, or the last probe was
    /// dispatched — the reference point for the retry clock.
    dead_since_us: u64,
}

impl Backend {
    fn route_to(&mut self) {
        self.inflight += 1;
        self.peak_inflight = self.peak_inflight.max(self.inflight);
    }
}

struct Session {
    client: SocketId,
    upstream: SocketId,
    backend: usize,
    /// When the current upstream connect attempt started.
    connect_started_us: u64,
    /// Backends already tried (and failed) for this session.
    tried: Vec<usize>,
    /// Bytes read from the client, not yet accepted by the upstream
    /// send buffer.
    up: Vec<u8>,
    /// Bytes read from the upstream, not yet accepted by the client
    /// send buffer.
    down: Vec<u8>,
    /// FIN propagated to the upstream (client side drained + closed).
    up_closed: bool,
    /// FIN propagated to the client (upstream side drained + closed).
    down_closed: bool,
    /// The upstream connect has been observed established (used to
    /// detect the establishment edge for revival bookkeeping).
    up_established: bool,
    /// Last virtual time any byte or FIN moved through this session —
    /// the stall-timeout reference point.
    last_progress_us: u64,
}

/// The `lb.*` counters the balancer reports.
#[derive(Debug, Clone)]
pub struct LbCounters {
    /// Client connections accepted on the front port.
    pub accepts: Counter,
    /// Bytes shuttled client → backend.
    pub up_bytes: Counter,
    /// Bytes shuttled backend → client.
    pub down_bytes: Counter,
    /// Upstream connect attempts that failed over to another backend.
    pub failovers: Counter,
    /// Sessions torn down with no backend left to try.
    pub unrouted: Counter,
    /// Sessions completed (both directions closed).
    pub closed: Counter,
    /// Backends transitioned healthy → dead.
    pub dead_marks: Counter,
    /// Dead backends brought back by a successful probe connect.
    pub revivals: Counter,
    /// Established sessions torn down by the stall timeout.
    pub stalls: Counter,
}

impl LbCounters {
    fn register(registry: &telemetry::Registry) -> LbCounters {
        LbCounters {
            accepts: registry.counter("lb.accepts", &[]),
            up_bytes: registry.counter("lb.up_bytes", &[]),
            down_bytes: registry.counter("lb.down_bytes", &[]),
            failovers: registry.counter("lb.failovers", &[]),
            unrouted: registry.counter("lb.unrouted", &[]),
            closed: registry.counter("lb.closed", &[]),
            dead_marks: registry.counter("lb.dead_marks", &[]),
            revivals: registry.counter("lb.revivals", &[]),
            stalls: registry.counter("lb.stalls", &[]),
        }
    }
}

/// Virtual µs an upstream connect may sit unestablished before the
/// balancer declares the backend dead and fails the session over.
pub const CONNECT_TIMEOUT_US: u64 = 5_000;

/// A proxying TCP load balancer attached to one world host.
pub struct LoadBalancer {
    host: SimHost,
    listener: SocketId,
    policy: LbPolicy,
    backends: Vec<Backend>,
    sessions: Vec<Session>,
    /// Accepted clients waiting for a backend with handle capacity
    /// (only with [`LoadBalancer::set_max_inflight`]), in accept order.
    waiting: std::collections::VecDeque<SocketId>,
    /// Per-backend session cap for new routings; a backend at the cap is
    /// held off until one of its sessions finishes.
    max_inflight: Option<usize>,
    /// Virtual µs after dead-marking before a dead backend is offered
    /// one probe connection again; `None` (the default) keeps the
    /// legacy behaviour: dead stays dead for the run.
    retry_after_us: Option<u64>,
    /// Virtual µs an established session may sit with no bytes moving
    /// before it is torn down and its backend dead-marked; `None` (the
    /// default) never stalls a session out.
    stall_timeout_us: Option<u64>,
    rr_next: usize,
    counters: LbCounters,
    /// Per-backend `lb.backend.served{backend="i"}` counters.
    backend_served: Vec<Counter>,
    /// Per-backend `lb.backend.failures{backend="i"}` counters.
    backend_failures: Vec<Counter>,
    /// Per-backend `lb.backend.revivals{backend="i"}` counters.
    backend_revivals: Vec<Counter>,
    /// Virtual µs each failed upstream connect sat before the balancer
    /// gave up on it (the failover-latency book), in failure order.
    failover_latency_us: Vec<u64>,
}

impl LoadBalancer {
    /// Attaches a new balancer host to `world`, listening on `port`.
    ///
    /// # Panics
    ///
    /// If the front port cannot be bound (already in use on this host).
    pub fn attach(
        world: &Rc<RefCell<World>>,
        name: &str,
        ip: Ipv4,
        port: u16,
        backlog: usize,
        policy: LbPolicy,
    ) -> LoadBalancer {
        let mut host = SimHost::attach(world, name, ip);
        let listener = host.listen(port, backlog).expect("front port free");
        let counters = LbCounters::register(world.borrow().telemetry());
        LoadBalancer {
            host,
            listener,
            policy,
            backends: Vec::new(),
            sessions: Vec::new(),
            waiting: std::collections::VecDeque::new(),
            max_inflight: None,
            retry_after_us: None,
            stall_timeout_us: None,
            rr_next: 0,
            counters,
            backend_served: Vec::new(),
            backend_failures: Vec::new(),
            backend_revivals: Vec::new(),
            failover_latency_us: Vec::new(),
        }
    }

    /// Caps sessions routed to any one backend; accepted clients beyond
    /// the fleet-wide capacity wait (in accept order) until a handle
    /// frees. Models the boards' fixed connection-handle supply.
    pub fn set_max_inflight(&mut self, cap: Option<usize>) {
        self.max_inflight = cap;
    }

    /// Lets a dead-marked backend be re-probed: once `Some(gap)` µs
    /// have passed since the dead mark (or the previous probe), routing
    /// offers the backend one probe connection; if it establishes, the
    /// backend is un-dead-marked (a *revival*) and rejoins the pool.
    /// `None` (the default) keeps the legacy contract — dead stays dead
    /// for the rest of the run.
    pub fn set_retry_after_us(&mut self, gap: Option<u64>) {
        self.retry_after_us = gap;
    }

    /// Arms the established-session stall timeout: a session with no
    /// bytes or FINs moving for `Some(gap)` µs is aborted on both sides
    /// and its backend dead-marked — the only way sessions pinned to a
    /// wedged board (whose TCP stack still answers, but whose firmware
    /// never will) ever resolve. Must exceed the longest legitimate
    /// guest compute gap. `None` (the default) never times a session
    /// out.
    pub fn set_stall_timeout_us(&mut self, gap: Option<u64>) {
        self.stall_timeout_us = gap;
    }

    /// The failover-latency book: virtual µs each failed upstream
    /// connect waited before the balancer gave up and moved the session
    /// on, in failure order.
    pub fn failover_latencies_us(&self) -> &[u64] {
        &self.failover_latency_us
    }

    /// Registers a backend listener. Returns its index.
    pub fn add_backend(&mut self, addr: Endpoint) -> usize {
        let idx = self.backends.len();
        let label = idx.to_string();
        {
            let world = self.host.world();
            let w = world.borrow();
            let reg = w.telemetry();
            let labels = [("backend", label.as_str())];
            self.backend_served
                .push(reg.counter("lb.backend.served", &labels));
            self.backend_failures
                .push(reg.counter("lb.backend.failures", &labels));
            self.backend_revivals
                .push(reg.counter("lb.backend.revivals", &labels));
        }
        self.backends.push(Backend {
            addr,
            inflight: 0,
            peak_inflight: 0,
            served: 0,
            failures: 0,
            stalls: 0,
            revivals: 0,
            dead: false,
            dead_since_us: 0,
        });
        idx
    }

    /// The balancer's host handle (for linking it to clients and boards).
    pub fn host(&self) -> &SimHost {
        &self.host
    }

    /// The counters this balancer reports through.
    pub fn counters(&self) -> &LbCounters {
        &self.counters
    }

    /// Sessions currently proxied (connecting or established).
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Accepted clients held off waiting for backend handle capacity.
    pub fn waiting_sessions(&self) -> usize {
        self.waiting.len()
    }

    /// Per-backend routing statistics, in backend-index order.
    pub fn backend_stats(&self) -> Vec<BackendStats> {
        self.backends
            .iter()
            .map(|b| BackendStats {
                addr: b.addr,
                inflight: b.inflight,
                peak_inflight: b.peak_inflight,
                served: b.served,
                failures: b.failures,
                stalls: b.stalls,
                revivals: b.revivals,
                dead: b.dead,
            })
            .collect()
    }

    /// Picks a backend for a new (or failed-over) session, excluding
    /// `tried`. Healthy backends are preferred; when every backend is
    /// dead the least-recently-failed still gets the traffic (last
    /// resort beats a hard error). With `respect_cap`, backends at the
    /// [`LoadBalancer::set_max_inflight`] cap are held off — `None` then
    /// means "wait", and the caller keeps the client queued. Failover
    /// re-picks ignore the cap: a session mid-flight beats strict
    /// capacity. `None` without the cap only when `tried` exhausts the
    /// set.
    ///
    /// With [`LoadBalancer::set_retry_after_us`], a dead backend whose
    /// retry clock has expired counts as healthy for one probe pick;
    /// picking it resets the clock so concurrent arrivals don't gang up
    /// on a backend that may still be down.
    fn pick(&mut self, tried: &[usize], respect_cap: bool, now: u64) -> Option<usize> {
        let cap = if respect_cap { self.max_inflight } else { None };
        let retry = self.retry_after_us;
        let eligible = |dead_ok: bool, i: usize, b: &Backend| -> bool {
            let probe_due = b.dead
                && retry.is_some_and(|gap| now.saturating_sub(b.dead_since_us) >= gap);
            !tried.contains(&i)
                && (dead_ok || !b.dead || probe_due)
                && cap.is_none_or(|m| b.inflight < m)
        };
        for dead_ok in [false, true] {
            let chosen = match self.policy {
                LbPolicy::RoundRobin => (0..self.backends.len())
                    .map(|k| (self.rr_next + k) % self.backends.len())
                    .find(|&i| eligible(dead_ok, i, &self.backends[i])),
                LbPolicy::LeastOpen => self
                    .backends
                    .iter()
                    .enumerate()
                    .filter(|(i, b)| eligible(dead_ok, *i, b))
                    .min_by_key(|(i, b)| (b.inflight, *i))
                    .map(|(i, _)| i),
            };
            if let Some(i) = chosen {
                if self.policy == LbPolicy::RoundRobin {
                    self.rr_next = (i + 1) % self.backends.len();
                }
                if self.backends[i].dead {
                    // A probe pick: restart the retry clock.
                    self.backends[i].dead_since_us = now;
                }
                return Some(i);
            }
        }
        None
    }

    /// One deterministic service round: accept, route, shuttle,
    /// propagate closes, fail over. Never advances time.
    ///
    /// # Panics
    ///
    /// If called with no backends registered.
    pub fn pump(&mut self) {
        assert!(!self.backends.is_empty(), "load balancer has no backends");
        let now = self.host.now();

        // Accept every pending client, then route the wait queue in
        // accept order for as long as capacity lasts.
        while let Some(client) = self.host.accept(self.listener) {
            self.counters.accepts.inc();
            self.waiting.push_back(client);
        }
        while let Some(&client) = self.waiting.front() {
            let Some(backend) = self.pick(&[], true, now) else {
                break; // every backend at its handle cap — hold off
            };
            self.waiting.pop_front();
            let upstream = self.host.connect(self.backends[backend].addr);
            self.backends[backend].route_to();
            self.sessions.push(Session {
                client,
                upstream,
                backend,
                connect_started_us: now,
                tried: Vec::new(),
                up: Vec::new(),
                down: Vec::new(),
                up_closed: false,
                down_closed: false,
                up_established: false,
                last_progress_us: now,
            });
        }

        // Sessions are taken out of `self` for the service loop so
        // `pick` (which needs `&mut self` for round-robin state) stays
        // callable; nothing else touches the session list meanwhile.
        let mut sessions = std::mem::take(&mut self.sessions);
        let mut finished: Vec<usize> = Vec::new();
        for (si, s) in sessions.iter_mut().enumerate() {
            // Upstream health: a connect that sits unestablished past the
            // timeout (dead link: the SYN is simply gone) or comes back
            // reset marks the backend dead and moves the session on.
            if !self.host.established(s.upstream) && !s.up_closed {
                let timed_out = now.saturating_sub(s.connect_started_us) >= CONNECT_TIMEOUT_US;
                let reset = self.host.world().borrow().tcp_reset(s.upstream);
                if timed_out || reset {
                    self.host.abort(s.upstream);
                    self.failover_latency_us
                        .push(now.saturating_sub(s.connect_started_us));
                    let b = &mut self.backends[s.backend];
                    b.inflight -= 1;
                    b.failures += 1;
                    self.backend_failures[s.backend].inc();
                    if !b.dead {
                        b.dead = true;
                        self.counters.dead_marks.inc();
                    }
                    b.dead_since_us = now;
                    s.tried.push(s.backend);
                    match self.pick(&s.tried, false, now) {
                        Some(next) => {
                            self.counters.failovers.inc();
                            s.backend = next;
                            s.upstream = self.host.connect(self.backends[next].addr);
                            s.connect_started_us = now;
                            self.backends[next].route_to();
                        }
                        None => {
                            self.counters.unrouted.inc();
                            self.host.abort(s.client);
                            finished.push(si);
                            continue;
                        }
                    }
                }
                if !self.host.established(s.upstream) {
                    continue; // nothing to shuttle yet
                }
            }

            // The upstream just came up. If its backend was dead-marked
            // this is the probe succeeding: un-dead-mark and let routing
            // resume (a revival). Only the establishment edge counts —
            // old sessions riding out a flap must not revive a backend
            // their own connect never re-proved.
            if !s.up_established && self.host.established(s.upstream) {
                s.up_established = true;
                s.last_progress_us = now;
                let b = &mut self.backends[s.backend];
                if b.dead {
                    b.dead = false;
                    b.revivals += 1;
                    self.backend_revivals[s.backend].inc();
                    self.counters.revivals.inc();
                }
            }

            // Shuttle bytes, each direction: drain the source socket into
            // the session buffer, then push as much as the sink accepts.
            let mut moved = 0usize;
            moved += shuttle(
                &mut self.host,
                s.client,
                s.upstream,
                &mut s.up,
                &self.counters.up_bytes,
            );
            moved += shuttle(
                &mut self.host,
                s.upstream,
                s.client,
                &mut s.down,
                &self.counters.down_bytes,
            );

            // FIN propagation, once the drained direction is flushed.
            if !s.up_closed && s.up.is_empty() && side_closed(&mut self.host, s.client) {
                self.host.close(s.upstream);
                s.up_closed = true;
                moved += 1;
            }
            if !s.down_closed && s.down.is_empty() && side_closed(&mut self.host, s.upstream) {
                self.host.close(s.client);
                s.down_closed = true;
                moved += 1;
            }
            if moved > 0 {
                s.last_progress_us = now;
            }

            // Stall timeout: an established session with nothing moving
            // for the whole window is pinned to a backend that will
            // never answer (a wedged board's TCP stack accepts and then
            // goes silent). Tear it down on both sides and dead-mark the
            // backend so new routings steer clear.
            if let Some(gap) = self.stall_timeout_us {
                if !(s.up_closed && s.down_closed)
                    && now.saturating_sub(s.last_progress_us) >= gap
                {
                    self.host.abort(s.upstream);
                    self.host.abort(s.client);
                    let b = &mut self.backends[s.backend];
                    b.inflight -= 1;
                    b.stalls += 1;
                    self.counters.stalls.inc();
                    if !b.dead {
                        b.dead = true;
                        self.counters.dead_marks.inc();
                    }
                    b.dead_since_us = now;
                    finished.push(si);
                    continue;
                }
            }
            if s.up_closed && s.down_closed {
                let b = &mut self.backends[s.backend];
                b.inflight -= 1;
                b.served += 1;
                self.backend_served[s.backend].inc();
                self.counters.closed.inc();
                finished.push(si);
            }
        }
        for si in finished.into_iter().rev() {
            sessions.remove(si);
        }
        self.sessions = sessions;
    }
}

/// Whether `sock`'s peer has closed and its receive buffer is drained —
/// the moment the FIN should be passed along.
fn side_closed(host: &mut SimHost, sock: SocketId) -> bool {
    host.available(sock) == 0
        && (host.peer_closed(sock)
            || matches!(host.recv(sock, &mut [0u8; 1]), Recv::Closed | Recv::Reset))
}

/// Moves bytes `from` → `to` through `buf`, respecting the sink's send
/// room; the buffer carries what the sink rejected to the next pump.
/// Returns how many bytes moved (drained from the source plus accepted
/// by the sink) — the session's progress measure.
fn shuttle(
    host: &mut SimHost,
    from: SocketId,
    to: SocketId,
    buf: &mut Vec<u8>,
    bytes: &Counter,
) -> usize {
    let mut moved = 0usize;
    let avail = host.available(from);
    if avail > 0 {
        let start = buf.len();
        buf.resize(start + avail, 0);
        match host.recv(from, &mut buf[start..]) {
            Recv::Data(n) => {
                buf.truncate(start + n);
                moved += n;
            }
            _ => buf.truncate(start),
        }
    }
    if !buf.is_empty() && host.established(to) {
        let room = host.send_room(to).min(buf.len());
        if room > 0 {
            let sent = host.send(to, &buf[..room]);
            bytes.add(sent as u64);
            buf.drain(..sent);
            moved += sent;
        }
    }
    moved
}

impl std::fmt::Debug for LoadBalancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadBalancer")
            .field("policy", &self.policy)
            .field("backends", &self.backends.len())
            .field("open_sessions", &self.sessions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::LinkParams;

    /// Three hosts: an echo backend, the balancer, a client. Bytes flow
    /// client → LB → backend and back.
    #[test]
    fn proxies_one_echo_session() {
        let world = Rc::new(RefCell::new(World::new(3)));
        let mut backend = SimHost::attach(&world, "backend", Ipv4::new(10, 0, 1, 1));
        let mut lb = LoadBalancer::attach(
            &world,
            "lb",
            Ipv4::new(10, 0, 0, 250),
            80,
            8,
            LbPolicy::RoundRobin,
        );
        let mut client = SimHost::attach(&world, "client", Ipv4::new(10, 0, 2, 1));
        world
            .borrow_mut()
            .link(backend.id(), lb.host().id(), LinkParams::lan_100m());
        world
            .borrow_mut()
            .link(lb.host().id(), client.id(), LinkParams::lan_100m());

        let bl = backend.listen(7, 4).expect("backend listens");
        lb.add_backend(Endpoint::new(backend.ip(), 7));
        let c = client.connect(Endpoint::new(lb.host().ip(), 80));

        let mut server = None;
        let mut echoed = Vec::new();
        let mut sent = false;
        let mut closed = false;
        for _ in 0..400 {
            world.borrow_mut().run_for(100);
            lb.pump();
            if server.is_none() {
                server = backend.accept(bl);
            }
            if let Some(srv) = server {
                let avail = backend.available(srv);
                if avail > 0 {
                    let mut buf = vec![0u8; avail];
                    if let Recv::Data(n) = backend.recv(srv, &mut buf) {
                        backend.send(srv, &buf[..n]);
                    }
                }
                if backend.peer_closed(srv) && backend.available(srv) == 0 {
                    backend.close(srv);
                }
            }
            if client.established(c) && !sent {
                assert_eq!(client.send(c, b"ping"), 4);
                sent = true;
            }
            let avail = client.available(c);
            if avail > 0 {
                let mut buf = vec![0u8; avail];
                if let Recv::Data(n) = client.recv(c, &mut buf) {
                    echoed.extend_from_slice(&buf[..n]);
                }
            }
            if echoed.len() == 4 && !closed {
                client.close(c);
                closed = true;
            }
            if closed && lb.open_sessions() == 0 {
                break;
            }
        }
        assert_eq!(echoed, b"ping");
        assert_eq!(lb.open_sessions(), 0, "session torn down");
        assert_eq!(lb.counters().accepts.get(), 1);
        assert_eq!(lb.counters().closed.get(), 1);
        assert_eq!(lb.backend_stats()[0].served, 1);
    }

    /// Least-open routing skips a backend whose link eats every packet:
    /// the first session times out, fails over, and later sessions never
    /// touch the dead backend again.
    #[test]
    fn least_open_skips_dead_backend() {
        let world = Rc::new(RefCell::new(World::new(9)));
        let mut dead = SimHost::attach(&world, "dead", Ipv4::new(10, 0, 1, 1));
        let mut live = SimHost::attach(&world, "live", Ipv4::new(10, 0, 1, 2));
        let mut lb = LoadBalancer::attach(
            &world,
            "lb",
            Ipv4::new(10, 0, 0, 250),
            80,
            8,
            LbPolicy::LeastOpen,
        );
        let mut client = SimHost::attach(&world, "client", Ipv4::new(10, 0, 2, 1));
        world.borrow_mut().link(
            dead.id(),
            lb.host().id(),
            LinkParams::lan_100m().with_drop_rate(1.0),
        );
        world
            .borrow_mut()
            .link(live.id(), lb.host().id(), LinkParams::lan_100m());
        world
            .borrow_mut()
            .link(lb.host().id(), client.id(), LinkParams::lan_100m());

        let _dl = dead.listen(7, 4).expect("dead listens");
        let ll = live.listen(7, 4).expect("live listens");
        lb.add_backend(Endpoint::new(dead.ip(), 7));
        lb.add_backend(Endpoint::new(live.ip(), 7));

        let c0 = client.connect(Endpoint::new(lb.host().ip(), 80));
        let mut accepted = Vec::new();
        for _ in 0..300 {
            world.borrow_mut().run_for(100);
            lb.pump();
            if let Some(s) = live.accept(ll) {
                accepted.push(s);
            }
            if !accepted.is_empty() && client.established(c0) {
                break;
            }
        }
        assert_eq!(accepted.len(), 1, "failed over to the live backend");
        let stats = lb.backend_stats();
        assert_eq!(stats[0].failures, 1);
        assert!(stats[0].dead);
        assert_eq!(lb.counters().failovers.get(), 1);

        // A second client goes straight to the live backend.
        let _c1 = client.connect(Endpoint::new(lb.host().ip(), 80));
        for _ in 0..300 {
            world.borrow_mut().run_for(100);
            lb.pump();
            if let Some(s) = live.accept(ll) {
                accepted.push(s);
            }
            if accepted.len() == 2 {
                break;
            }
        }
        assert_eq!(accepted.len(), 2);
        assert_eq!(lb.backend_stats()[0].failures, 1, "dead backend untried");
    }
}
