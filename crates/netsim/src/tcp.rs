//! TCP connection state, one struct per socket. The transition logic
//! lives in [`crate::world::World`], which owns every socket and the wire.

use std::collections::{BTreeMap, VecDeque};

use crate::addr::Endpoint;

/// Handle to a TCP socket inside a [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SocketId(pub(crate) usize);

/// Handle to a host inside a [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostId(pub(crate) usize);

/// The RFC 793 connection states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open, waiting for SYN.
    Listen,
    /// Active open, SYN sent.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynReceived,
    /// Data transfer.
    Established,
    /// Our FIN sent, not yet acknowledged.
    FinWait1,
    /// Our FIN acknowledged, waiting for the peer's.
    FinWait2,
    /// Peer's FIN received, ours not yet sent.
    CloseWait,
    /// Peer closed, our FIN sent, waiting for its ACK.
    LastAck,
    /// Both FINs crossed in flight.
    Closing,
    /// Connection done, draining stray segments.
    TimeWait,
}

impl TcpState {
    /// Whether the connection can still carry data to the peer.
    pub fn can_send(self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }
}

/// Maximum segment size (Ethernet-framed TCP payload).
pub const MSS: usize = 1460;

/// Receive-buffer capacity advertised as the window.
pub const RECV_WINDOW: usize = 16 * 1024;

/// Send-buffer capacity; `send` accepts at most this much unacknowledged
/// data.
pub const SEND_BUFFER: usize = 64 * 1024;

/// Initial retransmission timeout in microseconds.
pub const INITIAL_RTO_US: u64 = 200_000;

/// Upper bound on the backed-off retransmission timeout.
pub const MAX_RTO_US: u64 = 8_000_000;

/// 2·MSL delay spent in `TimeWait`.
pub const TIME_WAIT_US: u64 = 1_000_000;

/// One endpoint's connection state.
#[derive(Debug)]
pub struct TcpSocket {
    /// Owning host.
    pub host: HostId,
    /// Local endpoint.
    pub local: Endpoint,
    /// Remote endpoint once known.
    pub remote: Option<Endpoint>,
    /// Connection state.
    pub state: TcpState,

    // send side --------------------------------------------------------
    /// Initial send sequence number.
    pub iss: u32,
    /// Oldest unacknowledged sequence number.
    pub snd_una: u32,
    /// Next sequence number to transmit.
    pub snd_nxt: u32,
    /// Bytes accepted from the application and not yet acknowledged;
    /// front of the queue corresponds to `snd_una`.
    pub send_buf: VecDeque<u8>,
    /// Application asked to close; FIN goes out after the buffered data.
    pub fin_queued: bool,
    /// Sequence number our FIN occupies once sent.
    pub fin_seq: Option<u32>,
    /// Peer's advertised receive window.
    pub peer_window: u16,
    /// Current retransmission timeout (doubles on each expiry).
    pub rto_us: u64,
    /// A retransmission-timer event is in flight for this socket.
    pub timer_pending: bool,

    // receive side -----------------------------------------------------
    /// Next expected sequence number.
    pub rcv_nxt: u32,
    /// In-order bytes ready for the application.
    pub recv_buf: VecDeque<u8>,
    /// Out-of-order segments keyed by sequence number.
    pub ooo: BTreeMap<u32, Vec<u8>>,
    /// Peer's FIN has been received and sequenced.
    pub peer_fin: bool,
    /// Connection was reset.
    pub reset: bool,

    // listener side ----------------------------------------------------
    /// Fully established child connections awaiting `accept`.
    pub backlog: VecDeque<SocketId>,
    /// Maximum backlog length (`listen`'s argument).
    pub backlog_limit: usize,
    /// Listener that spawned this socket, if any.
    pub parent: Option<SocketId>,
}

impl TcpSocket {
    pub(crate) fn new(host: HostId, local: Endpoint) -> TcpSocket {
        TcpSocket {
            host,
            local,
            remote: None,
            state: TcpState::Closed,
            iss: 0,
            snd_una: 0,
            snd_nxt: 0,
            send_buf: VecDeque::new(),
            fin_queued: false,
            fin_seq: None,
            peer_window: RECV_WINDOW as u16,
            rto_us: INITIAL_RTO_US,
            timer_pending: false,
            rcv_nxt: 0,
            recv_buf: VecDeque::new(),
            ooo: BTreeMap::new(),
            peer_fin: false,
            reset: false,
            backlog: VecDeque::new(),
            backlog_limit: 0,
            parent: None,
        }
    }

    /// Bytes of receive window currently available to advertise.
    pub fn advertised_window(&self) -> u16 {
        RECV_WINDOW
            .saturating_sub(self.recv_buf.len())
            .min(u16::MAX as usize) as u16
    }

    /// Bytes the application can read right now.
    pub fn available(&self) -> usize {
        self.recv_buf.len()
    }

    /// Whether the peer will send no more data (FIN seen and buffer
    /// drained is checked by the caller).
    pub fn peer_closed(&self) -> bool {
        self.peer_fin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4;

    #[test]
    fn fresh_socket_is_closed() {
        let s = TcpSocket::new(HostId(0), Endpoint::new(Ipv4::ANY, 80));
        assert_eq!(s.state, TcpState::Closed);
        assert_eq!(s.available(), 0);
        assert!(!s.state.can_send());
    }

    #[test]
    fn window_shrinks_with_buffered_data() {
        let mut s = TcpSocket::new(HostId(0), Endpoint::new(Ipv4::ANY, 80));
        assert_eq!(usize::from(s.advertised_window()), RECV_WINDOW);
        s.recv_buf.extend(std::iter::repeat_n(0u8, 1000));
        assert_eq!(usize::from(s.advertised_window()), RECV_WINDOW - 1000);
    }

    #[test]
    fn can_send_states() {
        assert!(TcpState::Established.can_send());
        assert!(TcpState::CloseWait.can_send());
        assert!(!TcpState::FinWait1.can_send());
        assert!(!TcpState::Listen.can_send());
    }
}
