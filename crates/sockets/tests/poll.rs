//! Edge cases of the readiness layer: the BSD `poll` snapshot, the
//! Dynamic C `sock_readiness` mirror, and the netsim socket-event queue
//! that backs both.

use netsim::{Endpoint, Ipv4, LinkParams, SocketEvent};
use sockets::bsd::{SockAddrIn, UnixProcess, AF_INET, SOCK_STREAM};
use sockets::dynic::Stack;
use sockets::Net;

const SERVER_IP: Ipv4 = Ipv4(0x0A00_0001);
const CLIENT_IP: Ipv4 = Ipv4(0x0A00_0002);
const PORT: u16 = 4433;

fn rig() -> (Net, netsim::HostId, netsim::HostId) {
    let net = Net::new(23);
    let s = net.add_host("server", SERVER_IP);
    let c = net.add_host("client", CLIENT_IP);
    net.link(s, c, LinkParams::ethernet_10base_t());
    (net, s, c)
}

/// The Figure 3 shape under readiness: three listen slots on one port, a
/// full table of inbound connections — every slot turns accept-ready; a
/// fourth slot only becomes ready when a fourth client shows up, and an
/// active open is never accept-ready.
#[test]
fn accept_ready_on_full_dynic_table() {
    let (net, sh, ch) = rig();
    let stack = Stack::sock_init(&net, sh);
    let socks: Vec<_> = (0..3)
        .map(|_| {
            let s = stack.tcp_socket();
            stack.tcp_listen(s, PORT).unwrap();
            s
        })
        .collect();

    // Nothing inbound yet: no slot is ready in any way.
    for &s in &socks {
        assert!(!stack.sock_readiness(s).any(), "idle listen slot is quiet");
    }

    let mut clients = Vec::new();
    for _ in 0..3 {
        let mut c = UnixProcess::new(&net, ch);
        let fd = c.socket(AF_INET, SOCK_STREAM, 0).unwrap();
        c.connect(fd, &SockAddrIn::new(SERVER_IP, PORT)).unwrap();
        clients.push((c, fd));
    }
    for _ in 0..1000 {
        stack.tcp_tick(None);
        if socks.iter().all(|&s| stack.sock_readiness(s).accept_ready) {
            break;
        }
    }
    for &s in &socks {
        let r = stack.sock_readiness(s);
        assert!(r.accept_ready, "full table: every slot got a connection");
        assert!(r.writable, "fresh connection is writable");
        assert!(!r.readable, "no data sent yet");
    }

    // A fourth slot joins the (now fully consumed) port: not ready until
    // a fourth client actually connects.
    let extra = stack.tcp_socket();
    stack.tcp_listen(extra, PORT).unwrap();
    stack.tcp_tick(None);
    assert!(!stack.sock_readiness(extra).any(), "no fourth connection yet");

    let mut c4 = UnixProcess::new(&net, ch);
    let fd4 = c4.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    c4.connect(fd4, &SockAddrIn::new(SERVER_IP, PORT)).unwrap();
    for _ in 0..1000 {
        stack.tcp_tick(None);
        if stack.sock_readiness(extra).accept_ready {
            break;
        }
    }
    assert!(stack.sock_readiness(extra).accept_ready);

    // Active opens are connections the slot asked for, not dispatched
    // accepts: established and writable, but never accept-ready.
    let mut peer = UnixProcess::new(&net, ch);
    let pfd = peer.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    peer.bind(pfd, &SockAddrIn::new(Ipv4::ANY, 9000)).unwrap();
    peer.listen(pfd, 4).unwrap();
    let active = stack.tcp_socket();
    stack
        .tcp_open(active, Endpoint::new(CLIENT_IP, 9000))
        .unwrap();
    stack.sock_wait_established(active, 10_000).unwrap();
    let r = stack.sock_readiness(active);
    assert!(r.writable && !r.accept_ready, "tcp_open is not an accept");
}

/// POLLIN semantics at end of stream: after the peer sends data and
/// closes, the descriptor stays readable until both the buffered bytes
/// and the EOF itself have been consumed.
#[test]
fn readable_after_peer_close() {
    let (net, sh, ch) = rig();
    let mut server = UnixProcess::new(&net, sh);
    let lfd = server.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    server.bind(lfd, &SockAddrIn::new(Ipv4::ANY, PORT)).unwrap();
    server.listen(lfd, 4).unwrap();

    let mut client = UnixProcess::new(&net, ch);
    let cfd = client.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    client.connect(cfd, &SockAddrIn::new(SERVER_IP, PORT)).unwrap();
    let afd = server.accept(lfd).unwrap();

    client.send_all(cfd, b"last words").unwrap();
    client.close(cfd).unwrap();
    net.pump(2_000_000);

    let r = server.readiness(afd).unwrap();
    assert!(r.readable, "buffered data after FIN is readable");
    assert!(r.peer_closed, "FIN observed");

    let mut buf = [0u8; 64];
    let n = server.recv(afd, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"last words");

    // Data consumed, EOF still pending: POLLIN must keep firing so the
    // application comes back to read the 0.
    let r = server.readiness(afd).unwrap();
    assert!(r.readable, "EOF itself is a readable event");
    assert!(r.peer_closed);
    assert_eq!(server.recv(afd, &mut buf).unwrap(), 0, "orderly EOF");
}

/// Flow control reaches the poll layer: a receiver that never reads
/// zeroes its advertised window, the sender's buffer jams full, and
/// write-readiness goes (and stays) false until the receiver drains.
#[test]
fn write_readiness_under_zero_receive_window() {
    let (net, sh, ch) = rig();
    let mut server = UnixProcess::new(&net, sh);
    let lfd = server.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    server.bind(lfd, &SockAddrIn::new(Ipv4::ANY, PORT)).unwrap();
    server.listen(lfd, 4).unwrap();

    let mut client = UnixProcess::new(&net, ch);
    let cfd = client.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    client.connect(cfd, &SockAddrIn::new(SERVER_IP, PORT)).unwrap();
    let afd = server.accept(lfd).unwrap();
    assert!(client.readiness(cfd).unwrap().writable);

    // Push until the connection is wedged: send buffer full AND pumping
    // the world frees nothing, because the receiver's window is zero.
    let chunk = [0x5au8; 1024];
    let mut pushed = 0usize;
    loop {
        while client.readiness(cfd).unwrap().writable {
            pushed += client.send(cfd, &chunk).unwrap();
            assert!(pushed < 512 * 1024, "send buffer never filled");
        }
        net.pump(5_000_000);
        if !client.readiness(cfd).unwrap().writable {
            break;
        }
    }
    net.pump(5_000_000);
    assert!(
        !client.readiness(cfd).unwrap().writable,
        "zero receive window keeps the sender unwritable through pumps"
    );
    assert!(server.readiness(afd).unwrap().readable);

    // Drain the receiver; the window reopens and writability returns.
    let mut buf = [0u8; 4096];
    let mut drained = 0usize;
    while drained < pushed {
        let n = server.recv(afd, &mut buf).unwrap();
        assert!(n > 0, "stream ended early at {drained}/{pushed}");
        drained += n;
    }
    net.pump(5_000_000);
    assert!(
        client.readiness(cfd).unwrap().writable,
        "draining the receiver restores write readiness"
    );
}

/// `poll` returns only ready descriptors; `poll_wait` blocks (pumping)
/// until one becomes ready.
#[test]
fn poll_reports_only_ready_descriptors() {
    let (net, sh, ch) = rig();
    let mut server = UnixProcess::new(&net, sh);
    let lfd = server.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    server.bind(lfd, &SockAddrIn::new(Ipv4::ANY, PORT)).unwrap();
    server.listen(lfd, 4).unwrap();

    assert!(
        server.poll(&[lfd]).unwrap().is_empty(),
        "nothing pending, nothing ready"
    );

    let mut client = UnixProcess::new(&net, ch);
    let cfd = client.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    client.connect(cfd, &SockAddrIn::new(SERVER_IP, PORT)).unwrap();

    let ready = server.poll_wait(&[lfd]).unwrap();
    assert_eq!(ready.len(), 1);
    assert_eq!(ready[0].0, lfd);
    assert!(ready[0].1.accept_ready);

    let afd = server.accept(lfd).unwrap();
    // Accepted connection: writable immediately, readable only once the
    // client talks — and poll over both fds reports each correctly.
    let ready = server.poll(&[lfd, afd]).unwrap();
    assert_eq!(ready.len(), 1, "listener went quiet after accept");
    assert_eq!(ready[0].0, afd);
    assert!(ready[0].1.writable && !ready[0].1.readable);

    client.send_all(cfd, b"ping").unwrap();
    net.pump(2_000_000);
    let ready = server.poll(&[lfd, afd]).unwrap();
    assert_eq!(ready.len(), 1);
    assert!(ready[0].1.readable, "data arrived: {:?}", ready[0].1);
}

/// The netsim event queue the serving loop consumes: edges only (empty →
/// non-empty), drained by `take_socket_events`, and off unless enabled.
#[test]
fn socket_event_edges_and_drain() {
    let (net, sh, ch) = rig();

    // Events are opt-in: without enable_socket_events, nothing is queued.
    let mut client = UnixProcess::new(&net, ch);
    let cfd = client.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    let mut server = UnixProcess::new(&net, sh);
    let lfd = server.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    server.bind(lfd, &SockAddrIn::new(Ipv4::ANY, PORT)).unwrap();
    server.listen(lfd, 4).unwrap();
    client.connect(cfd, &SockAddrIn::new(SERVER_IP, PORT)).unwrap();
    assert!(
        net.with(|w| w.take_socket_events().is_empty()),
        "event queue stays empty until enabled"
    );

    net.with(|w| w.enable_socket_events());
    let afd = server.accept(lfd).unwrap();
    net.with(|w| w.take_socket_events()); // discard connection-setup noise

    client.send_all(cfd, b"first").unwrap();
    client.send_all(cfd, b" second").unwrap();
    net.pump(2_000_000);

    let events = net.with(|w| w.take_socket_events());
    let bytes_ready = events
        .iter()
        .filter(|e| matches!(e, SocketEvent::BytesReady(_)))
        .count();
    assert_eq!(
        bytes_ready, 1,
        "edge-triggered: one BytesReady per empty→non-empty transition, got {events:?}"
    );
    assert!(
        net.with(|w| w.take_socket_events().is_empty()),
        "take_socket_events drains the queue"
    );

    // Reading to empty re-arms the edge; the next payload fires again.
    let mut buf = [0u8; 64];
    let n = server.recv(afd, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"first second");
    client.send_all(cfd, b"third").unwrap();
    net.pump(2_000_000);
    let events = net.with(|w| w.take_socket_events());
    assert!(
        events
            .iter()
            .any(|e| matches!(e, SocketEvent::BytesReady(_))),
        "edge re-arms after the buffer empties, got {events:?}"
    );

    // Peer close produces a PeerClosed edge for the serving loop.
    client.close(cfd).unwrap();
    net.pump(2_000_000);
    let events = net.with(|w| w.take_socket_events());
    assert!(
        events
            .iter()
            .any(|e| matches!(e, SocketEvent::PeerClosed(_))),
        "FIN surfaces as PeerClosed, got {events:?}"
    );
}
