//! Reproduction of the paper's Figure 2: the same echo service written
//! against (a) BSD sockets and (b) the Dynamic C API, with identical
//! observable behaviour.

use netsim::{Ipv4, LinkParams};
use sockets::bsd::{SockAddrIn, UnixProcess, AF_INET, SOCK_STREAM};
use sockets::dynic::{SockMode, Stack};
use sockets::Net;

const SERVER_IP: Ipv4 = Ipv4(0x0A00_0001);
const CLIENT_IP: Ipv4 = Ipv4(0x0A00_0002);
const PORT: u16 = 7;

fn rig() -> (Net, netsim::HostId, netsim::HostId) {
    let net = Net::new(11);
    let s = net.add_host("server", SERVER_IP);
    let c = net.add_host("client", CLIENT_IP);
    net.link(s, c, LinkParams::ethernet_10base_t());
    (net, s, c)
}

/// Figure 2(a): the BSD shape — socket, bind, listen, accept, recv, send.
#[test]
#[allow(clippy::field_reassign_with_default)] // mirrors the C idiom on purpose
fn echo_server_bsd_shape() {
    let (net, sh, ch) = rig();

    // Client connects first (connect pumps the world), then the server
    // accepts the queued connection.
    let mut client = UnixProcess::new(&net, ch);
    let cfd = client.socket(AF_INET, SOCK_STREAM, 0).unwrap();

    let mut server = UnixProcess::new(&net, sh);
    let sock = server.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    let mut addr = SockAddrIn::default();
    addr.sin_family = AF_INET as u16;
    addr.sin_addr = netsim::htonl(sockets::bsd::INADDR_ANY);
    addr.sin_port = netsim::htons(PORT);
    server.bind(sock, &addr).unwrap();
    server.listen(sock, 4).unwrap();

    client
        .connect(cfd, &SockAddrIn::new(SERVER_IP, PORT))
        .unwrap();
    client.send_all(cfd, b"figure two\n").unwrap();

    let newsock = server.accept(sock).unwrap();
    let mut buf = [0u8; 64];
    let len = server.recv(newsock, &mut buf).unwrap();
    server.send_all(newsock, &buf[..len]).unwrap();

    let n = client.recv(cfd, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"figure two\n");
}

/// Figure 2(b): the Dynamic C shape — sock_init, tcp_listen,
/// sock_wait_established, sock_mode ASCII, tcp_tick/gets/puts loop.
#[test]
fn echo_server_dynic_shape() {
    let (net, sh, ch) = rig();

    let stack = Stack::sock_init(&net, sh);
    let sock = stack.tcp_socket();
    stack.tcp_listen(sock, PORT).unwrap();

    // Client side uses the BSD flavour, as a Unix peer would.
    let mut client = UnixProcess::new(&net, ch);
    let cfd = client.socket(AF_INET, SOCK_STREAM, 0).unwrap();
    client
        .connect(cfd, &SockAddrIn::new(SERVER_IP, PORT))
        .unwrap();

    stack.sock_wait_established(sock, 10_000).unwrap();
    stack.sock_mode(sock, SockMode::Ascii);

    client.send_all(cfd, b"figure two\r\n").unwrap();

    // while (tcp_tick(&sock)) { sock_wait_input; if (sock_gets) sock_puts }
    let mut echoed = false;
    let mut rounds = 0;
    while stack.tcp_tick(Some(sock)) && !echoed {
        stack.sock_wait_input(sock, 10_000).unwrap();
        if let Some(line) = stack.sock_gets(sock).unwrap() {
            stack.sock_puts(sock, &line).unwrap();
            echoed = true;
        }
        rounds += 1;
        assert!(rounds < 10_000, "echo loop stalled");
    }
    assert!(echoed);

    let mut buf = [0u8; 64];
    let n = client.recv(cfd, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"figure two\r\n", "ASCII mode re-appends CRLF");
}

/// Both servers observable-equivalent: one byte stream in, same bytes out.
#[test]
fn both_apis_echo_identically() {
    for api in ["bsd", "dynic"] {
        let (net, sh, ch) = rig();
        let mut client = UnixProcess::new(&net, ch);
        let cfd = client.socket(AF_INET, SOCK_STREAM, 0).unwrap();

        let payload = b"same bytes through either API\r\n".to_vec();
        let mut got = Vec::new();

        match api {
            "bsd" => {
                let mut server = UnixProcess::new(&net, sh);
                let l = server.socket(AF_INET, SOCK_STREAM, 0).unwrap();
                server.bind(l, &SockAddrIn::new(Ipv4::ANY, PORT)).unwrap();
                server.listen(l, 4).unwrap();
                client
                    .connect(cfd, &SockAddrIn::new(SERVER_IP, PORT))
                    .unwrap();
                client.send_all(cfd, &payload).unwrap();
                let a = server.accept(l).unwrap();
                let mut buf = [0u8; 128];
                let n = server.recv(a, &mut buf).unwrap();
                server.send_all(a, &buf[..n]).unwrap();
                let n = client.recv(cfd, &mut buf).unwrap();
                got.extend_from_slice(&buf[..n]);
            }
            _ => {
                let stack = Stack::sock_init(&net, sh);
                let sock = stack.tcp_socket();
                stack.tcp_listen(sock, PORT).unwrap();
                client
                    .connect(cfd, &SockAddrIn::new(SERVER_IP, PORT))
                    .unwrap();
                client.send_all(cfd, &payload).unwrap();
                stack.sock_wait_established(sock, 10_000).unwrap();
                // binary mode: raw read/write echo
                let mut buf = [0u8; 128];
                let mut n = 0;
                let mut rounds = 0;
                while n == 0 {
                    stack.tcp_tick(None);
                    n = stack.sock_read(sock, &mut buf).unwrap();
                    rounds += 1;
                    assert!(rounds < 10_000);
                }
                stack.sock_write(sock, &buf[..n]).unwrap();
                let n = client.recv(cfd, &mut buf).unwrap();
                got.extend_from_slice(&buf[..n]);
            }
        }
        assert_eq!(got, payload, "api {api} echoes byte-exactly");
    }
}

/// The Dynamic C stack hands connections on one port to multiple waiting
/// sockets — the mechanism behind the Figure 3 server structure.
#[test]
fn multiple_listeners_share_one_port() {
    let (net, sh, ch) = rig();
    let stack = Stack::sock_init(&net, sh);
    let socks: Vec<_> = (0..3)
        .map(|_| {
            let s = stack.tcp_socket();
            stack.tcp_listen(s, PORT).unwrap();
            s
        })
        .collect();

    let mut clients = Vec::new();
    for _ in 0..3 {
        let mut c = UnixProcess::new(&net, ch);
        let fd = c.socket(AF_INET, SOCK_STREAM, 0).unwrap();
        c.connect(fd, &SockAddrIn::new(SERVER_IP, PORT)).unwrap();
        clients.push((c, fd));
    }
    for _ in 0..1000 {
        stack.tcp_tick(None);
        if socks.iter().all(|&s| stack.sock_established(s)) {
            break;
        }
    }
    assert!(
        socks.iter().all(|&s| stack.sock_established(s)),
        "all three listeners picked up a connection"
    );

    // Each client writes a distinct message; each slot sees exactly one.
    for (i, (c, fd)) in clients.iter_mut().enumerate() {
        c.send_all(*fd, format!("msg{i}").as_bytes()).unwrap();
    }
    net.pump(1_000_000);
    let mut seen = Vec::new();
    for &s in &socks {
        let mut buf = [0u8; 16];
        let n = stack.sock_read(s, &mut buf).unwrap();
        assert_eq!(n, 4);
        seen.push(String::from_utf8_lossy(&buf[..n]).into_owned());
    }
    seen.sort();
    assert_eq!(seen, vec!["msg0", "msg1", "msg2"]);
}

/// After sock_close the slot is reusable with another tcp_listen — the
/// recompile-free path the paper notes is *not* available for adding
/// more concurrency, but is how one slot serves sequential requests.
#[test]
fn slot_reuse_after_close() {
    let (net, sh, ch) = rig();
    let stack = Stack::sock_init(&net, sh);
    let sock = stack.tcp_socket();

    for round in 0..2 {
        stack.tcp_listen(sock, PORT).unwrap();
        let mut c = UnixProcess::new(&net, ch);
        let fd = c.socket(AF_INET, SOCK_STREAM, 0).unwrap();
        c.connect(fd, &SockAddrIn::new(SERVER_IP, PORT)).unwrap();
        stack.sock_wait_established(sock, 10_000).unwrap();
        c.send_all(fd, format!("round{round}").as_bytes()).unwrap();
        net.pump(500_000);
        let mut buf = [0u8; 16];
        let n = stack.sock_read(sock, &mut buf).unwrap();
        assert_eq!(&buf[..n], format!("round{round}").as_bytes());
        stack.sock_close(sock);
        c.close(fd).unwrap();
        net.pump(2_000_000);
    }
}
