//! The Dynamic C TCP/IP API — the interface the RMC2000 kit provides
//! instead of BSD sockets (the paper's Figure 2b): `sock_init`,
//! `tcp_listen`, `tcp_tick`, `sock_wait_established`, `sock_mode`,
//! `sock_gets` / `sock_puts`, `sock_read` / `sock_write`, `sock_close`.
//!
//! Key semantic differences from BSD that drove the paper's §5.3 rewrite,
//! all reproduced here:
//!
//! * There is no `accept`: *"the socket bound to the port also handles the
//!   request, so each connection is required to have a corresponding call
//!   to `tcp_listen`"*. Several sockets may listen on the same port; an
//!   incoming connection is handed to one of them.
//! * Nothing happens unless `tcp_tick` runs — the application must drive
//!   the stack from its main loop (Figure 3 dedicates a costatement to
//!   `tcp_tick(NULL)`).
//! * ASCII mode gives line-oriented `sock_gets`/`sock_puts`.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use netsim::{Endpoint, HostId, Recv, SocketId, TcpState};

use crate::net::Net;
use crate::poll::Readiness;

/// Virtual time consumed by one `tcp_tick` call, in microseconds.
pub const TICK_US: u64 = 200;

/// Socket transfer mode (`sock_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SockMode {
    /// Byte-stream mode.
    #[default]
    Binary,
    /// Line-oriented mode: `sock_puts` appends CRLF, `sock_gets` returns
    /// complete lines.
    Ascii,
}

/// Errors from the Dynamic C socket layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcError {
    /// Handle does not name a socket slot.
    BadSocket,
    /// Operation invalid in the slot's current state.
    BadState,
    /// The connection was reset or never established.
    NotEstablished,
    /// `sock_wait_established` ran out of ticks.
    Timeout,
}

impl std::fmt::Display for DcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DcError::BadSocket => "bad socket",
            DcError::BadState => "bad state",
            DcError::NotEstablished => "not established",
            DcError::Timeout => "timeout",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for DcError {}

/// A `tcp_Socket` handle (the C API passes `tcp_Socket*`; we hand out a
/// small copyable index into the stack's table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpSock(usize);

#[derive(Debug, Default)]
enum SlotState {
    #[default]
    Fresh,
    /// Waiting for an inbound connection on a port.
    Listening(u16),
    /// Bound to a live connection.
    Connected(SocketId),
    /// Closed by the application; reusable after `tcp_listen`/`tcp_open`.
    Done,
}

#[derive(Debug, Default)]
struct Slot {
    state: SlotState,
    mode: SockMode,
    /// Whether the live connection arrived via `tcp_listen` dispatch (as
    /// opposed to an active `tcp_open`); accept-readiness only applies to
    /// dispatched connections.
    accepted: bool,
}

#[derive(Debug)]
struct PortState {
    listener: SocketId,
    waiting: VecDeque<usize>,
}

#[derive(Debug, Default)]
struct Inner {
    slots: Vec<Slot>,
    ports: HashMap<u16, PortState>,
    /// Per-slot reassembly buffers for ASCII-mode `sock_gets`.
    line_bufs: HashMap<usize, Vec<u8>>,
}

/// The Dynamic C TCP/IP stack on one host, created by [`Stack::sock_init`].
#[derive(Clone)]
pub struct Stack {
    net: Net,
    host: HostId,
    inner: Arc<Mutex<Inner>>,
}

impl Stack {
    /// `sock_init()`: brings up the stack on `host`.
    pub fn sock_init(net: &Net, host: HostId) -> Stack {
        Stack {
            net: net.clone(),
            host,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// The host this stack serves.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Declares a `tcp_Socket` (the C code declares a struct; we allocate
    /// a slot).
    pub fn tcp_socket(&self) -> TcpSock {
        let mut inner = self.inner.lock().expect("stack lock");
        inner.slots.push(Slot::default());
        TcpSock(inner.slots.len() - 1)
    }

    /// `tcp_listen(&sock, port, …)`: registers the socket to take the next
    /// inbound connection on `port`. Multiple sockets may listen on the
    /// same port simultaneously — the Figure 3 server does exactly that
    /// with three handler costatements.
    ///
    /// # Errors
    ///
    /// [`DcError::BadState`] if the slot is already busy.
    pub fn tcp_listen(&self, sock: TcpSock, port: u16) -> Result<(), DcError> {
        let mut inner = self.inner.lock().expect("stack lock");
        let slot = inner.slots.get_mut(sock.0).ok_or(DcError::BadSocket)?;
        match slot.state {
            SlotState::Fresh | SlotState::Done => {}
            _ => return Err(DcError::BadState),
        }
        slot.state = SlotState::Listening(port);
        if let Some(ps) = inner.ports.get_mut(&port) {
            ps.waiting.push_back(sock.0);
            return Ok(());
        }
        let host = self.host;
        let listener = self
            .net
            .with(|w| w.tcp_listen(host, port, 64))
            .map_err(|_| DcError::BadState)?;
        let mut waiting = VecDeque::new();
        waiting.push_back(sock.0);
        inner.ports.insert(port, PortState { listener, waiting });
        Ok(())
    }

    /// `tcp_open(&sock, …)`: active open toward `remote`.
    ///
    /// # Errors
    ///
    /// [`DcError::BadState`] if the slot is busy.
    pub fn tcp_open(&self, sock: TcpSock, remote: Endpoint) -> Result<(), DcError> {
        let mut inner = self.inner.lock().expect("stack lock");
        let slot = inner.slots.get_mut(sock.0).ok_or(DcError::BadSocket)?;
        match slot.state {
            SlotState::Fresh | SlotState::Done => {}
            _ => return Err(DcError::BadState),
        }
        let host = self.host;
        let sid = self.net.with(|w| w.tcp_connect(host, remote));
        slot.state = SlotState::Connected(sid);
        slot.accepted = false;
        Ok(())
    }

    /// `tcp_tick(...)`: drives the stack — pumps the simulated wire and
    /// hands freshly established connections to waiting listeners.
    ///
    /// With `None` (the C code's `tcp_tick(NULL)`) it only drives the
    /// stack and returns true. With a socket it additionally reports
    /// whether that socket is still usable (false once the connection is
    /// fully closed or reset), which is what the Figure 2b echo loop
    /// tests.
    pub fn tcp_tick(&self, sock: Option<TcpSock>) -> bool {
        self.net.pump(TICK_US);
        self.dispatch_accepts();
        match sock {
            None => true,
            Some(s) => self.sock_usable(s),
        }
    }

    fn dispatch_accepts(&self) {
        let mut inner = self.inner.lock().expect("stack lock");
        let inner = &mut *inner;
        for ps in inner.ports.values_mut() {
            while !ps.waiting.is_empty() {
                let Some(conn) = self.net.with(|w| w.tcp_accept(ps.listener)) else {
                    break;
                };
                let idx = ps.waiting.pop_front().expect("non-empty");
                inner.slots[idx].state = SlotState::Connected(conn);
                inner.slots[idx].accepted = true;
            }
        }
    }

    fn conn_of(&self, sock: TcpSock) -> Option<SocketId> {
        let inner = self.inner.lock().expect("stack lock");
        match inner.slots.get(sock.0)?.state {
            SlotState::Connected(sid) => Some(sid),
            _ => None,
        }
    }

    fn sock_usable(&self, sock: TcpSock) -> bool {
        let state = {
            let inner = self.inner.lock().expect("stack lock");
            match inner.slots.get(sock.0) {
                Some(s) => match s.state {
                    SlotState::Listening(_) => return true,
                    SlotState::Connected(sid) => Some(sid),
                    _ => None,
                },
                None => None,
            }
        };
        let Some(sid) = state else { return false };
        self.net.with(|w| {
            let st = w.tcp_state(sid);
            !matches!(st, TcpState::Closed | TcpState::TimeWait) || w.tcp_available(sid) > 0
        })
    }

    /// `sock_established(&sock)`: non-blocking check, usable inside
    /// `waitfor(...)` exactly as the paper's Figure 3 does.
    pub fn sock_established(&self, sock: TcpSock) -> bool {
        self.conn_of(sock)
            .is_some_and(|sid| self.net.with(|w| w.tcp_established(sid)))
    }

    /// Non-blocking readiness mirror of the BSD [`poll`](crate::poll)
    /// snapshot for one socket slot. Pure: never ticks the stack or
    /// dispatches accepts — pair it with a driver costatement running
    /// `tcp_tick`, exactly like `sock_established` in a `waitfor`.
    ///
    /// Dynamic C has no `accept`, so `accept_ready` on a listen slot
    /// means "the slot has been handed its inbound connection and the
    /// handshake finished" — the moment the Figure 3 handler may start
    /// serving.
    pub fn sock_readiness(&self, sock: TcpSock) -> Readiness {
        let (sid, accepted) = {
            let inner = self.inner.lock().expect("stack lock");
            match inner.slots.get(sock.0) {
                Some(slot) => match slot.state {
                    SlotState::Connected(sid) => (Some(sid), slot.accepted),
                    _ => (None, false),
                },
                None => (None, false),
            }
        };
        let Some(sid) = sid else {
            return Readiness::NONE;
        };
        self.net.with(|w| {
            let closed = w.tcp_peer_closed(sid);
            Readiness {
                readable: w.tcp_available(sid) > 0 || closed,
                writable: w.tcp_send_room(sid) > 0,
                accept_ready: accepted && w.tcp_established(sid),
                peer_closed: closed,
            }
        })
    }

    /// `sock_wait_established(&sock, timeout, …)`: ticks the stack until
    /// the socket is established.
    ///
    /// # Errors
    ///
    /// [`DcError::Timeout`] after `max_ticks` rounds.
    pub fn sock_wait_established(&self, sock: TcpSock, max_ticks: usize) -> Result<(), DcError> {
        for _ in 0..max_ticks {
            if self.sock_established(sock) {
                return Ok(());
            }
            self.tcp_tick(None);
        }
        Err(DcError::Timeout)
    }

    /// `sock_mode(&sock, TCP_MODE_ASCII / _BINARY)`.
    pub fn sock_mode(&self, sock: TcpSock, mode: SockMode) {
        if let Some(slot) = self.inner.lock().expect("stack lock").slots.get_mut(sock.0) {
            slot.mode = mode;
        }
    }

    /// Bytes readable right now (`sock_bytesready` analogue; -1 becomes 0).
    pub fn sock_bytesready(&self, sock: TcpSock) -> usize {
        self.conn_of(sock)
            .map_or(0, |sid| self.net.with(|w| w.tcp_available(sid)))
    }

    /// `sock_wait_input`: ticks until input (or EOF) is available.
    ///
    /// # Errors
    ///
    /// [`DcError::Timeout`] after `max_ticks` rounds without input.
    pub fn sock_wait_input(&self, sock: TcpSock, max_ticks: usize) -> Result<(), DcError> {
        for _ in 0..max_ticks {
            if self.sock_bytesready(sock) > 0 || !self.sock_usable(sock) {
                return Ok(());
            }
            if let Some(sid) = self.conn_of(sock) {
                if self.net.with(|w| {
                    let mut probe = [0u8; 0];
                    matches!(w.tcp_recv(sid, &mut probe), Recv::Closed | Recv::Reset)
                }) {
                    return Ok(());
                }
            }
            self.tcp_tick(None);
        }
        Err(DcError::Timeout)
    }

    /// Whether the peer has closed its direction and everything buffered
    /// has been drained (distinguishes "no data yet" from end of stream).
    pub fn sock_peer_closed(&self, sock: TcpSock) -> bool {
        let Some(sid) = self.conn_of(sock) else {
            return false;
        };
        self.net.with(|w| {
            let mut probe = [0u8; 0];
            matches!(w.tcp_recv(sid, &mut probe), Recv::Closed | Recv::Reset)
        })
    }

    /// `sock_read`: non-blocking read of raw bytes.
    ///
    /// # Errors
    ///
    /// [`DcError::NotEstablished`] if the slot has no live connection.
    pub fn sock_read(&self, sock: TcpSock, buf: &mut [u8]) -> Result<usize, DcError> {
        let sid = self.conn_of(sock).ok_or(DcError::NotEstablished)?;
        match self.net.with(|w| w.tcp_recv(sid, buf)) {
            Recv::Data(n) => Ok(n),
            Recv::WouldBlock | Recv::Closed => Ok(0),
            Recv::Reset => Err(DcError::NotEstablished),
        }
    }

    /// `sock_write`: queues raw bytes; returns how many were accepted.
    ///
    /// # Errors
    ///
    /// [`DcError::NotEstablished`] without a live connection.
    pub fn sock_write(&self, sock: TcpSock, data: &[u8]) -> Result<usize, DcError> {
        let sid = self.conn_of(sock).ok_or(DcError::NotEstablished)?;
        self.net
            .with(|w| w.tcp_send(sid, data))
            .map_err(|_| DcError::NotEstablished)
    }

    /// `sock_gets`: in ASCII mode, returns the next complete line (without
    /// its terminator), or `None` if no full line has arrived.
    ///
    /// # Errors
    ///
    /// [`DcError::BadState`] in binary mode, [`DcError::NotEstablished`]
    /// without a connection.
    pub fn sock_gets(&self, sock: TcpSock) -> Result<Option<String>, DcError> {
        let mode = {
            let inner = self.inner.lock().expect("stack lock");
            inner.slots.get(sock.0).ok_or(DcError::BadSocket)?.mode
        };
        if mode != SockMode::Ascii {
            return Err(DcError::BadState);
        }
        let sid = self.conn_of(sock).ok_or(DcError::NotEstablished)?;
        // Move everything the stack has buffered into the slot's line
        // buffer, then split off the first complete line.
        let bytes = self.net.with(|w| {
            let avail = w.tcp_available(sid);
            if avail == 0 {
                return Vec::new();
            }
            let mut probe = vec![0u8; avail];
            match w.tcp_recv(sid, &mut probe) {
                Recv::Data(n) => {
                    probe.truncate(n);
                    probe
                }
                _ => Vec::new(),
            }
        });
        let mut inner = self.inner.lock().expect("stack lock");
        let entry = inner.line_bufs.entry(sock.0).or_default();
        entry.extend_from_slice(&bytes);
        let Some(pos) = entry.iter().position(|&b| b == b'\n') else {
            return Ok(None);
        };
        let mut line: Vec<u8> = entry.drain(..=pos).collect();
        line.pop(); // the \n itself
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Ok(Some(String::from_utf8_lossy(&line).into_owned()))
    }

    /// `sock_puts`: writes a string; ASCII mode appends CRLF.
    ///
    /// # Errors
    ///
    /// [`DcError::NotEstablished`] without a connection.
    pub fn sock_puts(&self, sock: TcpSock, line: &str) -> Result<(), DcError> {
        let mode = {
            let inner = self.inner.lock().expect("stack lock");
            inner.slots.get(sock.0).ok_or(DcError::BadSocket)?.mode
        };
        let sid = self.conn_of(sock).ok_or(DcError::NotEstablished)?;
        let mut data = line.as_bytes().to_vec();
        if mode == SockMode::Ascii {
            data.extend_from_slice(b"\r\n");
        }
        let mut off = 0;
        while off < data.len() {
            let n = self
                .net
                .with(|w| w.tcp_send(sid, &data[off..]))
                .map_err(|_| DcError::NotEstablished)?;
            off += n;
            if n == 0 {
                self.tcp_tick(None);
            }
        }
        Ok(())
    }

    /// `sock_close`: orderly close; the slot becomes reusable for another
    /// `tcp_listen`/`tcp_open`.
    pub fn sock_close(&self, sock: TcpSock) {
        let mut inner = self.inner.lock().expect("stack lock");
        let Some(slot) = inner.slots.get_mut(sock.0) else {
            return;
        };
        match std::mem::take(&mut slot.state) {
            SlotState::Connected(sid) => {
                slot.state = SlotState::Done;
                slot.accepted = false;
                let _ = self.net.with(|w| w.tcp_close(sid));
            }
            SlotState::Listening(port) => {
                slot.state = SlotState::Done;
                if let Some(ps) = inner.ports.get_mut(&port) {
                    ps.waiting.retain(|&i| i != sock.0);
                }
            }
            other => slot.state = other,
        }
        inner.line_bufs.remove(&sock.0);
    }
}

impl std::fmt::Debug for Stack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("stack lock");
        f.debug_struct("Stack")
            .field("host", &self.host)
            .field("slots", &inner.slots.len())
            .field("ports", &inner.ports.len())
            .finish()
    }
}
