//! A shared, cloneable handle to a [`netsim::World`], used by both socket
//! API flavours and by cooperative processes running in a
//! [`dynamicc::Scheduler`].

use std::sync::{Arc, Mutex};

use netsim::{HostId, Ipv4, LinkParams, World};

/// A cloneable handle to one simulated network.
///
/// Every clone refers to the same world; since the costatement scheduler
/// runs one body at a time, lock contention is nil and event ordering is
/// deterministic.
#[derive(Clone)]
pub struct Net {
    world: Arc<Mutex<World>>,
}

impl Net {
    /// Creates a network with a deterministic seed.
    pub fn new(seed: u64) -> Net {
        Net {
            world: Arc::new(Mutex::new(World::new(seed))),
        }
    }

    /// Adds a host.
    pub fn add_host(&self, name: &str, ip: Ipv4) -> HostId {
        self.world.lock().expect("world lock").add_host(name, ip)
    }

    /// Connects two hosts.
    pub fn link(&self, a: HostId, b: HostId, params: LinkParams) {
        self.world.lock().expect("world lock").link(a, b, params);
    }

    /// Runs `f` with exclusive access to the world.
    pub fn with<R>(&self, f: impl FnOnce(&mut World) -> R) -> R {
        f(&mut self.world.lock().expect("world lock"))
    }

    /// Current virtual time in microseconds.
    pub fn now(&self) -> u64 {
        self.world.lock().expect("world lock").now()
    }

    /// Advances virtual time by `us` microseconds, processing every event
    /// that falls due. This is what a driver costatement calls each slice.
    pub fn pump(&self, us: u64) {
        self.world.lock().expect("world lock").run_for(us);
    }

    /// Processes a single event. Returns false when the queue is idle.
    pub fn step(&self) -> bool {
        self.world.lock().expect("world lock").step()
    }

    /// The world's telemetry registry (cheap clone of a shared handle);
    /// `net.*` counters and anything layered on this world record here.
    pub fn telemetry(&self) -> telemetry::Registry {
        self.world.lock().expect("world lock").telemetry().clone()
    }
}

impl std::fmt::Debug for Net {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = self.world.lock().expect("world lock");
        write!(f, "Net({w:?})")
    }
}

/// How a pseudo-blocking call waits for the network.
///
/// * [`Blocking::Pump`] — the caller owns the event loop: step the world
///   until the condition holds (single-threaded client code, tests).
/// * [`Blocking::Yield`] — the caller is a costatement: yield each round
///   and let a driver costatement pump the world (the structure of the
///   paper's Figure 3 main loop).
#[derive(Clone)]
pub enum Blocking {
    /// Pump the world from this call.
    Pump,
    /// Yield to the costatement scheduler between checks.
    Yield(dynamicc::Co),
}

impl Blocking {
    /// Waits until `pred` returns true. Returns false if the wait cannot
    /// make progress (event queue drained in pump mode) or `max_rounds`
    /// passes without the predicate holding.
    pub fn wait_until(
        &self,
        net: &Net,
        mut pred: impl FnMut(&mut World) -> bool,
        max_rounds: usize,
    ) -> bool {
        for _ in 0..max_rounds {
            if net.with(&mut pred) {
                return true;
            }
            match self {
                Blocking::Pump => {
                    if !net.step() {
                        return net.with(&mut pred);
                    }
                }
                Blocking::Yield(co) => co.yield_now(),
            }
        }
        net.with(&mut pred)
    }
}

impl std::fmt::Debug for Blocking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Blocking::Pump => write!(f, "Blocking::Pump"),
            Blocking::Yield(_) => write!(f, "Blocking::Yield"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Endpoint;

    #[test]
    fn pump_mode_advances_time() {
        let net = Net::new(3);
        let a = net.add_host("a", Ipv4::new(10, 0, 0, 1));
        let b = net.add_host("b", Ipv4::new(10, 0, 0, 2));
        net.link(a, b, LinkParams::ethernet_10base_t());
        let listener = net.with(|w| w.tcp_listen(a, 80, 4)).unwrap();
        let c = net.with(|w| w.tcp_connect(b, Endpoint::new(Ipv4::new(10, 0, 0, 1), 80)));
        let ok = Blocking::Pump.wait_until(&net, |w| w.tcp_pending(listener) > 0, 100_000);
        assert!(ok);
        assert!(net.with(|w| w.tcp_established(c)));
        assert!(net.now() > 0);
    }
}
