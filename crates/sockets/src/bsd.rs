//! The BSD sockets API — the interface issl was written against on Unix
//! (the paper's Figure 2a): `socket` / `bind` / `listen` / `accept` /
//! `connect` / `send` / `recv` / `close` over small-integer descriptors,
//! with `sockaddr_in` structures holding network-byte-order fields.
//!
//! Calls that block on Unix (`accept`, `recv`, `connect`) pseudo-block
//! here through a [`Blocking`] policy: either pumping the simulated world
//! or yielding to the costatement scheduler.

use netsim::{htonl, htons, ntohl, ntohs, Endpoint, HostId, Ipv4, Recv, SocketId, TcpState, World};

use crate::net::{Blocking, Net};
use crate::poll::Readiness;

/// `AF_INET`.
pub const AF_INET: i32 = 2;
/// `SOCK_STREAM`.
pub const SOCK_STREAM: i32 = 1;
/// `INADDR_ANY`, in host byte order (pass through [`htonl`] as usual).
pub const INADDR_ANY: u32 = 0;

/// The classic `sockaddr_in`, fields in network byte order, built with
/// `htons`/`htonl` exactly as the paper's Figure 2a does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SockAddrIn {
    /// Address family (`AF_INET`).
    pub sin_family: u16,
    /// Port in network byte order.
    pub sin_port: u16,
    /// Address in network byte order.
    pub sin_addr: u32,
}

impl SockAddrIn {
    /// Builds an address the way C code does.
    pub fn new(ip: Ipv4, port: u16) -> SockAddrIn {
        SockAddrIn {
            sin_family: AF_INET as u16,
            sin_port: htons(port),
            sin_addr: htonl(ip.0),
        }
    }

    /// The endpoint this address denotes.
    pub fn endpoint(&self) -> Endpoint {
        Endpoint::new(Ipv4(ntohl(self.sin_addr)), ntohs(self.sin_port))
    }
}

/// Unix-style error numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Errno {
    /// Bad file descriptor.
    Ebadf,
    /// Invalid argument / wrong socket state.
    Einval,
    /// Address already in use.
    Eaddrinuse,
    /// Connection reset by peer.
    Econnreset,
    /// Connection refused.
    Econnrefused,
    /// Operation timed out.
    Etimedout,
}

impl std::fmt::Display for Errno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Errno::Ebadf => "EBADF",
            Errno::Einval => "EINVAL",
            Errno::Eaddrinuse => "EADDRINUSE",
            Errno::Econnreset => "ECONNRESET",
            Errno::Econnrefused => "ECONNREFUSED",
            Errno::Etimedout => "ETIMEDOUT",
        };
        write!(f, "{name}")
    }
}

impl std::error::Error for Errno {}

/// A file descriptor in a [`UnixProcess`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub i32);

#[derive(Debug, Clone, Copy)]
enum FdState {
    Fresh,
    Bound(u16),
    Listening(SocketId),
    Connected(SocketId),
    Closed,
}

/// A Unix process's view of the network: a descriptor table over one
/// host's stack.
///
/// The paper's host-side service `fork`s per connection; model that by
/// creating one `UnixProcess` per costatement (they share the host).
pub struct UnixProcess {
    net: Net,
    host: HostId,
    blocking: Blocking,
    fds: Vec<FdState>,
    /// Rounds a pseudo-blocking call spins before giving up.
    pub timeout_rounds: usize,
}

impl UnixProcess {
    /// Creates a process that pumps the world when it blocks.
    pub fn new(net: &Net, host: HostId) -> UnixProcess {
        UnixProcess {
            net: net.clone(),
            host,
            blocking: Blocking::Pump,
            fds: Vec::new(),
            timeout_rounds: 1_000_000,
        }
    }

    /// Creates a process that yields to the costatement scheduler when it
    /// blocks (use inside [`dynamicc::Scheduler`] bodies).
    pub fn in_costate(net: &Net, host: HostId, co: dynamicc::Co) -> UnixProcess {
        UnixProcess {
            net: net.clone(),
            host,
            blocking: Blocking::Yield(co),
            fds: Vec::new(),
            timeout_rounds: 1_000_000,
        }
    }

    /// The host this process runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The network handle.
    pub fn net(&self) -> &Net {
        &self.net
    }

    fn fd_state(&mut self, fd: Fd) -> Result<&mut FdState, Errno> {
        self.fds.get_mut(fd.0 as usize).ok_or(Errno::Ebadf)
    }

    fn fd_ref(&self, fd: Fd) -> Result<&FdState, Errno> {
        self.fds.get(fd.0 as usize).ok_or(Errno::Ebadf)
    }

    fn readiness_of(w: &World, state: &FdState) -> Readiness {
        match state {
            FdState::Listening(sid) => Readiness {
                accept_ready: w.tcp_pending(*sid) > 0,
                ..Readiness::NONE
            },
            FdState::Connected(sid) => {
                let closed = w.tcp_peer_closed(*sid);
                Readiness {
                    readable: w.tcp_available(*sid) > 0 || closed,
                    writable: w.tcp_send_room(*sid) > 0,
                    accept_ready: false,
                    peer_closed: closed,
                }
            }
            _ => Readiness::NONE,
        }
    }

    /// `poll(2)`-style snapshot for one descriptor, computed from netsim
    /// socket state — never pumps the world.
    ///
    /// # Errors
    ///
    /// `EBADF` on a bad descriptor.
    pub fn readiness(&self, fd: Fd) -> Result<Readiness, Errno> {
        let state = self.fd_ref(fd)?;
        Ok(self.net.with(|w| Self::readiness_of(w, state)))
    }

    /// Polls a descriptor set, returning only the ready entries.
    ///
    /// # Errors
    ///
    /// `EBADF` if any descriptor is bad.
    pub fn poll(&self, fds: &[Fd]) -> Result<Vec<(Fd, Readiness)>, Errno> {
        let mut out = Vec::new();
        for &fd in fds {
            let r = self.readiness(fd)?;
            if r.any() {
                out.push((fd, r));
            }
        }
        Ok(out)
    }

    /// Pseudo-blocking poll: waits (pumping the world or yielding to the
    /// scheduler, per this process's [`Blocking`] policy) until at least
    /// one descriptor is ready, then returns the ready set.
    ///
    /// # Errors
    ///
    /// `EBADF` on a bad descriptor; `ETIMEDOUT` if nothing becomes ready
    /// within the timeout budget.
    pub fn poll_wait(&mut self, fds: &[Fd]) -> Result<Vec<(Fd, Readiness)>, Errno> {
        let mut states = Vec::with_capacity(fds.len());
        for &fd in fds {
            states.push((fd, *self.fd_ref(fd)?));
        }
        let ok = self.blocking.wait_until(
            &self.net,
            |w| states.iter().any(|(_, st)| Self::readiness_of(w, st).any()),
            self.timeout_rounds,
        );
        if !ok {
            return Err(Errno::Etimedout);
        }
        Ok(self.net.with(|w| {
            states
                .iter()
                .map(|&(fd, ref st)| (fd, Self::readiness_of(w, st)))
                .filter(|(_, r)| r.any())
                .collect()
        }))
    }

    /// `socket(AF_INET, SOCK_STREAM, 0)`.
    ///
    /// # Errors
    ///
    /// `EINVAL` for any other domain/type combination.
    pub fn socket(&mut self, domain: i32, ty: i32, _protocol: i32) -> Result<Fd, Errno> {
        if domain != AF_INET || ty != SOCK_STREAM {
            return Err(Errno::Einval);
        }
        self.fds.push(FdState::Fresh);
        Ok(Fd(self.fds.len() as i32 - 1))
    }

    /// `bind(fd, addr)`: records the local port.
    ///
    /// # Errors
    ///
    /// `EBADF` / `EINVAL` on a bad descriptor or state.
    pub fn bind(&mut self, fd: Fd, addr: &SockAddrIn) -> Result<(), Errno> {
        let port = ntohs(addr.sin_port);
        match self.fd_state(fd)? {
            s @ FdState::Fresh => {
                *s = FdState::Bound(port);
                Ok(())
            }
            _ => Err(Errno::Einval),
        }
    }

    /// `listen(fd, backlog)`.
    ///
    /// # Errors
    ///
    /// `EADDRINUSE` if another listener owns the port; `EINVAL` if the
    /// descriptor is not bound.
    pub fn listen(&mut self, fd: Fd, backlog: usize) -> Result<(), Errno> {
        let host = self.host;
        let net = self.net.clone();
        let port = match self.fd_state(fd)? {
            FdState::Bound(p) => *p,
            _ => return Err(Errno::Einval),
        };
        let sid = net
            .with(|w| w.tcp_listen(host, port, backlog))
            .map_err(|_| Errno::Eaddrinuse)?;
        *self.fd_state(fd)? = FdState::Listening(sid);
        Ok(())
    }

    /// `accept(fd)`: pseudo-blocks until a connection is established,
    /// returning a new descriptor for it.
    ///
    /// # Errors
    ///
    /// `EINVAL` if the descriptor is not listening; `ETIMEDOUT` if no
    /// connection arrives within the timeout budget.
    pub fn accept(&mut self, fd: Fd) -> Result<Fd, Errno> {
        let sid = match self.fd_state(fd)? {
            FdState::Listening(s) => *s,
            _ => return Err(Errno::Einval),
        };
        let ok =
            self.blocking
                .wait_until(&self.net, |w| w.tcp_pending(sid) > 0, self.timeout_rounds);
        if !ok {
            return Err(Errno::Etimedout);
        }
        let conn = self.net.with(|w| w.tcp_accept(sid)).ok_or(Errno::Einval)?;
        self.fds.push(FdState::Connected(conn));
        Ok(Fd(self.fds.len() as i32 - 1))
    }

    /// `connect(fd, addr)`: active open, pseudo-blocking until
    /// established or refused.
    ///
    /// # Errors
    ///
    /// `ECONNREFUSED` on RST, `ETIMEDOUT` when the handshake never
    /// completes.
    pub fn connect(&mut self, fd: Fd, addr: &SockAddrIn) -> Result<(), Errno> {
        match self.fd_state(fd)? {
            FdState::Fresh | FdState::Bound(_) => {}
            _ => return Err(Errno::Einval),
        }
        let host = self.host;
        let remote = addr.endpoint();
        let sid = self.net.with(|w| w.tcp_connect(host, remote));
        let ok = self.blocking.wait_until(
            &self.net,
            |w| w.tcp_established(sid) || w.tcp_state(sid) == TcpState::Closed,
            self.timeout_rounds,
        );
        if !ok {
            return Err(Errno::Etimedout);
        }
        if !self.net.with(|w| w.tcp_established(sid)) {
            return Err(Errno::Econnrefused);
        }
        *self.fd_state(fd)? = FdState::Connected(sid);
        Ok(())
    }

    /// `send(fd, buf, 0)`: queues data, pseudo-blocking until the stack
    /// accepts at least one byte.
    ///
    /// # Errors
    ///
    /// `ECONNRESET` after an RST; `EINVAL` in a non-connected state.
    pub fn send(&mut self, fd: Fd, data: &[u8]) -> Result<usize, Errno> {
        let sid = match self.fd_state(fd)? {
            FdState::Connected(s) => *s,
            _ => return Err(Errno::Einval),
        };
        let mut sent = 0;
        while sent == 0 {
            sent = self
                .net
                .with(|w| w.tcp_send(sid, data))
                .map_err(|e| match e {
                    netsim::NetError::ConnectionReset => Errno::Econnreset,
                    _ => Errno::Einval,
                })?;
            if sent == 0 {
                let ok = self.blocking.wait_until(
                    &self.net,
                    |w| w.tcp_unacked(sid) < netsim::SEND_BUFFER,
                    self.timeout_rounds,
                );
                if !ok {
                    return Err(Errno::Etimedout);
                }
            }
        }
        Ok(sent)
    }

    /// Sends the whole buffer, pseudo-blocking as needed.
    ///
    /// # Errors
    ///
    /// As [`UnixProcess::send`].
    pub fn send_all(&mut self, fd: Fd, mut data: &[u8]) -> Result<(), Errno> {
        while !data.is_empty() {
            let n = self.send(fd, data)?;
            data = &data[n..];
        }
        Ok(())
    }

    /// `recv(fd, buf, 0)`: pseudo-blocks for data; returns 0 at orderly
    /// end of stream.
    ///
    /// # Errors
    ///
    /// `ECONNRESET` after an RST; `ETIMEDOUT` if nothing arrives.
    pub fn recv(&mut self, fd: Fd, buf: &mut [u8]) -> Result<usize, Errno> {
        let sid = match self.fd_state(fd)? {
            FdState::Connected(s) => *s,
            _ => return Err(Errno::Einval),
        };
        let ok = self.blocking.wait_until(
            &self.net,
            |w| {
                w.tcp_available(sid) > 0
                    || matches!(
                        {
                            let mut probe = [0u8; 0];
                            w.tcp_recv(sid, &mut probe)
                        },
                        Recv::Closed | Recv::Reset
                    )
            },
            self.timeout_rounds,
        );
        if !ok {
            return Err(Errno::Etimedout);
        }
        match self.net.with(|w| w.tcp_recv(sid, buf)) {
            Recv::Data(n) => Ok(n),
            Recv::Closed => Ok(0),
            Recv::Reset => Err(Errno::Econnreset),
            Recv::WouldBlock => Ok(0),
        }
    }

    /// `close(fd)`.
    ///
    /// # Errors
    ///
    /// `EBADF` on a bad descriptor.
    pub fn close(&mut self, fd: Fd) -> Result<(), Errno> {
        let state = self.fd_state(fd)?;
        match state {
            FdState::Connected(sid) | FdState::Listening(sid) => {
                let sid = *sid;
                *state = FdState::Closed;
                let _ = self.net.with(|w| w.tcp_close(sid));
            }
            _ => *state = FdState::Closed,
        }
        Ok(())
    }

    /// Bytes readable without blocking (a `FIONREAD` analogue).
    pub fn available(&mut self, fd: Fd) -> Result<usize, Errno> {
        let sid = match self.fd_state(fd)? {
            FdState::Connected(s) => *s,
            _ => return Err(Errno::Einval),
        };
        Ok(self.net.with(|w| w.tcp_available(sid)))
    }
}

impl std::fmt::Debug for UnixProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnixProcess")
            .field("host", &self.host)
            .field("fds", &self.fds.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::LinkParams;

    #[test]
    fn sockaddr_uses_network_byte_order() {
        let addr = SockAddrIn::new(Ipv4::new(10, 0, 0, 1), 4433);
        assert_eq!(addr.sin_port, htons(4433));
        assert_eq!(addr.endpoint().port, 4433);
        assert_eq!(addr.endpoint().ip, Ipv4::new(10, 0, 0, 1));
    }

    #[test]
    fn socket_rejects_non_inet_stream() {
        let net = Net::new(1);
        let h = net.add_host("h", Ipv4::new(1, 1, 1, 1));
        let mut p = UnixProcess::new(&net, h);
        assert_eq!(p.socket(99, SOCK_STREAM, 0), Err(Errno::Einval));
        assert_eq!(p.socket(AF_INET, 99, 0), Err(Errno::Einval));
        assert!(p.socket(AF_INET, SOCK_STREAM, 0).is_ok());
    }

    #[test]
    fn bind_requires_fresh_socket() {
        let net = Net::new(1);
        let h = net.add_host("h", Ipv4::new(1, 1, 1, 1));
        let mut p = UnixProcess::new(&net, h);
        let fd = p.socket(AF_INET, SOCK_STREAM, 0).unwrap();
        let addr = SockAddrIn::new(Ipv4::ANY, 80);
        p.bind(fd, &addr).unwrap();
        assert_eq!(p.bind(fd, &addr), Err(Errno::Einval));
    }

    #[test]
    fn echo_over_bsd_api_single_thread() {
        let net = Net::new(5);
        let sh = net.add_host("server", Ipv4::new(10, 0, 0, 1));
        let ch = net.add_host("client", Ipv4::new(10, 0, 0, 2));
        net.link(sh, ch, LinkParams::ethernet_10base_t());

        let mut server = UnixProcess::new(&net, sh);
        let lfd = server.socket(AF_INET, SOCK_STREAM, 0).unwrap();
        server.bind(lfd, &SockAddrIn::new(Ipv4::ANY, 7)).unwrap();
        server.listen(lfd, 4).unwrap();

        let mut client = UnixProcess::new(&net, ch);
        let cfd = client.socket(AF_INET, SOCK_STREAM, 0).unwrap();
        client
            .connect(cfd, &SockAddrIn::new(Ipv4::new(10, 0, 0, 1), 7))
            .unwrap();
        client.send_all(cfd, b"hello bsd").unwrap();

        let afd = server.accept(lfd).unwrap();
        let mut buf = [0u8; 64];
        let n = server.recv(afd, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello bsd");
        server.send_all(afd, &buf[..n]).unwrap();

        let n = client.recv(cfd, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello bsd");

        client.close(cfd).unwrap();
        let n = server.recv(afd, &mut buf).unwrap();
        assert_eq!(n, 0, "orderly EOF after peer close");
    }
}
