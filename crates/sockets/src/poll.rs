//! Readiness notification — the `select`/`poll` half of the BSD model the
//! paper's host-side service never needed (it forked per connection) but
//! that mass-concurrency serving does.
//!
//! A [`Readiness`] snapshot is computed from netsim socket state
//! (buffered bytes, send-buffer room, pending accepts, peer FIN/RST), not
//! by spin-ticking the world. Event-driven callers combine these
//! snapshots with [`netsim::World::take_socket_events`] so each loop
//! iteration is O(sockets that changed), not O(all sockets).

/// What a descriptor can do right now without blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Readiness {
    /// A read would return data — or EOF: like `poll(2)`'s `POLLIN`, a
    /// closed peer makes the descriptor readable so the caller observes
    /// the end of stream.
    pub readable: bool,
    /// A write would accept at least one byte.
    pub writable: bool,
    /// For a listener: an established connection is waiting to be
    /// accepted. For a Dynamic C listen slot (which has no `accept`): the
    /// slot has been handed its connection and the handshake finished.
    pub accept_ready: bool,
    /// The peer has sent FIN or RST (`POLLHUP` analogue). Buffered data
    /// may still be readable.
    pub peer_closed: bool,
}

impl Readiness {
    /// Nothing ready.
    pub const NONE: Readiness = Readiness {
        readable: false,
        writable: false,
        accept_ready: false,
        peer_closed: false,
    };

    /// Whether any condition is set.
    pub fn any(&self) -> bool {
        self.readable || self.writable || self.accept_ready || self.peer_closed
    }
}
