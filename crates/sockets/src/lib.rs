//! Two socket APIs over one simulated network — the exact API gap that
//! made the port in *Porting a Network Cryptographic Service to the
//! RMC2000* (DATE 2003) hard (its Figure 2):
//!
//! * [`bsd`] — the Unix interface issl was written against:
//!   `socket`/`bind`/`listen`/`accept`/`recv`/`send` over descriptors,
//!   with `sockaddr_in` and `htons`/`htonl`.
//! * [`dynic`] — the Dynamic C interface of the RMC2000 kit:
//!   `sock_init`, `tcp_listen` (no accept; the listening socket becomes
//!   the connection), `tcp_tick` driving the stack, ASCII-mode
//!   `sock_gets`/`sock_puts`.
//!
//! Both run over [`Net`], a shared handle to a [`netsim::World`], so the
//! same service can be written against each API and compared packet for
//! packet.

pub mod bsd;
pub mod dynic;
pub mod net;
pub mod poll;

pub use net::{Blocking, Net};
pub use poll::Readiness;
