//! `xalloc`: Dynamic C's extended-memory allocator.
//!
//! The paper's §5.2: *"Dynamic C does not support the standard library
//! functions `malloc` and `free`. Instead, it provides the `xalloc`
//! function that allocates extended memory only … More seriously, there is
//! no analogue to `free`; allocated memory cannot be returned to a pool."*
//!
//! [`Xalloc`] reproduces exactly that: a bump allocator over a fixed
//! arena, deliberately without a `free`. The ported issl profile uses it
//! once at start-up and then never allocates — the restructuring the paper
//! describes.

use std::fmt;

/// An opaque handle to an extended-memory allocation.
///
/// Like the address `xalloc` returns on the Rabbit, a handle supports no
/// pointer arithmetic; it only indexes back into the arena it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XPtr {
    offset: u32,
    len: u32,
}

impl XPtr {
    /// Length of the allocation in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Offset of the allocation within its arena (the "physical address").
    pub fn offset(&self) -> u32 {
        self.offset
    }
}

/// The error returned when the arena is exhausted.
///
/// There being no `free`, exhaustion is permanent — the condition that
/// forced the authors to statically allocate everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfXmem {
    /// Bytes requested.
    pub requested: usize,
    /// Bytes remaining in the arena.
    pub remaining: usize,
}

impl fmt::Display for OutOfXmem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xalloc of {} bytes failed with {} remaining (xalloc has no free)",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for OutOfXmem {}

/// A fixed-size extended-memory arena with a bump allocator and no `free`.
pub struct Xalloc {
    arena: Vec<u8>,
    next: usize,
    allocations: u64,
}

impl Xalloc {
    /// Creates an arena of `size` bytes. The RMC2000's usable xmem after
    /// the TCP/IP stack is on the order of tens of KiB.
    pub fn new(size: usize) -> Xalloc {
        Xalloc {
            arena: vec![0; size],
            next: 0,
            allocations: 0,
        }
    }

    /// Allocates `len` bytes, zero-initialised.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfXmem`] when fewer than `len` bytes remain. There is
    /// deliberately no way to free.
    pub fn alloc(&mut self, len: usize) -> Result<XPtr, OutOfXmem> {
        if len > self.arena.len() - self.next {
            return Err(OutOfXmem {
                requested: len,
                remaining: self.remaining(),
            });
        }
        let ptr = XPtr {
            offset: self.next as u32,
            len: len as u32,
        };
        self.next += len;
        self.allocations += 1;
        Ok(ptr)
    }

    /// Immutable view of an allocation.
    pub fn bytes(&self, ptr: XPtr) -> &[u8] {
        &self.arena[ptr.offset as usize..ptr.offset as usize + ptr.len as usize]
    }

    /// Mutable view of an allocation.
    pub fn bytes_mut(&mut self, ptr: XPtr) -> &mut [u8] {
        &mut self.arena[ptr.offset as usize..ptr.offset as usize + ptr.len as usize]
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.arena.len() - self.next
    }

    /// Bytes handed out so far.
    pub fn used(&self) -> usize {
        self.next
    }

    /// Number of successful allocations, for the allocation-trace
    /// comparison between the host and RMC profiles (experiment E7).
    pub fn allocation_count(&self) -> u64 {
        self.allocations
    }
}

impl fmt::Debug for Xalloc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Xalloc")
            .field("size", &self.arena.len())
            .field("used", &self.next)
            .field("allocations", &self.allocations)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocates_contiguously() {
        let mut x = Xalloc::new(64);
        let a = x.alloc(16).unwrap();
        let b = x.alloc(16).unwrap();
        assert_eq!(a.offset(), 0);
        assert_eq!(b.offset(), 16);
        assert_eq!(x.used(), 32);
        assert_eq!(x.remaining(), 32);
    }

    #[test]
    fn exhaustion_is_permanent() {
        let mut x = Xalloc::new(8);
        x.alloc(8).unwrap();
        let err = x.alloc(1).unwrap_err();
        assert_eq!(err.remaining, 0);
        // Still failing later: nothing can ever be freed.
        assert!(x.alloc(1).is_err());
    }

    #[test]
    fn views_are_disjoint_and_writable() {
        let mut x = Xalloc::new(32);
        let a = x.alloc(4).unwrap();
        let b = x.alloc(4).unwrap();
        x.bytes_mut(a).copy_from_slice(&[1, 2, 3, 4]);
        x.bytes_mut(b).copy_from_slice(&[5, 6, 7, 8]);
        assert_eq!(x.bytes(a), &[1, 2, 3, 4]);
        assert_eq!(x.bytes(b), &[5, 6, 7, 8]);
    }

    #[test]
    fn zero_length_allocs_work() {
        let mut x = Xalloc::new(4);
        let z = x.alloc(0).unwrap();
        assert!(z.is_empty());
        assert_eq!(x.allocation_count(), 1);
    }
}
