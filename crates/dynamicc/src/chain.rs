//! Function chains (paper §4.4): named chains of code segments that all
//! execute when the chain is invoked (`#makechain` / `#funcchain`).

use std::collections::BTreeMap;

/// A registry of named function chains over a context type `C`.
///
/// ```
/// use dynamicc::chain::FunctionChains;
///
/// let mut chains: FunctionChains<Vec<&'static str>> = FunctionChains::new();
/// chains.make_chain("recover");
/// chains.func_chain("recover", |log| log.push("free_memory"));
/// chains.func_chain("recover", |log| log.push("declare_memory"));
/// chains.func_chain("recover", |log| log.push("initialize"));
///
/// let mut log = Vec::new();
/// chains.invoke("recover", &mut log).unwrap();
/// assert_eq!(log, ["free_memory", "declare_memory", "initialize"]);
/// ```
/// One registered chain segment.
type Segment<C> = Box<dyn FnMut(&mut C)>;

pub struct FunctionChains<C> {
    chains: BTreeMap<String, Vec<Segment<C>>>,
}

/// Error invoking a chain that was never declared with `make_chain`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownChain(pub String);

impl std::fmt::Display for UnknownChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown function chain `{}`", self.0)
    }
}

impl std::error::Error for UnknownChain {}

impl<C> FunctionChains<C> {
    /// Creates an empty registry.
    pub fn new() -> FunctionChains<C> {
        FunctionChains {
            chains: BTreeMap::new(),
        }
    }

    /// `#makechain name`: declares an (initially empty) chain. Declaring
    /// twice is harmless.
    pub fn make_chain(&mut self, name: &str) {
        self.chains.entry(name.to_string()).or_default();
    }

    /// `#funcchain name segment`: appends a segment to a chain, declaring
    /// the chain if needed.
    pub fn func_chain<F: FnMut(&mut C) + 'static>(&mut self, name: &str, segment: F) {
        self.chains
            .entry(name.to_string())
            .or_default()
            .push(Box::new(segment));
    }

    /// Invokes every segment of `name`, in registration order.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownChain`] if the chain was never declared.
    pub fn invoke(&mut self, name: &str, ctx: &mut C) -> Result<usize, UnknownChain> {
        let segs = self
            .chains
            .get_mut(name)
            .ok_or_else(|| UnknownChain(name.to_string()))?;
        for seg in segs.iter_mut() {
            seg(ctx);
        }
        Ok(segs.len())
    }

    /// Number of segments registered on `name`.
    pub fn len(&self, name: &str) -> usize {
        self.chains.get(name).map_or(0, Vec::len)
    }

    /// Whether `name` has no segments (or does not exist).
    pub fn is_empty(&self, name: &str) -> bool {
        self.len(name) == 0
    }
}

impl<C> Default for FunctionChains<C> {
    fn default() -> FunctionChains<C> {
        FunctionChains::new()
    }
}

impl<C> std::fmt::Debug for FunctionChains<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let summary: Vec<(&str, usize)> = self
            .chains
            .iter()
            .map(|(k, v)| (k.as_str(), v.len()))
            .collect();
        f.debug_struct("FunctionChains")
            .field("chains", &summary)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_run_in_registration_order() {
        let mut chains: FunctionChains<Vec<u8>> = FunctionChains::new();
        chains.func_chain("boot", |v| v.push(1));
        chains.func_chain("boot", |v| v.push(2));
        let mut ctx = Vec::new();
        assert_eq!(chains.invoke("boot", &mut ctx), Ok(2));
        assert_eq!(ctx, [1, 2]);
    }

    #[test]
    fn unknown_chain_is_an_error() {
        let mut chains: FunctionChains<()> = FunctionChains::new();
        assert_eq!(
            chains.invoke("nope", &mut ()),
            Err(UnknownChain("nope".into()))
        );
    }

    #[test]
    fn empty_declared_chain_invokes_zero_segments() {
        let mut chains: FunctionChains<()> = FunctionChains::new();
        chains.make_chain("empty");
        assert_eq!(chains.invoke("empty", &mut ()), Ok(0));
        assert!(chains.is_empty("empty"));
    }
}
