//! A Rust model of the **Dynamic C** runtime — the ANSI-C variant shipped
//! with Rabbit Semiconductor's microcontrollers — as described in §4 of
//! *Porting a Network Cryptographic Service to the RMC2000* (DATE 2003).
//!
//! The porting difficulties the paper catalogues are mostly properties of
//! this runtime rather than of the silicon:
//!
//! * **Costatements/cofunctions** ([`costate`]): cooperative multitasking
//!   with `yield` and `waitfor`, which replaced the Unix `fork`/`accept`
//!   server structure and capped the port at three simultaneous
//!   connections (Figure 3).
//! * **`xalloc` without `free`** ([`xmem`]): forced the authors to remove
//!   all `malloc` uses and statically allocate, dropping multi-key/block
//!   support from issl.
//! * **`shared` / `protected` storage classes** ([`storage`]): atomic
//!   multibyte updates and battery-backed shadows.
//! * **Function chains** ([`chain`]): `#makechain`/`#funcchain`.
//! * **`defineErrorHandler`** ([`error`]): the hook that replaces OS
//!   signal handling; the paper's port "simply ignored most errors".
//!
//! Dynamic C's *preemptive* options (`slice`, µC/OS-II) are deliberately
//! not modelled: the paper's port did not use them.

pub mod chain;
pub mod costate;
pub mod error;
pub mod storage;
pub mod xmem;

pub use chain::{FunctionChains, UnknownChain};
pub use costate::{Co, CostateId, Scheduler};
pub use error::{Disposition, ErrorHandler, ErrorInfo, ErrorKind};
pub use storage::{Placement, Protected, Shared};
pub use xmem::{OutOfXmem, XPtr, Xalloc};
