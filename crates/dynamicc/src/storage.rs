//! The Dynamic C storage-class specifiers (paper §4.3): `shared` and
//! `protected` variables, and root/xmem placement tags.

use std::sync::{Arc, Mutex};

/// A `shared` variable: Dynamic C disables interrupts while a multibyte
/// `shared` variable is changed so updates are atomic.
///
/// The Rust model wraps the value in a mutex; since the costatement
/// scheduler runs one body at a time and ISRs are modelled as ordinary
/// readers, lock contention is nil, but torn reads are impossible — the
/// same guarantee the keyword gives.
#[derive(Debug, Clone, Default)]
pub struct Shared<T: Copy> {
    inner: Arc<Mutex<T>>,
}

impl<T: Copy> Shared<T> {
    /// Wraps an initial value.
    pub fn new(value: T) -> Shared<T> {
        Shared {
            inner: Arc::new(Mutex::new(value)),
        }
    }

    /// Atomically reads the value.
    pub fn get(&self) -> T {
        *self.inner.lock().expect("shared variable lock")
    }

    /// Atomically replaces the value.
    pub fn set(&self, value: T) {
        *self.inner.lock().expect("shared variable lock") = value;
    }

    /// Atomically applies `f` to the value (a multi-byte read-modify-write
    /// that an interrupt can never split).
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.inner.lock().expect("shared variable lock"))
    }
}

/// A `protected` variable: Dynamic C copies the value to battery-backed
/// RAM before every modification; `_sysIsSoftReset` restores the backups
/// after a reset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Protected<T: Clone> {
    value: T,
    backup: T,
}

impl<T: Clone> Protected<T> {
    /// Wraps an initial value (also used as the initial backup).
    pub fn new(value: T) -> Protected<T> {
        Protected {
            backup: value.clone(),
            value,
        }
    }

    /// Reads the live value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Writes the live value, first checkpointing the old value to the
    /// battery-backed shadow — exactly the keyword's code-generation
    /// contract.
    pub fn set(&mut self, value: T) {
        self.backup = self.value.clone();
        self.value = value;
    }

    /// Simulates an unexpected reset mid-update: the live value is lost
    /// (replaced by `garbage`), the backup survives.
    pub fn corrupt(&mut self, garbage: T) {
        self.value = garbage;
    }

    /// `_sysIsSoftReset()`: restores the live value from the backup.
    pub fn restore(&mut self) {
        self.value = self.backup.clone();
    }
}

/// Placement of a function or datum in the Rabbit memory map (the `root` /
/// `xmem` storage-class specifiers of §4.3).
///
/// Root placement avoids the XPC window switch on access, which is why the
/// authors moved AES tables to root memory during the E2 optimization
/// sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Lower 52 KiB, always mapped: cheapest access.
    Root,
    /// Bank-switched extended memory behind the XPC window.
    #[default]
    Xmem,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_update_is_read_modify_write() {
        let v = Shared::new(10u32);
        v.update(|x| *x += 5);
        assert_eq!(v.get(), 15);
    }

    #[test]
    fn shared_clones_alias() {
        let a = Shared::new(1u16);
        let b = a.clone();
        b.set(7);
        assert_eq!(a.get(), 7);
    }

    #[test]
    fn protected_survives_reset_mid_update() {
        let mut state = Protected::new(100u32);
        state.set(200); // backup now holds 100
        state.set(300); // backup now holds 200
        state.corrupt(0xDEAD_BEEF); // power glitch mid-write
        state.restore();
        assert_eq!(*state.get(), 200);
    }

    #[test]
    fn placement_defaults_to_xmem() {
        assert_eq!(Placement::default(), Placement::Xmem);
    }
}
