//! The runtime error-handler hook (paper §4.1): Dynamic C has no operating
//! system to field hardware exceptions, so firmware registers a handler
//! with `defineErrorHandler(void *errfcn)` and the hardware pushes the
//! source and type of error before calling it.

use std::sync::{Arc, Mutex};

/// The runtime errors the Rabbit hardware/libraries raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Integer divide by zero (library-raised).
    DivideByZero,
    /// An undefined opcode reached the CPU.
    InvalidOpcode,
    /// Stack pointer escaped the stack segment.
    StackFault,
    /// Library assertion (range error, bad argument).
    LibraryError,
    /// Watchdog expiry.
    Watchdog,
}

/// Information pushed on the stack for the handler, per the paper: "the
/// hardware passes information about the source and type of error on the
/// stack and calls this user-defined error handler".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorInfo {
    /// What went wrong.
    pub kind: ErrorKind,
    /// Address (or best-effort origin) of the fault.
    pub address: u16,
    /// Raw auxiliary word (opcode byte, divisor, …).
    pub aux: u16,
}

/// What the handler tells the runtime to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Disposition {
    /// Ignore and continue — what the paper's port did: "Because our
    /// application was not designed for high reliability, we simply
    /// ignored most errors."
    #[default]
    Ignore,
    /// Reset the application (possibly preserving `protected` state).
    Reset,
    /// Halt the system.
    Halt,
}

type Handler = dyn FnMut(ErrorInfo) -> Disposition + Send;

/// The error-handler registry; clone handles share the same handler.
#[derive(Clone, Default)]
pub struct ErrorHandler {
    inner: Arc<Mutex<ErrorHandlerInner>>,
}

#[derive(Default)]
struct ErrorHandlerInner {
    handler: Option<Box<Handler>>,
    raised: Vec<ErrorInfo>,
}

impl ErrorHandler {
    /// Creates a registry with no handler installed (faults are ignored,
    /// but still recorded for inspection).
    pub fn new() -> ErrorHandler {
        ErrorHandler::default()
    }

    /// `defineErrorHandler`: installs (or replaces) the handler.
    pub fn define<F: FnMut(ErrorInfo) -> Disposition + Send + 'static>(&self, handler: F) {
        self.inner.lock().expect("error handler lock").handler = Some(Box::new(handler));
    }

    /// Raises an error: invokes the handler if installed, else ignores.
    /// Every raise is recorded.
    pub fn raise(&self, info: ErrorInfo) -> Disposition {
        let mut inner = self.inner.lock().expect("error handler lock");
        inner.raised.push(info);
        match inner.handler.as_mut() {
            Some(h) => h(info),
            None => Disposition::Ignore,
        }
    }

    /// Every error raised so far, oldest first.
    pub fn raised(&self) -> Vec<ErrorInfo> {
        self.inner
            .lock()
            .expect("error handler lock")
            .raised
            .clone()
    }
}

impl std::fmt::Debug for ErrorHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("error handler lock");
        f.debug_struct("ErrorHandler")
            .field("installed", &inner.handler.is_some())
            .field("raised", &inner.raised.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(kind: ErrorKind) -> ErrorInfo {
        ErrorInfo {
            kind,
            address: 0x4000,
            aux: 0,
        }
    }

    #[test]
    fn unhandled_errors_are_ignored_but_recorded() {
        let eh = ErrorHandler::new();
        assert_eq!(eh.raise(info(ErrorKind::DivideByZero)), Disposition::Ignore);
        assert_eq!(eh.raised().len(), 1);
    }

    #[test]
    fn handler_sees_info_and_chooses_disposition() {
        let eh = ErrorHandler::new();
        eh.define(|i| {
            if i.kind == ErrorKind::Watchdog {
                Disposition::Reset
            } else {
                Disposition::Ignore
            }
        });
        assert_eq!(eh.raise(info(ErrorKind::LibraryError)), Disposition::Ignore);
        assert_eq!(eh.raise(info(ErrorKind::Watchdog)), Disposition::Reset);
    }

    #[test]
    fn clones_share_the_handler() {
        let eh = ErrorHandler::new();
        let eh2 = eh.clone();
        eh.define(|_| Disposition::Halt);
        assert_eq!(eh2.raise(info(ErrorKind::StackFault)), Disposition::Halt);
        assert_eq!(eh.raised().len(), 1);
    }
}
