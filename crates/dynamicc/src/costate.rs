//! Costatements: Dynamic C's cooperative multitasking primitive.
//!
//! Dynamic C gives each costatement an independent program counter and
//! switches between them only at explicit `yield` / `waitfor` points (the
//! paper's §4.2). This module reproduces those semantics with one OS
//! thread per costatement and a scheduler that permits exactly one body to
//! run at a time, handing control back and forth synchronously — execution
//! is therefore deterministic round-robin, just like the language feature.
//!
//! ```
//! use dynamicc::costate::Scheduler;
//! use std::sync::{Arc, atomic::{AtomicU32, Ordering}};
//!
//! let counter = Arc::new(AtomicU32::new(0));
//! let mut sched = Scheduler::new();
//! for _ in 0..3 {
//!     let counter = Arc::clone(&counter);
//!     sched.spawn("worker", move |co| {
//!         for _ in 0..5 {
//!             counter.fetch_add(1, Ordering::SeqCst);
//!             co.yield_now(); // force context switch, as in the paper
//!         }
//!     });
//! }
//! sched.run_to_completion(1_000);
//! assert_eq!(counter.load(Ordering::SeqCst), 15);
//! ```

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Whose turn it is to run on a costatement's baton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Scheduler,
    Costate,
    Finished,
    Killed,
}

/// A predicate registered by [`Co::wait_until`], evaluated by the
/// scheduler so the parked costatement's thread stays asleep until it
/// holds (each evaluation otherwise costs two context switches).
type ParkPredicate = Box<dyn FnMut() -> bool + Send>;

struct Baton {
    turn: Mutex<Turn>,
    cv: Condvar,
    parked: Mutex<Option<ParkPredicate>>,
}

impl Baton {
    fn new() -> Baton {
        Baton {
            turn: Mutex::new(Turn::Scheduler),
            cv: Condvar::new(),
            parked: Mutex::new(None),
        }
    }

    fn hand_to_costate(&self) -> Turn {
        let mut turn = self.turn.lock().expect("baton lock");
        if matches!(*turn, Turn::Finished | Turn::Killed) {
            return *turn;
        }
        *turn = Turn::Costate;
        self.cv.notify_all();
        while *turn == Turn::Costate {
            turn = self.cv.wait(turn).expect("baton wait");
        }
        *turn
    }

    fn hand_to_scheduler(&self) {
        let mut turn = self.turn.lock().expect("baton lock");
        if *turn == Turn::Costate {
            *turn = Turn::Scheduler;
        }
        self.cv.notify_all();
        while *turn == Turn::Scheduler {
            turn = self.cv.wait(turn).expect("baton wait");
        }
        if *turn == Turn::Killed {
            drop(turn);
            panic::panic_any(CoKilled);
        }
    }

    fn wait_first_slice(&self) {
        let mut turn = self.turn.lock().expect("baton lock");
        while *turn != Turn::Costate {
            if *turn == Turn::Killed {
                drop(turn);
                panic::panic_any(CoKilled);
            }
            turn = self.cv.wait(turn).expect("baton wait");
        }
    }

    fn finish(&self, outcome: Turn) {
        let mut turn = self.turn.lock().expect("baton lock");
        *turn = outcome;
        self.cv.notify_all();
    }

    fn kill(&self) {
        let mut turn = self.turn.lock().expect("baton lock");
        if !matches!(*turn, Turn::Finished) {
            *turn = Turn::Killed;
        }
        self.cv.notify_all();
    }
}

/// Sentinel payload unwound through a killed costatement's stack.
struct CoKilled;

/// Installs (once) a panic hook that keeps [`CoKilled`] unwinds silent —
/// they are routine teardown, not failures — while delegating every other
/// panic to the previously installed hook.
fn install_quiet_kill_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<CoKilled>() {
                return;
            }
            previous(info);
        }));
    });
}

/// The handle a costatement body uses to cooperate.
///
/// Mirrors Dynamic C's `yield` statement and `waitfor(expr)` construct.
#[derive(Clone)]
pub struct Co {
    baton: Arc<Baton>,
}

impl Co {
    /// Immediately passes control to the next costatement (`yield`).
    /// Control returns here on this costatement's next slice.
    pub fn yield_now(&self) {
        self.baton.hand_to_scheduler();
    }

    /// `waitfor(expr)`: equivalent to `while (!expr) yield;` per the
    /// paper. The predicate is re-evaluated once per scheduler round.
    pub fn waitfor<F: FnMut() -> bool>(&self, mut pred: F) {
        while !pred() {
            self.yield_now();
        }
    }

    /// Like [`Co::waitfor`], but the scheduler evaluates the predicate on
    /// its own thread while this costatement's thread stays parked. The
    /// predicate still runs exactly once per round, in this costatement's
    /// round-robin position, so the observable schedule is unchanged —
    /// only the two context switches per idle round are saved. Requires
    /// an owning (`'static`) predicate since it outlives the call frame
    /// borrow-wise; use [`Co::waitfor`] for borrowing predicates.
    pub fn wait_until<F: FnMut() -> bool + Send + 'static>(&self, mut pred: F) {
        if pred() {
            return;
        }
        *self.baton.parked.lock().expect("parked lock") = Some(Box::new(pred));
        // The scheduler clears the registration before granting the slice.
        self.baton.hand_to_scheduler();
    }
}

/// Identifier of a spawned costatement within its scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostateId(usize);

struct Slot {
    id: CostateId,
    name: String,
    baton: Arc<Baton>,
    thread: Option<JoinHandle<()>>,
    /// Body of an inline costatement, run directly on the scheduler
    /// thread each round (`true` = finished). Mutually exclusive with
    /// `thread`.
    inline: Option<Box<dyn FnMut() -> bool + Send>>,
    done: bool,
}

/// A deterministic round-robin scheduler of costatements.
///
/// `tick` gives every live costatement exactly one slice, in spawn order —
/// the behaviour of a Dynamic C main loop whose body lists one costatement
/// after another.
#[derive(Default)]
pub struct Scheduler {
    slots: Vec<Slot>,
    next_id: usize,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// Spawns a costatement. The body starts executing on its first slice,
    /// not at spawn time.
    pub fn spawn<F>(&mut self, name: &str, body: F) -> CostateId
    where
        F: FnOnce(Co) + Send + 'static,
    {
        install_quiet_kill_hook();
        let id = CostateId(self.next_id);
        self.next_id += 1;
        let baton = Arc::new(Baton::new());
        let thread_baton = Arc::clone(&baton);
        let thread = std::thread::Builder::new()
            .name(format!("costate-{name}"))
            .spawn(move || {
                let co = Co {
                    baton: Arc::clone(&thread_baton),
                };
                thread_baton.wait_first_slice();
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| body(co)));
                match outcome {
                    Ok(()) => thread_baton.finish(Turn::Finished),
                    Err(payload) => {
                        thread_baton.finish(Turn::Finished);
                        if !payload.is::<CoKilled>() {
                            panic::resume_unwind(payload);
                        }
                    }
                }
            })
            .expect("spawn costate thread");
        self.slots.push(Slot {
            id,
            name: name.to_string(),
            baton,
            thread: Some(thread),
            inline: None,
            done: false,
        });
        id
    }

    /// Spawns an inline costatement: `body` runs once per round on the
    /// scheduler's own thread, in spawn order like any other slot, and
    /// finishes when it returns `true`. Fits bodies of the shape
    /// `loop { work(); yield; }` that never block mid-slice — they keep
    /// the round-robin schedule but skip the per-slice context switches
    /// a dedicated thread would cost.
    pub fn spawn_inline<F>(&mut self, name: &str, body: F) -> CostateId
    where
        F: FnMut() -> bool + Send + 'static,
    {
        let id = CostateId(self.next_id);
        self.next_id += 1;
        self.slots.push(Slot {
            id,
            name: name.to_string(),
            baton: Arc::new(Baton::new()),
            thread: None,
            inline: Some(Box::new(body)),
            done: false,
        });
        id
    }

    /// Runs one scheduler round: every live costatement gets one slice.
    /// Returns the number of costatements still alive afterwards.
    pub fn tick(&mut self) -> usize {
        for slot in &mut self.slots {
            if slot.done {
                continue;
            }
            if let Some(body) = slot.inline.as_mut() {
                if body() {
                    slot.done = true;
                    slot.inline = None;
                }
                continue;
            }
            // A costatement parked on a wait_until predicate sleeps
            // through the round unless the predicate now holds.
            {
                let mut parked = slot.baton.parked.lock().expect("parked lock");
                if let Some(pred) = parked.as_mut() {
                    if pred() {
                        *parked = None;
                    } else {
                        continue;
                    }
                }
            }
            let turn = slot.baton.hand_to_costate();
            if matches!(turn, Turn::Finished | Turn::Killed) {
                slot.done = true;
                if let Some(t) = slot.thread.take() {
                    let _ = t.join();
                }
            }
        }
        self.alive()
    }

    /// Number of costatements that have not finished.
    pub fn alive(&self) -> usize {
        self.slots.iter().filter(|s| !s.done).count()
    }

    /// Whether a particular costatement has finished.
    pub fn is_done(&self, id: CostateId) -> bool {
        self.slots
            .iter()
            .find(|s| s.id == id)
            .is_none_or(|s| s.done)
    }

    /// Name given to a costatement at spawn time.
    pub fn name(&self, id: CostateId) -> Option<&str> {
        self.slots
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.name.as_str())
    }

    /// Ticks until every costatement finishes or `max_ticks` rounds pass.
    /// Returns true when all finished.
    pub fn run_to_completion(&mut self, max_ticks: usize) -> bool {
        for _ in 0..max_ticks {
            if self.tick() == 0 {
                return true;
            }
        }
        self.alive() == 0
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if !slot.done {
                slot.baton.kill();
            }
            if let Some(t) = slot.thread.take() {
                let _ = t.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn round_robin_interleaves_in_spawn_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut sched = Scheduler::new();
        for name in ["a", "b", "c"] {
            let log = Arc::clone(&log);
            sched.spawn(name, move |co| {
                for i in 0..2 {
                    log.lock().unwrap().push(format!("{name}{i}"));
                    co.yield_now();
                }
            });
        }
        assert!(sched.run_to_completion(100));
        let got = log.lock().unwrap().clone();
        assert_eq!(got, vec!["a0", "b0", "c0", "a1", "b1", "c1"]);
    }

    #[test]
    fn waitfor_parks_until_predicate_holds() {
        let flag = Arc::new(AtomicU32::new(0));
        let seen = Arc::new(AtomicU32::new(0));
        let mut sched = Scheduler::new();
        {
            let flag = Arc::clone(&flag);
            let seen = Arc::clone(&seen);
            sched.spawn("waiter", move |co| {
                co.waitfor(|| flag.load(Ordering::SeqCst) >= 3);
                seen.store(1, Ordering::SeqCst);
            });
        }
        {
            let flag = Arc::clone(&flag);
            sched.spawn("setter", move |co| {
                for _ in 0..3 {
                    flag.fetch_add(1, Ordering::SeqCst);
                    co.yield_now();
                }
            });
        }
        assert!(sched.run_to_completion(100));
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn finished_costates_are_skipped() {
        let mut sched = Scheduler::new();
        let id = sched.spawn("quick", |_co| {});
        sched.spawn("slow", |co| {
            for _ in 0..5 {
                co.yield_now();
            }
        });
        sched.tick();
        assert!(sched.is_done(id));
        assert_eq!(sched.alive(), 1);
        assert!(sched.run_to_completion(100));
    }

    #[test]
    fn dropping_scheduler_reaps_unfinished_costates() {
        let mut sched = Scheduler::new();
        sched.spawn("immortal", |co| loop {
            co.yield_now();
        });
        sched.tick();
        drop(sched); // must not hang or leak a blocked thread
    }

    #[test]
    fn names_are_recorded() {
        let mut sched = Scheduler::new();
        let id = sched.spawn("handler", |_| {});
        assert_eq!(sched.name(id), Some("handler"));
    }
}
