//! Scheduler stress and cofunction-style usage: many costatements, deep
//! waitfor chains, and the paper's cofunction pattern (callable units
//! that take arguments, return results, and may yield internally).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use dynamicc::{Co, Scheduler, Shared};

#[test]
fn a_hundred_costates_round_robin_fairly() {
    let counters: Vec<Arc<AtomicU32>> = (0..100).map(|_| Arc::new(AtomicU32::new(0))).collect();
    let mut sched = Scheduler::new();
    for c in &counters {
        let c = Arc::clone(c);
        sched.spawn("worker", move |co| {
            for _ in 0..20 {
                c.fetch_add(1, Ordering::SeqCst);
                co.yield_now();
            }
        });
    }
    assert!(sched.run_to_completion(1_000));
    for (i, c) in counters.iter().enumerate() {
        assert_eq!(c.load(Ordering::SeqCst), 20, "worker {i}");
    }
}

#[test]
fn fairness_no_costate_runs_two_slices_per_round() {
    // After each tick, every live costate has advanced exactly once.
    let ticks: Vec<Arc<AtomicU32>> = (0..10).map(|_| Arc::new(AtomicU32::new(0))).collect();
    let mut sched = Scheduler::new();
    for t in &ticks {
        let t = Arc::clone(t);
        sched.spawn("fair", move |co| loop {
            t.fetch_add(1, Ordering::SeqCst);
            co.yield_now();
        });
    }
    for round in 1..=5u32 {
        sched.tick();
        for (i, t) in ticks.iter().enumerate() {
            assert_eq!(t.load(Ordering::SeqCst), round, "worker {i} round {round}");
        }
    }
}

/// A cofunction in the paper's sense: takes arguments, may yield while
/// waiting, returns a result to its caller costatement.
fn co_read_sensor(co: &Co, ready: &Shared<u32>, threshold: u32) -> u32 {
    co.waitfor(|| ready.get() >= threshold);
    ready.get() * 2
}

#[test]
fn cofunctions_take_arguments_and_return_results() {
    let sensor = Shared::new(0u32);
    let result = Arc::new(AtomicU64::new(0));
    let mut sched = Scheduler::new();
    {
        let sensor = sensor.clone();
        let result = Arc::clone(&result);
        sched.spawn("consumer", move |co| {
            let v = co_read_sensor(&co, &sensor, 5);
            result.store(u64::from(v), Ordering::SeqCst);
        });
    }
    {
        let sensor = sensor.clone();
        sched.spawn("producer", move |co| {
            for _ in 0..5 {
                sensor.update(|v| *v += 1);
                co.yield_now();
            }
        });
    }
    assert!(sched.run_to_completion(1_000));
    assert_eq!(result.load(Ordering::SeqCst), 10);
}

#[test]
fn nested_spawning_pattern_via_two_schedulers_is_not_needed_for_pipelines() {
    // A pipeline of waitfor-linked stages completes in bounded rounds.
    let stage = Shared::new(0u32);
    let mut sched = Scheduler::new();
    for expected in 0..20u32 {
        let stage = stage.clone();
        sched.spawn("stage", move |co| {
            co.waitfor(|| stage.get() == expected);
            stage.set(expected + 1);
        });
    }
    assert!(sched.run_to_completion(100));
    assert_eq!(stage.get(), 20);
}

#[test]
fn dropping_a_scheduler_with_many_blocked_costates_is_clean() {
    let mut sched = Scheduler::new();
    for _ in 0..50 {
        sched.spawn("blocked", |co| {
            co.waitfor(|| false); // never proceeds
        });
    }
    sched.tick();
    drop(sched); // must reap all 50 threads without hanging
}
