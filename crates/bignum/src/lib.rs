//! Arbitrary-precision unsigned integer arithmetic — the
//! "difficult-to-port bignum package" of *Porting a Network Cryptographic
//! Service to the RMC2000* (DATE 2003), §2.
//!
//! The paper's authors dropped issl's RSA cipher from the embedded port
//! precisely because this package was "too complicated to rework" for the
//! Rabbit; the host-side profile of the reproduction keeps RSA, and so
//! needs the package the paper's port went without.
//!
//! Everything RSA requires is here: ring arithmetic, Knuth Algorithm D
//! division, modular exponentiation, binary GCD, extended-Euclid modular
//! inverse ([`uint`]) and Miller–Rabin primality testing ([`prime`]).
//!
//! ```
//! use bignum::BigUint;
//!
//! let p = BigUint::from_u64(61);
//! let q = BigUint::from_u64(53);
//! let n = p.mul(&q);
//! let e = BigUint::from_u64(17);
//! let phi = BigUint::from_u64(60 * 52);
//! let d = e.modinv(&phi).expect("e coprime to phi");
//! let m = BigUint::from_u64(65);
//! let c = m.modpow(&e, &n);
//! assert_eq!(c.modpow(&d, &n), m);
//! ```

pub mod prime;
pub mod uint;

pub use prime::{is_probable_prime, miller_rabin};
pub use uint::BigUint;
