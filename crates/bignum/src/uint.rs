//! Arbitrary-precision unsigned integers with the operations RSA needs:
//! comparison, ring arithmetic, division with remainder, modular
//! exponentiation and modular inverse.
//!
//! Representation: little-endian `u32` limbs with no trailing zero limb
//! (zero is the empty limb vector).

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> BigUint {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> BigUint {
        let mut n = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// Builds from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> BigUint {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut iter = bytes.rchunks(4);
        for chunk in iter.by_ref() {
            let mut limb = 0u32;
            for &b in chunk {
                limb = (limb << 8) | u32::from(b);
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serialises to big-endian bytes, without leading zeros (empty for
    /// zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Serialises to exactly `len` big-endian bytes, left-padded with
    /// zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix).
    ///
    /// # Errors
    ///
    /// Returns `Err` with the offending character on non-hex input.
    pub fn from_hex(s: &str) -> Result<BigUint, char> {
        let mut bytes = Vec::new();
        let s = if s.len() % 2 == 1 {
            format!("0{s}")
        } else {
            s.to_string()
        };
        let chars: Vec<char> = s.chars().collect();
        for pair in chars.chunks(2) {
            let hi = pair[0].to_digit(16).ok_or(pair[0])? as u8;
            let lo = pair[1].to_digit(16).ok_or(pair[1])? as u8;
            bytes.push((hi << 4) | lo);
        }
        Ok(BigUint::from_bytes_be(&bytes))
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|&l| l & 1 == 1)
    }

    /// Whether the value equals a small constant.
    pub fn is_u32(&self, v: u32) -> bool {
        match v {
            0 => self.is_zero(),
            _ => self.limbs.len() == 1 && self.limbs[0] == v,
        }
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 32 - top.leading_zeros() as usize,
        }
    }

    /// The `i`-th bit (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 32)
            .is_some_and(|&l| l >> (i % 32) & 1 == 1)
    }

    /// Truncates to a `u64` (low 64 bits).
    pub fn low_u64(&self) -> u64 {
        let lo = self.limbs.first().copied().unwrap_or(0);
        let hi = self.limbs.get(1).copied().unwrap_or(0);
        u64::from(lo) | (u64::from(hi) << 32)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Sum.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = u64::from(self.limbs.get(i).copied().unwrap_or(0));
            let b = u64::from(other.limbs.get(i).copied().unwrap_or(0));
            let s = a + b + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Difference; `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp_ref(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = i64::from(self.limbs[i]);
            let b = i64::from(other.limbs.get(i).copied().unwrap_or(0));
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// Difference.
    ///
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] when unsure.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// Product (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = u64::from(a) * u64::from(b) + u64::from(out[i + j]) + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = u64::from(out[k]) + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map_or(0, |&n| n << (32 - bit_shift));
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    fn cmp_ref(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Quotient and remainder.
    ///
    /// Implements Knuth's Algorithm D on 32-bit limbs.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp_ref(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        // Short division by a single limb.
        if divisor.limbs.len() == 1 {
            let d = u64::from(divisor.limbs[0]);
            let mut rem = 0u64;
            let mut q = vec![0u32; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | u64::from(self.limbs[i]);
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut qn = BigUint { limbs: q };
            qn.normalize();
            return (qn, BigUint::from_u64(rem));
        }

        // Normalise so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("non-empty").leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let mut q = vec![0u32; m + 1];
        let b = 1u64 << 32;

        for j in (0..=m).rev() {
            let top = (u64::from(un[j + n]) << 32) | u64::from(un[j + n - 1]);
            let mut qhat = top / u64::from(vn[n - 1]);
            let mut rhat = top % u64::from(vn[n - 1]);
            while qhat >= b || qhat * u64::from(vn[n - 2]) > (rhat << 32) + u64::from(un[j + n - 2])
            {
                qhat -= 1;
                rhat += u64::from(vn[n - 1]);
                if rhat >= b {
                    break;
                }
            }
            // Multiply and subtract.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * u64::from(vn[i]) + carry;
                carry = p >> 32;
                let t = i64::from(un[i + j]) - borrow - i64::from(p as u32);
                un[i + j] = t as u32;
                borrow = i64::from(t < 0);
            }
            let t = i64::from(un[j + n]) - borrow - carry as i64;
            un[j + n] = t as u32;

            if t < 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let s = u64::from(un[i + j]) + u64::from(vn[i]) + carry;
                    un[i + j] = s as u32;
                    carry = s >> 32;
                }
                un[j + n] = (u64::from(un[j + n]) + carry) as u32;
            }
            q[j] = qhat as u32;
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// Remainder.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular multiplication.
    pub fn mulmod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_u32(1) {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem(modulus);
        for i in 0..exponent.bits() {
            if exponent.bit(i) {
                result = result.mulmod(&base, modulus);
            }
            base = base.mulmod(&base, modulus);
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0;
        while !a.is_odd() && !b.is_odd() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while !a.is_odd() {
            a = a.shr(1);
        }
        loop {
            while !b.is_odd() {
                b = b.shr(1);
            }
            if a.cmp_ref(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// Modular inverse: the `x` with `self * x ≡ 1 (mod modulus)`, or
    /// `None` when `gcd(self, modulus) != 1`.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        // Extended Euclid with explicit signs.
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        // t coefficients as (negative?, magnitude)
        let mut t0 = (false, BigUint::zero());
        let mut t1 = (false, BigUint::one());
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q*t1
            let qt1 = q.mul(&t1.1);
            let t2 = signed_sub(t0.clone(), (t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_u32(1) {
            return None;
        }
        let (neg, mag) = t0;
        let mag = mag.rem(modulus);
        Some(if neg && !mag.is_zero() {
            modulus.sub(&mag)
        } else {
            mag
        })
    }
}

/// Computes `a - b` on sign-magnitude pairs.
fn signed_sub(a: (bool, BigUint), b: (bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with both positive
        (false, false) => match a.1.checked_sub(&b.1) {
            Some(m) => (false, m),
            None => (true, b.1.sub(&a.1)),
        },
        // a - (-b) = a + b
        (false, true) => (false, a.1.add(&b.1)),
        // -a - b = -(a+b)
        (true, false) => (true, a.1.add(&b.1)),
        // -a - (-b) = b - a
        (true, true) => match b.1.checked_sub(&a.1) {
            Some(m) => (false, m),
            None => (true, a.1.sub(&b.1)),
        },
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &BigUint) -> Ordering {
        self.cmp_ref(other)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &BigUint) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^9.
        let chunk = BigUint::from_u64(1_000_000_000);
        let mut digits: Vec<String> = Vec::new();
        let mut n = self.clone();
        while !n.is_zero() {
            let (q, r) = n.div_rem(&chunk);
            digits.push(r.low_u64().to_string());
            n = q;
        }
        let mut out = String::new();
        out.push_str(&digits.pop().expect("non-zero has digits"));
        for d in digits.iter().rev() {
            out.push_str(&format!("{:09}", d.parse::<u64>().expect("chunk fits")));
        }
        write!(f, "{out}")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for &l in self.limbs.iter().rev() {
            if first {
                write!(f, "{l:x}")?;
                first = false;
            } else {
                write!(f, "{l:08x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn round_trips_bytes() {
        let n = BigUint::from_bytes_be(&[0x12, 0x34, 0x56, 0x78, 0x9A]);
        assert_eq!(n.to_bytes_be(), vec![0x12, 0x34, 0x56, 0x78, 0x9A]);
        assert_eq!(n.to_bytes_be_padded(8)[..3], [0, 0, 0]);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(big(0).to_string(), "0");
        assert_eq!(big(1_234_567_890_123).to_string(), "1234567890123");
        let n = big(u64::MAX).mul(&big(u64::MAX));
        assert_eq!(n.to_string(), "340282366920938463426481119284349108225");
    }

    #[test]
    fn hex_parse_and_format() {
        let n = BigUint::from_hex("deadbeefcafebabe1234").unwrap();
        assert_eq!(format!("{n:x}"), "deadbeefcafebabe1234");
        assert!(BigUint::from_hex("xyz").is_err());
    }

    #[test]
    fn arithmetic_small() {
        assert_eq!(big(2).add(&big(3)), big(5));
        assert_eq!(big(10).sub(&big(4)), big(6));
        assert_eq!(big(7).mul(&big(6)), big(42));
        assert_eq!(big(5).checked_sub(&big(9)), None);
    }

    #[test]
    fn division_matches_u128_oracle() {
        let cases: [(u128, u128); 6] = [
            (12345678901234567890, 97),
            (u128::from(u64::MAX) * 7 + 3, u128::from(u64::MAX)),
            (1 << 100, (1 << 50) + 1),
            (999999999999999999, 1000000007),
            (1, 2),
            (u128::MAX / 3, 0xFFFF_FFFF),
        ];
        for (a, b) in cases {
            let abytes = a.to_be_bytes();
            let bbytes = b.to_be_bytes();
            let an = BigUint::from_bytes_be(&abytes);
            let bn = BigUint::from_bytes_be(&bbytes);
            let (q, r) = an.div_rem(&bn);
            assert_eq!(
                q.low_u64() as u128 | ((q.shr(64).low_u64() as u128) << 64),
                a / b
            );
            assert_eq!(
                r.low_u64() as u128 | ((r.shr(64).low_u64() as u128) << 64),
                a % b
            );
        }
    }

    #[test]
    fn shifts() {
        let n = big(0b1011);
        assert_eq!(n.shl(4), big(0b1011_0000));
        assert_eq!(n.shl(64).shr(64), n);
        assert_eq!(n.shr(10), BigUint::zero());
        assert_eq!(n.bits(), 4);
        assert!(n.bit(0) && n.bit(1) && !n.bit(2) && n.bit(3));
    }

    #[test]
    fn modpow_fermat() {
        // 2^(p-1) ≡ 1 mod p for prime p
        let p = big(1_000_000_007);
        let r = big(2).modpow(&big(1_000_000_006), &p);
        assert_eq!(r, big(1));
        // small sanity: 3^4 mod 5 = 1
        assert_eq!(big(3).modpow(&big(4), &big(5)), big(1));
    }

    #[test]
    fn modpow_large_numbers() {
        // (2^200)^3 mod (2^199 + 1) computed two ways
        let base = BigUint::one().shl(200);
        let m = BigUint::one().shl(199).add(&BigUint::one());
        let direct = base.mul(&base).mul(&base).rem(&m);
        assert_eq!(base.modpow(&big(3), &m), direct);
    }

    #[test]
    fn gcd_and_modinv() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        let inv = big(3).modinv(&big(11)).unwrap();
        assert_eq!(inv, big(4)); // 3*4 = 12 ≡ 1 mod 11
        assert_eq!(big(6).modinv(&big(9)), None); // gcd 3
                                                  // large: e=65537 modulo a known phi
        let phi = big(3220).mul(&big(4292870399));
        let e = big(65537);
        if let Some(d) = e.modinv(&phi) {
            assert_eq!(e.mulmod(&d, &phi), BigUint::one());
        }
    }

    #[test]
    fn ordering() {
        assert!(big(5) < big(6));
        assert!(BigUint::one().shl(100) > big(u64::MAX));
    }
}
