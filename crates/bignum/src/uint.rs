//! Arbitrary-precision unsigned integers with the operations RSA needs:
//! comparison, ring arithmetic, division with remainder, modular
//! exponentiation and modular inverse.
//!
//! Representation: little-endian `u32` limbs with no trailing zero limb
//! (zero is the empty limb vector).

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> BigUint {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> BigUint {
        let mut n = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// Builds from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> BigUint {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut iter = bytes.rchunks(4);
        for chunk in iter.by_ref() {
            let mut limb = 0u32;
            for &b in chunk {
                limb = (limb << 8) | u32::from(b);
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serialises to big-endian bytes, without leading zeros (empty for
    /// zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Serialises to exactly `len` big-endian bytes, left-padded with
    /// zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix).
    ///
    /// # Errors
    ///
    /// Returns `Err` with the offending character on non-hex input.
    pub fn from_hex(s: &str) -> Result<BigUint, char> {
        let mut bytes = Vec::new();
        let s = if s.len() % 2 == 1 {
            format!("0{s}")
        } else {
            s.to_string()
        };
        let chars: Vec<char> = s.chars().collect();
        for pair in chars.chunks(2) {
            let hi = pair[0].to_digit(16).ok_or(pair[0])? as u8;
            let lo = pair[1].to_digit(16).ok_or(pair[1])? as u8;
            bytes.push((hi << 4) | lo);
        }
        Ok(BigUint::from_bytes_be(&bytes))
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|&l| l & 1 == 1)
    }

    /// Whether the value equals a small constant.
    pub fn is_u32(&self, v: u32) -> bool {
        match v {
            0 => self.is_zero(),
            _ => self.limbs.len() == 1 && self.limbs[0] == v,
        }
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 32 - top.leading_zeros() as usize,
        }
    }

    /// The `i`-th bit (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 32)
            .is_some_and(|&l| l >> (i % 32) & 1 == 1)
    }

    /// Truncates to a `u64` (low 64 bits).
    pub fn low_u64(&self) -> u64 {
        let lo = self.limbs.first().copied().unwrap_or(0);
        let hi = self.limbs.get(1).copied().unwrap_or(0);
        u64::from(lo) | (u64::from(hi) << 32)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Sum.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = u64::from(self.limbs.get(i).copied().unwrap_or(0));
            let b = u64::from(other.limbs.get(i).copied().unwrap_or(0));
            let s = a + b + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Difference; `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp_ref(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = i64::from(self.limbs[i]);
            let b = i64::from(other.limbs.get(i).copied().unwrap_or(0));
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// Difference.
    ///
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] when unsure.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// Product (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = u64::from(a) * u64::from(b) + u64::from(out[i + j]) + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = u64::from(out[k]) + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map_or(0, |&n| n << (32 - bit_shift));
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    fn cmp_ref(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Quotient and remainder.
    ///
    /// Implements Knuth's Algorithm D on 32-bit limbs.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp_ref(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        // Short division by a single limb.
        if divisor.limbs.len() == 1 {
            let d = u64::from(divisor.limbs[0]);
            let mut rem = 0u64;
            let mut q = vec![0u32; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | u64::from(self.limbs[i]);
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut qn = BigUint { limbs: q };
            qn.normalize();
            return (qn, BigUint::from_u64(rem));
        }

        // Normalise so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("non-empty").leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let mut q = vec![0u32; m + 1];
        let b = 1u64 << 32;

        for j in (0..=m).rev() {
            let top = (u64::from(un[j + n]) << 32) | u64::from(un[j + n - 1]);
            let mut qhat = top / u64::from(vn[n - 1]);
            let mut rhat = top % u64::from(vn[n - 1]);
            while qhat >= b || qhat * u64::from(vn[n - 2]) > (rhat << 32) + u64::from(un[j + n - 2])
            {
                qhat -= 1;
                rhat += u64::from(vn[n - 1]);
                if rhat >= b {
                    break;
                }
            }
            // Multiply and subtract.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * u64::from(vn[i]) + carry;
                carry = p >> 32;
                let t = i64::from(un[i + j]) - borrow - i64::from(p as u32);
                un[i + j] = t as u32;
                borrow = i64::from(t < 0);
            }
            let t = i64::from(un[j + n]) - borrow - carry as i64;
            un[j + n] = t as u32;

            if t < 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let s = u64::from(un[i + j]) + u64::from(vn[i]) + carry;
                    un[i + j] = s as u32;
                    carry = s >> 32;
                }
                un[j + n] = (u64::from(un[j + n]) + carry) as u32;
            }
            q[j] = qhat as u32;
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// Remainder.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular multiplication.
    pub fn mulmod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation by square-and-multiply.
    ///
    /// Odd moduli (every RSA modulus and every Miller–Rabin candidate)
    /// take the Montgomery-form fast path: one full-width division to
    /// enter the domain, then two multiply-reduce passes per exponent bit
    /// with no allocation and no trial division. Even moduli fall back to
    /// `mulmod` per bit. Both paths compute the same function.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_u32(1) {
            return BigUint::zero();
        }
        if modulus.is_odd() {
            return self.modpow_montgomery(exponent, modulus);
        }
        let mut result = BigUint::one();
        let mut base = self.rem(modulus);
        for i in 0..exponent.bits() {
            if exponent.bit(i) {
                result = result.mulmod(&base, modulus);
            }
            base = base.mulmod(&base, modulus);
        }
        result
    }

    /// Montgomery-domain square-and-multiply for odd `modulus > 1`.
    fn modpow_montgomery(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        let n = &modulus.limbs;
        let s = n.len();

        // n0inv = -n^{-1} mod 2^32, by Newton iteration (n[0] is odd).
        let mut inv: u32 = 1;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        let n0inv = inv.wrapping_neg();

        // R = 2^(32*s). rr = R^2 mod n brings values into the domain;
        // this is the only full-width division in the whole exponentiation.
        let mut rr = BigUint::one().shl(64 * s).rem(modulus).limbs;
        rr.resize(s, 0);
        let mut one = vec![0u32; s];
        one[0] = 1;

        let mut base = self.rem(modulus).limbs;
        base.resize(s, 0);

        let mut t = vec![0u64; s + 2];
        let mut base_m = vec![0u32; s];
        let mut result = vec![0u32; s];
        let mut tmp = vec![0u32; s];
        mont_mul(&base, &rr, n, n0inv, &mut t, &mut base_m);
        // R mod n = mont(R^2, 1); the Montgomery form of 1.
        mont_mul(&rr, &one, n, n0inv, &mut t, &mut result);

        for i in 0..exponent.bits() {
            if exponent.bit(i) {
                mont_mul(&result, &base_m, n, n0inv, &mut t, &mut tmp);
                std::mem::swap(&mut result, &mut tmp);
            }
            mont_mul(&base_m, &base_m, n, n0inv, &mut t, &mut tmp);
            std::mem::swap(&mut base_m, &mut tmp);
        }
        // Leave the domain: mont(x, 1) = x * R^{-1} mod n.
        mont_mul(&result, &one, n, n0inv, &mut t, &mut tmp);
        let mut out = BigUint { limbs: tmp };
        out.normalize();
        out
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0;
        while !a.is_odd() && !b.is_odd() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while !a.is_odd() {
            a = a.shr(1);
        }
        loop {
            while !b.is_odd() {
                b = b.shr(1);
            }
            if a.cmp_ref(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// Modular inverse: the `x` with `self * x ≡ 1 (mod modulus)`, or
    /// `None` when `gcd(self, modulus) != 1`.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        // Extended Euclid with explicit signs.
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        // t coefficients as (negative?, magnitude)
        let mut t0 = (false, BigUint::zero());
        let mut t1 = (false, BigUint::one());
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q*t1
            let qt1 = q.mul(&t1.1);
            let t2 = signed_sub(t0.clone(), (t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_u32(1) {
            return None;
        }
        let (neg, mag) = t0;
        let mag = mag.rem(modulus);
        Some(if neg && !mag.is_zero() {
            modulus.sub(&mag)
        } else {
            mag
        })
    }
}

/// Computes `a - b` on sign-magnitude pairs.
/// One CIOS Montgomery multiply-reduce: `out = a * b * R^{-1} mod n`
/// where `R = 2^(32*n.len())`, requiring `a, b < n` and `n` odd.
///
/// `t` is caller-provided scratch of `n.len() + 2` u64 slots (cleared
/// here); `out` must be `n.len()` limbs. Nothing allocates, which is the
/// point: `modpow` calls this ~2 times per exponent bit.
fn mont_mul(a: &[u32], b: &[u32], n: &[u32], n0inv: u32, t: &mut [u64], out: &mut [u32]) {
    const MASK: u64 = 0xFFFF_FFFF;
    let s = n.len();
    for v in t.iter_mut() {
        *v = 0;
    }
    for &ai in a {
        let ai = u64::from(ai);
        let mut carry = 0u64;
        for j in 0..s {
            let sum = t[j] + ai * u64::from(b[j]) + carry;
            t[j] = sum & MASK;
            carry = sum >> 32;
        }
        let sum = t[s] + carry;
        t[s] = sum & MASK;
        t[s + 1] += sum >> 32;

        // Choose m so the lowest limb of t + m*n vanishes, then divide by
        // 2^32 (the limb shift folded into the second pass).
        let m = u64::from((t[0] as u32).wrapping_mul(n0inv));
        let mut carry = (t[0] + m * u64::from(n[0])) >> 32;
        for j in 1..s {
            let sum = t[j] + m * u64::from(n[j]) + carry;
            t[j - 1] = sum & MASK;
            carry = sum >> 32;
        }
        let sum = t[s] + carry;
        t[s - 1] = sum & MASK;
        t[s] = t[s + 1] + (sum >> 32);
        t[s + 1] = 0;
    }
    // t < 2n here; one conditional subtraction normalises to [0, n).
    let mut ge = t[s] != 0;
    if !ge {
        ge = true; // covers t == n, which must also reduce (to zero)
        for j in (0..s).rev() {
            match (t[j] as u32).cmp(&n[j]) {
                Ordering::Greater => break,
                Ordering::Less => {
                    ge = false;
                    break;
                }
                Ordering::Equal => {}
            }
        }
    }
    if ge {
        let mut borrow = 0i64;
        for j in 0..s {
            let d = t[j] as i64 - i64::from(n[j]) - borrow;
            out[j] = d as u32;
            borrow = i64::from(d < 0);
        }
    } else {
        for j in 0..s {
            out[j] = t[j] as u32;
        }
    }
}

fn signed_sub(a: (bool, BigUint), b: (bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with both positive
        (false, false) => match a.1.checked_sub(&b.1) {
            Some(m) => (false, m),
            None => (true, b.1.sub(&a.1)),
        },
        // a - (-b) = a + b
        (false, true) => (false, a.1.add(&b.1)),
        // -a - b = -(a+b)
        (true, false) => (true, a.1.add(&b.1)),
        // -a - (-b) = b - a
        (true, true) => match b.1.checked_sub(&a.1) {
            Some(m) => (false, m),
            None => (true, a.1.sub(&b.1)),
        },
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &BigUint) -> Ordering {
        self.cmp_ref(other)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &BigUint) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^9.
        let chunk = BigUint::from_u64(1_000_000_000);
        let mut digits: Vec<String> = Vec::new();
        let mut n = self.clone();
        while !n.is_zero() {
            let (q, r) = n.div_rem(&chunk);
            digits.push(r.low_u64().to_string());
            n = q;
        }
        let mut out = String::new();
        out.push_str(&digits.pop().expect("non-zero has digits"));
        for d in digits.iter().rev() {
            out.push_str(&format!("{:09}", d.parse::<u64>().expect("chunk fits")));
        }
        write!(f, "{out}")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for &l in self.limbs.iter().rev() {
            if first {
                write!(f, "{l:x}")?;
                first = false;
            } else {
                write!(f, "{l:08x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn round_trips_bytes() {
        let n = BigUint::from_bytes_be(&[0x12, 0x34, 0x56, 0x78, 0x9A]);
        assert_eq!(n.to_bytes_be(), vec![0x12, 0x34, 0x56, 0x78, 0x9A]);
        assert_eq!(n.to_bytes_be_padded(8)[..3], [0, 0, 0]);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(big(0).to_string(), "0");
        assert_eq!(big(1_234_567_890_123).to_string(), "1234567890123");
        let n = big(u64::MAX).mul(&big(u64::MAX));
        assert_eq!(n.to_string(), "340282366920938463426481119284349108225");
    }

    #[test]
    fn hex_parse_and_format() {
        let n = BigUint::from_hex("deadbeefcafebabe1234").unwrap();
        assert_eq!(format!("{n:x}"), "deadbeefcafebabe1234");
        assert!(BigUint::from_hex("xyz").is_err());
    }

    #[test]
    fn arithmetic_small() {
        assert_eq!(big(2).add(&big(3)), big(5));
        assert_eq!(big(10).sub(&big(4)), big(6));
        assert_eq!(big(7).mul(&big(6)), big(42));
        assert_eq!(big(5).checked_sub(&big(9)), None);
    }

    #[test]
    fn division_matches_u128_oracle() {
        let cases: [(u128, u128); 6] = [
            (12345678901234567890, 97),
            (u128::from(u64::MAX) * 7 + 3, u128::from(u64::MAX)),
            (1 << 100, (1 << 50) + 1),
            (999999999999999999, 1000000007),
            (1, 2),
            (u128::MAX / 3, 0xFFFF_FFFF),
        ];
        for (a, b) in cases {
            let abytes = a.to_be_bytes();
            let bbytes = b.to_be_bytes();
            let an = BigUint::from_bytes_be(&abytes);
            let bn = BigUint::from_bytes_be(&bbytes);
            let (q, r) = an.div_rem(&bn);
            assert_eq!(
                q.low_u64() as u128 | ((q.shr(64).low_u64() as u128) << 64),
                a / b
            );
            assert_eq!(
                r.low_u64() as u128 | ((r.shr(64).low_u64() as u128) << 64),
                a % b
            );
        }
    }

    #[test]
    fn shifts() {
        let n = big(0b1011);
        assert_eq!(n.shl(4), big(0b1011_0000));
        assert_eq!(n.shl(64).shr(64), n);
        assert_eq!(n.shr(10), BigUint::zero());
        assert_eq!(n.bits(), 4);
        assert!(n.bit(0) && n.bit(1) && !n.bit(2) && n.bit(3));
    }

    #[test]
    fn modpow_fermat() {
        // 2^(p-1) ≡ 1 mod p for prime p
        let p = big(1_000_000_007);
        let r = big(2).modpow(&big(1_000_000_006), &p);
        assert_eq!(r, big(1));
        // small sanity: 3^4 mod 5 = 1
        assert_eq!(big(3).modpow(&big(4), &big(5)), big(1));
    }

    #[test]
    fn modpow_large_numbers() {
        // (2^200)^3 mod (2^199 + 1) computed two ways
        let base = BigUint::one().shl(200);
        let m = BigUint::one().shl(199).add(&BigUint::one());
        let direct = base.mul(&base).mul(&base).rem(&m);
        assert_eq!(base.modpow(&big(3), &m), direct);
    }

    #[test]
    fn modpow_montgomery_matches_naive() {
        // Pseudo-random multi-limb cases: the Montgomery fast path (odd
        // moduli) must agree with the schoolbook mulmod-per-bit loop.
        let mut x = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for limbs in [1usize, 2, 3, 7, 16] {
            for _ in 0..4 {
                let mut m_limbs: Vec<u32> = (0..limbs).map(|_| next() as u32).collect();
                m_limbs[0] |= 1; // odd
                *m_limbs.last_mut().unwrap() |= 0x8000_0000; // full width
                let m = BigUint::from_bytes_be(
                    &m_limbs
                        .iter()
                        .rev()
                        .flat_map(|l| l.to_be_bytes())
                        .collect::<Vec<u8>>(),
                );
                let base = big(next()).mul(&big(next())).add(&big(next()));
                let exp = big(next() & 0xFFFF);
                // Naive reference (the even-modulus fallback path).
                let mut reference = BigUint::one();
                let mut b = base.rem(&m);
                for i in 0..exp.bits() {
                    if exp.bit(i) {
                        reference = reference.mulmod(&b, &m);
                    }
                    b = b.mulmod(&b, &m);
                }
                assert_eq!(base.modpow(&exp, &m), reference, "limbs={limbs}");
            }
        }
        // Edge cases: exponent zero, base zero, base ≡ 0 mod m.
        let m = big(0xFFFF_FFFF_FFFF_FFC5); // odd
        assert_eq!(big(12345).modpow(&BigUint::zero(), &m), BigUint::one());
        assert_eq!(BigUint::zero().modpow(&big(5), &m), BigUint::zero());
        assert_eq!(m.modpow(&big(3), &m), BigUint::zero());
    }

    #[test]
    fn gcd_and_modinv() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        let inv = big(3).modinv(&big(11)).unwrap();
        assert_eq!(inv, big(4)); // 3*4 = 12 ≡ 1 mod 11
        assert_eq!(big(6).modinv(&big(9)), None); // gcd 3
                                                  // large: e=65537 modulo a known phi
        let phi = big(3220).mul(&big(4292870399));
        let e = big(65537);
        if let Some(d) = e.modinv(&phi) {
            assert_eq!(e.mulmod(&d, &phi), BigUint::one());
        }
    }

    #[test]
    fn ordering() {
        assert!(big(5) < big(6));
        assert!(BigUint::one().shl(100) > big(u64::MAX));
    }
}
