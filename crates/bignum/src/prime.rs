//! Primality testing: deterministic trial division for small factors plus
//! Miller–Rabin with a fixed witness set (deterministic below 3.3·10^24,
//! a strong probabilistic test above).

use crate::uint::BigUint;

/// Small primes used for cheap trial division.
const SMALL_PRIMES: [u32; 25] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
];

/// The fixed Miller–Rabin witness set.
const WITNESSES: [u32; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// One Miller–Rabin round with the given base. `n` must be odd and > 2.
/// Returns false iff `base` witnesses compositeness.
pub fn miller_rabin(n: &BigUint, base: u32) -> bool {
    let one = BigUint::one();
    let n_minus_1 = n.sub(&one);
    // n-1 = d * 2^s with d odd
    let mut s = 0usize;
    let mut d = n_minus_1.clone();
    while !d.is_odd() {
        d = d.shr(1);
        s += 1;
    }
    let b = BigUint::from_u64(u64::from(base));
    if b.rem(n).is_zero() {
        return true; // base divisible by n: no information, not a witness
    }
    let mut x = b.modpow(&d, n);
    if x.is_u32(1) || x == n_minus_1 {
        return true;
    }
    for _ in 0..s - 1 {
        x = x.mulmod(&x.clone(), n);
        if x == n_minus_1 {
            return true;
        }
        if x.is_u32(1) {
            return false;
        }
    }
    false
}

/// Probabilistic (deterministic below 3.3·10^24) primality test.
pub fn is_probable_prime(n: &BigUint) -> bool {
    if n.is_zero() || n.is_u32(1) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(u64::from(p));
        if *n == pb {
            return true;
        }
        if n.rem(&pb).is_zero() {
            return false;
        }
    }
    WITNESSES.iter().all(|&w| miller_rabin(n, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn classifies_small_numbers() {
        let primes = [2u64, 3, 5, 7, 97, 101, 65537, 1_000_000_007];
        let composites = [0u64, 1, 4, 9, 100, 65536, 1_000_000_008];
        for p in primes {
            assert!(is_probable_prime(&big(p)), "{p} is prime");
        }
        for c in composites {
            assert!(!is_probable_prime(&big(c)), "{c} is composite");
        }
    }

    #[test]
    fn rejects_carmichael_numbers() {
        // Fermat pseudoprimes that Miller-Rabin must catch.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_probable_prime(&big(c)), "{c} is Carmichael");
        }
    }

    #[test]
    fn accepts_known_large_primes() {
        // 2^127 - 1 (Mersenne prime)
        let m127 = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(is_probable_prime(&m127));
        // 2^89 - 1 (Mersenne prime)
        let m89 = BigUint::one().shl(89).sub(&BigUint::one());
        assert!(is_probable_prime(&m89));
        // 2^128 + 1 is composite (not a Fermat prime)
        let f = BigUint::one().shl(128).add(&BigUint::one());
        assert!(!is_probable_prime(&f));
    }
}
