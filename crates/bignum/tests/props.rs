//! Algebraic-law property tests for `BigUint` against `u128` oracles.

use bignum::BigUint;
use proptest::prelude::*;

fn to_u128(n: &BigUint) -> u128 {
    let bytes = n.to_bytes_be();
    assert!(bytes.len() <= 16, "fits u128");
    let mut out = [0u8; 16];
    out[16 - bytes.len()..].copy_from_slice(&bytes);
    u128::from_be_bytes(out)
}

fn from_u128(v: u128) -> BigUint {
    BigUint::from_bytes_be(&v.to_be_bytes())
}

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..u128::MAX / 2, b in 0u128..u128::MAX / 2) {
        prop_assert_eq!(to_u128(&from_u128(a).add(&from_u128(b))), a + b);
    }

    #[test]
    fn sub_matches_u128(a: u128, b: u128) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(to_u128(&from_u128(hi).sub(&from_u128(lo))), hi - lo);
        if hi != lo {
            prop_assert_eq!(from_u128(lo).checked_sub(&from_u128(hi)), None);
        }
    }

    #[test]
    fn mul_matches_u128(a in 0u128..(1 << 64), b in 0u128..(1 << 64)) {
        prop_assert_eq!(to_u128(&from_u128(a).mul(&from_u128(b))), a * b);
    }

    #[test]
    fn div_rem_matches_u128(a: u128, b in 1u128..u128::MAX) {
        let (q, r) = from_u128(a).div_rem(&from_u128(b));
        prop_assert_eq!(to_u128(&q), a / b);
        prop_assert_eq!(to_u128(&r), a % b);
    }

    #[test]
    fn div_rem_reconstructs(a: u128, b in 1u128..u128::MAX) {
        let an = from_u128(a);
        let bn = from_u128(b);
        let (q, r) = an.div_rem(&bn);
        prop_assert_eq!(q.mul(&bn).add(&r), an);
        prop_assert!(r < bn);
    }

    #[test]
    fn mul_distributes_over_add(a in 0u128..(1 << 60), b in 0u128..(1 << 60), c in 0u128..(1 << 60)) {
        let (an, bn, cn) = (from_u128(a), from_u128(b), from_u128(c));
        prop_assert_eq!(
            an.mul(&bn.add(&cn)),
            an.mul(&bn).add(&an.mul(&cn))
        );
    }

    #[test]
    fn shifts_are_mul_div_by_powers(a: u128, s in 0usize..40) {
        let n = from_u128(a);
        prop_assert_eq!(n.shl(s), n.mul(&BigUint::one().shl(s)));
        prop_assert_eq!(n.shr(s), n.div_rem(&BigUint::one().shl(s)).0);
    }

    #[test]
    fn modpow_matches_naive(base in 0u64..1000, exp in 0u64..64, m in 2u64..10_000) {
        let expected = {
            let mut acc: u128 = 1;
            for _ in 0..exp {
                acc = acc * u128::from(base) % u128::from(m);
            }
            acc
        };
        let got = BigUint::from_u64(base).modpow(
            &BigUint::from_u64(exp),
            &BigUint::from_u64(m),
        );
        prop_assert_eq!(to_u128(&got), expected);
    }

    #[test]
    fn modinv_is_inverse(a in 1u64..100_000, m in 2u64..100_000) {
        let an = BigUint::from_u64(a);
        let mn = BigUint::from_u64(m);
        match an.modinv(&mn) {
            Some(inv) => {
                prop_assert_eq!(an.mulmod(&inv, &mn), BigUint::one().rem(&mn));
            }
            None => {
                prop_assert!(!an.gcd(&mn).is_u32(1));
            }
        }
    }

    #[test]
    fn bytes_round_trip(a: u128) {
        prop_assert_eq!(to_u128(&from_u128(a)), a);
    }
}
