//! Recursive-descent parser for the Dynamic C subset.

use crate::ast::{BinOp, Expr, Function, Place, Program, Stmt, Ty, UnOp, VarDecl};
use crate::lexer::{lex, CompileError, Kw, Tok, Token};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Parses a translation unit.
///
/// # Errors
///
/// [`CompileError`] with the offending line on any syntax error.
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CompileError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{p}`, found {other}"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        matches!(self.peek(), Tok::Punct(q) if *q == p) && {
            self.bump();
            true
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        matches!(self.peek(), Tok::Kw(q) if *q == k) && {
            self.bump();
            true
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        let line = self.line();
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(CompileError {
                line,
                message: format!("expected identifier, found {other}"),
            }),
        }
    }

    /// Parses an optional storage class + type: `[root|xmem] [const]
    /// [unsigned] (char|int|void)`.
    fn try_type(&mut self) -> Result<Option<(Ty, Place)>, CompileError> {
        let mut place = Place::default();
        let mut saw_place = false;
        if self.eat_kw(Kw::Root) {
            place = Place::Root;
            saw_place = true;
        } else if self.eat_kw(Kw::Xmem) {
            place = Place::Xmem;
            saw_place = true;
        }
        let _ = self.eat_kw(Kw::Const);
        let unsigned = self.eat_kw(Kw::Unsigned);
        let ty = if self.eat_kw(Kw::Char) {
            Ty::Char
        } else if self.eat_kw(Kw::Int) {
            Ty::Int
        } else if self.eat_kw(Kw::Void) {
            Ty::Void
        } else if unsigned {
            Ty::Int // plain `unsigned`
        } else if saw_place {
            return Err(self.err("expected a type after storage class"));
        } else {
            return Ok(None);
        };
        Ok(Some((ty, place)))
    }

    fn const_expr(&mut self) -> Result<u16, CompileError> {
        // Initialisers and array sizes: numbers, optionally negated.
        let neg = self.eat_punct("-");
        let line = self.line();
        match self.bump() {
            Tok::Num(n) => Ok(if neg { n.wrapping_neg() } else { n }),
            other => Err(CompileError {
                line,
                message: format!("expected constant, found {other}"),
            }),
        }
    }

    fn var_decl(&mut self, ty: Ty, place: Place) -> Result<VarDecl, CompileError> {
        let name = self.ident()?;
        let mut array = None;
        if self.eat_punct("[") {
            let n = self.const_expr()?;
            if n == 0 {
                return Err(self.err("zero-length array"));
            }
            array = Some(n);
            self.expect_punct("]")?;
        }
        let mut init = Vec::new();
        if self.eat_punct("=") {
            if self.eat_punct("{") {
                loop {
                    init.push(self.const_expr()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                    if matches!(self.peek(), Tok::Punct("}")) {
                        break; // trailing comma
                    }
                }
                self.expect_punct("}")?;
            } else {
                init.push(self.const_expr()?);
            }
        }
        if let Some(n) = array {
            if init.len() > usize::from(n) {
                return Err(self.err("too many initialisers"));
            }
        } else if init.len() > 1 {
            return Err(self.err("scalar with brace initialiser"));
        }
        self.expect_punct(";")?;
        Ok(VarDecl {
            name,
            ty,
            array,
            init,
            place,
        })
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut prog = Program::default();
        while !matches!(self.peek(), Tok::Eof) {
            if self.eat_kw(Kw::Extern) {
                // `extern void name();` — an assembly-linked routine.
                if !self.eat_kw(Kw::Void) {
                    return Err(self.err("extern routine must be declared void"));
                }
                let name = self.ident()?;
                self.expect_punct("(")?;
                let _ = self.eat_kw(Kw::Void);
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                if !prog.externs.contains(&name) {
                    prog.externs.push(name);
                }
                continue;
            }
            let isr = self.eat_kw(Kw::Interrupt);
            let Some((ty, place)) = self.try_type()? else {
                return Err(self.err(format!(
                    "expected declaration or function, found {}",
                    self.peek()
                )));
            };
            // Look ahead: identifier then `(` means function.
            let save = self.pos;
            let name = self.ident()?;
            if self.eat_punct("(") {
                let mut f = self.function(ty, name)?;
                if isr {
                    if f.ret != Ty::Void {
                        return Err(self.err("interrupt function must return void"));
                    }
                    if !f.params.is_empty() {
                        return Err(self.err("interrupt function takes no parameters"));
                    }
                    f.interrupt = true;
                }
                prog.functions.push(f);
            } else {
                if isr {
                    return Err(self.err("`interrupt` requires a function definition"));
                }
                self.pos = save;
                if ty == Ty::Void {
                    return Err(self.err("void variable"));
                }
                prog.globals.push(self.var_decl(ty, place)?);
            }
        }
        Ok(prog)
    }

    fn function(&mut self, ret: Ty, name: String) -> Result<Function, CompileError> {
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                if self.eat_kw(Kw::Void) && matches!(self.peek(), Tok::Punct(")")) {
                    // `f(void)`
                    self.bump();
                    break;
                }
                let Some((ty, _)) = self.try_type()? else {
                    return Err(self.err("expected parameter type"));
                };
                if ty == Ty::Void {
                    return Err(self.err("void parameter"));
                }
                let pname = self.ident()?;
                params.push((pname, ty));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        self.expect_punct("{")?;

        // Local declarations come first (C89 style, as Dynamic C expects).
        let mut locals = Vec::new();
        loop {
            let save = self.pos;
            let _ = self.eat_kw(Kw::Auto); // accepted; locals are static anyway
            match self.try_type()? {
                Some((ty, place)) if ty != Ty::Void => {
                    locals.push(self.var_decl(ty, place)?);
                }
                Some(_) => return Err(self.err("void local")),
                None => {
                    self.pos = save;
                    break;
                }
            }
        }

        let mut body = Vec::new();
        while !self.eat_punct("}") {
            body.push(self.stmt()?);
        }
        Ok(Function {
            name,
            ret,
            params,
            locals,
            body,
            interrupt: false,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.eat_punct("{") {
            let mut out = Vec::new();
            while !self.eat_punct("}") {
                out.push(self.stmt()?);
            }
            Ok(out)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        if self.eat_punct(";") {
            // empty statement
            return Ok(Stmt::Expr(Expr::Num(0)));
        }
        if self.eat_kw(Kw::If) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block()?;
            let els = if self.eat_kw(Kw::Else) {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_kw(Kw::While) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_kw(Kw::For) {
            self.expect_punct("(")?;
            let init = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let cond = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if matches!(self.peek(), Tok::Punct(")")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::For(init, cond, step, body));
        }
        if self.eat_kw(Kw::Return) {
            let value = if matches!(self.peek(), Tok::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(value));
        }
        if self.eat_kw(Kw::Break) {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw(Kw::Continue) {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    // Expression grammar, lowest precedence first.
    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.logical_or()?;
        let op: Option<Option<BinOp>> = match self.peek() {
            Tok::Punct("=") => Some(None),
            Tok::Punct("+=") => Some(Some(BinOp::Add)),
            Tok::Punct("-=") => Some(Some(BinOp::Sub)),
            Tok::Punct("*=") => Some(Some(BinOp::Mul)),
            Tok::Punct("/=") => Some(Some(BinOp::Div)),
            Tok::Punct("%=") => Some(Some(BinOp::Mod)),
            Tok::Punct("&=") => Some(Some(BinOp::And)),
            Tok::Punct("|=") => Some(Some(BinOp::Or)),
            Tok::Punct("^=") => Some(Some(BinOp::Xor)),
            Tok::Punct("<<=") => Some(Some(BinOp::Shl)),
            Tok::Punct(">>=") => Some(Some(BinOp::Shr)),
            _ => None,
        };
        let Some(compound) = op else { return Ok(lhs) };
        if !matches!(lhs, Expr::Var(_) | Expr::Index(..)) {
            return Err(self.err("assignment target must be a variable or element"));
        }
        self.bump();
        let rhs = self.assignment()?;
        let value = match compound {
            None => rhs,
            Some(op) => Expr::Bin(op, Box::new(lhs.clone()), Box::new(rhs)),
        };
        Ok(Expr::Assign(Box::new(lhs), Box::new(value)))
    }

    fn binary_level(
        &mut self,
        ops: &[(&str, BinOp)],
        next: fn(&mut Parser) -> Result<Expr, CompileError>,
    ) -> Result<Expr, CompileError> {
        let mut lhs = next(self)?;
        loop {
            let found = ops
                .iter()
                .find(|(p, _)| matches!(self.peek(), Tok::Punct(q) if q == p));
            let Some(&(_, op)) = found else { break };
            self.bump();
            let rhs = next(self)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logical_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("||", BinOp::LogOr)], Parser::logical_and)
    }

    fn logical_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("&&", BinOp::LogAnd)], Parser::bit_or)
    }

    fn bit_or(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("|", BinOp::Or)], Parser::bit_xor)
    }

    fn bit_xor(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("^", BinOp::Xor)], Parser::bit_and)
    }

    fn bit_and(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("&", BinOp::And)], Parser::equality)
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("==", BinOp::Eq), ("!=", BinOp::Ne)], Parser::relational)
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            Parser::shift,
        )
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(&[("<<", BinOp::Shl), (">>", BinOp::Shr)], Parser::additive)
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            Parser::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        self.binary_level(
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Mod)],
            Parser::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if self.eat_punct("-") {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Un(UnOp::LogNot, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let primary = self.primary()?;
        // `x++` / `x--` as statement-level sugar: x = x + 1
        if matches!(self.peek(), Tok::Punct("++") | Tok::Punct("--")) {
            let inc = matches!(self.bump(), Tok::Punct("++"));
            if !matches!(primary, Expr::Var(_) | Expr::Index(..)) {
                return Err(self.err("++/-- target must be a variable or element"));
            }
            let op = if inc { BinOp::Add } else { BinOp::Sub };
            return Ok(Expr::Assign(
                Box::new(primary.clone()),
                Box::new(Expr::Bin(op, Box::new(primary), Box::new(Expr::Num(1)))),
            ));
        }
        Ok(primary)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Tok::Num(n) => Ok(Expr::Num(n)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(CompileError {
                line,
                message: format!("unexpected {other} in expression"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_and_main() {
        let prog = parse(
            "root char table[4] = {1, 2, 3, 4};\n\
             int total;\n\
             int main() { int i; total = 0; for (i = 0; i < 4; i++) total += table[i]; return total; }",
        )
        .unwrap();
        assert_eq!(prog.globals.len(), 2);
        assert_eq!(prog.globals[0].place, Place::Root);
        assert_eq!(prog.globals[0].init, vec![1, 2, 3, 4]);
        let main = prog.function("main").unwrap();
        assert_eq!(main.locals.len(), 1);
        assert_eq!(main.body.len(), 3);
    }

    #[test]
    fn operator_precedence() {
        let prog = parse("int main() { return 2 + 3 * 4; }").unwrap();
        let Stmt::Return(Some(Expr::Bin(BinOp::Add, _, rhs))) = &prog.functions[0].body[0] else {
            panic!("shape");
        };
        assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn compound_assignment_desugars() {
        let prog = parse("int x; int main() { x ^= 5; }").unwrap();
        let Stmt::Expr(Expr::Assign(_, rhs)) = &prog.functions[0].body[0] else {
            panic!("shape");
        };
        assert!(matches!(**rhs, Expr::Bin(BinOp::Xor, _, _)));
    }

    #[test]
    fn functions_with_params() {
        let prog = parse("char f(char a, int b) { return a + b; } int main() { return f(1, 2); }")
            .unwrap();
        assert_eq!(prog.functions[0].params.len(), 2);
    }

    #[test]
    fn rejects_bad_assignment_target() {
        assert!(parse("int main() { 5 = 6; }").is_err());
    }

    #[test]
    fn parses_if_else_chains() {
        let prog = parse(
            "int main() { int x; if (x == 1) x = 2; else { x = 3; } while (x) x--; return x; }",
        )
        .unwrap();
        assert_eq!(prog.functions[0].body.len(), 3);
    }
}
