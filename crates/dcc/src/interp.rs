//! A direct AST interpreter for the Dynamic C subset — the reference
//! semantics the compiled code is differentially tested against.
//!
//! Semantics mirror the compiler exactly: 16-bit wrapping arithmetic,
//! `char` truncation on store, Dynamic C static locals (they keep values
//! across calls), division by zero yields 0 (the hardware has no trap and
//! the paper's port "simply ignored most errors").

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Function, Program, Stmt, Ty, UnOp};
use crate::lexer::CompileError;

/// Memory image of one variable.
#[derive(Debug, Clone)]
struct Cell {
    ty: Ty,
    values: Vec<u16>,
}

/// Interpreter state.
pub struct Interp<'p> {
    prog: &'p Program,
    vars: HashMap<String, Cell>,
    /// Steps executed (guards against runaway loops).
    pub steps: u64,
    max_steps: u64,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(u16),
}

impl<'p> Interp<'p> {
    /// Prepares an interpreter, allocating globals and every function's
    /// static locals/params.
    pub fn new(prog: &'p Program) -> Interp<'p> {
        let mut vars = HashMap::new();
        for g in &prog.globals {
            let len = usize::from(g.array.unwrap_or(1));
            let mut values = vec![0u16; len];
            for (v, &init) in values.iter_mut().zip(&g.init) {
                *v = mask(g.ty, init);
            }
            vars.insert(g.name.clone(), Cell { ty: g.ty, values });
        }
        for f in &prog.functions {
            for (pname, pty) in &f.params {
                vars.insert(
                    scoped(&f.name, pname),
                    Cell {
                        ty: *pty,
                        values: vec![0],
                    },
                );
            }
            for l in &f.locals {
                let len = usize::from(l.array.unwrap_or(1));
                let mut values = vec![0u16; len];
                for (v, &init) in values.iter_mut().zip(&l.init) {
                    *v = mask(l.ty, init);
                }
                vars.insert(scoped(&f.name, &l.name), Cell { ty: l.ty, values });
            }
        }
        Interp {
            prog,
            vars,
            steps: 0,
            max_steps: 50_000_000,
        }
    }

    /// Runs `main` and returns its value.
    ///
    /// # Errors
    ///
    /// [`CompileError`] for missing symbols or a blown step budget.
    pub fn run_main(&mut self) -> Result<u16, CompileError> {
        self.call("main", &[])
    }

    /// Calls a function by name with argument values.
    ///
    /// # Errors
    ///
    /// As [`Interp::run_main`].
    pub fn call(&mut self, name: &str, args: &[u16]) -> Result<u16, CompileError> {
        let f = self.prog.function(name).ok_or_else(|| CompileError {
            line: 0,
            message: format!("undefined function `{name}`"),
        })?;
        if args.len() != f.params.len() {
            return Err(CompileError {
                line: 0,
                message: format!("{name}: expected {} args", f.params.len()),
            });
        }
        for ((pname, pty), &v) in f.params.iter().zip(args) {
            let key = scoped(name, pname);
            let cell = self.vars.get_mut(&key).expect("params preallocated");
            cell.values[0] = mask(*pty, v);
        }
        match self.exec_block(f, &f.body)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(0),
        }
    }

    /// Reads a global scalar or array element, for test assertions.
    pub fn global(&self, name: &str, index: usize) -> Option<u16> {
        self.vars
            .get(name)
            .and_then(|c| c.values.get(index))
            .copied()
    }

    fn exec_block(&mut self, f: &Function, body: &[Stmt]) -> Result<Flow, CompileError> {
        for stmt in body {
            match self.exec(f, stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, f: &Function, stmt: &Stmt) -> Result<Flow, CompileError> {
        self.tick()?;
        Ok(match stmt {
            Stmt::Expr(e) => {
                self.eval(f, e)?;
                Flow::Normal
            }
            Stmt::If(cond, then, els) => {
                if self.eval(f, cond)? != 0 {
                    self.exec_block(f, then)?
                } else {
                    self.exec_block(f, els)?
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(f, cond)? != 0 {
                    self.tick()?;
                    match self.exec_block(f, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Flow::Normal
            }
            Stmt::For(init, cond, step, body) => {
                if let Some(e) = init {
                    self.eval(f, e)?;
                }
                loop {
                    if let Some(c) = cond {
                        if self.eval(f, c)? == 0 {
                            break;
                        }
                    }
                    self.tick()?;
                    match self.exec_block(f, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if let Some(s) = step {
                        self.eval(f, s)?;
                    }
                }
                Flow::Normal
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(f, e)?,
                    None => 0,
                };
                Flow::Return(mask(f.ret, v))
            }
            Stmt::Break => Flow::Break,
            Stmt::Continue => Flow::Continue,
        })
    }

    fn lookup_key(&self, f: &Function, name: &str) -> Result<String, CompileError> {
        let local = scoped(&f.name, name);
        if self.vars.contains_key(&local) {
            return Ok(local);
        }
        if self.vars.contains_key(name) {
            return Ok(name.to_string());
        }
        Err(CompileError {
            line: 0,
            message: format!("undefined variable `{name}` in `{}`", f.name),
        })
    }

    fn eval(&mut self, f: &Function, e: &Expr) -> Result<u16, CompileError> {
        self.tick()?;
        Ok(match e {
            Expr::Num(n) => *n,
            Expr::Var(name) => {
                let key = self.lookup_key(f, name)?;
                self.vars[&key].values[0]
            }
            Expr::Index(name, idx) => {
                let i = usize::from(self.eval(f, idx)?);
                let key = self.lookup_key(f, name)?;
                let cell = &self.vars[&key];
                *cell.values.get(i).ok_or_else(|| CompileError {
                    line: 0,
                    message: format!("index {i} out of bounds for `{name}`"),
                })?
            }
            Expr::Un(op, inner) => {
                let v = self.eval(f, inner)?;
                match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => !v,
                    UnOp::LogNot => u16::from(v == 0),
                }
            }
            Expr::Bin(op, l, r) => {
                // short-circuit forms first
                match op {
                    BinOp::LogAnd => {
                        let lv = self.eval(f, l)?;
                        if lv == 0 {
                            return Ok(0);
                        }
                        return Ok(u16::from(self.eval(f, r)? != 0));
                    }
                    BinOp::LogOr => {
                        let lv = self.eval(f, l)?;
                        if lv != 0 {
                            return Ok(1);
                        }
                        return Ok(u16::from(self.eval(f, r)? != 0));
                    }
                    _ => {}
                }
                let a = self.eval(f, l)?;
                let b = self.eval(f, r)?;
                eval_bin(*op, a, b)
            }
            Expr::Assign(target, value) => {
                let v = self.eval(f, value)?;
                match &**target {
                    Expr::Var(name) => {
                        let key = self.lookup_key(f, name)?;
                        let cell = self.vars.get_mut(&key).expect("checked");
                        let v = mask(cell.ty, v);
                        cell.values[0] = v;
                        v
                    }
                    Expr::Index(name, idx) => {
                        let i = usize::from(self.eval(f, idx)?);
                        let key = self.lookup_key(f, name)?;
                        let cell = self.vars.get_mut(&key).expect("checked");
                        let v = mask(cell.ty, v);
                        *cell.values.get_mut(i).ok_or_else(|| CompileError {
                            line: 0,
                            message: format!("index {i} out of bounds for `{name}`"),
                        })? = v;
                        v
                    }
                    _ => unreachable!("parser validates assignment targets"),
                }
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(f, a)?);
                }
                self.call(name, &vals)?
            }
        })
    }

    fn tick(&mut self) -> Result<(), CompileError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(CompileError {
                line: 0,
                message: "interpreter step budget exhausted".into(),
            });
        }
        Ok(())
    }
}

/// Evaluates a non-short-circuit binary operator with the subset's
/// semantics.
pub fn eval_bin(op: BinOp, a: u16, b: u16) -> u16 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => a.checked_div(b).unwrap_or(0),
        BinOp::Mod => a.checked_rem(b).unwrap_or(0),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= 16 {
                0
            } else {
                a << b
            }
        }
        BinOp::Shr => {
            if b >= 16 {
                0
            } else {
                a >> b
            }
        }
        BinOp::Eq => u16::from(a == b),
        BinOp::Ne => u16::from(a != b),
        BinOp::Lt => u16::from(a < b),
        BinOp::Le => u16::from(a <= b),
        BinOp::Gt => u16::from(a > b),
        BinOp::Ge => u16::from(a >= b),
        BinOp::LogAnd | BinOp::LogOr => unreachable!("short-circuit handled by caller"),
    }
}

fn mask(ty: Ty, v: u16) -> u16 {
    match ty {
        Ty::Char => v & 0xFF,
        _ => v,
    }
}

fn scoped(func: &str, var: &str) -> String {
    format!("{func}::{var}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> u16 {
        let prog = parse(src).expect("parses");
        Interp::new(&prog).run_main().expect("runs")
    }

    #[test]
    fn arithmetic_and_loops() {
        assert_eq!(run("int main() { return 2 + 3 * 4; }"), 14);
        assert_eq!(
            run("int main() { int s; int i; s = 0; for (i = 1; i <= 10; i++) s += i; return s; }"),
            55
        );
    }

    #[test]
    fn char_truncates_on_store() {
        assert_eq!(run("char c; int main() { c = 0x1FF; return c; }"), 0xFF);
    }

    #[test]
    fn arrays_and_tables() {
        assert_eq!(
            run("char t[4] = {10, 20, 30, 40}; int main() { return t[1] + t[3]; }"),
            60
        );
    }

    #[test]
    fn static_locals_persist_across_calls() {
        // Dynamic C §4.1: locals are static by default, which "can
        // dramatically change program behavior".
        assert_eq!(
            run("int bump() { int n; n += 1; return n; }\n\
                 int main() { bump(); bump(); return bump(); }"),
            3
        );
    }

    #[test]
    fn division_by_zero_yields_zero() {
        assert_eq!(run("int main() { return 7 / 0 + 3 % 0; }"), 0);
    }

    #[test]
    fn short_circuit_evaluation() {
        assert_eq!(
            run("int hits; int touch() { hits += 1; return 1; }\n\
                 int main() { 0 && touch(); 1 || touch(); return hits; }"),
            0
        );
    }

    #[test]
    fn break_and_continue() {
        assert_eq!(
            run(
                "int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) { \
                 if (i == 3) continue; if (i == 6) break; s += i; } return s; }"
            ),
            1 + 2 + 4 + 5
        );
    }

    #[test]
    fn recursion_is_broken_by_static_locals() {
        // With static locals, naive recursion gives the non-recursive
        // answer — exactly the surprise the paper warns about.
        let v = run(
            "int fact(int n) { int r; if (n <= 1) return 1; r = fact(n - 1); return n * r; }\n\
             int main() { return fact(4); }",
        );
        // n is clobbered by the recursive call: fact(4) -> n becomes 1.
        assert_ne!(v, 24, "static locals break recursion, got {v}");
    }
}
