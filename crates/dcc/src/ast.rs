//! Abstract syntax for the Dynamic C subset.

/// Scalar types of the subset. Arithmetic is performed in 16 bits; `char`
/// values are truncated on store, as an 8-bit-targeted C compiler does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 8-bit unsigned (`char` / `unsigned char`).
    Char,
    /// 16-bit unsigned (`int` / `unsigned int`).
    Int,
    /// Function return only.
    Void,
}

impl Ty {
    /// Size of a stored value in bytes.
    pub fn size(self) -> u16 {
        match self {
            Ty::Char => 1,
            Ty::Int => 2,
            Ty::Void => 0,
        }
    }
}

/// Data placement, per the Dynamic C `root`/`xmem` storage classes.
///
/// Dynamic C places ordinary variables in root memory; large constant
/// tables go to extended memory unless explicitly declared `root` — which
/// is exactly the "moving data to root memory" optimization of the
/// paper's §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Place {
    /// Root memory: one direct access.
    #[default]
    Root,
    /// Extended memory: accessed through the XPC window with save/restore
    /// overhead.
    Xmem,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Logical not.
    LogNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(u16),
    /// Variable reference.
    Var(String),
    /// Array element.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Assignment: `lhs = rhs` (lhs is Var or Index).
    Assign(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) then [else]`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) body`.
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; step) body` (any part may be absent).
    For(Option<Expr>, Option<Expr>, Option<Expr>, Vec<Stmt>),
    /// `return [expr]`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
}

/// A variable declaration (global or function-local; locals are static by
/// default, as in Dynamic C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Array length, or `None` for a scalar.
    pub array: Option<u16>,
    /// Initialiser values (scalars use one element).
    pub init: Vec<u16>,
    /// Placement.
    pub place: Place,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Ty,
    /// Parameters (name, type).
    pub params: Vec<(String, Ty)>,
    /// Local declarations.
    pub locals: Vec<VarDecl>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Declared with the `interrupt` qualifier: compiled with a full
    /// register save/restore prologue and a `reti` return, reachable
    /// only through an interrupt vector (never a C call).
    pub interrupt: bool,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Global variables (and arrays/tables).
    pub globals: Vec<VarDecl>,
    /// Functions; execution starts at `main`.
    pub functions: Vec<Function>,
    /// `extern void name();` declarations: routines supplied by a linked
    /// assembly module (label `_name`), callable with zero arguments.
    /// Data passes through globals the assembly references by symbol.
    pub externs: Vec<String>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Whether `name` is declared `extern` (assembly-linked).
    pub fn is_extern(&self, name: &str) -> bool {
        self.externs.iter().any(|e| e == name)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<&VarDecl> {
        self.globals.iter().find(|g| g.name == name)
    }
}
