//! Code generation: Dynamic C subset → Rabbit 2000 assembly.
//!
//! The generator is deliberately *naive* — a faithful stand-in for a
//! circa-2002 non-optimizing embedded C compiler: every expression value
//! flows through `HL`, operands are staged via `push`/`pop`, and every
//! variable access goes to memory. The optimization switches in
//! [`Options`] mirror exactly what the paper's authors tried on their C
//! port of AES (§6): disabling debug instrumentation, moving data to root
//! memory, unrolling loops, and enabling (peephole) compiler
//! optimization.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Function, Place, Program, Stmt, Ty, UnOp, VarDecl};
use crate::lexer::CompileError;
use crate::peephole;

/// Compiler switches — the paper's E2 ablation axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Insert the `rst 0x28` debugger hook before every statement, as
    /// Dynamic C does when debugging is enabled (default on).
    pub debug: bool,
    /// Place data in root memory instead of behind the XPC window.
    pub root_data: bool,
    /// Unroll `for` loops with small constant trip counts.
    pub unroll: bool,
    /// Run the peephole optimizer over the generated code.
    pub peephole: bool,
}

impl Options {
    /// Dynamic C defaults: debugging on, data in xmem, no optimization —
    /// the configuration of the paper's first direct port.
    pub fn baseline() -> Options {
        Options {
            debug: true,
            root_data: false,
            unroll: false,
            peephole: false,
        }
    }

    /// Everything the paper tried, together.
    pub fn all_optimizations() -> Options {
        Options {
            debug: false,
            root_data: true,
            unroll: true,
            peephole: true,
        }
    }
}

impl Default for Options {
    fn default() -> Options {
        Options::baseline()
    }
}

/// Memory-layout constants shared with the execution harness.
pub mod layout {
    /// Entry point / code origin (root flash).
    pub const CODE_ORG: u16 = 0x4000;
    /// Root data origin (logical; the harness maps it to SRAM).
    pub const ROOT_DATA_ORG: u16 = 0x8000;
    /// Xmem data origin: inside the XPC window.
    pub const XMEM_DATA_ORG: u16 = 0xE000;
    /// XPC value selecting the xmem data page.
    pub const XMEM_XPC: u8 = 0x76;
    /// Address of the debug hook the `rst 0x28` instrumentation hits.
    pub const DEBUG_VECTOR: u16 = 0x28;
}

#[derive(Debug, Clone, Copy)]
struct VarInfo {
    ty: Ty,
    array: bool,
    place: Place,
}

struct Codegen<'p> {
    prog: &'p Program,
    opts: Options,
    out: Vec<String>,
    globals: HashMap<String, VarInfo>,
    label_seq: usize,
    /// (break, continue) label stack.
    loops: Vec<(String, String)>,
    current_fn: String,
    used_runtime: RuntimeUse,
    /// Interrupt vectors to emit: (vector address, C function name).
    vectors: Vec<(u16, String)>,
}

#[derive(Debug, Default, Clone, Copy)]
struct RuntimeUse {
    div: bool,
    shl: bool,
    shr: bool,
    nic_recv: bool,
    nic_send: bool,
}

/// The intrinsic functions of `nic.h`/`serial.h` — recognised by name in
/// call position and lowered directly to I/O port sequences, before any
/// user-function lookup. A user program cannot define functions with
/// these names.
pub const BUILTINS: &[&str] = &[
    "nic_listen",
    "nic_ier",
    "nic_conn",
    "nic_status",
    "nic_accept",
    "nic_close",
    "nic_recv",
    "nic_send",
    "serial_init",
    "serial_status",
    "serial_getc",
    "serial_putc",
    "idle",
];

/// Compiles a parsed program to assembly text.
///
/// # Errors
///
/// [`CompileError`] on semantic errors (undefined names, bad calls).
pub fn compile_program(prog: &Program, opts: Options) -> Result<String, CompileError> {
    compile_program_vectors(prog, opts, &[])
}

/// As [`compile_program`], but additionally emits an interrupt-vector
/// stub (`org <addr>; jp _<name>`) for each `(addr, name)` pair. Each
/// named function must exist and be declared `interrupt`.
///
/// # Errors
///
/// [`CompileError`] on semantic errors, including bad vector targets.
pub fn compile_program_vectors(
    prog: &Program,
    opts: Options,
    vectors: &[(u16, &str)],
) -> Result<String, CompileError> {
    let mut globals = HashMap::new();
    for g in &prog.globals {
        let place = if opts.root_data { Place::Root } else { g.place };
        globals.insert(
            gsym(&g.name),
            VarInfo {
                ty: g.ty,
                array: g.array.is_some(),
                place,
            },
        );
    }
    // Function statics (locals + params) are variables too.
    for f in &prog.functions {
        for (pname, pty) in &f.params {
            globals.insert(
                mangled(&f.name, pname),
                VarInfo {
                    ty: *pty,
                    array: false,
                    place: Place::Root,
                },
            );
        }
        for l in &f.locals {
            let place = if opts.root_data { Place::Root } else { l.place };
            globals.insert(
                mangled(&f.name, &l.name),
                VarInfo {
                    ty: l.ty,
                    array: l.array.is_some(),
                    place,
                },
            );
        }
    }

    let mut cg = Codegen {
        prog,
        opts,
        out: Vec::new(),
        globals,
        label_seq: 0,
        loops: Vec::new(),
        current_fn: String::new(),
        used_runtime: RuntimeUse::default(),
        vectors: vectors
            .iter()
            .map(|&(addr, name)| (addr, name.to_string()))
            .collect(),
    };
    cg.emit_all()?;
    Ok(cg.out.join("\n") + "\n")
}

/// Symbol for a global (underscore-prefixed, classic C style, so user
/// names can never collide with register mnemonics in the assembly).
fn gsym(name: &str) -> String {
    format!("_{name}")
}

fn mangled(func: &str, var: &str) -> String {
    format!("_{func}__{var}")
}

/// Label of an interrupt function's shared restore-and-`reti` epilogue
/// (`return;` inside the body jumps here).
fn isr_epilogue(func: &str) -> String {
    format!("_{func}__reti")
}

impl Codegen<'_> {
    fn emit(&mut self, line: impl Into<String>) {
        self.out.push(format!("        {}", line.into()));
    }

    fn label(&mut self, name: &str) {
        self.out.push(format!("{name}:"));
    }

    fn fresh(&mut self, stem: &str) -> String {
        self.label_seq += 1;
        format!("L{}_{stem}", self.label_seq)
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError {
            line: 0,
            message: msg.into(),
        }
    }

    fn emit_all(&mut self) -> Result<(), CompileError> {
        // Debug vector: the Dynamic C debugger hook. A plain `ret` — the
        // cost is the rst/ret round trip on every statement.
        self.out
            .push(format!("        org {:#06x}", layout::DEBUG_VECTOR));
        self.emit("ret");

        // Interrupt vectors: `jp` stubs into the C service routines.
        let vectors = self.vectors.clone();
        for (addr, fname) in &vectors {
            let f = self
                .prog
                .function(fname)
                .ok_or_else(|| self.err(format!("vector target `{fname}` is not defined")))?;
            if !f.interrupt {
                return Err(self.err(format!(
                    "vector target `{fname}` must be an `interrupt` function"
                )));
            }
            self.out.push(format!("        org {addr:#06x}"));
            self.emit(format!("jp {}", gsym(fname)));
        }

        // Entry stub.
        self.out
            .push(format!("        org {:#06x}", layout::CODE_ORG));
        self.emit("ld sp, 0xDFF0");
        self.emit("call _main");
        self.emit("ld (__result), hl");
        self.emit("halt");

        // Functions.
        let funcs: Vec<Function> = self.prog.functions.clone();
        for f in &funcs {
            if BUILTINS.contains(&f.name.as_str()) {
                return Err(self.err(format!("`{}` redefines a compiler intrinsic", f.name)));
            }
            if f.interrupt && f.name == "main" {
                return Err(self.err("`main` cannot be an interrupt function"));
            }
            self.current_fn = f.name.clone();
            let fsym = gsym(&f.name);
            self.label(&fsym);
            if f.interrupt {
                // Dynamic C's ISR prologue: save everything the body may
                // touch; the matching epilogue restores and `reti`s.
                self.emit("push af");
                self.emit("push bc");
                self.emit("push de");
                self.emit("push hl");
            }
            for stmt in &f.body {
                self.stmt(f, stmt)?;
            }
            if f.interrupt {
                self.label(&isr_epilogue(&f.name));
                self.emit("pop hl");
                self.emit("pop de");
                self.emit("pop bc");
                self.emit("pop af");
                self.emit("reti");
            } else {
                // Implicit return 0.
                self.emit("ld hl, 0");
                self.emit("ret");
            }
        }

        self.emit_runtime();
        self.emit_data()?;
        Ok(())
    }

    fn emit_runtime(&mut self) {
        // 16-bit unsigned divide: HL / DE -> quotient HL, remainder DE.
        // Division by zero returns 0 (no trap on this hardware).
        if self.used_runtime.div {
            self.label("__div16");
            self.emit("ld a, d");
            self.emit("or e");
            self.emit("jr nz, __div_ok");
            self.emit("ld hl, 0");
            self.emit("ld de, 0");
            self.emit("ret");
            self.label("__div_ok");
            self.emit("push bc");
            // BC = remainder accumulator, A = bit counter.
            self.emit("ld bc, 0");
            self.emit("ld a, 16");
            self.label("__div_loop");
            self.emit("push af"); // counter survives the flag traffic below
            self.emit("add hl, hl"); // shift dividend left, top bit to carry
            self.emit("rl c");
            self.emit("rl b"); // remainder = remainder*2 + carry
            self.emit("push hl");
            self.emit("ld h, b");
            self.emit("ld l, c");
            self.emit("xor a");
            self.emit("sbc hl, de");
            self.emit("jr c, __div_no");
            self.emit("ld b, h");
            self.emit("ld c, l");
            self.emit("pop hl");
            self.emit("inc hl"); // set low quotient bit
            self.emit("jr __div_next");
            self.label("__div_no");
            self.emit("pop hl");
            self.label("__div_next");
            self.emit("pop af");
            self.emit("dec a");
            self.emit("jr nz, __div_loop");
            self.emit("ld d, b");
            self.emit("ld e, c");
            self.emit("pop bc");
            self.emit("ret");
        }
        if self.used_runtime.shl {
            // HL << E (0..255; >=16 gives 0)
            self.label("__shl16");
            self.emit("ld a, e");
            self.emit("or a");
            self.emit("ret z");
            self.emit("cp 16");
            self.emit("jr c, __shl_go");
            self.emit("ld hl, 0");
            self.emit("ret");
            self.label("__shl_go");
            self.emit("push bc");
            self.emit("ld b, a");
            self.label("__shl_loop");
            self.emit("add hl, hl");
            self.emit("djnz __shl_loop");
            self.emit("pop bc");
            self.emit("ret");
        }
        {
            use rabbit::nicmap as nm;
            if self.used_runtime.nic_recv {
                // Copies the selected handle's pending frame to (DE) and
                // consumes it (`RX_NEXT`); returns the length in BC — 0
                // when nothing was pending, in which case no `RX_NEXT` is
                // issued (an empty-queue `RX_NEXT` would set STATUS_ERR).
                self.label("__nic_recv");
                self.emit(format!("ioe ld a, ({:#06x})", nm::NIC_RXLEN_LO));
                self.emit("ld c, a");
                self.emit(format!("ioe ld a, ({:#06x})", nm::NIC_RXLEN_HI));
                self.emit("ld b, a");
                self.emit("ld a, b");
                self.emit("or c");
                self.emit("jr z, __nr_done");
                self.emit("push bc");
                self.emit(format!("ld hl, {:#06x}", nm::NIC_RX_WINDOW));
                self.label("__nr_loop");
                self.emit("ioe ld a, (hl)");
                self.emit("ld (de), a");
                self.emit("inc hl");
                self.emit("inc de");
                self.emit("dec bc");
                self.emit("ld a, b");
                self.emit("or c");
                self.emit("jr nz, __nr_loop");
                self.emit("pop bc");
                self.emit(format!("ld a, {}", nm::CMD_RX_NEXT));
                self.emit(format!("ioe ld ({:#06x}), a", nm::NIC_CMD));
                self.label("__nr_done");
                self.emit("ret");
            }
            if self.used_runtime.nic_send {
                // Stages BC bytes from (HL) into the tx window of the
                // selected handle and fires `TX_GO`.
                self.label("__nic_send");
                self.emit("ld a, c");
                self.emit(format!("ioe ld ({:#06x}), a", nm::NIC_TXLEN_LO));
                self.emit("ld a, b");
                self.emit(format!("ioe ld ({:#06x}), a", nm::NIC_TXLEN_HI));
                self.emit("ld a, b");
                self.emit("or c");
                self.emit("jr z, __ns_go");
                self.emit(format!("ld de, {:#06x}", nm::NIC_TX_WINDOW));
                self.label("__ns_loop");
                self.emit("ld a, (hl)");
                self.emit("ioe ld (de), a");
                self.emit("inc hl");
                self.emit("inc de");
                self.emit("dec bc");
                self.emit("ld a, b");
                self.emit("or c");
                self.emit("jr nz, __ns_loop");
                self.label("__ns_go");
                self.emit(format!("ld a, {}", nm::CMD_TX_GO));
                self.emit(format!("ioe ld ({:#06x}), a", nm::NIC_CMD));
                self.emit("ret");
            }
        }
        if self.used_runtime.shr {
            // HL >> E
            self.label("__shr16");
            self.emit("ld a, e");
            self.emit("or a");
            self.emit("ret z");
            self.emit("cp 16");
            self.emit("jr c, __shr_go");
            self.emit("ld hl, 0");
            self.emit("ret");
            self.label("__shr_go");
            self.emit("push bc");
            self.emit("ld b, a");
            self.label("__shr_loop");
            self.emit("xor a"); // clear carry so rr hl shifts in 0
            self.emit("rr hl");
            self.emit("djnz __shr_loop");
            self.emit("pop bc");
            self.emit("ret");
        }
    }

    fn emit_data(&mut self) -> Result<(), CompileError> {
        let mut decls: Vec<(String, VarDecl)> = Vec::new();
        for g in &self.prog.globals {
            decls.push((gsym(&g.name), g.clone()));
        }
        for f in &self.prog.functions {
            for (pname, pty) in &f.params {
                decls.push((
                    mangled(&f.name, pname),
                    VarDecl {
                        name: String::new(),
                        ty: *pty,
                        array: None,
                        init: Vec::new(),
                        place: Place::Xmem,
                    },
                ));
            }
            for l in &f.locals {
                decls.push((mangled(&f.name, &l.name), l.clone()));
            }
        }

        let (root_org, xmem_org) = (layout::ROOT_DATA_ORG, layout::XMEM_DATA_ORG);
        for section_root in [true, false] {
            let org = if section_root { root_org } else { xmem_org };
            self.out.push(format!("        org {org:#06x}"));
            if section_root {
                // The harness result mailbox always lives in root data.
                self.label("__result");
                self.emit("dw 0");
            }
            for (name, decl) in &decls {
                let info = self.globals[name];
                if (info.place == Place::Root) != section_root {
                    continue;
                }
                self.label(name);
                let count = usize::from(decl.array.unwrap_or(1));
                let mut vals = decl.init.clone();
                vals.resize(count, 0);
                let dir = if decl.ty == Ty::Char { "db" } else { "dw" };
                for chunk in vals.chunks(8) {
                    let list: Vec<String> = chunk
                        .iter()
                        .map(|v| {
                            if decl.ty == Ty::Char {
                                format!("{:#04x}", v & 0xFF)
                            } else {
                                format!("{v:#06x}")
                            }
                        })
                        .collect();
                    self.emit(format!("{dir} {}", list.join(", ")));
                }
            }
        }
        Ok(())
    }

    fn var_info(&self, f: &Function, name: &str) -> Result<(String, VarInfo), CompileError> {
        let local = mangled(&f.name, name);
        if let Some(&info) = self.globals.get(&local) {
            // Only a hit if it really is this function's local/param.
            let is_local =
                f.params.iter().any(|(p, _)| p == name) || f.locals.iter().any(|l| l.name == name);
            if is_local {
                return Ok((local, info));
            }
        }
        if let Some(&info) = self.globals.get(&gsym(name)) {
            if self.prog.global(name).is_some() {
                return Ok((gsym(name), info));
            }
        }
        Err(self.err(format!("undefined variable `{name}` in `{}`", f.name)))
    }

    // ---- xmem access sequences ----------------------------------------

    /// Emits the XPC window entry for xmem data access (save current XPC,
    /// select the data page). Clobbers A.
    fn xmem_enter(&mut self) {
        self.emit("ld a, xpc");
        self.emit("push af");
        self.emit(format!("ld a, {:#04x}", layout::XMEM_XPC));
        self.emit("ld xpc, a");
    }

    fn xmem_leave(&mut self) {
        self.emit("pop af");
        self.emit("ld xpc, a");
    }

    /// Loads variable into HL (zero-extended for char).
    fn load_var(&mut self, name: &str, info: VarInfo) {
        let far = info.place == Place::Xmem;
        if far {
            self.xmem_enter();
        }
        match info.ty {
            Ty::Char => {
                self.emit(format!("ld a, ({name})"));
                self.emit("ld l, a");
                self.emit("ld h, 0");
            }
            _ => self.emit(format!("ld hl, ({name})")),
        }
        if far {
            self.xmem_leave();
        }
    }

    /// Stores HL into variable (char truncates).
    fn store_var(&mut self, name: &str, info: VarInfo) {
        let far = info.place == Place::Xmem;
        if far {
            self.xmem_enter();
        }
        match info.ty {
            Ty::Char => {
                self.emit("ld a, l");
                self.emit(format!("ld ({name}), a"));
            }
            _ => self.emit(format!("ld ({name}), hl")),
        }
        if far {
            self.xmem_leave();
        }
    }

    /// With the element address in HL, loads the element into HL.
    fn load_element(&mut self, ty: Ty, far: bool) {
        if far {
            self.xmem_enter();
        }
        match ty {
            Ty::Char => {
                self.emit("ld a, (hl)");
                self.emit("ld l, a");
                self.emit("ld h, 0");
            }
            _ => {
                self.emit("ld a, (hl)");
                self.emit("inc hl");
                self.emit("ld h, (hl)");
                self.emit("ld l, a");
            }
        }
        if far {
            self.xmem_leave();
        }
    }

    /// With the element address in HL and the value in DE, stores it.
    fn store_element(&mut self, ty: Ty, far: bool) {
        if far {
            self.xmem_enter();
        }
        match ty {
            Ty::Char => {
                self.emit("ld (hl), e");
            }
            _ => {
                self.emit("ld (hl), e");
                self.emit("inc hl");
                self.emit("ld (hl), d");
            }
        }
        if far {
            self.xmem_leave();
        }
    }

    /// Computes the address of `name[index_in_HL]` into HL.
    fn element_addr(&mut self, name: &str, ty: Ty) {
        if ty == Ty::Int {
            self.emit("add hl, hl");
        }
        self.emit(format!("ld de, {name}"));
        self.emit("add hl, de");
    }

    // ---- statements ----------------------------------------------------

    fn stmt(&mut self, f: &Function, stmt: &Stmt) -> Result<(), CompileError> {
        if self.opts.debug {
            self.emit("rst 0x28");
        }
        match stmt {
            Stmt::Expr(e) => {
                self.expr(f, e)?;
            }
            Stmt::Return(e) => {
                if f.interrupt {
                    if e.is_some() {
                        return Err(self.err("interrupt function cannot return a value"));
                    }
                    let epi = isr_epilogue(&f.name);
                    self.emit(format!("jp {epi}"));
                    return Ok(());
                }
                match e {
                    Some(e) => self.expr(f, e)?,
                    None => self.emit("ld hl, 0"),
                }
                if f.ret == Ty::Char {
                    self.emit("ld h, 0");
                }
                self.emit("ret");
            }
            Stmt::Break => {
                let (brk, _) = self
                    .loops
                    .last()
                    .cloned()
                    .ok_or_else(|| self.err("break outside loop"))?;
                self.emit(format!("jp {brk}"));
            }
            Stmt::Continue => {
                let (_, cont) = self
                    .loops
                    .last()
                    .cloned()
                    .ok_or_else(|| self.err("continue outside loop"))?;
                self.emit(format!("jp {cont}"));
            }
            Stmt::If(cond, then, els) => {
                let lelse = self.fresh("else");
                let lend = self.fresh("endif");
                self.expr(f, cond)?;
                self.emit("bool hl");
                self.emit(format!("jp z, {lelse}"));
                for s in then {
                    self.stmt(f, s)?;
                }
                self.emit(format!("jp {lend}"));
                self.label(&lelse);
                for s in els {
                    self.stmt(f, s)?;
                }
                self.label(&lend);
            }
            Stmt::While(cond, body) => {
                let ltop = self.fresh("while");
                let lend = self.fresh("wend");
                self.label(&ltop);
                self.expr(f, cond)?;
                self.emit("bool hl");
                self.emit(format!("jp z, {lend}"));
                self.loops.push((lend.clone(), ltop.clone()));
                for s in body {
                    self.stmt(f, s)?;
                }
                self.loops.pop();
                self.emit(format!("jp {ltop}"));
                self.label(&lend);
            }
            Stmt::For(init, cond, step, body) => {
                if self.opts.unroll {
                    if let Some(()) = self.try_unroll(f, init, cond, step, body)? {
                        return Ok(());
                    }
                }
                if let Some(e) = init {
                    self.expr(f, e)?;
                }
                let ltop = self.fresh("for");
                let lstep = self.fresh("fstep");
                let lend = self.fresh("fend");
                self.label(&ltop);
                if let Some(c) = cond {
                    self.expr(f, c)?;
                    self.emit("bool hl");
                    self.emit(format!("jp z, {lend}"));
                }
                self.loops.push((lend.clone(), lstep.clone()));
                for s in body {
                    self.stmt(f, s)?;
                }
                self.loops.pop();
                self.label(&lstep);
                if let Some(s) = step {
                    self.expr(f, s)?;
                }
                self.emit(format!("jp {ltop}"));
                self.label(&lend);
            }
        }
        Ok(())
    }

    /// Recognises `for (i = C0; i < C1; i++)` with a small trip count and
    /// no break/continue in the body; emits the body repeatedly.
    fn try_unroll(
        &mut self,
        f: &Function,
        init: &Option<Expr>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
        body: &[Stmt],
    ) -> Result<Option<()>, CompileError> {
        const MAX_TRIPS: u16 = 16;
        let (Some(init), Some(cond), Some(step)) = (init, cond, step) else {
            return Ok(None);
        };
        let Expr::Assign(target, start) = init else {
            return Ok(None);
        };
        let Expr::Var(ivar) = &**target else {
            return Ok(None);
        };
        let Expr::Num(c0) = &**start else {
            return Ok(None);
        };
        let Expr::Bin(BinOp::Lt, lhs, rhs) = cond else {
            return Ok(None);
        };
        let (Expr::Var(cv), Expr::Num(c1)) = (&**lhs, &**rhs) else {
            return Ok(None);
        };
        if cv != ivar || c1 <= c0 || c1 - c0 > MAX_TRIPS {
            return Ok(None);
        }
        // step must be i = i + 1
        let Expr::Assign(starget, svalue) = step else {
            return Ok(None);
        };
        let Expr::Var(sv) = &**starget else {
            return Ok(None);
        };
        let Expr::Bin(BinOp::Add, sl, sr) = &**svalue else {
            return Ok(None);
        };
        if sv != ivar
            || !matches!(&**sl, Expr::Var(v) if v == ivar)
            || !matches!(**sr, Expr::Num(1))
        {
            return Ok(None);
        }
        if body_has_loop_escape(body) {
            return Ok(None);
        }
        // Only small, flat bodies are worth replicating; unrolling nested
        // loops multiplies code size past the 16 KiB root-code budget.
        if body.len() > 6 || body_has_loop(body) {
            return Ok(None);
        }

        for i in *c0..*c1 {
            // i = <k>; body
            self.expr(
                f,
                &Expr::Assign(Box::new(Expr::Var(ivar.clone())), Box::new(Expr::Num(i))),
            )?;
            for s in body {
                self.stmt(f, s)?;
            }
        }
        // Loop variable ends at the bound, as the rolled loop leaves it.
        self.expr(
            f,
            &Expr::Assign(Box::new(Expr::Var(ivar.clone())), Box::new(Expr::Num(*c1))),
        )?;
        Ok(Some(()))
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self, f: &Function, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Num(n) => self.emit(format!("ld hl, {n:#06x}")),
            Expr::Var(name) => {
                let (sym, info) = self.var_info(f, name)?;
                if info.array {
                    // array name decays to its address
                    self.emit(format!("ld hl, {sym}"));
                } else {
                    self.load_var(&sym, info);
                }
            }
            Expr::Index(name, idx) => {
                let (sym, info) = self.var_info(f, name)?;
                if !info.array {
                    return Err(self.err(format!("`{name}` is not an array")));
                }
                self.expr(f, idx)?;
                self.element_addr(&sym, info.ty);
                self.load_element(info.ty, info.place == Place::Xmem);
            }
            Expr::Un(op, inner) => {
                self.expr(f, inner)?;
                match op {
                    UnOp::Neg => {
                        self.emit("ex de, hl");
                        self.emit("ld hl, 0");
                        self.emit("xor a");
                        self.emit("sbc hl, de");
                    }
                    UnOp::Not => {
                        self.emit("ld a, h");
                        self.emit("cpl");
                        self.emit("ld h, a");
                        self.emit("ld a, l");
                        self.emit("cpl");
                        self.emit("ld l, a");
                    }
                    UnOp::LogNot => {
                        self.emit("bool hl");
                        self.emit("ld a, l");
                        self.emit("xor 1");
                        self.emit("ld l, a");
                        self.emit("ld h, 0");
                    }
                }
            }
            Expr::Bin(op, l, r) => self.binop(f, *op, l, r)?,
            Expr::Assign(target, value) => {
                self.expr(f, value)?;
                match &**target {
                    Expr::Var(name) => {
                        let (sym, info) = self.var_info(f, name)?;
                        if info.array {
                            return Err(self.err(format!("cannot assign to array `{name}`")));
                        }
                        self.store_var(&sym, info);
                    }
                    Expr::Index(name, idx) => {
                        let (sym, info) = self.var_info(f, name)?;
                        self.emit("push hl"); // value
                        self.expr(f, idx)?;
                        self.element_addr(&sym, info.ty);
                        self.emit("pop de"); // value -> DE
                        self.store_element(info.ty, info.place == Place::Xmem);
                        self.emit("ex de, hl"); // assignment yields the value
                    }
                    _ => return Err(self.err("bad assignment target")),
                }
            }
            Expr::Call(name, args) => {
                if BUILTINS.contains(&name.as_str()) {
                    return self.builtin(f, name, args);
                }
                if self.prog.is_extern(name) && self.prog.function(name).is_none() {
                    // Assembly-linked routine: no parameter slots exist in
                    // this translation unit, so the call carries no
                    // arguments — data travels through named globals.
                    if !args.is_empty() {
                        return Err(self.err(format!(
                            "extern routine `{name}` takes no arguments (pass data via globals)"
                        )));
                    }
                    self.emit(format!("call {}", gsym(name)));
                    return Ok(());
                }
                let callee = self
                    .prog
                    .function(name)
                    .ok_or_else(|| self.err(format!("undefined function `{name}`")))?
                    .clone();
                if callee.interrupt {
                    return Err(self.err(format!(
                        "cannot call interrupt function `{name}` (reachable only via its vector)"
                    )));
                }
                if args.len() != callee.params.len() {
                    return Err(self.err(format!(
                        "`{name}` takes {} arguments, got {}",
                        callee.params.len(),
                        args.len()
                    )));
                }
                // Caller evaluates each argument and stores it into the
                // callee's static parameter slot (static-locals calling
                // convention).
                for (arg, (pname, pty)) in args.iter().zip(&callee.params) {
                    self.expr(f, arg)?;
                    let sym = mangled(name, pname);
                    let info = VarInfo {
                        ty: *pty,
                        array: false,
                        place: self.globals[&sym].place,
                    };
                    self.store_var(&sym, info);
                }
                self.emit(format!("call {}", gsym(name)));
            }
        }
        Ok(())
    }

    // ---- nic.h / serial.h intrinsics -----------------------------------

    /// Arity check for an intrinsic call.
    fn arity(&self, name: &str, args: &[Expr], n: usize) -> Result<(), CompileError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(self.err(format!(
                "`{name}` takes {n} argument(s), got {}",
                args.len()
            )))
        }
    }

    /// Reads the NIC status register into HL (L = status, H = 0) — every
    /// command intrinsic returns the post-command status so C code can
    /// test `STATUS_ERR` without a second call.
    fn nic_status_to_hl(&mut self) {
        self.emit(format!("ioe ld a, ({:#06x})", rabbit::nicmap::NIC_STATUS));
        self.emit("ld l, a");
        self.emit("ld h, 0");
    }

    /// Selects the connection handle currently in L (writes `CONN`).
    fn nic_select_from_hl(&mut self) {
        self.emit("ld a, l");
        self.emit(format!("ioe ld ({:#06x}), a", rabbit::nicmap::NIC_CONN));
    }

    /// Validates a buffer argument of `nic_recv`/`nic_send`: must name a
    /// `char` array in root memory (the window-copy shims run with plain
    /// 16-bit pointers, so the buffer cannot sit behind the XPC window).
    fn nic_buffer(&self, f: &Function, name: &str, arg: &Expr) -> Result<String, CompileError> {
        let Expr::Var(bname) = arg else {
            return Err(self.err(format!("`{name}` buffer must be an array name")));
        };
        let (sym, info) = self.var_info(f, bname)?;
        if !info.array || info.ty != Ty::Char {
            return Err(self.err(format!("`{name}` buffer `{bname}` must be a char array")));
        }
        if info.place != Place::Root {
            return Err(self.err(format!(
                "`{name}` buffer `{bname}` must live in root memory (declare it `root`)"
            )));
        }
        Ok(sym)
    }

    /// Lowers one intrinsic call. The sequences are the same port traffic
    /// the hand-written shims in `rmc2000::firmware` perform, generated
    /// from the same [`rabbit::nicmap`] register map.
    fn builtin(&mut self, f: &Function, name: &str, args: &[Expr]) -> Result<(), CompileError> {
        use rabbit::io::ports;
        use rabbit::nicmap as nm;
        match name {
            "nic_listen" => {
                self.arity(name, args, 1)?;
                self.expr(f, &args[0])?;
                self.emit("ld a, l");
                self.emit(format!("ioe ld ({:#06x}), a", nm::NIC_LPORT_LO));
                self.emit("ld a, h");
                self.emit(format!("ioe ld ({:#06x}), a", nm::NIC_LPORT_HI));
                self.emit(format!("ld a, {}", nm::CMD_LISTEN));
                self.emit(format!("ioe ld ({:#06x}), a", nm::NIC_CMD));
                self.nic_status_to_hl();
            }
            "nic_ier" => {
                self.arity(name, args, 1)?;
                self.expr(f, &args[0])?;
                self.emit("ld a, l");
                self.emit(format!("ioe ld ({:#06x}), a", nm::NIC_IER));
            }
            "nic_status" => {
                self.arity(name, args, 0)?;
                self.nic_status_to_hl();
            }
            "nic_conn" => {
                // Select connection handle, return its status view.
                self.arity(name, args, 1)?;
                self.expr(f, &args[0])?;
                self.nic_select_from_hl();
                self.nic_status_to_hl();
            }
            "nic_accept" | "nic_close" => {
                self.arity(name, args, 1)?;
                self.expr(f, &args[0])?;
                self.nic_select_from_hl();
                let cmd = if name == "nic_accept" {
                    nm::CMD_ACCEPT
                } else {
                    nm::CMD_CLOSE
                };
                self.emit(format!("ld a, {cmd}"));
                self.emit(format!("ioe ld ({:#06x}), a", nm::NIC_CMD));
                self.nic_status_to_hl();
            }
            "nic_recv" => {
                self.arity(name, args, 2)?;
                let sym = self.nic_buffer(f, name, &args[1])?;
                self.expr(f, &args[0])?;
                self.nic_select_from_hl();
                self.emit(format!("ld de, {sym}"));
                self.used_runtime.nic_recv = true;
                self.emit("call __nic_recv");
                // Return the received length.
                self.emit("ld h, b");
                self.emit("ld l, c");
            }
            "nic_send" => {
                self.arity(name, args, 3)?;
                let sym = self.nic_buffer(f, name, &args[1])?;
                self.expr(f, &args[0])?;
                self.nic_select_from_hl();
                self.expr(f, &args[2])?;
                self.emit("ld b, h");
                self.emit("ld c, l");
                self.emit(format!("ld hl, {sym}"));
                self.used_runtime.nic_send = true;
                self.emit("call __nic_send");
                self.nic_status_to_hl();
            }
            "serial_init" => {
                self.arity(name, args, 1)?;
                self.expr(f, &args[0])?;
                self.emit("ld a, l");
                self.emit(format!("ioi ld ({:#04x}), a", ports::SACR));
            }
            "serial_status" => {
                self.arity(name, args, 0)?;
                self.emit(format!("ioi ld a, ({:#04x})", ports::SASR));
                self.emit("ld l, a");
                self.emit("ld h, 0");
            }
            "serial_getc" => {
                self.arity(name, args, 0)?;
                self.emit(format!("ioi ld a, ({:#04x})", ports::SADR));
                self.emit("ld l, a");
                self.emit("ld h, 0");
            }
            "serial_putc" => {
                self.arity(name, args, 1)?;
                self.expr(f, &args[0])?;
                self.emit("ld a, l");
                self.emit(format!("ioi ld ({:#04x}), a", ports::SADR));
            }
            "idle" => {
                self.arity(name, args, 0)?;
                // The safe sleep idiom: every instruction of the spin is
                // a block terminator, so both execution engines sample
                // interrupts at the same points.
                let spin = self.fresh("spin");
                self.label(&spin);
                self.emit("halt");
                self.emit(format!("jr {spin}"));
            }
            _ => unreachable!("BUILTINS gate"),
        }
        Ok(())
    }

    fn binop(&mut self, f: &Function, op: BinOp, l: &Expr, r: &Expr) -> Result<(), CompileError> {
        // Short-circuit logicals.
        match op {
            BinOp::LogAnd => {
                let lfalse = self.fresh("andf");
                let lend = self.fresh("ande");
                self.expr(f, l)?;
                self.emit("bool hl");
                self.emit(format!("jp z, {lfalse}"));
                self.expr(f, r)?;
                self.emit("bool hl");
                self.emit(format!("jp {lend}"));
                self.label(&lfalse);
                self.emit("ld hl, 0");
                self.label(&lend);
                return Ok(());
            }
            BinOp::LogOr => {
                let ltrue = self.fresh("ort");
                let lend = self.fresh("ore");
                self.expr(f, l)?;
                self.emit("bool hl");
                self.emit(format!("jp nz, {ltrue}"));
                self.expr(f, r)?;
                self.emit("bool hl");
                self.emit(format!("jp {lend}"));
                self.label(&ltrue);
                self.emit("ld hl, 1");
                self.label(&lend);
                return Ok(());
            }
            _ => {}
        }

        // Normalise > and >= to swapped < and <=.
        let (op, l, r) = match op {
            BinOp::Gt => (BinOp::Lt, r, l),
            BinOp::Ge => (BinOp::Le, r, l),
            other => (other, l, r),
        };

        // left -> stack, right -> DE, left -> HL
        self.expr(f, l)?;
        self.emit("push hl");
        self.expr(f, r)?;
        self.emit("ex de, hl");
        self.emit("pop hl");

        match op {
            BinOp::Add => self.emit("add hl, de"),
            BinOp::Sub => {
                self.emit("xor a");
                self.emit("sbc hl, de");
            }
            BinOp::And => self.emit("and hl, de"),
            BinOp::Or => self.emit("or hl, de"),
            BinOp::Xor => {
                self.emit("ld a, h");
                self.emit("xor d");
                self.emit("ld h, a");
                self.emit("ld a, l");
                self.emit("xor e");
                self.emit("ld l, a");
            }
            BinOp::Mul => {
                self.emit("ld b, h");
                self.emit("ld c, l");
                self.emit("mul");
                self.emit("ld h, b");
                self.emit("ld l, c");
            }
            BinOp::Div => {
                self.used_runtime.div = true;
                self.emit("call __div16");
            }
            BinOp::Mod => {
                self.used_runtime.div = true;
                self.emit("call __div16");
                self.emit("ex de, hl");
            }
            BinOp::Shl => {
                self.used_runtime.shl = true;
                self.emit("call __shl16");
            }
            BinOp::Shr => {
                self.used_runtime.shr = true;
                self.emit("call __shr16");
            }
            BinOp::Eq | BinOp::Ne => {
                self.emit("xor a");
                self.emit("sbc hl, de");
                self.emit("bool hl");
                if op == BinOp::Eq {
                    self.emit("ld a, l");
                    self.emit("xor 1");
                    self.emit("ld l, a");
                }
            }
            BinOp::Lt => {
                let ltrue = self.fresh("lt");
                self.emit("xor a");
                self.emit("sbc hl, de");
                self.emit("ld hl, 1");
                self.emit(format!("jp c, {ltrue}"));
                self.emit("ld hl, 0");
                self.label(&ltrue);
            }
            BinOp::Le => {
                // l <= r  <=>  !(r < l); operands currently HL=l, DE=r.
                let lfalse = self.fresh("le");
                self.emit("ex de, hl");
                self.emit("xor a");
                self.emit("sbc hl, de"); // r - l, carry if r < l
                self.emit("ld hl, 0");
                self.emit(format!("jp c, {lfalse}"));
                self.emit("ld hl, 1");
                self.label(&lfalse);
            }
            BinOp::Gt | BinOp::Ge | BinOp::LogAnd | BinOp::LogOr => {
                unreachable!("normalised or handled above")
            }
        }
        Ok(())
    }
}

fn body_has_loop(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::For(..) | Stmt::While(..) => true,
        Stmt::If(_, a, b) => body_has_loop(a) || body_has_loop(b),
        _ => false,
    })
}

fn body_has_loop_escape(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::Break | Stmt::Continue => true,
        Stmt::If(_, a, b) => body_has_loop_escape(a) || body_has_loop_escape(b),
        // nested loops own their break/continue
        _ => false,
    })
}

/// Compiles source text with the given options.
///
/// # Errors
///
/// [`CompileError`] from the lexer, parser or code generator.
pub fn compile(source: &str, opts: Options) -> Result<String, CompileError> {
    compile_firmware(source, opts, &[])
}

/// Compiles source text as *firmware*: in addition to [`compile`], emits
/// an interrupt-vector `jp` stub for each `(vector address, interrupt
/// function name)` pair, so the image can service hardware interrupts
/// (NIC, serial) entirely from C.
///
/// # Errors
///
/// [`CompileError`] from the lexer, parser or code generator, including
/// vectors naming missing or non-`interrupt` functions.
pub fn compile_firmware(
    source: &str,
    opts: Options,
    vectors: &[(u16, &str)],
) -> Result<String, CompileError> {
    let prog = crate::parser::parse(source)?;
    let mut asm = compile_program_vectors(&prog, opts, vectors)?;
    if opts.peephole {
        asm = peephole::optimize(&asm);
    }
    Ok(asm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabbit::nicmap as nm;

    const ECHO_C: &str = "\
        root char buf[64];\n\
        interrupt void nic_isr() {\n\
            int st;\n\
            int n;\n\
            while (1) {\n\
                st = nic_status();\n\
                if ((st & 0x40) && !(st & 0x04)) { nic_accept(0); continue; }\n\
                if (st & 0x02) { n = nic_recv(0, buf); nic_send(0, buf, n); continue; }\n\
                if ((st & 0x08) && (st & 0x04)) { nic_close(0); continue; }\n\
                return;\n\
            }\n\
        }\n\
        int main() {\n\
            nic_listen(7);\n\
            nic_ier(1);\n\
            idle();\n\
            return 0;\n\
        }\n";

    #[test]
    fn interrupt_function_gets_isr_prologue_and_reti() {
        let asm = compile(
            "interrupt void tick() { return; }\nint main() { idle(); return 0; }",
            Options::baseline(),
        )
        .unwrap();
        let tick = asm.split("_tick:").nth(1).unwrap();
        for save in ["push af", "push bc", "push de", "push hl"] {
            assert!(tick.contains(save), "missing `{save}`:\n{asm}");
        }
        assert!(tick.contains("reti"), "{asm}");
        // `return;` jumps to the shared epilogue instead of `ret`.
        assert!(tick.contains("jp _tick__reti"), "{asm}");
        assert!(!tick.split("reti").next().unwrap().contains("\n        ret\n"));
    }

    #[test]
    fn vectors_emit_jp_stubs_at_their_orgs() {
        let asm = compile_firmware(ECHO_C, Options::baseline(), &[(0x00F0, "nic_isr")]).unwrap();
        assert!(asm.contains("org 0x00f0"), "{asm}");
        assert!(asm.contains("jp _nic_isr"), "{asm}");
        let image = rabbit::assemble(&asm).expect("firmware assembles");
        assert!(image.sections.iter().any(|s| s.addr == 0x00F0));
    }

    #[test]
    fn echo_firmware_assembles_with_all_optimizations() {
        let asm =
            compile_firmware(ECHO_C, Options::all_optimizations(), &[(0x00F0, "nic_isr")]).unwrap();
        rabbit::assemble(&asm).expect("optimized firmware assembles");
    }

    #[test]
    fn nic_intrinsics_lower_to_register_file_ports() {
        let asm = compile(ECHO_C, Options::baseline()).unwrap();
        // listen: port halves then the LISTEN command.
        assert!(asm.contains(&format!("ioe ld ({:#06x}), a", nm::NIC_LPORT_LO)));
        assert!(asm.contains(&format!("ioe ld ({:#06x}), a", nm::NIC_LPORT_HI)));
        // accept/close: handle select via CONN, then the command register.
        assert!(asm.contains(&format!("ioe ld ({:#06x}), a", nm::NIC_CONN)));
        assert!(asm.contains(&format!("ioe ld ({:#06x}), a", nm::NIC_CMD)));
        // status reads come back through HL.
        assert!(asm.contains(&format!("ioe ld a, ({:#06x})", nm::NIC_STATUS)));
        // window-copy shims pulled in on demand.
        assert!(asm.contains("__nic_recv:"), "{asm}");
        assert!(asm.contains("__nic_send:"), "{asm}");
        assert!(asm.contains(&format!("ld hl, {:#06x}", nm::NIC_RX_WINDOW)));
        assert!(asm.contains(&format!("ld de, {:#06x}", nm::NIC_TX_WINDOW)));
    }

    #[test]
    fn serial_intrinsics_lower_to_internal_ports() {
        let asm = compile(
            "interrupt void ser() { int c; c = serial_getc(); serial_putc(c); }\n\
             int main() { serial_init(2); idle(); return 0; }",
            Options::baseline(),
        )
        .unwrap();
        use rabbit::io::ports;
        assert!(asm.contains(&format!("ioi ld ({:#04x}), a", ports::SACR)));
        assert!(asm.contains(&format!("ioi ld a, ({:#04x})", ports::SADR)));
        assert!(asm.contains(&format!("ioi ld ({:#04x}), a", ports::SADR)));
    }

    #[test]
    fn idle_emits_the_halt_spin() {
        let asm = compile("int main() { idle(); return 0; }", Options::baseline()).unwrap();
        let spin = asm.split("_spin:").nth(1).expect("spin label");
        assert!(spin.trim_start().starts_with("halt"), "{asm}");
        assert!(spin.contains("jr L"), "{asm}");
    }

    #[test]
    fn runtime_shims_only_emitted_when_used() {
        let asm = compile("int main() { return 1; }", Options::baseline()).unwrap();
        assert!(!asm.contains("__nic_recv"));
        assert!(!asm.contains("__nic_send"));
    }

    #[test]
    fn interrupt_function_rejects_value_return() {
        let err = compile(
            "interrupt void f() { return 1; }\nint main() { return 0; }",
            Options::baseline(),
        )
        .unwrap_err();
        assert!(err.message.contains("cannot return a value"), "{err}");
    }

    #[test]
    fn interrupt_function_cannot_be_called() {
        let err = compile(
            "interrupt void f() { }\nint main() { f(); return 0; }",
            Options::baseline(),
        )
        .unwrap_err();
        assert!(err.message.contains("cannot call interrupt"), "{err}");
    }

    #[test]
    fn parser_rejects_interrupt_with_params_or_result() {
        assert!(compile(
            "interrupt void f(int x) { }\nint main() { return 0; }",
            Options::baseline()
        )
        .is_err());
        assert!(compile(
            "interrupt int f() { return 1; }\nint main() { return 0; }",
            Options::baseline()
        )
        .is_err());
    }

    #[test]
    fn redefining_an_intrinsic_errors() {
        let err = compile(
            "int nic_status() { return 0; }\nint main() { return 0; }",
            Options::baseline(),
        )
        .unwrap_err();
        assert!(err.message.contains("intrinsic"), "{err}");
    }

    #[test]
    fn vector_must_name_an_interrupt_function() {
        let err = compile_firmware(
            "void f() { }\nint main() { return 0; }",
            Options::baseline(),
            &[(0x00F0, "f")],
        )
        .unwrap_err();
        assert!(err.message.contains("must be an `interrupt`"), "{err}");
        let err = compile_firmware(
            "int main() { return 0; }",
            Options::baseline(),
            &[(0x00F0, "ghost")],
        )
        .unwrap_err();
        assert!(err.message.contains("not defined"), "{err}");
    }

    #[test]
    fn nic_buffer_must_be_root_char_array() {
        let opts = Options::baseline(); // root_data off, so `xmem` sticks
        let err = compile(
            "xmem char buf[8];\nint main() { nic_recv(0, buf); return 0; }",
            opts,
        )
        .unwrap_err();
        assert!(err.message.contains("root memory"), "{err}");
        let err = compile("int n;\nint main() { nic_recv(0, n); return 0; }", opts).unwrap_err();
        assert!(err.message.contains("char array"), "{err}");
        let err = compile("int main() { nic_send(0, 5, 1); return 0; }", opts).unwrap_err();
        assert!(err.message.contains("array name"), "{err}");
    }
}
