//! Code generation: Dynamic C subset → Rabbit 2000 assembly.
//!
//! The generator is deliberately *naive* — a faithful stand-in for a
//! circa-2002 non-optimizing embedded C compiler: every expression value
//! flows through `HL`, operands are staged via `push`/`pop`, and every
//! variable access goes to memory. The optimization switches in
//! [`Options`] mirror exactly what the paper's authors tried on their C
//! port of AES (§6): disabling debug instrumentation, moving data to root
//! memory, unrolling loops, and enabling (peephole) compiler
//! optimization.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Function, Place, Program, Stmt, Ty, UnOp, VarDecl};
use crate::lexer::CompileError;
use crate::peephole;

/// Compiler switches — the paper's E2 ablation axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Insert the `rst 0x28` debugger hook before every statement, as
    /// Dynamic C does when debugging is enabled (default on).
    pub debug: bool,
    /// Place data in root memory instead of behind the XPC window.
    pub root_data: bool,
    /// Unroll `for` loops with small constant trip counts.
    pub unroll: bool,
    /// Run the peephole optimizer over the generated code.
    pub peephole: bool,
}

impl Options {
    /// Dynamic C defaults: debugging on, data in xmem, no optimization —
    /// the configuration of the paper's first direct port.
    pub fn baseline() -> Options {
        Options {
            debug: true,
            root_data: false,
            unroll: false,
            peephole: false,
        }
    }

    /// Everything the paper tried, together.
    pub fn all_optimizations() -> Options {
        Options {
            debug: false,
            root_data: true,
            unroll: true,
            peephole: true,
        }
    }
}

impl Default for Options {
    fn default() -> Options {
        Options::baseline()
    }
}

/// Memory-layout constants shared with the execution harness.
pub mod layout {
    /// Entry point / code origin (root flash).
    pub const CODE_ORG: u16 = 0x4000;
    /// Root data origin (logical; the harness maps it to SRAM).
    pub const ROOT_DATA_ORG: u16 = 0x8000;
    /// Xmem data origin: inside the XPC window.
    pub const XMEM_DATA_ORG: u16 = 0xE000;
    /// XPC value selecting the xmem data page.
    pub const XMEM_XPC: u8 = 0x76;
    /// Address of the debug hook the `rst 0x28` instrumentation hits.
    pub const DEBUG_VECTOR: u16 = 0x28;
}

#[derive(Debug, Clone, Copy)]
struct VarInfo {
    ty: Ty,
    array: bool,
    place: Place,
}

struct Codegen<'p> {
    prog: &'p Program,
    opts: Options,
    out: Vec<String>,
    globals: HashMap<String, VarInfo>,
    label_seq: usize,
    /// (break, continue) label stack.
    loops: Vec<(String, String)>,
    current_fn: String,
    used_runtime: RuntimeUse,
}

#[derive(Debug, Default, Clone, Copy)]
struct RuntimeUse {
    div: bool,
    shl: bool,
    shr: bool,
}

/// Compiles a parsed program to assembly text.
///
/// # Errors
///
/// [`CompileError`] on semantic errors (undefined names, bad calls).
pub fn compile_program(prog: &Program, opts: Options) -> Result<String, CompileError> {
    let mut globals = HashMap::new();
    for g in &prog.globals {
        let place = if opts.root_data { Place::Root } else { g.place };
        globals.insert(
            gsym(&g.name),
            VarInfo {
                ty: g.ty,
                array: g.array.is_some(),
                place,
            },
        );
    }
    // Function statics (locals + params) are variables too.
    for f in &prog.functions {
        for (pname, pty) in &f.params {
            globals.insert(
                mangled(&f.name, pname),
                VarInfo {
                    ty: *pty,
                    array: false,
                    place: Place::Root,
                },
            );
        }
        for l in &f.locals {
            let place = if opts.root_data { Place::Root } else { l.place };
            globals.insert(
                mangled(&f.name, &l.name),
                VarInfo {
                    ty: l.ty,
                    array: l.array.is_some(),
                    place,
                },
            );
        }
    }

    let mut cg = Codegen {
        prog,
        opts,
        out: Vec::new(),
        globals,
        label_seq: 0,
        loops: Vec::new(),
        current_fn: String::new(),
        used_runtime: RuntimeUse::default(),
    };
    cg.emit_all()?;
    Ok(cg.out.join("\n") + "\n")
}

/// Symbol for a global (underscore-prefixed, classic C style, so user
/// names can never collide with register mnemonics in the assembly).
fn gsym(name: &str) -> String {
    format!("_{name}")
}

fn mangled(func: &str, var: &str) -> String {
    format!("_{func}__{var}")
}

impl Codegen<'_> {
    fn emit(&mut self, line: impl Into<String>) {
        self.out.push(format!("        {}", line.into()));
    }

    fn label(&mut self, name: &str) {
        self.out.push(format!("{name}:"));
    }

    fn fresh(&mut self, stem: &str) -> String {
        self.label_seq += 1;
        format!("L{}_{stem}", self.label_seq)
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError {
            line: 0,
            message: msg.into(),
        }
    }

    fn emit_all(&mut self) -> Result<(), CompileError> {
        // Debug vector: the Dynamic C debugger hook. A plain `ret` — the
        // cost is the rst/ret round trip on every statement.
        self.out
            .push(format!("        org {:#06x}", layout::DEBUG_VECTOR));
        self.emit("ret");

        // Entry stub.
        self.out
            .push(format!("        org {:#06x}", layout::CODE_ORG));
        self.emit("ld sp, 0xDFF0");
        self.emit("call _main");
        self.emit("ld (__result), hl");
        self.emit("halt");

        // Functions.
        let funcs: Vec<Function> = self.prog.functions.clone();
        for f in &funcs {
            self.current_fn = f.name.clone();
            let fsym = gsym(&f.name);
            self.label(&fsym);
            for stmt in &f.body {
                self.stmt(f, stmt)?;
            }
            // Implicit return 0.
            self.emit("ld hl, 0");
            self.emit("ret");
        }

        self.emit_runtime();
        self.emit_data()?;
        Ok(())
    }

    fn emit_runtime(&mut self) {
        // 16-bit unsigned divide: HL / DE -> quotient HL, remainder DE.
        // Division by zero returns 0 (no trap on this hardware).
        if self.used_runtime.div {
            self.label("__div16");
            self.emit("ld a, d");
            self.emit("or e");
            self.emit("jr nz, __div_ok");
            self.emit("ld hl, 0");
            self.emit("ld de, 0");
            self.emit("ret");
            self.label("__div_ok");
            self.emit("push bc");
            // BC = remainder accumulator, A = bit counter.
            self.emit("ld bc, 0");
            self.emit("ld a, 16");
            self.label("__div_loop");
            self.emit("push af"); // counter survives the flag traffic below
            self.emit("add hl, hl"); // shift dividend left, top bit to carry
            self.emit("rl c");
            self.emit("rl b"); // remainder = remainder*2 + carry
            self.emit("push hl");
            self.emit("ld h, b");
            self.emit("ld l, c");
            self.emit("xor a");
            self.emit("sbc hl, de");
            self.emit("jr c, __div_no");
            self.emit("ld b, h");
            self.emit("ld c, l");
            self.emit("pop hl");
            self.emit("inc hl"); // set low quotient bit
            self.emit("jr __div_next");
            self.label("__div_no");
            self.emit("pop hl");
            self.label("__div_next");
            self.emit("pop af");
            self.emit("dec a");
            self.emit("jr nz, __div_loop");
            self.emit("ld d, b");
            self.emit("ld e, c");
            self.emit("pop bc");
            self.emit("ret");
        }
        if self.used_runtime.shl {
            // HL << E (0..255; >=16 gives 0)
            self.label("__shl16");
            self.emit("ld a, e");
            self.emit("or a");
            self.emit("ret z");
            self.emit("cp 16");
            self.emit("jr c, __shl_go");
            self.emit("ld hl, 0");
            self.emit("ret");
            self.label("__shl_go");
            self.emit("push bc");
            self.emit("ld b, a");
            self.label("__shl_loop");
            self.emit("add hl, hl");
            self.emit("djnz __shl_loop");
            self.emit("pop bc");
            self.emit("ret");
        }
        if self.used_runtime.shr {
            // HL >> E
            self.label("__shr16");
            self.emit("ld a, e");
            self.emit("or a");
            self.emit("ret z");
            self.emit("cp 16");
            self.emit("jr c, __shr_go");
            self.emit("ld hl, 0");
            self.emit("ret");
            self.label("__shr_go");
            self.emit("push bc");
            self.emit("ld b, a");
            self.label("__shr_loop");
            self.emit("xor a"); // clear carry so rr hl shifts in 0
            self.emit("rr hl");
            self.emit("djnz __shr_loop");
            self.emit("pop bc");
            self.emit("ret");
        }
    }

    fn emit_data(&mut self) -> Result<(), CompileError> {
        let mut decls: Vec<(String, VarDecl)> = Vec::new();
        for g in &self.prog.globals {
            decls.push((gsym(&g.name), g.clone()));
        }
        for f in &self.prog.functions {
            for (pname, pty) in &f.params {
                decls.push((
                    mangled(&f.name, pname),
                    VarDecl {
                        name: String::new(),
                        ty: *pty,
                        array: None,
                        init: Vec::new(),
                        place: Place::Xmem,
                    },
                ));
            }
            for l in &f.locals {
                decls.push((mangled(&f.name, &l.name), l.clone()));
            }
        }

        let (root_org, xmem_org) = (layout::ROOT_DATA_ORG, layout::XMEM_DATA_ORG);
        for section_root in [true, false] {
            let org = if section_root { root_org } else { xmem_org };
            self.out.push(format!("        org {org:#06x}"));
            if section_root {
                // The harness result mailbox always lives in root data.
                self.label("__result");
                self.emit("dw 0");
            }
            for (name, decl) in &decls {
                let info = self.globals[name];
                if (info.place == Place::Root) != section_root {
                    continue;
                }
                self.label(name);
                let count = usize::from(decl.array.unwrap_or(1));
                let mut vals = decl.init.clone();
                vals.resize(count, 0);
                let dir = if decl.ty == Ty::Char { "db" } else { "dw" };
                for chunk in vals.chunks(8) {
                    let list: Vec<String> = chunk
                        .iter()
                        .map(|v| {
                            if decl.ty == Ty::Char {
                                format!("{:#04x}", v & 0xFF)
                            } else {
                                format!("{v:#06x}")
                            }
                        })
                        .collect();
                    self.emit(format!("{dir} {}", list.join(", ")));
                }
            }
        }
        Ok(())
    }

    fn var_info(&self, f: &Function, name: &str) -> Result<(String, VarInfo), CompileError> {
        let local = mangled(&f.name, name);
        if let Some(&info) = self.globals.get(&local) {
            // Only a hit if it really is this function's local/param.
            let is_local =
                f.params.iter().any(|(p, _)| p == name) || f.locals.iter().any(|l| l.name == name);
            if is_local {
                return Ok((local, info));
            }
        }
        if let Some(&info) = self.globals.get(&gsym(name)) {
            if self.prog.global(name).is_some() {
                return Ok((gsym(name), info));
            }
        }
        Err(self.err(format!("undefined variable `{name}` in `{}`", f.name)))
    }

    // ---- xmem access sequences ----------------------------------------

    /// Emits the XPC window entry for xmem data access (save current XPC,
    /// select the data page). Clobbers A.
    fn xmem_enter(&mut self) {
        self.emit("ld a, xpc");
        self.emit("push af");
        self.emit(format!("ld a, {:#04x}", layout::XMEM_XPC));
        self.emit("ld xpc, a");
    }

    fn xmem_leave(&mut self) {
        self.emit("pop af");
        self.emit("ld xpc, a");
    }

    /// Loads variable into HL (zero-extended for char).
    fn load_var(&mut self, name: &str, info: VarInfo) {
        let far = info.place == Place::Xmem;
        if far {
            self.xmem_enter();
        }
        match info.ty {
            Ty::Char => {
                self.emit(format!("ld a, ({name})"));
                self.emit("ld l, a");
                self.emit("ld h, 0");
            }
            _ => self.emit(format!("ld hl, ({name})")),
        }
        if far {
            self.xmem_leave();
        }
    }

    /// Stores HL into variable (char truncates).
    fn store_var(&mut self, name: &str, info: VarInfo) {
        let far = info.place == Place::Xmem;
        if far {
            self.xmem_enter();
        }
        match info.ty {
            Ty::Char => {
                self.emit("ld a, l");
                self.emit(format!("ld ({name}), a"));
            }
            _ => self.emit(format!("ld ({name}), hl")),
        }
        if far {
            self.xmem_leave();
        }
    }

    /// With the element address in HL, loads the element into HL.
    fn load_element(&mut self, ty: Ty, far: bool) {
        if far {
            self.xmem_enter();
        }
        match ty {
            Ty::Char => {
                self.emit("ld a, (hl)");
                self.emit("ld l, a");
                self.emit("ld h, 0");
            }
            _ => {
                self.emit("ld a, (hl)");
                self.emit("inc hl");
                self.emit("ld h, (hl)");
                self.emit("ld l, a");
            }
        }
        if far {
            self.xmem_leave();
        }
    }

    /// With the element address in HL and the value in DE, stores it.
    fn store_element(&mut self, ty: Ty, far: bool) {
        if far {
            self.xmem_enter();
        }
        match ty {
            Ty::Char => {
                self.emit("ld (hl), e");
            }
            _ => {
                self.emit("ld (hl), e");
                self.emit("inc hl");
                self.emit("ld (hl), d");
            }
        }
        if far {
            self.xmem_leave();
        }
    }

    /// Computes the address of `name[index_in_HL]` into HL.
    fn element_addr(&mut self, name: &str, ty: Ty) {
        if ty == Ty::Int {
            self.emit("add hl, hl");
        }
        self.emit(format!("ld de, {name}"));
        self.emit("add hl, de");
    }

    // ---- statements ----------------------------------------------------

    fn stmt(&mut self, f: &Function, stmt: &Stmt) -> Result<(), CompileError> {
        if self.opts.debug {
            self.emit("rst 0x28");
        }
        match stmt {
            Stmt::Expr(e) => {
                self.expr(f, e)?;
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.expr(f, e)?,
                    None => self.emit("ld hl, 0"),
                }
                if f.ret == Ty::Char {
                    self.emit("ld h, 0");
                }
                self.emit("ret");
            }
            Stmt::Break => {
                let (brk, _) = self
                    .loops
                    .last()
                    .cloned()
                    .ok_or_else(|| self.err("break outside loop"))?;
                self.emit(format!("jp {brk}"));
            }
            Stmt::Continue => {
                let (_, cont) = self
                    .loops
                    .last()
                    .cloned()
                    .ok_or_else(|| self.err("continue outside loop"))?;
                self.emit(format!("jp {cont}"));
            }
            Stmt::If(cond, then, els) => {
                let lelse = self.fresh("else");
                let lend = self.fresh("endif");
                self.expr(f, cond)?;
                self.emit("bool hl");
                self.emit(format!("jp z, {lelse}"));
                for s in then {
                    self.stmt(f, s)?;
                }
                self.emit(format!("jp {lend}"));
                self.label(&lelse);
                for s in els {
                    self.stmt(f, s)?;
                }
                self.label(&lend);
            }
            Stmt::While(cond, body) => {
                let ltop = self.fresh("while");
                let lend = self.fresh("wend");
                self.label(&ltop);
                self.expr(f, cond)?;
                self.emit("bool hl");
                self.emit(format!("jp z, {lend}"));
                self.loops.push((lend.clone(), ltop.clone()));
                for s in body {
                    self.stmt(f, s)?;
                }
                self.loops.pop();
                self.emit(format!("jp {ltop}"));
                self.label(&lend);
            }
            Stmt::For(init, cond, step, body) => {
                if self.opts.unroll {
                    if let Some(()) = self.try_unroll(f, init, cond, step, body)? {
                        return Ok(());
                    }
                }
                if let Some(e) = init {
                    self.expr(f, e)?;
                }
                let ltop = self.fresh("for");
                let lstep = self.fresh("fstep");
                let lend = self.fresh("fend");
                self.label(&ltop);
                if let Some(c) = cond {
                    self.expr(f, c)?;
                    self.emit("bool hl");
                    self.emit(format!("jp z, {lend}"));
                }
                self.loops.push((lend.clone(), lstep.clone()));
                for s in body {
                    self.stmt(f, s)?;
                }
                self.loops.pop();
                self.label(&lstep);
                if let Some(s) = step {
                    self.expr(f, s)?;
                }
                self.emit(format!("jp {ltop}"));
                self.label(&lend);
            }
        }
        Ok(())
    }

    /// Recognises `for (i = C0; i < C1; i++)` with a small trip count and
    /// no break/continue in the body; emits the body repeatedly.
    fn try_unroll(
        &mut self,
        f: &Function,
        init: &Option<Expr>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
        body: &[Stmt],
    ) -> Result<Option<()>, CompileError> {
        const MAX_TRIPS: u16 = 16;
        let (Some(init), Some(cond), Some(step)) = (init, cond, step) else {
            return Ok(None);
        };
        let Expr::Assign(target, start) = init else {
            return Ok(None);
        };
        let Expr::Var(ivar) = &**target else {
            return Ok(None);
        };
        let Expr::Num(c0) = &**start else {
            return Ok(None);
        };
        let Expr::Bin(BinOp::Lt, lhs, rhs) = cond else {
            return Ok(None);
        };
        let (Expr::Var(cv), Expr::Num(c1)) = (&**lhs, &**rhs) else {
            return Ok(None);
        };
        if cv != ivar || c1 <= c0 || c1 - c0 > MAX_TRIPS {
            return Ok(None);
        }
        // step must be i = i + 1
        let Expr::Assign(starget, svalue) = step else {
            return Ok(None);
        };
        let Expr::Var(sv) = &**starget else {
            return Ok(None);
        };
        let Expr::Bin(BinOp::Add, sl, sr) = &**svalue else {
            return Ok(None);
        };
        if sv != ivar
            || !matches!(&**sl, Expr::Var(v) if v == ivar)
            || !matches!(**sr, Expr::Num(1))
        {
            return Ok(None);
        }
        if body_has_loop_escape(body) {
            return Ok(None);
        }
        // Only small, flat bodies are worth replicating; unrolling nested
        // loops multiplies code size past the 16 KiB root-code budget.
        if body.len() > 6 || body_has_loop(body) {
            return Ok(None);
        }

        for i in *c0..*c1 {
            // i = <k>; body
            self.expr(
                f,
                &Expr::Assign(Box::new(Expr::Var(ivar.clone())), Box::new(Expr::Num(i))),
            )?;
            for s in body {
                self.stmt(f, s)?;
            }
        }
        // Loop variable ends at the bound, as the rolled loop leaves it.
        self.expr(
            f,
            &Expr::Assign(Box::new(Expr::Var(ivar.clone())), Box::new(Expr::Num(*c1))),
        )?;
        Ok(Some(()))
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self, f: &Function, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Num(n) => self.emit(format!("ld hl, {n:#06x}")),
            Expr::Var(name) => {
                let (sym, info) = self.var_info(f, name)?;
                if info.array {
                    // array name decays to its address
                    self.emit(format!("ld hl, {sym}"));
                } else {
                    self.load_var(&sym, info);
                }
            }
            Expr::Index(name, idx) => {
                let (sym, info) = self.var_info(f, name)?;
                if !info.array {
                    return Err(self.err(format!("`{name}` is not an array")));
                }
                self.expr(f, idx)?;
                self.element_addr(&sym, info.ty);
                self.load_element(info.ty, info.place == Place::Xmem);
            }
            Expr::Un(op, inner) => {
                self.expr(f, inner)?;
                match op {
                    UnOp::Neg => {
                        self.emit("ex de, hl");
                        self.emit("ld hl, 0");
                        self.emit("xor a");
                        self.emit("sbc hl, de");
                    }
                    UnOp::Not => {
                        self.emit("ld a, h");
                        self.emit("cpl");
                        self.emit("ld h, a");
                        self.emit("ld a, l");
                        self.emit("cpl");
                        self.emit("ld l, a");
                    }
                    UnOp::LogNot => {
                        self.emit("bool hl");
                        self.emit("ld a, l");
                        self.emit("xor 1");
                        self.emit("ld l, a");
                        self.emit("ld h, 0");
                    }
                }
            }
            Expr::Bin(op, l, r) => self.binop(f, *op, l, r)?,
            Expr::Assign(target, value) => {
                self.expr(f, value)?;
                match &**target {
                    Expr::Var(name) => {
                        let (sym, info) = self.var_info(f, name)?;
                        if info.array {
                            return Err(self.err(format!("cannot assign to array `{name}`")));
                        }
                        self.store_var(&sym, info);
                    }
                    Expr::Index(name, idx) => {
                        let (sym, info) = self.var_info(f, name)?;
                        self.emit("push hl"); // value
                        self.expr(f, idx)?;
                        self.element_addr(&sym, info.ty);
                        self.emit("pop de"); // value -> DE
                        self.store_element(info.ty, info.place == Place::Xmem);
                        self.emit("ex de, hl"); // assignment yields the value
                    }
                    _ => return Err(self.err("bad assignment target")),
                }
            }
            Expr::Call(name, args) => {
                let callee = self
                    .prog
                    .function(name)
                    .ok_or_else(|| self.err(format!("undefined function `{name}`")))?
                    .clone();
                if args.len() != callee.params.len() {
                    return Err(self.err(format!(
                        "`{name}` takes {} arguments, got {}",
                        callee.params.len(),
                        args.len()
                    )));
                }
                // Caller evaluates each argument and stores it into the
                // callee's static parameter slot (static-locals calling
                // convention).
                for (arg, (pname, pty)) in args.iter().zip(&callee.params) {
                    self.expr(f, arg)?;
                    let sym = mangled(name, pname);
                    let info = VarInfo {
                        ty: *pty,
                        array: false,
                        place: self.globals[&sym].place,
                    };
                    self.store_var(&sym, info);
                }
                self.emit(format!("call {}", gsym(name)));
            }
        }
        Ok(())
    }

    fn binop(&mut self, f: &Function, op: BinOp, l: &Expr, r: &Expr) -> Result<(), CompileError> {
        // Short-circuit logicals.
        match op {
            BinOp::LogAnd => {
                let lfalse = self.fresh("andf");
                let lend = self.fresh("ande");
                self.expr(f, l)?;
                self.emit("bool hl");
                self.emit(format!("jp z, {lfalse}"));
                self.expr(f, r)?;
                self.emit("bool hl");
                self.emit(format!("jp {lend}"));
                self.label(&lfalse);
                self.emit("ld hl, 0");
                self.label(&lend);
                return Ok(());
            }
            BinOp::LogOr => {
                let ltrue = self.fresh("ort");
                let lend = self.fresh("ore");
                self.expr(f, l)?;
                self.emit("bool hl");
                self.emit(format!("jp nz, {ltrue}"));
                self.expr(f, r)?;
                self.emit("bool hl");
                self.emit(format!("jp {lend}"));
                self.label(&ltrue);
                self.emit("ld hl, 1");
                self.label(&lend);
                return Ok(());
            }
            _ => {}
        }

        // Normalise > and >= to swapped < and <=.
        let (op, l, r) = match op {
            BinOp::Gt => (BinOp::Lt, r, l),
            BinOp::Ge => (BinOp::Le, r, l),
            other => (other, l, r),
        };

        // left -> stack, right -> DE, left -> HL
        self.expr(f, l)?;
        self.emit("push hl");
        self.expr(f, r)?;
        self.emit("ex de, hl");
        self.emit("pop hl");

        match op {
            BinOp::Add => self.emit("add hl, de"),
            BinOp::Sub => {
                self.emit("xor a");
                self.emit("sbc hl, de");
            }
            BinOp::And => self.emit("and hl, de"),
            BinOp::Or => self.emit("or hl, de"),
            BinOp::Xor => {
                self.emit("ld a, h");
                self.emit("xor d");
                self.emit("ld h, a");
                self.emit("ld a, l");
                self.emit("xor e");
                self.emit("ld l, a");
            }
            BinOp::Mul => {
                self.emit("ld b, h");
                self.emit("ld c, l");
                self.emit("mul");
                self.emit("ld h, b");
                self.emit("ld l, c");
            }
            BinOp::Div => {
                self.used_runtime.div = true;
                self.emit("call __div16");
            }
            BinOp::Mod => {
                self.used_runtime.div = true;
                self.emit("call __div16");
                self.emit("ex de, hl");
            }
            BinOp::Shl => {
                self.used_runtime.shl = true;
                self.emit("call __shl16");
            }
            BinOp::Shr => {
                self.used_runtime.shr = true;
                self.emit("call __shr16");
            }
            BinOp::Eq | BinOp::Ne => {
                self.emit("xor a");
                self.emit("sbc hl, de");
                self.emit("bool hl");
                if op == BinOp::Eq {
                    self.emit("ld a, l");
                    self.emit("xor 1");
                    self.emit("ld l, a");
                }
            }
            BinOp::Lt => {
                let ltrue = self.fresh("lt");
                self.emit("xor a");
                self.emit("sbc hl, de");
                self.emit("ld hl, 1");
                self.emit(format!("jp c, {ltrue}"));
                self.emit("ld hl, 0");
                self.label(&ltrue);
            }
            BinOp::Le => {
                // l <= r  <=>  !(r < l); operands currently HL=l, DE=r.
                let lfalse = self.fresh("le");
                self.emit("ex de, hl");
                self.emit("xor a");
                self.emit("sbc hl, de"); // r - l, carry if r < l
                self.emit("ld hl, 0");
                self.emit(format!("jp c, {lfalse}"));
                self.emit("ld hl, 1");
                self.label(&lfalse);
            }
            BinOp::Gt | BinOp::Ge | BinOp::LogAnd | BinOp::LogOr => {
                unreachable!("normalised or handled above")
            }
        }
        Ok(())
    }
}

fn body_has_loop(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::For(..) | Stmt::While(..) => true,
        Stmt::If(_, a, b) => body_has_loop(a) || body_has_loop(b),
        _ => false,
    })
}

fn body_has_loop_escape(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::Break | Stmt::Continue => true,
        Stmt::If(_, a, b) => body_has_loop_escape(a) || body_has_loop_escape(b),
        // nested loops own their break/continue
        _ => false,
    })
}

/// Compiles source text with the given options.
///
/// # Errors
///
/// [`CompileError`] from the lexer, parser or code generator.
pub fn compile(source: &str, opts: Options) -> Result<String, CompileError> {
    let prog = crate::parser::parse(source)?;
    let mut asm = compile_program(&prog, opts)?;
    if opts.peephole {
        asm = peephole::optimize(&asm);
    }
    Ok(asm)
}
