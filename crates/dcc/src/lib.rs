//! **dcc** — a compiler for the Dynamic C subset of ANSI C, targeting the
//! Rabbit 2000 and reproducing the code-generation behaviour the paper's
//! evaluation (§6) measures: a naive non-optimizing translation with the
//! exact optimization switches the authors swept on their AES port —
//! debug instrumentation (Dynamic C's per-statement `rst 0x28` hook),
//! root-vs-xmem data placement, loop unrolling, and peephole optimization.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`codegen`] (+[`peephole`]) →
//! `rabbit::assemble`, with [`interp`] as a reference interpreter for
//! differential testing and [`harness`] to run builds on the simulator
//! and read back cycles, size and results.
//!
//! Dynamic C quirks preserved (paper §4.1): locals are **static by
//! default** — they keep values across calls and break naive recursion —
//! and there is no trap on division by zero.
//!
//! ```
//! use dcc::{build, Options};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = "int main() { int s; int i; s = 0;\n\
//!                for (i = 1; i <= 10; i++) s += i; return s; }";
//! let b = build(program, Options::baseline())?;
//! let run = b.run(1_000_000)?;
//! assert_eq!(run.result, 55);
//! assert!(run.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod codegen;
pub mod harness;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod peephole;

pub use codegen::{compile, compile_firmware, layout, Options, BUILTINS};
pub use harness::{build, build_firmware, build_firmware_linked, Build, HarnessError, RunResult};
pub use interp::Interp;
pub use lexer::CompileError;
pub use parser::parse;
