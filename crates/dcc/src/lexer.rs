//! Lexer for the Dynamic C subset.

use std::fmt;

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token proper.
    pub kind: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal (already decoded).
    Num(u16),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Keywords of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    Char,
    Int,
    Unsigned,
    Void,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    /// Dynamic C storage-class: place in root memory.
    Root,
    /// Dynamic C storage-class: place in extended memory.
    Xmem,
    /// Explicit stack (non-static) local — Dynamic C's `auto`.
    Auto,
    /// `const` (accepted, tables stay writable in our model).
    Const,
    /// Dynamic C's `interrupt` qualifier: the function is an interrupt
    /// service routine (register save/restore prologue, `reti` return).
    Interrupt,
    /// `extern`: declares a routine defined in a linked assembly module
    /// (callable, zero arguments, no body in this translation unit).
    Extern,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::Kw(k) => write!(f, "keyword `{k:?}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing/parsing/compiling diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "char" => Kw::Char,
        "int" => Kw::Int,
        "unsigned" => Kw::Unsigned,
        "void" => Kw::Void,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "for" => Kw::For,
        "return" => Kw::Return,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "root" => Kw::Root,
        "xmem" => Kw::Xmem,
        "auto" => Kw::Auto,
        "const" => Kw::Const,
        "interrupt" => Kw::Interrupt,
        "extern" => Kw::Extern,
        _ => return None,
    })
}

/// Tokenizes a source string.
///
/// # Errors
///
/// [`CompileError`] on unterminated comments, bad characters or numeric
/// overflow.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let n = bytes.len();

    let punct2 = [
        "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
        "&=", "|=", "^=", "++", "--",
    ];

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(CompileError {
                            line: start,
                            message: "unterminated comment".into(),
                        });
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '\'' => {
                if i + 2 < n && bytes[i + 2] == '\'' {
                    toks.push(Token {
                        kind: Tok::Num(bytes[i + 1] as u16),
                        line,
                    });
                    i += 3;
                } else if i + 3 < n && bytes[i + 1] == '\\' && bytes[i + 3] == '\'' {
                    let v = match bytes[i + 2] {
                        'n' => b'\n',
                        't' => b'\t',
                        'r' => b'\r',
                        '0' => 0,
                        '\\' => b'\\',
                        '\'' => b'\'',
                        other => {
                            return Err(CompileError {
                                line,
                                message: format!("unknown escape `\\{other}`"),
                            })
                        }
                    };
                    toks.push(Token {
                        kind: Tok::Num(u16::from(v)),
                        line,
                    });
                    i += 4;
                } else {
                    return Err(CompileError {
                        line,
                        message: "bad character literal".into(),
                    });
                }
            }
            '0'..='9' => {
                let start = i;
                let value: u64 =
                    if c == '0' && i + 1 < n && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X') {
                        i += 2;
                        let hs = i;
                        while i < n && bytes[i].is_ascii_hexdigit() {
                            i += 1;
                        }
                        let s: String = bytes[hs..i].iter().collect();
                        u64::from_str_radix(&s, 16).map_err(|_| CompileError {
                            line,
                            message: "bad hex literal".into(),
                        })?
                    } else {
                        while i < n && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                        let s: String = bytes[start..i].iter().collect();
                        s.parse().map_err(|_| CompileError {
                            line,
                            message: "bad number".into(),
                        })?
                    };
                if value > 0xFFFF {
                    return Err(CompileError {
                        line,
                        message: format!("literal {value} exceeds 16 bits"),
                    });
                }
                toks.push(Token {
                    kind: Tok::Num(value as u16),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let s: String = bytes[start..i].iter().collect();
                let kind = match keyword(&s) {
                    Some(k) => Tok::Kw(k),
                    None => Tok::Ident(s),
                };
                toks.push(Token { kind, line });
            }
            _ => {
                let rest: String = bytes[i..n.min(i + 3)].iter().collect();
                let mut matched = None;
                for p in punct2 {
                    if rest.starts_with(p) {
                        matched = Some(p);
                        break;
                    }
                }
                if let Some(p) = matched {
                    toks.push(Token {
                        kind: Tok::Punct(p),
                        line,
                    });
                    i += p.len();
                } else {
                    let singles = "+-*/%&|^~!<>=(){}[];,?:";
                    if let Some(idx) = singles.find(c) {
                        let p = &singles[idx..idx + c.len_utf8()];
                        // map to 'static str
                        let p: &'static str = match p {
                            "+" => "+",
                            "-" => "-",
                            "*" => "*",
                            "/" => "/",
                            "%" => "%",
                            "&" => "&",
                            "|" => "|",
                            "^" => "^",
                            "~" => "~",
                            "!" => "!",
                            "<" => "<",
                            ">" => ">",
                            "=" => "=",
                            "(" => "(",
                            ")" => ")",
                            "{" => "{",
                            "}" => "}",
                            "[" => "[",
                            "]" => "]",
                            ";" => ";",
                            "," => ",",
                            "?" => "?",
                            _ => ":",
                        };
                        toks.push(Token {
                            kind: Tok::Punct(p),
                            line,
                        });
                        i += 1;
                    } else {
                        return Err(CompileError {
                            line,
                            message: format!("unexpected character `{c}`"),
                        });
                    }
                }
            }
        }
    }
    toks.push(Token {
        kind: Tok::Eof,
        line,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_declaration() {
        let toks = lex("unsigned char x = 0x1F; // comment").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(kinds[0], &Tok::Kw(Kw::Unsigned));
        assert_eq!(kinds[1], &Tok::Kw(Kw::Char));
        assert_eq!(kinds[2], &Tok::Ident("x".into()));
        assert_eq!(kinds[3], &Tok::Punct("="));
        assert_eq!(kinds[4], &Tok::Num(0x1F));
        assert_eq!(kinds[5], &Tok::Punct(";"));
        assert_eq!(kinds[6], &Tok::Eof);
    }

    #[test]
    fn two_char_operators_win() {
        let toks = lex("a <<= b >> 2 != 3").unwrap();
        let punct: Vec<&Tok> = toks
            .iter()
            .filter(|t| matches!(t.kind, Tok::Punct(_)))
            .map(|t| &t.kind)
            .collect();
        assert_eq!(
            punct,
            vec![&Tok::Punct("<<="), &Tok::Punct(">>"), &Tok::Punct("!=")]
        );
    }

    #[test]
    fn block_comments_and_lines() {
        let toks = lex("a /* multi\nline */ b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn char_literals() {
        let toks = lex(r"'A' '\n' '\0'").unwrap();
        assert_eq!(toks[0].kind, Tok::Num(65));
        assert_eq!(toks[1].kind, Tok::Num(10));
        assert_eq!(toks[2].kind, Tok::Num(0));
    }

    #[test]
    fn oversized_literal_rejected() {
        assert!(lex("70000").is_err());
    }
}
