//! Build-and-execute harness: compiles a Dynamic C subset program,
//! assembles it, loads it into a Rabbit 2000 machine with the standard
//! memory map, runs it to `halt`, and reports cycles, code size and the
//! value `main` returned — the three measurements of the paper's
//! Section 6.

use rabbit::{assemble, Cpu, Image, Memory, NullIo};

use crate::codegen::{compile, compile_firmware, layout, Options};
use crate::lexer::CompileError;

/// A compiled, assembled program.
#[derive(Debug, Clone)]
pub struct Build {
    /// The generated assembly text (inspectable in tests).
    pub asm: String,
    /// The assembled image.
    pub image: Image,
    /// The options it was built with.
    pub opts: Options,
}

/// Outcome of running a build.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The value `main` returned.
    pub result: u16,
    /// Clock cycles from entry to `halt`.
    pub cycles: u64,
}

/// Errors from building or running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// Compilation failed.
    Compile(CompileError),
    /// The generated assembly failed to assemble (a compiler bug).
    Assemble(String),
    /// Execution faulted or exceeded the cycle budget.
    Run(String),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Compile(e) => write!(f, "compile: {e}"),
            HarnessError::Assemble(e) => write!(f, "assemble: {e}"),
            HarnessError::Run(e) => write!(f, "run: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<CompileError> for HarnessError {
    fn from(e: CompileError) -> HarnessError {
        HarnessError::Compile(e)
    }
}

/// Maps a logical address to its physical load address under the standard
/// machine configuration. One definition for the whole repo: this is
/// `rabbit::fwmap::load_phys`, which `rmc2000::Board::load` uses too, so
/// harness-run programs and board-run firmware share a memory map.
pub fn load_phys(addr: u16) -> u32 {
    rabbit::fwmap::load_phys(addr)
}

/// Compiles and assembles a program.
///
/// # Errors
///
/// [`HarnessError::Compile`] or [`HarnessError::Assemble`].
pub fn build(source: &str, opts: Options) -> Result<Build, HarnessError> {
    let asm = compile(source, opts)?;
    let image = assemble(&asm).map_err(|e| HarnessError::Assemble(e.to_string()))?;
    Ok(Build { asm, image, opts })
}

/// Compiles and assembles a *firmware* program: interrupt vectors from
/// `vectors` (address, `interrupt` function name) are emitted alongside
/// the code, for images that run on a full [`rmc2000`-style] board with
/// NIC and serial interrupts rather than under the halt-and-read-result
/// harness.
///
/// # Errors
///
/// [`HarnessError::Compile`] or [`HarnessError::Assemble`].
pub fn build_firmware(
    source: &str,
    opts: Options,
    vectors: &[(u16, &str)],
) -> Result<Build, HarnessError> {
    let asm = compile_firmware(source, opts, vectors)?;
    let image = assemble(&asm).map_err(|e| HarnessError::Assemble(e.to_string()))?;
    Ok(Build { asm, image, opts })
}

/// As [`build_firmware`], but links hand-written assembly `modules` into
/// the same image: each module's text is appended to the compiled output
/// before assembly, so all symbols share one namespace — the assembly can
/// reference C globals (`_name`) and the C side can call assembly entry
/// points declared `extern void entry();`.
///
/// Modules place their own `org` directives; the caller is responsible
/// for choosing origins that do not collide with the compiled C (check
/// [`Build::code_size`] / the image sections in tests).
///
/// # Errors
///
/// [`HarnessError::Compile`] or [`HarnessError::Assemble`] (an undefined
/// `extern` surfaces here as an unknown label).
pub fn build_firmware_linked(
    source: &str,
    opts: Options,
    vectors: &[(u16, &str)],
    modules: &[&str],
) -> Result<Build, HarnessError> {
    let mut asm = compile_firmware(source, opts, vectors)?;
    for m in modules {
        asm.push_str("\n; ---- linked assembly module ----\n");
        asm.push_str(m);
        if !m.ends_with('\n') {
            asm.push('\n');
        }
    }
    let image = assemble(&asm).map_err(|e| HarnessError::Assemble(e.to_string()))?;
    Ok(Build { asm, image, opts })
}

impl Build {
    /// Code bytes (sections below the data origins) — the paper's code
    /// size metric.
    pub fn code_size(&self) -> usize {
        self.image
            .sections
            .iter()
            .filter(|s| s.addr < layout::ROOT_DATA_ORG)
            .map(|s| s.bytes.len())
            .sum()
    }

    /// Data bytes (root and xmem data sections).
    pub fn data_size(&self) -> usize {
        self.image
            .sections
            .iter()
            .filter(|s| s.addr >= layout::ROOT_DATA_ORG)
            .map(|s| s.bytes.len())
            .sum()
    }

    /// Prepares a machine with the image loaded and the MMU configured.
    pub fn machine(&self) -> (Cpu, Memory) {
        let mut mem = Memory::new();
        for s in &self.image.sections {
            mem.load(load_phys(s.addr), &s.bytes);
        }
        let mut cpu = Cpu::new();
        cpu.mmu.segsize = rabbit::fwmap::SEGSIZE_RESET; // data seg 0x8000, stack seg 0xD000
        cpu.mmu.dataseg = rabbit::fwmap::DATASEG_PAGE; // logical 0x8000 -> phys 0x80000 (SRAM)
        cpu.mmu.stackseg = rabbit::fwmap::STACKSEG_PAGE;
        cpu.regs.sp = rabbit::fwmap::SP_RESET;
        cpu.regs.pc = layout::CODE_ORG;
        (cpu, mem)
    }

    /// Runs to `halt` and returns the result and cycle count.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Run`] on a CPU fault or when `max_cycles` elapses
    /// without reaching `halt`.
    pub fn run(&self, max_cycles: u64) -> Result<RunResult, HarnessError> {
        let (mut cpu, mut mem) = self.machine();
        self.run_prepared(&mut cpu, &mut mem, max_cycles)
    }

    /// Runs a machine previously prepared with [`Build::machine`] (after
    /// the caller has poked inputs into memory) to `halt`.
    ///
    /// # Errors
    ///
    /// As [`Build::run`].
    pub fn run_prepared(
        &self,
        cpu: &mut Cpu,
        mem: &mut Memory,
        max_cycles: u64,
    ) -> Result<RunResult, HarnessError> {
        self.run_prepared_on(rabbit::Engine::BlockCache, cpu, mem, max_cycles)
    }

    /// As [`Build::run_prepared`], but on an explicitly chosen execution
    /// engine (the benchmarks compare the two).
    ///
    /// # Errors
    ///
    /// As [`Build::run`].
    pub fn run_prepared_on(
        &self,
        engine: rabbit::Engine,
        cpu: &mut Cpu,
        mem: &mut Memory,
        max_cycles: u64,
    ) -> Result<RunResult, HarnessError> {
        cpu.run_on(engine, mem, &mut NullIo, max_cycles)
            .map_err(|e| HarnessError::Run(e.to_string()))?;
        if !cpu.halted {
            return Err(HarnessError::Run(format!(
                "did not halt within {max_cycles} cycles"
            )));
        }
        let result_addr = self
            .image
            .symbol("__result")
            .ok_or_else(|| HarnessError::Run("missing __result symbol".into()))?;
        let phys = load_phys(result_addr);
        let result = u16::from_le_bytes([mem.read_phys(phys), mem.read_phys(phys + 1)]);
        Ok(RunResult {
            result,
            cycles: cpu.cycles,
        })
    }

    /// Physical address of a symbol under the standard machine map.
    pub fn symbol_phys(&self, name: &str) -> Option<u32> {
        self.image.symbol(name).map(load_phys)
    }

    /// Writes raw bytes into a compiled global before a run. `mem` must
    /// come from [`Build::machine`].
    ///
    /// # Panics
    ///
    /// Panics when `name` is not a symbol of this build.
    pub fn write_bytes(&self, mem: &mut Memory, name: &str, data: &[u8]) {
        let phys = self
            .symbol_phys(name)
            .unwrap_or_else(|| panic!("no symbol `{name}`"));
        mem.load(phys, data);
    }

    /// Reads raw bytes from a compiled global after a run.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not a symbol of this build.
    pub fn read_bytes(&self, mem: &Memory, name: &str, len: usize) -> Vec<u8> {
        let phys = self
            .symbol_phys(name)
            .unwrap_or_else(|| panic!("no symbol `{name}`"));
        mem.dump(phys, len)
    }

    /// Reads a compiled global (scalar or array element) after a run, for
    /// differential tests. `mem` must come from [`Build::machine`].
    pub fn read_global(
        &self,
        mem: &Memory,
        name: &str,
        index: usize,
        is_char: bool,
    ) -> Option<u16> {
        let addr = self.image.symbol(name)?;
        let elem = if is_char { 1 } else { 2 };
        let phys = load_phys(addr) + (index * elem) as u32;
        Some(if is_char {
            u16::from(mem.read_phys(phys))
        } else {
            u16::from_le_bytes([mem.read_phys(phys), mem.read_phys(phys + 1)])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_the_shared_firmware_map() {
        // The codegen layout constants must agree with the repo-wide
        // convention in `rabbit::fwmap` that `load_phys` is defined by.
        assert_eq!(layout::CODE_ORG, rabbit::fwmap::CODE_ORG);
        assert_eq!(layout::ROOT_DATA_ORG, rabbit::fwmap::ROOT_DATA_ORG);
        assert_eq!(layout::XMEM_DATA_ORG, rabbit::fwmap::XMEM_DATA_ORG);
        assert_eq!(layout::XMEM_XPC, rabbit::fwmap::XMEM_XPC);
    }

    fn run(src: &str, opts: Options) -> u16 {
        build(src, opts)
            .expect("builds")
            .run(100_000_000)
            .expect("runs")
            .result
    }

    #[test]
    fn returns_constant() {
        assert_eq!(run("int main() { return 42; }", Options::baseline()), 42);
    }

    #[test]
    fn arithmetic_matrix() {
        let cases = [
            ("2 + 3", 5u16),
            ("10 - 4", 6),
            ("6 * 7", 42),
            ("100 / 7", 14),
            ("100 % 7", 2),
            ("0xF0F0 & 0x0FF0", 0x00F0),
            ("0xF000 | 0x000F", 0xF00F),
            ("0xFF00 ^ 0x0FF0", 0xF0F0),
            ("1 << 10", 1024),
            ("0x8000 >> 15", 1),
            ("5 == 5", 1),
            ("5 != 5", 0),
            ("3 < 7", 1),
            ("7 < 3", 0),
            ("7 > 3", 1),
            ("3 <= 3", 1),
            ("4 >= 5", 0),
        ];
        for (expr, expect) in cases {
            let src = format!("int main() {{ return {expr}; }}");
            for opts in [Options::baseline(), Options::all_optimizations()] {
                assert_eq!(run(&src, opts), expect, "{expr} with {opts:?}");
            }
        }
    }

    #[test]
    fn loops_and_arrays() {
        let src = "char t[5] = {3, 1, 4, 1, 5};\n\
                   int main() { int s; int i; s = 0; for (i = 0; i < 5; i++) s += t[i]; return s; }";
        for opts in [Options::baseline(), Options::all_optimizations()] {
            assert_eq!(run(src, opts), 14, "{opts:?}");
        }
    }

    #[test]
    fn function_calls_and_static_params() {
        let src = "int add(int a, int b) { return a + b; }\n\
                   int main() { return add(add(1, 2), add(3, 4)); }";
        assert_eq!(run(src, Options::baseline()), 10);
    }

    #[test]
    fn char_truncation_on_store() {
        let src = "char c; int main() { c = 0x1FF; return c; }";
        assert_eq!(run(src, Options::baseline()), 0xFF);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(run("int main() { return 9 / 0; }", Options::baseline()), 0);
        assert_eq!(run("int main() { return 9 % 0; }", Options::baseline()), 0);
    }

    #[test]
    fn optimized_code_is_smaller_or_equal_and_faster() {
        let src =
            "int main() { int s; int i; s = 0; for (i = 0; i < 10; i++) s += i * 3; return s; }";
        let base = build(src, Options::baseline()).unwrap();
        let opt = build(src, Options::all_optimizations()).unwrap();
        let base_run = base.run(100_000_000).unwrap();
        let opt_run = opt.run(100_000_000).unwrap();
        assert_eq!(base_run.result, 135);
        assert_eq!(opt_run.result, 135);
        assert!(
            opt_run.cycles < base_run.cycles,
            "optimized {} < baseline {}",
            opt_run.cycles,
            base_run.cycles
        );
    }

    #[test]
    fn root_data_is_faster_than_xmem() {
        let src = "xmem char t[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};\n\
                   int main() { int s; int i; s = 0; for (i = 0; i < 16; i++) s += t[i]; return s; }";
        let xmem = build(
            src,
            Options {
                root_data: false,
                ..Options::baseline()
            },
        )
        .unwrap();
        let root = build(
            src,
            Options {
                root_data: true,
                ..Options::baseline()
            },
        )
        .unwrap();
        let xr = xmem.run(100_000_000).unwrap();
        let rr = root.run(100_000_000).unwrap();
        assert_eq!(xr.result, 136);
        assert_eq!(rr.result, 136);
        assert!(
            rr.cycles < xr.cycles,
            "root {} < xmem {}",
            rr.cycles,
            xr.cycles
        );
    }

    #[test]
    fn extern_routine_links_against_assembly_module() {
        // The C side declares `extern void bump();`, data travels through
        // the global `v`; the assembly module supplies `_bump`.
        let src = "char v;\n\
                   extern void bump();\n\
                   int main() { v = 7; bump(); bump(); return v; }";
        let module = "        org 0x6000\n\
                      _bump:\n\
                      \x20       ld a, (_v)\n\
                      \x20       add a, 5\n\
                      \x20       ld (_v), a\n\
                      \x20       ret\n";
        let b = build_firmware_linked(src, Options::baseline(), &[], &[module]).expect("links");
        let r = b.run(100_000_000).expect("runs");
        assert_eq!(r.result, 17);
    }

    #[test]
    fn extern_call_with_arguments_is_rejected() {
        let src = "extern void f();\nint main() { f(1); return 0; }";
        let err = build(src, Options::baseline()).unwrap_err();
        assert!(matches!(err, HarnessError::Compile(_)), "{err}");
    }

    #[test]
    fn undefined_extern_fails_at_link_time() {
        let src = "extern void ghost();\nint main() { ghost(); return 0; }";
        let err = build_firmware_linked(src, Options::baseline(), &[], &[]).unwrap_err();
        assert!(matches!(err, HarnessError::Assemble(_)), "{err}");
    }

    #[test]
    fn debug_instrumentation_costs_cycles() {
        let src = "int main() { int i; for (i = 0; i < 50; i++) i = i; return i; }";
        let dbg = build(src, Options::baseline()).unwrap();
        let nodbg = build(
            src,
            Options {
                debug: false,
                ..Options::baseline()
            },
        )
        .unwrap();
        let d = dbg.run(100_000_000).unwrap();
        let n = nodbg.run(100_000_000).unwrap();
        assert_eq!(d.result, n.result);
        assert!(
            n.cycles < d.cycles,
            "nodebug {} < debug {}",
            n.cycles,
            d.cycles
        );
        assert!(nodbg.code_size() < dbg.code_size());
    }
}
