//! The peephole optimizer behind the `peephole` compiler switch — the
//! "enabling compiler optimization" arm of the paper's E2 sweep.
//!
//! Works on assembly text lines, repeatedly applying local rewrites until
//! a fixed point:
//!
//! * `push hl` / `pop hl` pairs cancel.
//! * `push hl; ld hl, X; ex de, hl; pop hl` → `ld de, X` (the staging
//!   pattern the naive generator emits for every binary operation whose
//!   right operand is a constant or simple load).
//! * A store immediately followed by a reload of the same location drops
//!   the reload.
//! * Jumps to the next instruction vanish; `jp` to a label that is itself
//!   an unconditional `jp` is threaded.
//! * `bool hl` immediately after a comparison that already produced a
//!   0/1 value is dropped.

use std::collections::HashMap;

fn trimmed(line: &str) -> &str {
    line.trim()
}

fn is_label(line: &str) -> bool {
    trimmed(line).ends_with(':')
}

fn label_name(line: &str) -> &str {
    trimmed(line).trim_end_matches(':')
}

/// One optimization pass. Returns the new lines and whether anything
/// changed.
fn pass(lines: &[String]) -> (Vec<String>, bool) {
    let mut out: Vec<String> = Vec::with_capacity(lines.len());
    let mut changed = false;
    let mut i = 0;

    // Label -> first meaningful line after it (for jump threading).
    let mut label_target: HashMap<String, usize> = HashMap::new();
    for (idx, l) in lines.iter().enumerate() {
        if is_label(l) {
            label_target.insert(label_name(l).to_string(), idx);
        }
    }
    let next_insn = |mut idx: usize| -> Option<&str> {
        loop {
            idx += 1;
            let l = lines.get(idx)?;
            if !is_label(l) && !trimmed(l).is_empty() {
                return Some(trimmed(l));
            }
        }
    };

    while i < lines.len() {
        let cur = trimmed(&lines[i]);

        // push hl / pop hl  (nothing between)
        if cur == "push hl" && i + 1 < lines.len() && trimmed(&lines[i + 1]) == "pop hl" {
            i += 2;
            changed = true;
            continue;
        }

        // push hl; ld hl, X; ex de, hl; pop hl  ->  ld de, X
        if cur == "push hl" && i + 3 < lines.len() {
            let a = trimmed(&lines[i + 1]);
            let b = trimmed(&lines[i + 2]);
            let c = trimmed(&lines[i + 3]);
            if b == "ex de, hl" && c == "pop hl" {
                if let Some(rest) = a.strip_prefix("ld hl, ") {
                    // Safe for immediates and direct loads alike: DE gets
                    // the right operand, HL keeps the left one.
                    out.push(format!("        ld de, {rest}"));
                    i += 4;
                    changed = true;
                    continue;
                }
            }
        }

        // ld (X), hl ; ld hl, (X)  -> drop the reload
        if let Some(store) = cur.strip_prefix("ld (") {
            if let Some(loc) = store.strip_suffix("), hl") {
                if i + 1 < lines.len() && trimmed(&lines[i + 1]) == format!("ld hl, ({loc})") {
                    out.push(lines[i].clone());
                    i += 2;
                    changed = true;
                    continue;
                }
            }
        }
        // ld (X), a ; ld a, (X)  -> drop the reload
        if let Some(store) = cur.strip_prefix("ld (") {
            if let Some(loc) = store.strip_suffix("), a") {
                if i + 1 < lines.len() && trimmed(&lines[i + 1]) == format!("ld a, ({loc})") {
                    out.push(lines[i].clone());
                    i += 2;
                    changed = true;
                    continue;
                }
            }
        }

        // ex de, hl ; ex de, hl -> nothing
        if cur == "ex de, hl" && i + 1 < lines.len() && trimmed(&lines[i + 1]) == "ex de, hl" {
            i += 2;
            changed = true;
            continue;
        }

        // bool hl ; bool hl -> one
        if cur == "bool hl" && i + 1 < lines.len() && trimmed(&lines[i + 1]) == "bool hl" {
            out.push(lines[i].clone());
            i += 2;
            changed = true;
            continue;
        }

        // jp L where L labels the next instruction -> drop
        if let Some(target) = cur.strip_prefix("jp ") {
            if !target.contains(',') {
                if let Some(&lidx) = label_target.get(target) {
                    // is the label between here and the next instruction?
                    let mut j = i + 1;
                    let mut falls_through = false;
                    while j < lines.len() {
                        let l = trimmed(&lines[j]);
                        if is_label(&lines[j]) {
                            if j == lidx {
                                falls_through = true;
                            }
                            j += 1;
                            continue;
                        }
                        if l.is_empty() {
                            j += 1;
                            continue;
                        }
                        break;
                    }
                    if falls_through {
                        i += 1;
                        changed = true;
                        continue;
                    }
                    // jump threading: jp L; ... L: jp M  => jp M
                    if let Some(next) = next_insn(lidx) {
                        if let Some(thread) = next.strip_prefix("jp ") {
                            if !thread.contains(',') && thread != target {
                                out.push(format!("        jp {thread}"));
                                i += 1;
                                changed = true;
                                continue;
                            }
                        }
                    }
                }
            }
        }

        out.push(lines[i].clone());
        i += 1;
    }
    (out, changed)
}

/// Optimizes assembly text to a fixed point (bounded pass count).
pub fn optimize(asm: &str) -> String {
    let mut lines: Vec<String> = asm.lines().map(str::to_string).collect();
    for _ in 0..16 {
        let (next, changed) = pass(&lines);
        lines = next;
        if !changed {
            break;
        }
    }
    lines.join("\n") + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancels_push_pop() {
        let out = optimize("        push hl\n        pop hl\n        ret\n");
        assert_eq!(out.trim(), "ret");
    }

    #[test]
    fn rewrites_constant_staging() {
        let src = "        push hl\n        ld hl, 0x0005\n        ex de, hl\n        pop hl\n        add hl, de\n";
        let out = optimize(src);
        assert!(out.contains("ld de, 0x0005"), "{out}");
        assert!(!out.contains("push hl"), "{out}");
    }

    #[test]
    fn drops_reload_after_store() {
        let src = "        ld (x), hl\n        ld hl, (x)\n        ret\n";
        let out = optimize(src);
        assert_eq!(out.matches("ld").count(), 1, "{out}");
    }

    #[test]
    fn drops_jump_to_next() {
        let src = "        jp Lend\nLend:\n        ret\n";
        let out = optimize(src);
        assert!(!out.contains("jp"), "{out}");
    }

    #[test]
    fn threads_jump_chains() {
        let src =
            "        jp L1\n        ld hl, 1\nL1:\n        jp L2\n        nop\nL2:\n        ret\n";
        let out = optimize(src);
        assert!(out.contains("jp L2"), "{out}");
    }

    #[test]
    fn keeps_semantics_of_unrelated_code() {
        let src = "        push hl\n        call f\n        pop hl\n";
        let out = optimize(src);
        assert!(out.contains("push hl") && out.contains("pop hl"), "{out}");
    }
}
