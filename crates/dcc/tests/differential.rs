//! Differential testing: every generated program must compute the same
//! value compiled-and-simulated as interpreted, under every optimization
//! configuration.

use dcc::{build, parse, Interp, Options};
use proptest::prelude::*;

fn all_option_sets() -> [Options; 6] {
    [
        Options::baseline(),
        Options {
            debug: false,
            ..Options::baseline()
        },
        Options {
            root_data: true,
            ..Options::baseline()
        },
        Options {
            unroll: true,
            ..Options::baseline()
        },
        Options {
            peephole: true,
            ..Options::baseline()
        },
        Options::all_optimizations(),
    ]
}

fn check_all(src: &str) {
    let prog = parse(src).expect("parses");
    let expected = Interp::new(&prog).run_main().expect("interprets");
    for opts in all_option_sets() {
        let b = build(src, opts).unwrap_or_else(|e| panic!("build {opts:?}: {e}\n{src}"));
        let run = b
            .run(500_000_000)
            .unwrap_or_else(|e| panic!("run {opts:?}: {e}\n{}", b.asm));
        assert_eq!(
            run.result, expected,
            "mismatch with {opts:?}\nsource:\n{src}"
        );
    }
}

// ---- deterministic corpus ------------------------------------------------

#[test]
fn expression_grammar_corpus() {
    let programs = [
        "int main() { return (1 + 2) * (3 + 4) - 5; }",
        "int main() { return 0xFFFF + 1; }",
        "int main() { return 0 - 1; }",
        "int main() { return -5 + 10; }",
        "int main() { return ~0x00FF & 0xFFFF; }",
        "int main() { return !0 + !1 + !100; }",
        "int main() { return 1 && 2; }",
        "int main() { return 0 || 0; }",
        "int main() { return (3 < 4) + (4 < 3) * 10; }",
        "int main() { return 1000 / 10 / 10; }",
        "int main() { return 12345 % 100; }",
        "int main() { return 255 << 8; }",
        "int main() { return 0xABCD >> 4; }",
        "int main() { return (1 << 16) == 0; }",
    ];
    for p in programs {
        check_all(p);
    }
}

#[test]
fn statement_corpus() {
    let programs = [
        "int main() { int x; x = 5; if (x > 3) x = 10; else x = 20; return x; }",
        "int main() { int x; x = 1; if (x > 3) { x = 10; } return x; }",
        "int main() { int i; int s; s = 0; i = 10; while (i) { s += i; i--; } return s; }",
        "int main() { int i; int s; s = 0; for (i = 0; i < 8; i++) { if (i == 2) continue; if (i == 6) break; s += i; } return s; }",
        "int main() { int i; for (i = 0; i < 3; i++) ; return i; }",
        "char buf[10]; int main() { int i; for (i = 0; i < 10; i++) buf[i] = i * i; return buf[7]; }",
        "int w[4]; int main() { w[0] = 0x1234; w[1] = w[0] >> 8; return w[1]; }",
    ];
    for p in programs {
        check_all(p);
    }
}

#[test]
fn function_corpus() {
    let programs = [
        "int sq(int x) { return x * x; } int main() { return sq(3) + sq(4); }",
        "char lo(int v) { return v; } int main() { return lo(0x1234); }",
        "int id(int v) { return v; } int main() { return id(id(id(7))); }",
        "int g; void set(int v) { g = v; } int main() { set(99); return g; }",
        "int acc; int step() { acc += 5; return acc; } int main() { step(); step(); return step(); }",
    ];
    for p in programs {
        check_all(p);
    }
}

#[test]
fn xmem_and_root_agree() {
    // data placement must never change results
    let src = "xmem char a[8] = {1,2,3,4,5,6,7,8};\n\
               root char b[8] = {8,7,6,5,4,3,2,1};\n\
               int main() { int i; int s; s = 0; for (i = 0; i < 8; i++) s += a[i] * b[i]; return s; }";
    check_all(src);
}

// ---- property-based corpus -------------------------------------------

/// A tiny expression generator over a fixed set of variables.
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u16..1000).prop_map(|n| n.to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        (inner.clone(), inner)
            .prop_flat_map(|(a, b)| {
                prop_oneof![
                    Just(format!("({a} + {b})")),
                    Just(format!("({a} - {b})")),
                    Just(format!("({a} * {b})")),
                    Just(format!("({a} / {b})")),
                    Just(format!("({a} % {b})")),
                    Just(format!("({a} & {b})")),
                    Just(format!("({a} | {b})")),
                    Just(format!("({a} ^ {b})")),
                    Just(format!("({a} < {b})")),
                    Just(format!("({a} == {b})")),
                    Just(format!("({a} << ({b} & 7))")),
                    Just(format!("({a} >> ({b} & 7))")),
                ]
            })
            .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_expressions_match(e in arb_expr(3), x: u16, y: u16) {
        let src = format!(
            "int x; int y;\nint main() {{ x = {x}; y = {y}; return {e}; }}"
        );
        let prog = parse(&src).expect("parses");
        let expected = Interp::new(&prog).run_main().expect("interprets");
        // Compare baseline and fully-optimized (the extremes).
        for opts in [Options::baseline(), Options::all_optimizations()] {
            let b = build(&src, opts).expect("builds");
            let run = b.run(500_000_000).expect("runs");
            prop_assert_eq!(run.result, expected, "{} with {:?}", e, opts);
        }
    }

    #[test]
    fn random_array_walks_match(seed: u16, len in 1u16..16, mult in 1u16..7) {
        let src = format!(
            "char t[16];\nint main() {{ int i; int s; s = {seed};\n\
             for (i = 0; i < {len}; i++) t[i] = (i * {mult}) + s;\n\
             s = 0; for (i = 0; i < {len}; i++) s += t[i];\n\
             return s; }}"
        );
        let prog = parse(&src).expect("parses");
        let expected = Interp::new(&prog).run_main().expect("interprets");
        for opts in [Options::baseline(), Options::all_optimizations()] {
            let b = build(&src, opts).expect("builds");
            prop_assert_eq!(b.run(500_000_000).expect("runs").result, expected);
        }
    }
}
