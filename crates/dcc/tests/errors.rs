//! Error-path tests: the compiler must reject bad programs with useful
//! diagnostics, never panic or emit garbage.

use dcc::{build, compile, parse, Options};

fn compile_err(src: &str) -> String {
    match compile(src, Options::baseline()) {
        Err(e) => e.to_string(),
        Ok(asm) => panic!("expected a compile error, got:\n{asm}"),
    }
}

#[test]
fn undefined_variable() {
    let e = compile_err("int main() { return nope; }");
    assert!(e.contains("nope"), "{e}");
}

#[test]
fn undefined_function() {
    let e = compile_err("int main() { return missing(1); }");
    assert!(e.contains("missing"), "{e}");
}

#[test]
fn arity_mismatch() {
    let e = compile_err("int f(int a) { return a; } int main() { return f(1, 2); }");
    assert!(e.contains("argument"), "{e}");
}

#[test]
fn assignment_to_array_name() {
    let e = compile_err("char t[4]; int main() { t = 5; return 0; }");
    assert!(e.contains("array"), "{e}");
}

#[test]
fn indexing_a_scalar() {
    let e = compile_err("int x; int main() { return x[0]; }");
    assert!(e.contains("not an array"), "{e}");
}

#[test]
fn break_outside_loop() {
    let e = compile_err("int main() { break; }");
    assert!(e.contains("break"), "{e}");
}

#[test]
fn continue_outside_loop() {
    let e = compile_err("int main() { continue; }");
    assert!(e.contains("continue"), "{e}");
}

#[test]
fn parse_errors_carry_line_numbers() {
    let err = parse("int main() {\n  int x;\n  x = ;\n}").unwrap_err();
    assert_eq!(err.line, 3, "{err}");
}

#[test]
fn lexer_rejects_bad_characters() {
    let err = parse("int main() { return 1 @ 2; }").unwrap_err();
    assert!(err.to_string().contains('@'), "{err}");
}

#[test]
fn oversized_literals_rejected() {
    assert!(parse("int main() { return 99999; }").is_err());
}

#[test]
fn too_many_initialisers_rejected() {
    assert!(parse("char t[2] = {1, 2, 3};").is_err());
}

#[test]
fn zero_length_arrays_rejected() {
    assert!(parse("char t[0];").is_err());
}

#[test]
fn void_variables_rejected() {
    assert!(parse("void v;").is_err());
}

#[test]
fn locals_shadowing_globals_resolve_to_the_local() {
    // not an error — but the resolution order must be local-first
    let src = "int x = 7;\nint f() { int x; x = 3; return x; }\nint main() { return f() + x; }";
    let b = build(src, Options::baseline()).expect("builds");
    assert_eq!(b.run(10_000_000).expect("runs").result, 10);
}

#[test]
fn every_option_set_rejects_the_same_programs() {
    let bad = "int main() { return nope; }";
    for opts in [
        Options::baseline(),
        Options::all_optimizations(),
        Options {
            unroll: true,
            ..Options::baseline()
        },
    ] {
        assert!(
            compile(bad, opts).is_err(),
            "{opts:?} accepted a bad program"
        );
    }
}
