//! RSA over the [`bignum`] package: key generation, PKCS#1-v1.5-style
//! encryption/decryption and signing, as the host-side issl uses for key
//! exchange.
//!
//! The paper's RMC2000 port *dropped* this cipher ("the RSA algorithm
//! uses a difficult-to-port bignum package … we only ported the AES
//! cipher"); the host profile of the reproduced service keeps it, which
//! is what makes the embedded profile's degenerate handshake an honest
//! reproduction of the paper's trade-off.
//!
//! ```
//! use rsa::KeyPair;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let keys = KeyPair::generate(256, &mut rng);
//! let ct = keys.public().encrypt(b"premaster secret", &mut rng).unwrap();
//! assert_eq!(keys.decrypt(&ct).unwrap(), b"premaster secret");
//! ```

use bignum::{is_probable_prime, BigUint};
use rand::Rng;

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Message too long for the modulus with padding.
    MessageTooLong {
        /// Bytes supplied.
        got: usize,
        /// Maximum payload for this key.
        max: usize,
    },
    /// Ciphertext is not a valid PKCS#1 block for this key.
    BadCiphertext,
}

impl std::fmt::Display for RsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsaError::MessageTooLong { got, max } => {
                write!(f, "message of {got} bytes exceeds the {max}-byte limit")
            }
            RsaError::BadCiphertext => write!(f, "invalid ciphertext"),
        }
    }
}

impl std::error::Error for RsaError {}

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA key pair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    public: PublicKey,
    d: BigUint,
}

/// Generates a random odd candidate of exactly `bits` bits.
fn random_candidate<R: Rng>(bits: usize, rng: &mut R) -> BigUint {
    let bytes = bits.div_ceil(8);
    let mut buf = vec![0u8; bytes];
    rng.fill(&mut buf[..]);
    // Force the top bit (exact size) and the bottom bit (odd).
    let top_bit = (bits - 1) % 8;
    buf[0] &= (1u16 << (top_bit + 1)).wrapping_sub(1) as u8;
    buf[0] |= 1 << top_bit;
    *buf.last_mut().expect("non-empty") |= 1;
    BigUint::from_bytes_be(&buf)
}

/// Generates a random prime of exactly `bits` bits.
///
/// # Panics
///
/// Panics when `bits < 16`.
pub fn generate_prime<R: Rng>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 16, "prime size too small to be meaningful");
    loop {
        let candidate = random_candidate(bits, rng);
        if is_probable_prime(&candidate) {
            return candidate;
        }
    }
}

impl PublicKey {
    /// The modulus size in bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.to_bytes_be().len()
    }

    /// Raw public exponentiation (`m^e mod n`).
    pub fn raw(&self, m: &BigUint) -> BigUint {
        m.modpow(&self.e, &self.n)
    }

    /// The modulus, big-endian.
    pub fn n_bytes(&self) -> Vec<u8> {
        self.n.to_bytes_be()
    }

    /// The public exponent, big-endian.
    pub fn e_bytes(&self) -> Vec<u8> {
        self.e.to_bytes_be()
    }

    /// Rebuilds a key from big-endian `n` and `e` (the wire format of the
    /// issl server-hello).
    pub fn from_bytes(n: &[u8], e: &[u8]) -> PublicKey {
        PublicKey {
            n: BigUint::from_bytes_be(n),
            e: BigUint::from_bytes_be(e),
        }
    }

    /// Maximum payload for PKCS#1-v1.5-style encryption.
    pub fn max_payload(&self) -> usize {
        self.modulus_len().saturating_sub(11)
    }

    /// Encrypts with type-2 (random nonzero) padding:
    /// `00 02 <pad> 00 <msg>`.
    ///
    /// # Errors
    ///
    /// [`RsaError::MessageTooLong`] when `msg` exceeds
    /// [`PublicKey::max_payload`].
    pub fn encrypt<R: Rng>(&self, msg: &[u8], rng: &mut R) -> Result<Vec<u8>, RsaError> {
        let k = self.modulus_len();
        if msg.len() > self.max_payload() {
            return Err(RsaError::MessageTooLong {
                got: msg.len(),
                max: self.max_payload(),
            });
        }
        let mut block = Vec::with_capacity(k);
        block.push(0x00);
        block.push(0x02);
        for _ in 0..k - 3 - msg.len() {
            block.push(rng.gen_range(1..=255u8));
        }
        block.push(0x00);
        block.extend_from_slice(msg);
        let c = BigUint::from_bytes_be(&block).modpow(&self.e, &self.n);
        Ok(c.to_bytes_be_padded(k))
    }

    /// Verifies a type-1 signature over `digest`, returning whether it
    /// matches.
    pub fn verify(&self, digest: &[u8], signature: &[u8]) -> bool {
        let k = self.modulus_len();
        if signature.len() != k {
            return false;
        }
        let m = BigUint::from_bytes_be(signature).modpow(&self.e, &self.n);
        let block = m.to_bytes_be_padded(k);
        // 00 01 FF.. 00 digest
        if block.len() < digest.len() + 11 || block[0] != 0x00 || block[1] != 0x01 {
            return false;
        }
        let pad_end = block.len() - digest.len() - 1;
        if block[2..pad_end].iter().any(|&b| b != 0xFF) || block[pad_end] != 0x00 {
            return false;
        }
        &block[pad_end + 1..] == digest
    }
}

impl KeyPair {
    /// Generates a key pair with a modulus of `bits` bits and `e = 65537`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 64` (too small to pad anything).
    pub fn generate<R: Rng>(bits: usize, rng: &mut R) -> KeyPair {
        assert!(bits >= 64, "modulus too small");
        let e = BigUint::from_u64(65_537);
        loop {
            let p = generate_prime(bits / 2, rng);
            let q = generate_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            let Some(d) = e.modinv(&phi) else { continue };
            return KeyPair {
                public: PublicKey { n, e },
                d,
            };
        }
    }

    /// Builds a key pair from known primes (for test vectors).
    ///
    /// # Panics
    ///
    /// Panics if `65537` is not invertible modulo `(p-1)(q-1)`.
    pub fn from_primes(p: u64, q: u64) -> KeyPair {
        let p = BigUint::from_u64(p);
        let q = BigUint::from_u64(q);
        let n = p.mul(&q);
        let e = BigUint::from_u64(65_537);
        let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
        let d = e.modinv(&phi).expect("65537 coprime to phi");
        KeyPair {
            public: PublicKey { n, e },
            d,
        }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Raw private exponentiation (`c^d mod n`).
    pub fn raw(&self, c: &BigUint) -> BigUint {
        c.modpow(&self.d, &self.public.n)
    }

    /// Decrypts a PKCS#1-v1.5-type-2 block.
    ///
    /// # Errors
    ///
    /// [`RsaError::BadCiphertext`] if the block structure is wrong.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.public.modulus_len();
        if ciphertext.len() != k {
            return Err(RsaError::BadCiphertext);
        }
        let m = BigUint::from_bytes_be(ciphertext).modpow(&self.d, &self.public.n);
        let block = m.to_bytes_be_padded(k);
        if block[0] != 0x00 || block[1] != 0x02 {
            return Err(RsaError::BadCiphertext);
        }
        let sep = block[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(RsaError::BadCiphertext)?;
        if sep < 8 {
            return Err(RsaError::BadCiphertext); // pad too short
        }
        Ok(block[2 + sep + 1..].to_vec())
    }

    /// Signs a digest with type-1 padding.
    ///
    /// # Errors
    ///
    /// [`RsaError::MessageTooLong`] if the digest cannot fit.
    pub fn sign(&self, digest: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.public.modulus_len();
        if digest.len() + 11 > k {
            return Err(RsaError::MessageTooLong {
                got: digest.len(),
                max: k - 11,
            });
        }
        let mut block = Vec::with_capacity(k);
        block.push(0x00);
        block.push(0x01);
        block.resize(k - digest.len() - 1, 0xFF);
        block.push(0x00);
        block.extend_from_slice(digest);
        let s = BigUint::from_bytes_be(&block).modpow(&self.d, &self.public.n);
        Ok(s.to_bytes_be_padded(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn textbook_vector_round_trips() {
        // p=61, q=53 -> n=3233 (too small to pad, use raw)
        let kp = KeyPair::from_primes(61, 53);
        let m = BigUint::from_u64(65);
        let c = kp.public().raw(&m);
        assert_eq!(kp.raw(&c), m);
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = KeyPair::generate(256, &mut rng);
        let msg = b"sixteen byte key";
        let ct = kp.public().encrypt(msg, &mut rng).unwrap();
        assert_eq!(ct.len(), kp.public().modulus_len());
        assert_eq!(kp.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn ciphertexts_are_randomised() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = KeyPair::generate(256, &mut rng);
        let a = kp.public().encrypt(b"m", &mut rng).unwrap();
        let b = kp.public().encrypt(b"m", &mut rng).unwrap();
        assert_ne!(a, b, "type-2 padding randomises");
        assert_eq!(kp.decrypt(&a).unwrap(), b"m");
        assert_eq!(kp.decrypt(&b).unwrap(), b"m");
    }

    #[test]
    fn oversized_message_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = KeyPair::generate(128, &mut rng);
        let too_big = vec![0u8; kp.public().max_payload() + 1];
        assert!(matches!(
            kp.public().encrypt(&too_big, &mut rng),
            Err(RsaError::MessageTooLong { .. })
        ));
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = KeyPair::generate(256, &mut rng);
        let mut ct = kp.public().encrypt(b"secret", &mut rng).unwrap();
        ct[5] ^= 0xFF;
        let out = kp.decrypt(&ct);
        assert!(out.is_err() || out.unwrap() != b"secret");
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = KeyPair::generate(256, &mut rng);
        let digest = [0xAB; 20];
        let sig = kp.sign(&digest).unwrap();
        assert!(kp.public().verify(&digest, &sig));
        let mut bad = sig.clone();
        bad[0] ^= 1;
        assert!(!kp.public().verify(&digest, &bad));
        assert!(!kp.public().verify(&[0xCD; 20], &sig));
    }

    #[test]
    fn public_key_round_trips_through_wire_format() {
        let mut rng = StdRng::seed_from_u64(6);
        let kp = KeyPair::generate(256, &mut rng);
        let pk = PublicKey::from_bytes(&kp.public().n_bytes(), &kp.public().e_bytes());
        let ct = pk.encrypt(b"hello", &mut rng).unwrap();
        assert_eq!(kp.decrypt(&ct).unwrap(), b"hello");
    }

    #[test]
    fn generated_primes_have_exact_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = generate_prime(96, &mut rng);
        assert_eq!(p.bits(), 96);
        assert!(p.is_odd());
    }
}
