//! A minimal, dependency-free stand-in for the subset of the `rand` 0.8
//! API used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few traits and types it needs: [`RngCore`], [`Rng`],
//! [`SeedableRng`], and [`rngs::StdRng`]. The generator is a
//! xoshiro256**-style PRNG seeded through SplitMix64; it is deterministic
//! per seed (which is all the tests rely on) but does **not** produce the
//! same streams as the real `rand::rngs::StdRng`.

use std::ops::{Range, RangeInclusive};

/// Error type mirroring `rand::Error` (never produced by this shim).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core source-of-randomness trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
    /// Fallible fill; this shim never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                let mut wide = u128::from(rng.next_u64());
                if core::mem::size_of::<$t>() > 8 {
                    wide = (wide << 64) | u128::from(rng.next_u64());
                }
                wide as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 != 0
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<T: Standard + Default + Copy, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> [T; N] {
        core::array::from_fn(|_| T::sample(rng))
    }
}

/// A half-open or inclusive range that `gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain.
                    return <$t as Standard>::sample(rng);
                }
                let draw = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The user-facing convenience trait (`gen`, `gen_range`, …), blanket
/// implemented for every [`RngCore`] like the real crate does.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256**-style generator (API stand-in for
    /// `rand::rngs::StdRng`; streams differ from the real crate).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut st = seed;
            StdRng {
                s: core::array::from_fn(|_| splitmix64(&mut st)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = r.gen_range(1..=255u8);
            assert!(v >= 1);
            let w: usize = r.gen_range(3..10usize);
            assert!((3..10).contains(&w));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
