//! The one bounded buffer.
//!
//! The paper's §5 rework — "make logging write to a circular buffer
//! rather than a file" — originally lived as a `VecDeque` copy inside
//! `issl::CircularLog`. The span recorder needs the same shape, so both
//! now share this fixed-capacity ring: memory use is bounded forever and
//! old entries fall off the front, with an eviction count kept for
//! honesty.

/// A fixed-capacity ring. Pushing past capacity evicts the oldest entry.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    /// Index of the oldest entry once the buffer has wrapped.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Ring<T> {
        assert!(capacity > 0, "a zero-capacity ring is no ring at all");
        Ring {
            buf: Vec::new(),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Entries currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum retained entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// Drops every entry, keeping the capacity (the eviction count is
    /// preserved — it counts lifetime evictions, not current content).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

impl<'a, T> IntoIterator for &'a Ring<T> {
    type Item = &'a T;
    type IntoIter = std::iter::Chain<std::slice::Iter<'a, T>, std::slice::Iter<'a, T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = Ring::new(4);
        r.push(1);
        r.push(2);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn wraps_and_evicts_oldest_first() {
        let mut r = Ring::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut r = Ring::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        r.clear();
        assert!(r.is_empty());
        r.push(9);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![9]);
        assert_eq!(r.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _ = Ring::<u8>::new(0);
    }
}
