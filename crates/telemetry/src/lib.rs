//! Deterministic observability for the whole stack.
//!
//! The paper's entire evaluation (§6) is measurement — cycle counts and
//! code bytes — yet the repro had no first-class way to observe itself.
//! This crate is that layer, built around one hard rule: **identical
//! seeds produce byte-identical dumps**. Nothing in here reads a clock,
//! the OS, or pointer addresses; all time is virtual (`netsim::World::now`
//! microseconds or Rabbit ISS cycle counts), all iteration orders are
//! total orders over names.
//!
//! Four pieces:
//!
//! * [`Registry`] — counters, gauges and fixed-bucket log-linear
//!   [`Histogram`]s keyed by static name + label set, snapshot-able into
//!   deterministic text and JSON dumps ([`Snapshot`]).
//! * [`Ring`] — the one bounded-buffer implementation shared by
//!   `issl::CircularLog` and the span recorder (the paper's "make logging
//!   write to a circular buffer" rework, §5).
//! * [`SpanRecorder`] — virtual-time tracing spans with enter/exit
//!   nesting, recorded into a [`Ring`].
//! * [`CycleProfiler`] — per-PC and per-symbol cycle attribution for the
//!   Rabbit ISS, call-stack aware, with a flamegraph-style
//!   collapsed-stack exporter ([`ProfileReport`]). Symbols come from the
//!   assembler's label table ([`SymbolTable`]).

pub mod hist;
pub mod metrics;
pub mod profile;
pub mod ring;
pub mod span;

pub use hist::{Histogram, HistogramData, BUCKETS};
pub use metrics::{Counter, Gauge, MetricKey, Registry, Snapshot, SnapshotValue};
pub use profile::{CycleProfiler, ProfileReport, SymbolCycles, SymbolTable};
pub use ring::Ring;
pub use span::{SpanRecord, SpanRecorder};

/// Escapes a string for inclusion in a JSON dump. Only the escapes the
/// dumps can actually need (quotes, backslashes, control bytes); output
/// is deterministic byte-for-byte.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
