//! Virtual-time tracing spans.
//!
//! A span is a named interval on a virtual clock — `netsim::World::now()`
//! microseconds or Rabbit ISS cycles; the recorder never reads a real
//! clock. Spans nest: `enter`/`exit` maintain a depth counter so the
//! recorded stream can be re-indented into a trace. Completed spans land
//! in a bounded [`Ring`], so a long run keeps the most recent window and
//! counts what it evicted.

use crate::ring::Ring;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static label, e.g. `handshake`).
    pub name: String,
    /// Virtual start time.
    pub start: u64,
    /// Virtual end time.
    pub end: u64,
    /// Nesting depth at the time the span was opened (0 = top level).
    pub depth: usize,
}

impl SpanRecord {
    /// Span duration in virtual ticks.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Records completed spans into a bounded ring, oldest evicted first.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    ring: Ring<SpanRecord>,
    /// Open spans: (name, start, depth).
    open: Vec<(String, u64)>,
}

impl SpanRecorder {
    /// A recorder retaining at most `capacity` completed spans.
    #[must_use]
    pub fn new(capacity: usize) -> SpanRecorder {
        SpanRecorder {
            ring: Ring::new(capacity),
            open: Vec::new(),
        }
    }

    /// Opens a span named `name` at virtual time `now`.
    pub fn enter(&mut self, name: &str, now: u64) {
        self.open.push((name.to_string(), now));
    }

    /// Closes the most recently opened span at virtual time `now` and
    /// records it. A stray exit with no open span is ignored.
    pub fn exit(&mut self, now: u64) {
        if let Some((name, start)) = self.open.pop() {
            let depth = self.open.len();
            self.ring.push(SpanRecord {
                name,
                start,
                end: now,
                depth,
            });
        }
    }

    /// Records a complete span directly, at the current nesting depth.
    /// Useful when the caller already knows both endpoints.
    pub fn record(&mut self, name: &str, start: u64, end: u64) {
        self.ring.push(SpanRecord {
            name: name.to_string(),
            start,
            end,
            depth: self.open.len(),
        });
    }

    /// Completed spans, oldest first.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.ring.iter().cloned().collect()
    }

    /// Spans evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Currently open (unclosed) spans.
    #[must_use]
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_nesting_records_depth() {
        let mut r = SpanRecorder::new(8);
        r.enter("outer", 10);
        r.enter("inner", 20);
        r.exit(30); // inner
        r.exit(50); // outer
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[0].duration(), 10);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].duration(), 40);
    }

    #[test]
    fn ring_bounds_retention() {
        let mut r = SpanRecorder::new(2);
        for i in 0..5u64 {
            r.record("s", i, i + 1);
        }
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.spans()[0].start, 3);
    }

    #[test]
    fn stray_exit_is_ignored() {
        let mut r = SpanRecorder::new(2);
        r.exit(5);
        assert!(r.spans().is_empty());
        assert_eq!(r.open_depth(), 0);
    }
}
